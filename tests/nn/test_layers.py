"""Unit tests for Linear / ReLU / Sigmoid layers, including gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sigmoid
from tests.helpers import assert_gradients_close, numerical_gradient


def test_linear_forward_shape(rng):
    layer = Linear(5, 3, rng)
    out = layer.forward(rng.normal(size=(7, 5)))
    assert out.shape == (7, 3)


def test_linear_forward_matches_manual(rng):
    layer = Linear(4, 2, rng)
    x = rng.normal(size=(3, 4))
    np.testing.assert_allclose(layer.forward(x), x @ layer.weight + layer.bias)


def test_linear_backward_weight_gradient_matches_numeric(rng):
    layer = Linear(4, 3, rng)
    x = rng.normal(size=(6, 4))

    def loss_fn(_w):
        return float((layer.forward(x) ** 2).sum())

    layer.zero_grad()
    out = layer.forward(x)
    layer.backward(2.0 * out)
    numeric = numerical_gradient(loss_fn, layer.weight)
    assert_gradients_close(layer.grad_weight, numeric)


def test_linear_backward_input_gradient_matches_numeric(rng):
    layer = Linear(4, 3, rng)
    x = rng.normal(size=(5, 4))

    def loss_fn(x_in):
        return float((layer.forward(x_in) ** 2).sum())

    out = layer.forward(x)
    grad_input = layer.backward(2.0 * out)
    numeric = numerical_gradient(loss_fn, x)
    assert_gradients_close(grad_input, numeric)


def test_linear_gradients_accumulate_across_backwards(rng):
    layer = Linear(3, 2, rng)
    x = rng.normal(size=(4, 3))
    layer.forward(x)
    layer.backward(np.ones((4, 2)))
    first = layer.grad_weight.copy()
    layer.forward(x)
    layer.backward(np.ones((4, 2)))
    np.testing.assert_allclose(layer.grad_weight, 2.0 * first)


def test_linear_zero_grad_resets(rng):
    layer = Linear(3, 2, rng)
    layer.forward(rng.normal(size=(4, 3)))
    layer.backward(np.ones((4, 2)))
    layer.zero_grad()
    assert np.all(layer.grad_weight == 0.0)
    assert np.all(layer.grad_bias == 0.0)


def test_linear_backward_before_forward_raises(rng):
    layer = Linear(3, 2, rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.ones((4, 2)))


def test_relu_forward_clamps_negatives(rng):
    relu = ReLU()
    x = np.array([[-1.0, 0.0, 2.0]])
    np.testing.assert_allclose(relu.forward(x), [[0.0, 0.0, 2.0]])


def test_relu_backward_masks_gradient(rng):
    relu = ReLU()
    x = np.array([[-1.0, 3.0]])
    relu.forward(x)
    grad = relu.backward(np.array([[5.0, 5.0]]))
    np.testing.assert_allclose(grad, [[0.0, 5.0]])


def test_relu_has_no_parameters():
    assert ReLU().parameters() == []
    assert ReLU().num_parameters == 0


def test_sigmoid_output_range(rng):
    sig = Sigmoid()
    out = sig.forward(rng.normal(scale=10.0, size=(100,)))
    assert np.all(out > 0.0) and np.all(out < 1.0)


def test_sigmoid_extreme_inputs_are_stable():
    sig = Sigmoid()
    out = sig.forward(np.array([-1e4, 1e4]))
    assert np.isfinite(out).all()
    np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


def test_sigmoid_backward_matches_numeric(rng):
    sig = Sigmoid()
    x = rng.normal(size=(4, 3))

    def loss_fn(x_in):
        return float(sig.forward(x_in).sum())

    sig.forward(x)
    grad = sig.backward(np.ones((4, 3)))
    numeric = numerical_gradient(loss_fn, x)
    assert_gradients_close(grad, numeric)


def test_layer_parameter_counts(rng):
    layer = Linear(10, 5, rng)
    assert layer.num_parameters == 10 * 5 + 5
