"""Tests for the hot/cold :class:`TieredEmbeddingStore`.

The tier is an accounting layer, so the suite pins three things: the
bit-parity contract (attaching a tier changes no numerics), the pricing/
counter model (misses fetch, capacity evicts LFU, pinned rows never
evict), and the window-bound bookkeeping (resident-set-sized arrays,
never table-sized).
"""

from __future__ import annotations

import numpy as np

from repro.hwsim.dma import DMAEngine
from repro.nn.embedding import EmbeddingBag, TieredEmbeddingStore


def make_tier(rows=(64, 32), dim=4, hot_rows=16, **kwargs):
    tier = TieredEmbeddingStore(
        rows, dim, hot_bytes=hot_rows * dim * 4, dma=DMAEngine(), **kwargs
    )
    assert tier.capacity_rows == hot_rows
    return tier


def test_touch_counts_hits_misses_and_prices_fetches():
    tier = make_tier()
    t = tier.touch(0, np.array([[1, 2], [3, 1]]))
    # Hits/misses count unique rows: three cold rows on a first touch.
    assert (tier.hits, tier.misses) == (0, 3)
    assert t > 0.0 and tier.fetch_time_s == t
    assert tier.dma.bytes_read == 3 * tier.row_bytes
    t2 = tier.touch(0, np.array([[1, 3]]))
    assert (tier.hits, tier.misses) == (2, 3)
    assert t2 == 0.0  # all resident: no DMA
    assert tier.resident_rows == 3


def test_capacity_evicts_lowest_frequency_rows():
    tier = make_tier(hot_rows=4)
    tier.touch(0, np.array([[0, 0, 0, 1, 1, 2, 3]]))  # freq 0:3, 1:2, 2:1, 3:1
    assert tier.resident_rows == 4 and tier.evictions == 0
    tier.touch(1, np.array([[5, 5]]))  # forces one eviction
    assert tier.evictions == 1
    assert tier.resident_rows == 4
    # The evicted victim is one of the frequency-1 rows of table 0.
    assert tier.is_resident(0, np.array([0, 1])).all()
    assert int(np.count_nonzero(tier.is_resident(0, np.array([2, 3])))) == 1
    assert tier.is_resident(1, np.array([5])).all()
    assert tier.dma.bytes_written == tier.row_bytes  # dirty write-back priced


def test_pinned_rows_never_evict():
    tier = make_tier(hot_rows=4)
    tier.pin_rows(0, np.array([10, 11, 12]))
    assert tier.resident_rows == 3 and tier.misses == 0
    # Pinned prefill is a contiguous (non-scattered) read.
    assert tier.fetch_time_s > 0.0 and tier.dma.requests == 1
    tier.touch(1, np.array([[1, 2, 3]]))  # 3 cold rows, capacity 4
    assert tier.evictions == 2
    assert tier.is_resident(0, np.array([10, 11, 12])).all()


def test_record_counts_feeds_eviction_priority():
    tier = make_tier(hot_rows=4)
    tier.touch(0, np.array([[1, 2, 3, 4]]))  # all frequency 1
    # The classifier says row 3 is popular: seed its count.
    tier.record_counts(0, np.array([3, 60]), np.array([50, 9]))  # 60 not resident
    tier.touch(1, np.array([[7, 8, 9]]))
    assert tier.evictions == 3
    assert tier.is_resident(0, np.array([3])).all()  # survived on seeded count


def test_bookkeeping_is_resident_set_sized():
    tier = TieredEmbeddingStore(
        (10_000_000,), 8, hot_bytes=1024 * 8 * 4, dma=DMAEngine()
    )
    rng = np.random.default_rng(3)
    tier.touch(0, rng.choice(10_000_000, size=(16, 4), replace=False))
    assert tier.resident_rows == 64
    # Sorted-array probe bookkeeping: bytes track residency, not the table.
    assert tier.nbytes < 64 * 3 * 8 + 64
    assert tier.hit_rate == 0.0


def test_embedding_bag_resolves_through_tier_transparently():
    rng = np.random.default_rng(11)
    bag = EmbeddingBag(64, 4, rng)
    baseline_weight = bag.weight.copy()
    block = rng.integers(0, 64, size=(8, 3))
    expected = bag.forward(block)
    expected_grad = bag.backward(np.ones((8, 4)))

    tier = make_tier(rows=(64,), hot_rows=16)
    bag.attach_tier(tier, 0)
    out = bag.forward(block)
    grad = bag.backward(np.ones((8, 4)))
    # Bit-identical numerics: only pricing/counters change.
    np.testing.assert_array_equal(out, expected)
    np.testing.assert_array_equal(grad.indices, expected_grad.indices)
    np.testing.assert_array_equal(grad.values, expected_grad.values)
    np.testing.assert_array_equal(bag.weight, baseline_weight)
    assert tier.hits + tier.misses == np.unique(block).size
    bag.detach_tier()
    bag.forward(block)
    assert tier.hits + tier.misses == np.unique(block).size  # detached: untouched


def test_attach_tier_validates_shape():
    rng = np.random.default_rng(0)
    bag = EmbeddingBag(64, 4, rng)
    tier = make_tier(rows=(32, 64))
    try:
        bag.attach_tier(tier, 0)  # table 0 has 32 rows, bag has 64
    except ValueError:
        pass
    else:  # pragma: no cover - guards the test itself
        raise AssertionError("shape mismatch must raise")
    bag.attach_tier(tier, 1)


def test_reset_counters_keeps_residency():
    tier = make_tier()
    tier.touch(0, np.array([[1, 2, 3]]))
    tier.reset_counters()
    assert (tier.hits, tier.misses, tier.evictions) == (0, 0, 0)
    assert tier.fetch_time_s == 0.0 and tier.writeback_time_s == 0.0
    assert tier.resident_rows == 3  # warmed tier survives the reset
    tier.touch(0, np.array([[1]]))
    assert (tier.hits, tier.misses) == (1, 0)
