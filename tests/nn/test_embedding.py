"""Unit tests for EmbeddingBag, SparseGradient, and gradient merging."""

import numpy as np
import pytest

from repro.core.hotset import HotSetIndex
from repro.nn.embedding import EmbeddingBag, SparseGradient, merge_sparse_gradients


def make_bag(rows=16, dim=4, seed=0):
    return EmbeddingBag(rows, dim, np.random.default_rng(seed))


def test_forward_sums_selected_rows():
    bag = make_bag()
    indices = np.array([[0, 1], [2, 3]])
    out = bag.forward(indices)
    np.testing.assert_allclose(out[0], bag.weight[0] + bag.weight[1])
    np.testing.assert_allclose(out[1], bag.weight[2] + bag.weight[3])


def test_forward_zero_pooling_is_zero():
    bag = make_bag()
    out = bag.forward(np.empty((2, 0), dtype=np.int64))
    assert out.shape == (2, bag.dim)
    np.testing.assert_allclose(out, np.zeros((2, bag.dim)))


def test_forward_empty_batch():
    bag = make_bag()
    out = bag.forward(np.empty((0, 3), dtype=np.int64))
    assert out.shape == (0, bag.dim)
    grad = bag.backward(np.empty((0, bag.dim)))
    assert grad.nnz == 0


def test_forward_rejects_ragged_or_flat_input():
    bag = make_bag()
    with pytest.raises(ValueError):
        bag.forward(np.array([0, 1, 2]))


def test_backward_accumulates_shared_rows():
    bag = make_bag()
    bag.forward(np.array([[5], [5]]))
    grad = bag.backward(np.ones((2, bag.dim)))
    assert grad.nnz == 1
    np.testing.assert_allclose(grad.values[0], 2.0 * np.ones(bag.dim))


def test_backward_multi_hot_repeats_gradient():
    bag = make_bag()
    bag.forward(np.array([[1, 2, 3]]))
    grad = bag.backward(np.full((1, bag.dim), 3.0))
    assert set(grad.indices.tolist()) == {1, 2, 3}
    for row in grad.values:
        np.testing.assert_allclose(row, 3.0 * np.ones(bag.dim))


def test_backward_before_forward_raises():
    bag = make_bag()
    with pytest.raises(RuntimeError):
        bag.backward(np.ones((1, bag.dim)))


def test_backward_batch_mismatch_raises():
    bag = make_bag()
    bag.forward(np.array([[0]]))
    with pytest.raises(ValueError):
        bag.backward(np.ones((2, bag.dim)))


def test_backward_preserves_grad_dtype():
    bag = make_bag()
    bag.forward(np.array([[1, 2]]))
    grad = bag.backward(np.ones((1, bag.dim), dtype=np.float32))
    assert grad.values.dtype == np.float32


def test_apply_sparse_update_only_touches_selected_rows():
    bag = make_bag()
    before = bag.weight.copy()
    grad = SparseGradient(np.array([3]), np.ones((1, bag.dim)))
    bag.apply_sparse_update(grad, lr=0.5)
    np.testing.assert_allclose(bag.weight[3], before[3] - 0.5)
    untouched = [i for i in range(bag.num_rows) if i != 3]
    np.testing.assert_allclose(bag.weight[untouched], before[untouched])


def test_sparse_gradient_validates_shapes():
    with pytest.raises(ValueError):
        SparseGradient(np.array([1, 2]), np.ones((1, 4)))


def test_sparse_gradient_restricted_to():
    grad = SparseGradient(np.array([1, 2, 3]), np.arange(12, dtype=float).reshape(3, 4))
    restricted = grad.restricted_to(np.array([2, 3]))
    assert restricted.indices.tolist() == [2, 3]


def test_sparse_gradient_restricted_to_empty_allowed():
    grad = SparseGradient(np.array([1, 2, 3]), np.ones((3, 4), dtype=np.float32))
    restricted = grad.restricted_to(np.empty(0, dtype=np.int64))
    assert restricted.nnz == 0
    assert restricted.values.dtype == np.float32


def test_sparse_gradient_restricted_to_hot_set_index():
    grad = SparseGradient(np.array([1, 2, 3]), np.arange(12, dtype=float).reshape(3, 4))
    index = HotSetIndex([np.array([9]), np.array([2, 3])])
    restricted = grad.restricted_to(index, table=1)
    assert restricted.indices.tolist() == [2, 3]
    np.testing.assert_array_equal(restricted.values, grad.values[1:])


def test_merge_sparse_gradients_adds_overlapping_rows():
    a = SparseGradient(np.array([1, 2]), np.ones((2, 3)))
    b = SparseGradient(np.array([2, 4]), 2.0 * np.ones((2, 3)))
    merged = merge_sparse_gradients([a, b])
    assert merged.indices.tolist() == [1, 2, 4]
    np.testing.assert_allclose(merged.values[1], 3.0 * np.ones(3))


def test_merge_sparse_gradients_all_empty():
    empty = SparseGradient(np.empty(0, dtype=np.int64), np.empty((0, 3)))
    merged = merge_sparse_gradients([empty, empty])
    assert merged.nnz == 0


def test_merge_sparse_gradients_empty_preserves_dtype():
    """Regression: the empty case used to hardcode float64 values."""
    empty = SparseGradient(np.empty(0, dtype=np.int64), np.empty((0, 3), dtype=np.float32))
    merged = merge_sparse_gradients([empty, empty])
    assert merged.nnz == 0
    assert merged.values.dtype == np.float32
    assert merged.values.shape == (0, 3)


def test_rows_bytes_and_parameter_count():
    bag = make_bag(rows=10, dim=4)
    assert bag.num_parameters == 40
    assert bag.rows_bytes() == 10 * 4 * 4
    assert bag.rows_bytes(num_rows=2, dtype_bytes=8) == 2 * 4 * 8


def test_invalid_construction_raises():
    with pytest.raises(ValueError):
        EmbeddingBag(0, 4, np.random.default_rng(0))
