"""Unit tests for AUC, accuracy, and log-loss metrics."""

import numpy as np
import pytest

from repro.nn.metrics import binary_accuracy, log_loss, roc_auc


def test_auc_perfect_separation():
    targets = np.array([0, 0, 1, 1])
    scores = np.array([0.1, 0.2, 0.8, 0.9])
    assert roc_auc(targets, scores) == pytest.approx(1.0)


def test_auc_inverted_scores_is_zero():
    targets = np.array([0, 0, 1, 1])
    scores = np.array([0.9, 0.8, 0.2, 0.1])
    assert roc_auc(targets, scores) == pytest.approx(0.0)


def test_auc_random_scores_near_half(rng):
    targets = (rng.uniform(size=5000) < 0.5).astype(float)
    scores = rng.uniform(size=5000)
    assert roc_auc(targets, scores) == pytest.approx(0.5, abs=0.03)


def test_auc_handles_ties():
    targets = np.array([0, 1, 0, 1])
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    assert roc_auc(targets, scores) == pytest.approx(0.5)


def test_auc_single_class_raises():
    with pytest.raises(ValueError):
        roc_auc(np.ones(4), np.linspace(0, 1, 4))


def test_auc_matches_pairwise_definition(rng):
    targets = (rng.uniform(size=200) < 0.3).astype(float)
    scores = rng.normal(size=200)
    pos = scores[targets == 1]
    neg = scores[targets == 0]
    wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
    expected = wins / (len(pos) * len(neg))
    assert roc_auc(targets, scores) == pytest.approx(expected)


def test_binary_accuracy():
    targets = np.array([0, 1, 1, 0])
    scores = np.array([0.2, 0.9, 0.4, 0.6])
    assert binary_accuracy(targets, scores) == pytest.approx(0.5)


def test_log_loss_perfect_predictions_is_small():
    targets = np.array([0.0, 1.0])
    assert log_loss(targets, np.array([1e-9, 1 - 1e-9])) < 1e-6


def test_log_loss_clips_probabilities():
    value = log_loss(np.array([1.0]), np.array([0.0]))
    assert np.isfinite(value)
