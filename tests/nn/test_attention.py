"""Unit tests for the TBSM dot-product attention."""

import numpy as np
import pytest

from repro.nn.attention import DotProductAttention
from tests.helpers import assert_gradients_close, numerical_gradient


def test_forward_shape(rng):
    attn = DotProductAttention()
    out = attn.forward(rng.normal(size=(4, 8)), rng.normal(size=(4, 5, 8)))
    assert out.shape == (4, 8)


def test_forward_is_convex_combination_of_sequence(rng):
    attn = DotProductAttention()
    sequence = rng.normal(size=(1, 3, 4))
    out = attn.forward(rng.normal(size=(1, 4)), sequence)
    # The context lies within the convex hull: its coordinates are bounded
    # by the min/max over the sequence vectors.
    assert np.all(out[0] <= sequence[0].max(axis=0) + 1e-12)
    assert np.all(out[0] >= sequence[0].min(axis=0) - 1e-12)


def test_uniform_sequence_returns_that_vector(rng):
    attn = DotProductAttention()
    vector = rng.normal(size=4)
    sequence = np.tile(vector, (1, 6, 1))
    out = attn.forward(rng.normal(size=(1, 4)), sequence)
    np.testing.assert_allclose(out[0], vector)


def test_invalid_shapes_raise(rng):
    attn = DotProductAttention()
    with pytest.raises(ValueError):
        attn.forward(rng.normal(size=(4, 8, 1)), rng.normal(size=(4, 5, 8)))


def test_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        DotProductAttention().backward(np.ones((2, 4)))


def test_backward_query_gradient_matches_numeric(rng):
    attn = DotProductAttention()
    query = rng.normal(size=(2, 4))
    sequence = rng.normal(size=(2, 3, 4))

    def loss_fn(q):
        return float((attn.forward(q, sequence) ** 2).sum())

    out = attn.forward(query, sequence)
    grad_q, _ = attn.backward(2.0 * out)
    numeric = numerical_gradient(loss_fn, query)
    assert_gradients_close(grad_q, numeric, rtol=1e-4)


def test_backward_sequence_gradient_matches_numeric(rng):
    attn = DotProductAttention()
    query = rng.normal(size=(2, 4))
    sequence = rng.normal(size=(2, 3, 4))

    def loss_fn(seq):
        return float((attn.forward(query, seq) ** 2).sum())

    out = attn.forward(query, sequence)
    _, grad_seq = attn.backward(2.0 * out)
    numeric = numerical_gradient(loss_fn, sequence)
    assert_gradients_close(grad_seq, numeric, rtol=1e-4)
