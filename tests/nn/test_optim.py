"""Unit tests for the dense and sparse optimisers."""

import numpy as np
import pytest

from repro.nn.embedding import EmbeddingBag, SparseGradient
from repro.nn.optim import SGD, Adagrad, SparseAdagrad, SparseSGD


def test_sgd_applies_learning_rate():
    param = np.ones(4)
    grad = np.full(4, 2.0)
    SGD(lr=0.1).step([(param, grad)])
    np.testing.assert_allclose(param, 1.0 - 0.2)


def test_sgd_rejects_nonpositive_lr():
    with pytest.raises(ValueError):
        SGD(lr=0.0)


def test_adagrad_shrinks_effective_lr_over_time():
    param = np.zeros(1)
    opt = Adagrad(lr=1.0)
    grad = np.ones(1)
    opt.step([(param, grad)])
    first_step = abs(param[0])
    before = param[0]
    opt.step([(param, grad)])
    second_step = abs(param[0] - before)
    assert second_step < first_step


def test_sparse_sgd_updates_only_selected_rows():
    bag = EmbeddingBag(8, 4, np.random.default_rng(0))
    before = bag.weight.copy()
    grad = SparseGradient(np.array([2]), np.ones((1, 4)))
    SparseSGD(lr=0.5).step(bag, grad)
    np.testing.assert_allclose(bag.weight[2], before[2] - 0.5)
    np.testing.assert_allclose(bag.weight[0], before[0])


def test_sparse_adagrad_accumulates_per_row_state():
    bag = EmbeddingBag(8, 4, np.random.default_rng(0))
    opt = SparseAdagrad(lr=1.0)
    grad = SparseGradient(np.array([1]), np.ones((1, 4)))
    before = bag.weight[1].copy()
    opt.step(bag, grad)
    first = np.abs(bag.weight[1] - before).max()
    before = bag.weight[1].copy()
    opt.step(bag, grad)
    second = np.abs(bag.weight[1] - before).max()
    assert second < first


def test_sparse_adagrad_empty_gradient_is_noop():
    bag = EmbeddingBag(8, 4, np.random.default_rng(0))
    before = bag.weight.copy()
    SparseAdagrad(lr=1.0).step(
        bag, SparseGradient(np.empty(0, dtype=np.int64), np.empty((0, 4)))
    )
    np.testing.assert_allclose(bag.weight, before)


def test_sparse_optimizers_reject_nonpositive_lr():
    with pytest.raises(ValueError):
        SparseSGD(lr=-1.0)
    with pytest.raises(ValueError):
        SparseAdagrad(lr=0.0)
