"""Unit tests for the BCE-with-logits loss (Eq. 1-2 of the paper)."""

import numpy as np
import pytest

from repro.nn.loss import (
    bce_with_logits,
    bce_with_logits_backward,
    bce_with_logits_per_sample,
    force_reference,
    fused_bce_epilogue,
    predicted_probabilities,
    reference_epilogue,
)


def test_matches_reference_formula(rng):
    logits = rng.normal(size=32)
    targets = (rng.uniform(size=32) < 0.4).astype(float)
    p = 1.0 / (1.0 + np.exp(-logits))
    reference = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).sum()
    assert bce_with_logits(logits, targets, reduction="sum") == pytest.approx(reference)


def test_mean_reduction_is_sum_over_n(rng):
    logits = rng.normal(size=16)
    targets = (rng.uniform(size=16) < 0.5).astype(float)
    total = bce_with_logits(logits, targets, reduction="sum")
    mean = bce_with_logits(logits, targets, reduction="mean")
    assert mean == pytest.approx(total / 16)


def test_sum_decomposes_over_micro_batches(rng):
    """Eq. 5: L(M) == L(O) + L(X) for any partition of the mini-batch."""
    logits = rng.normal(size=64)
    targets = (rng.uniform(size=64) < 0.3).astype(float)
    mask = rng.uniform(size=64) < 0.7
    total = bce_with_logits(logits, targets)
    split = bce_with_logits(logits[mask], targets[mask]) + bce_with_logits(
        logits[~mask], targets[~mask]
    )
    assert total == pytest.approx(split)


def test_extreme_logits_are_finite():
    loss = bce_with_logits(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
    assert np.isfinite(loss)


def test_gradient_is_sigmoid_minus_target(rng):
    logits = rng.normal(size=8)
    targets = (rng.uniform(size=8) < 0.5).astype(float)
    grad = bce_with_logits_backward(logits, targets)
    np.testing.assert_allclose(grad, 1.0 / (1.0 + np.exp(-logits)) - targets)


def test_gradient_matches_numeric(rng):
    logits = rng.normal(size=6)
    targets = (rng.uniform(size=6) < 0.5).astype(float)
    grad = bce_with_logits_backward(logits, targets)
    eps = 1e-6
    for i in range(6):
        bumped = logits.copy()
        bumped[i] += eps
        dipped = logits.copy()
        dipped[i] -= eps
        numeric = (bce_with_logits(bumped, targets) - bce_with_logits(dipped, targets)) / (2 * eps)
        assert grad[i] == pytest.approx(numeric, rel=1e-4)


def test_shape_mismatch_raises(rng):
    with pytest.raises(ValueError):
        bce_with_logits(np.zeros(3), np.zeros(4))


def test_unknown_reduction_raises():
    with pytest.raises(ValueError):
        bce_with_logits(np.zeros(2), np.zeros(2), reduction="median")
    with pytest.raises(ValueError):
        bce_with_logits_backward(np.zeros(2), np.zeros(2), reduction="median")


def test_predicted_probabilities_in_unit_interval(rng):
    probs = predicted_probabilities(rng.normal(scale=20, size=50))
    assert np.all((probs >= 0) & (probs <= 1))


def test_per_sample_is_an_array_and_sums_to_the_loss(rng):
    logits = rng.normal(size=24)
    targets = (rng.uniform(size=24) < 0.4).astype(float)
    per_sample = bce_with_logits_per_sample(logits, targets)
    assert isinstance(per_sample, np.ndarray) and per_sample.shape == (24,)
    assert float(per_sample.sum()) == bce_with_logits(logits, targets, reduction="sum")


def test_none_reduction_is_rejected():
    """'none' moved to bce_with_logits_per_sample — the scalar API rejects it."""
    with pytest.raises(ValueError):
        bce_with_logits(np.zeros(2), np.zeros(2), reduction="none")


def test_fused_epilogue_bitwise_matches_reference(rng):
    logits = np.concatenate(
        [rng.normal(scale=4.0, size=64), np.array([0.0, 1e4, -1e4, 700.0, -700.0])]
    )
    targets = (rng.uniform(size=logits.size) < 0.5).astype(float)
    loss_new, grad_new = fused_bce_epilogue(logits, targets)
    loss_ref, grad_ref = reference_epilogue(logits, targets)
    assert loss_new == loss_ref  # exact — no approx
    assert np.array_equal(grad_new, grad_ref)


def test_fused_epilogue_decomposes_over_micro_batches(rng):
    """Eq. 5 holds through the fused kernel too."""
    logits = rng.normal(size=48)
    targets = (rng.uniform(size=48) < 0.3).astype(float)
    mask = rng.uniform(size=48) < 0.6
    loss_all, grad_all = fused_bce_epilogue(logits, targets)
    loss_a, grad_a = fused_bce_epilogue(logits[mask], targets[mask])
    loss_b, grad_b = fused_bce_epilogue(logits[~mask], targets[~mask])
    assert loss_all == pytest.approx(loss_a + loss_b)
    assert np.array_equal(grad_all[mask], grad_a)
    assert np.array_equal(grad_all[~mask], grad_b)


def test_fused_epilogue_keeps_float32_native(rng):
    logits = rng.normal(size=16).astype(np.float32)
    targets = (rng.uniform(size=16) < 0.5).astype(np.float32)
    _, grad = fused_bce_epilogue(logits, targets)
    assert grad.dtype == np.float32


def test_fused_epilogue_shape_mismatch_raises():
    with pytest.raises(ValueError):
        fused_bce_epilogue(np.zeros(3), np.zeros(4))


def test_force_reference_routes_to_two_pass_pair(rng):
    logits = rng.normal(size=8)
    targets = (rng.uniform(size=8) < 0.5).astype(float)
    with force_reference():
        loss, grad = fused_bce_epilogue(logits, targets)
    loss_ref, grad_ref = reference_epilogue(logits, targets)
    assert loss == loss_ref and np.array_equal(grad, grad_ref)
