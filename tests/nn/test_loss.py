"""Unit tests for the BCE-with-logits loss (Eq. 1-2 of the paper)."""

import numpy as np
import pytest

from repro.nn.loss import (
    bce_with_logits,
    bce_with_logits_backward,
    predicted_probabilities,
)


def test_matches_reference_formula(rng):
    logits = rng.normal(size=32)
    targets = (rng.uniform(size=32) < 0.4).astype(float)
    p = 1.0 / (1.0 + np.exp(-logits))
    reference = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).sum()
    assert bce_with_logits(logits, targets, reduction="sum") == pytest.approx(reference)


def test_mean_reduction_is_sum_over_n(rng):
    logits = rng.normal(size=16)
    targets = (rng.uniform(size=16) < 0.5).astype(float)
    total = bce_with_logits(logits, targets, reduction="sum")
    mean = bce_with_logits(logits, targets, reduction="mean")
    assert mean == pytest.approx(total / 16)


def test_sum_decomposes_over_micro_batches(rng):
    """Eq. 5: L(M) == L(O) + L(X) for any partition of the mini-batch."""
    logits = rng.normal(size=64)
    targets = (rng.uniform(size=64) < 0.3).astype(float)
    mask = rng.uniform(size=64) < 0.7
    total = bce_with_logits(logits, targets)
    split = bce_with_logits(logits[mask], targets[mask]) + bce_with_logits(
        logits[~mask], targets[~mask]
    )
    assert total == pytest.approx(split)


def test_extreme_logits_are_finite():
    loss = bce_with_logits(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
    assert np.isfinite(loss)


def test_gradient_is_sigmoid_minus_target(rng):
    logits = rng.normal(size=8)
    targets = (rng.uniform(size=8) < 0.5).astype(float)
    grad = bce_with_logits_backward(logits, targets)
    np.testing.assert_allclose(grad, 1.0 / (1.0 + np.exp(-logits)) - targets)


def test_gradient_matches_numeric(rng):
    logits = rng.normal(size=6)
    targets = (rng.uniform(size=6) < 0.5).astype(float)
    grad = bce_with_logits_backward(logits, targets)
    eps = 1e-6
    for i in range(6):
        bumped = logits.copy()
        bumped[i] += eps
        dipped = logits.copy()
        dipped[i] -= eps
        numeric = (bce_with_logits(bumped, targets) - bce_with_logits(dipped, targets)) / (2 * eps)
        assert grad[i] == pytest.approx(numeric, rel=1e-4)


def test_shape_mismatch_raises(rng):
    with pytest.raises(ValueError):
        bce_with_logits(np.zeros(3), np.zeros(4))


def test_unknown_reduction_raises():
    with pytest.raises(ValueError):
        bce_with_logits(np.zeros(2), np.zeros(2), reduction="median")
    with pytest.raises(ValueError):
        bce_with_logits_backward(np.zeros(2), np.zeros(2), reduction="median")


def test_predicted_probabilities_in_unit_interval(rng):
    probs = predicted_probabilities(rng.normal(scale=20, size=50))
    assert np.all((probs >= 0) & (probs <= 1))
