"""Finite-difference checks of manually-derived backward passes.

The parity suites prove the new kernels match the retained references
bit-for-bit (or to fp noise) — but a shared analytic error in both the
new and old derivation would pass every parity test.  These checks anchor
each backward against central finite differences of its own forward, so
the *math* is verified, not just the agreement.
"""

import numpy as np

from repro.nn.attention import DotProductAttention
from repro.nn.interaction import (
    dot_interaction,
    dot_interaction_backward,
    force_reference,
)
from repro.nn.loss import bce_with_logits, fused_bce_epilogue
from tests.helpers import assert_gradients_close, numerical_gradient


def _interaction_loss(dense, sparse):
    out, _ = dot_interaction(dense, sparse)
    # A non-symmetric weighting so gradient errors cannot cancel.
    weights = np.arange(1, out.size + 1, dtype=np.float64).reshape(out.shape)
    return float((weights * out).sum())


def _interaction_grads(dense, sparse):
    out, cache = dot_interaction(dense, sparse)
    weights = np.arange(1, out.size + 1, dtype=np.float64).reshape(out.shape)
    return dot_interaction_backward(weights, cache)


def test_interaction_backward_matches_finite_differences(rng):
    dense = rng.normal(size=(4, 6))
    sparse = [rng.normal(size=(4, 6)) for _ in range(3)]
    grad_dense, grad_sparse = _interaction_grads(dense, sparse)
    numeric_dense = numerical_gradient(lambda d: _interaction_loss(d, sparse), dense)
    assert_gradients_close(grad_dense, numeric_dense, rtol=1e-4)
    for t in range(len(sparse)):
        def loss_t(s, t=t):
            replaced = list(sparse)
            replaced[t] = s
            return _interaction_loss(dense, replaced)

        numeric = numerical_gradient(loss_t, sparse[t])
        assert_gradients_close(grad_sparse[t], numeric, rtol=1e-4)


def test_reference_interaction_backward_matches_finite_differences(rng):
    """The retained einsum backward is FD-checked independently."""
    dense = rng.normal(size=(3, 5))
    sparse = [rng.normal(size=(3, 5)) for _ in range(2)]
    with force_reference():
        grad_dense, grad_sparse = _interaction_grads(dense, sparse)
        numeric_dense = numerical_gradient(
            lambda d: _interaction_loss(d, sparse), dense
        )
        numeric_sparse = numerical_gradient(
            lambda s: _interaction_loss(dense, [s, sparse[1]]), sparse[0]
        )
    assert_gradients_close(grad_dense, numeric_dense, rtol=1e-4)
    assert_gradients_close(grad_sparse[0], numeric_sparse, rtol=1e-4)


def _attention_loss(attention, query, sequence):
    context = attention.forward(query, sequence)
    weights = np.arange(1, context.size + 1, dtype=np.float64).reshape(context.shape)
    return float((weights * context).sum())


def test_attention_backward_query_matches_finite_differences(rng):
    attention = DotProductAttention()
    query = rng.normal(size=(3, 6))
    sequence = rng.normal(size=(3, 4, 6))
    context = attention.forward(query, sequence)
    weights = np.arange(1, context.size + 1, dtype=np.float64).reshape(context.shape)
    grad_query, _ = attention.backward(weights)
    probe = DotProductAttention()
    numeric = numerical_gradient(lambda q: _attention_loss(probe, q, sequence), query)
    assert_gradients_close(grad_query, numeric, rtol=1e-4)


def test_attention_backward_sequence_matches_finite_differences(rng):
    attention = DotProductAttention()
    query = rng.normal(size=(2, 5))
    sequence = rng.normal(size=(2, 3, 5))
    context = attention.forward(query, sequence)
    weights = np.arange(1, context.size + 1, dtype=np.float64).reshape(context.shape)
    _, grad_sequence = attention.backward(weights)
    probe = DotProductAttention()
    numeric = numerical_gradient(lambda s: _attention_loss(probe, query, s), sequence)
    assert_gradients_close(grad_sequence, numeric, rtol=1e-4)


def test_fused_epilogue_gradient_matches_finite_differences(rng):
    logits = rng.normal(scale=3.0, size=17)
    targets = (rng.uniform(size=17) < 0.5).astype(np.float64)
    _, grad = fused_bce_epilogue(logits, targets)
    numeric = numerical_gradient(
        lambda z: bce_with_logits(z, targets, reduction="sum"), logits
    )
    assert_gradients_close(grad, numeric, rtol=1e-4)
