"""Unit tests for the MLP stack."""

import numpy as np
import pytest

from repro.nn.mlp import MLP
from tests.helpers import assert_gradients_close, numerical_gradient


def test_mlp_from_arch_string(rng):
    mlp = MLP.from_arch_string("13-64-32-16", rng)
    assert mlp.layer_sizes == [13, 64, 32, 16]
    out = mlp.forward(rng.normal(size=(4, 13)))
    assert out.shape == (4, 16)


def test_mlp_requires_two_sizes(rng):
    with pytest.raises(ValueError):
        MLP([8], rng)


def test_mlp_sigmoid_output_bounded(rng):
    mlp = MLP([4, 8, 1], rng, sigmoid_output=True)
    out = mlp.forward(rng.normal(scale=5.0, size=(16, 4)))
    assert np.all((out >= 0.0) & (out <= 1.0))


def test_mlp_backward_matches_numeric_on_inputs(rng):
    mlp = MLP([3, 6, 2], rng)
    x = rng.normal(size=(5, 3))

    def loss_fn(x_in):
        return float((mlp.forward(x_in) ** 2).sum())

    out = mlp.forward(x)
    grad_in = mlp.backward(2.0 * out)
    numeric = numerical_gradient(loss_fn, x)
    assert_gradients_close(grad_in, numeric, rtol=1e-3)


def test_mlp_backward_matches_numeric_on_weights(rng):
    mlp = MLP([3, 4, 1], rng)
    x = rng.normal(size=(6, 3))
    target_layer = mlp.layers[0]

    def loss_fn(_w):
        return float((mlp.forward(x) ** 2).sum())

    mlp.zero_grad()
    out = mlp.forward(x)
    mlp.backward(2.0 * out)
    numeric = numerical_gradient(loss_fn, target_layer.weight)
    assert_gradients_close(target_layer.grad_weight, numeric, rtol=1e-3)


def test_mlp_parameter_count(rng):
    mlp = MLP([4, 8, 2], rng)
    assert mlp.num_parameters == (4 * 8 + 8) + (8 * 2 + 2)


def test_mlp_flops_per_sample(rng):
    # Per layer: 2*fan_in*fan_out MACs + fan_out bias adds, plus fan_out
    # activation ops for every non-final layer (ReLU).
    mlp = MLP([4, 8, 2], rng)
    assert mlp.flops_per_sample == (2 * 4 * 8 + 8 + 8) + (2 * 8 * 2 + 2)


def test_mlp_flops_per_sample_counts_output_sigmoid(rng):
    mlp = MLP([4, 8, 2], rng, sigmoid_output=True)
    assert mlp.flops_per_sample == (2 * 4 * 8 + 8 + 8) + (2 * 8 * 2 + 2 + 2)


def test_mlp_zero_grad_resets_all_layers(rng):
    mlp = MLP([3, 5, 1], rng)
    x = rng.normal(size=(4, 3))
    out = mlp.forward(x)
    mlp.backward(np.ones_like(out))
    mlp.zero_grad()
    for param, grad in mlp.parameters():
        assert np.all(grad == 0.0)
