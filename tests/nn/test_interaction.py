"""Unit tests for the DLRM dot-product feature interaction."""

import numpy as np

from repro.nn.interaction import (
    dot_interaction,
    dot_interaction_backward,
    interaction_output_dim,
)
from tests.helpers import assert_gradients_close, numerical_gradient


def test_output_dim_formula():
    assert interaction_output_dim(16, 26) == 16 + 27 * 26 // 2
    assert interaction_output_dim(8, 0) == 8
    assert interaction_output_dim(8, 1) == 8 + 1


def test_forward_shape(rng):
    dense = rng.normal(size=(5, 8))
    sparse = [rng.normal(size=(5, 8)) for _ in range(3)]
    out, _ = dot_interaction(dense, sparse)
    assert out.shape == (5, interaction_output_dim(8, 3))


def test_forward_contains_pairwise_dots(rng):
    dense = rng.normal(size=(2, 4))
    sparse = [rng.normal(size=(2, 4))]
    out, _ = dot_interaction(dense, sparse)
    expected_dot = (dense * sparse[0]).sum(axis=1)
    np.testing.assert_allclose(out[:, 4], expected_dot)
    np.testing.assert_allclose(out[:, :4], dense)


def test_backward_dense_gradient_matches_numeric(rng):
    dense = rng.normal(size=(3, 4))
    sparse = [rng.normal(size=(3, 4)) for _ in range(2)]

    def loss_fn(d):
        out, _ = dot_interaction(d, sparse)
        return float((out ** 2).sum())

    out, cache = dot_interaction(dense, sparse)
    grad_dense, _ = dot_interaction_backward(2.0 * out, cache)
    numeric = numerical_gradient(loss_fn, dense)
    assert_gradients_close(grad_dense, numeric, rtol=1e-4)


def test_backward_sparse_gradient_matches_numeric(rng):
    dense = rng.normal(size=(3, 4))
    sparse = [rng.normal(size=(3, 4)) for _ in range(2)]

    def loss_fn(s0):
        out, _ = dot_interaction(dense, [s0, sparse[1]])
        return float((out ** 2).sum())

    out, cache = dot_interaction(dense, sparse)
    _, grad_sparse = dot_interaction_backward(2.0 * out, cache)
    numeric = numerical_gradient(loss_fn, sparse[0])
    assert_gradients_close(grad_sparse[0], numeric, rtol=1e-4)


def test_backward_returns_one_gradient_per_sparse_feature(rng):
    dense = rng.normal(size=(2, 4))
    sparse = [rng.normal(size=(2, 4)) for _ in range(5)]
    out, cache = dot_interaction(dense, sparse)
    _, grad_sparse = dot_interaction_backward(np.ones_like(out), cache)
    assert len(grad_sparse) == 5
    for grad in grad_sparse:
        assert grad.shape == (2, 4)
