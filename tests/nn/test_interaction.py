"""Unit tests for the DLRM dot-product feature interaction."""

import threading

import numpy as np

from repro.nn.interaction import (
    DotInteractionKernel,
    _tril_pairs,
    dot_interaction,
    dot_interaction_backward,
    force_reference,
    interaction_certified,
    interaction_output_dim,
    reference_dot_interaction,
    reference_dot_interaction_backward,
)
from tests.helpers import assert_gradients_close, numerical_gradient


def test_output_dim_formula():
    assert interaction_output_dim(16, 26) == 16 + 27 * 26 // 2
    assert interaction_output_dim(8, 0) == 8
    assert interaction_output_dim(8, 1) == 8 + 1


def test_forward_shape(rng):
    dense = rng.normal(size=(5, 8))
    sparse = [rng.normal(size=(5, 8)) for _ in range(3)]
    out, _ = dot_interaction(dense, sparse)
    assert out.shape == (5, interaction_output_dim(8, 3))


def test_forward_contains_pairwise_dots(rng):
    dense = rng.normal(size=(2, 4))
    sparse = [rng.normal(size=(2, 4))]
    out, _ = dot_interaction(dense, sparse)
    expected_dot = (dense * sparse[0]).sum(axis=1)
    np.testing.assert_allclose(out[:, 4], expected_dot)
    np.testing.assert_allclose(out[:, :4], dense)


def test_backward_dense_gradient_matches_numeric(rng):
    dense = rng.normal(size=(3, 4))
    sparse = [rng.normal(size=(3, 4)) for _ in range(2)]

    def loss_fn(d):
        out, _ = dot_interaction(d, sparse)
        return float((out ** 2).sum())

    out, cache = dot_interaction(dense, sparse)
    grad_dense, _ = dot_interaction_backward(2.0 * out, cache)
    numeric = numerical_gradient(loss_fn, dense)
    assert_gradients_close(grad_dense, numeric, rtol=1e-4)


def test_backward_sparse_gradient_matches_numeric(rng):
    dense = rng.normal(size=(3, 4))
    sparse = [rng.normal(size=(3, 4)) for _ in range(2)]

    def loss_fn(s0):
        out, _ = dot_interaction(dense, [s0, sparse[1]])
        return float((out ** 2).sum())

    out, cache = dot_interaction(dense, sparse)
    _, grad_sparse = dot_interaction_backward(2.0 * out, cache)
    numeric = numerical_gradient(loss_fn, sparse[0])
    assert_gradients_close(grad_sparse[0], numeric, rtol=1e-4)


def test_backward_returns_one_gradient_per_sparse_feature(rng):
    dense = rng.normal(size=(2, 4))
    sparse = [rng.normal(size=(2, 4)) for _ in range(5)]
    out, cache = dot_interaction(dense, sparse)
    _, grad_sparse = dot_interaction_backward(np.ones_like(out), cache)
    assert len(grad_sparse) == 5
    for grad in grad_sparse:
        assert grad.shape == (2, 4)


def _random_problem(rng, batch=7, features=5, dim=8):
    dense = rng.normal(size=(batch, dim))
    sparse = [rng.normal(size=(batch, dim)) for _ in range(features - 1)]
    return dense, sparse


def test_batched_matches_reference_allclose(rng):
    """The certified GEMM path agrees with the einsum reference to fp noise."""
    dense, sparse = _random_problem(rng)
    out_new, cache_new = dot_interaction(dense, sparse)
    out_ref, cache_ref = reference_dot_interaction(dense, sparse)
    np.testing.assert_allclose(out_new, out_ref, rtol=1e-12, atol=1e-12)
    grad_out = rng.normal(size=out_new.shape)
    gd_new, gs_new = dot_interaction_backward(grad_out, cache_new)
    gd_ref, gs_ref = reference_dot_interaction_backward(grad_out, cache_ref)
    np.testing.assert_allclose(gd_new, gd_ref, rtol=1e-12, atol=1e-12)
    for a, b in zip(gs_new, gs_ref, strict=True):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)


def test_row_stability_of_batched_path(rng):
    """What certification promises: full-block slices == fresh-subset calls."""
    dense, sparse = _random_problem(rng, batch=33)
    if not interaction_certified(len(sparse) + 1, dense.shape[1], dense.dtype):
        return  # the fallback path is bitwise-stable by construction
    out_full, cache_full = dot_interaction(dense, sparse)
    grad_out = rng.normal(size=out_full.shape)
    gd_full, gs_full = dot_interaction_backward(grad_out, cache_full)
    for lo, hi in ((0, 1), (0, 5), (3, 17), (20, 33)):
        sub_dense = np.ascontiguousarray(dense[lo:hi])
        sub_sparse = [np.ascontiguousarray(s[lo:hi]) for s in sparse]
        out_sub, cache_sub = dot_interaction(sub_dense, sub_sparse)
        assert np.array_equal(out_full[lo:hi], out_sub)
        gd_sub, gs_sub = dot_interaction_backward(
            np.ascontiguousarray(grad_out[lo:hi]), cache_sub
        )
        assert np.array_equal(gd_full[lo:hi], gd_sub)
        for a, b in zip(gs_full, gs_sub, strict=True):
            assert np.array_equal(a[lo:hi], b)


def test_force_reference_dispatches_to_einsum_path(rng):
    dense, sparse = _random_problem(rng)
    with force_reference():
        out, cache = dot_interaction(dense, sparse)
    assert cache["batched"] is False
    out_ref, _ = reference_dot_interaction(dense, sparse)
    assert np.array_equal(out, out_ref)


def test_kernel_matches_free_function_bitwise(rng):
    """The pooled kernel's buffers must not change a single bit."""
    dense, sparse = _random_problem(rng)
    kernel = DotInteractionKernel()
    for _ in range(3):  # repeat: later rounds exercise recycled buffers
        out_k, cache_k = kernel.forward(dense, sparse)
        out_f, cache_f = dot_interaction(dense, sparse)
        assert np.array_equal(out_k, out_f)
        grad_out = np.ones_like(out_k)
        gd_k, gs_k = kernel.backward(grad_out, cache_k)
        gd_f, gs_f = dot_interaction_backward(grad_out, cache_f)
        assert np.array_equal(gd_k, gd_f)
        for a, b in zip(gs_k, gs_f, strict=True):
            assert np.array_equal(a, b)


def test_kernel_recycles_stack_buffer_after_backward(rng):
    dense, sparse = _random_problem(rng)
    if not interaction_certified(len(sparse) + 1, dense.shape[1], dense.dtype):
        return  # pooling only engages on the certified path
    kernel = DotInteractionKernel()
    _, cache1 = kernel.forward(dense, sparse)
    stacked1 = cache1["stacked"]
    kernel.backward(np.ones((dense.shape[0], interaction_output_dim(8, 4))), cache1)
    assert cache1["stacked"] is None  # consumed caches are single-use
    _, cache2 = kernel.forward(dense, sparse)
    assert cache2["stacked"] is stacked1  # same buffer, checked out again


def test_kernel_backward_output_is_fresh_per_call(rng):
    """grad_stacked views must survive later backwards (no output pooling)."""
    dense, sparse = _random_problem(rng)
    kernel = DotInteractionKernel()
    out1, cache1 = kernel.forward(dense, sparse)
    gd1, gs1 = kernel.backward(np.ones_like(out1), cache1)
    snapshot = [g.copy() for g in gs1]
    out2, cache2 = kernel.forward(dense, [2.0 * s for s in sparse])
    kernel.backward(np.full_like(out2, 3.0), cache2)
    for live, saved in zip(gs1, snapshot, strict=True):
        assert np.array_equal(live, saved)


def test_kernel_deepcopy_has_unshared_workspaces(rng):
    import copy

    dense, sparse = _random_problem(rng)
    kernel = DotInteractionKernel()
    kernel.forward(dense, sparse)
    clone = copy.deepcopy(kernel)
    assert clone._stack_pool == {} and clone._gram_pool == {}


def test_tril_cache_is_thread_safe_on_first_use():
    """Concurrent first-use of many feature counts must not corrupt the cache."""
    counts = list(range(40, 72))
    errors: list[Exception] = []

    def worker():
        try:
            for f in counts:
                rows, cols = _tril_pairs(f)
                assert rows.size == f * (f - 1) // 2
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for f in counts:
        expected_rows, expected_cols = np.tril_indices(f, k=-1)
        rows, cols = _tril_pairs(f)
        assert np.array_equal(rows, expected_rows)
        assert np.array_equal(cols, expected_cols)
