"""Unit tests for mini-batch fragmentation into µ-batches (Eq. 3)."""

import numpy as np
import pytest

from repro.core.classifier import split_minibatch
from repro.data.batch import MiniBatch


def make_batch():
    rng = np.random.default_rng(0)
    return MiniBatch(
        dense=rng.normal(size=(6, 2)),
        sparse=np.array(
            [
                [[0], [0]],
                [[1], [0]],
                [[5], [0]],   # cold row 5 in table 0
                [[0], [9]],   # cold row 9 in table 1
                [[1], [1]],
                [[5], [9]],   # both cold
            ]
        ),
        labels=rng.integers(0, 2, size=6).astype(float),
    )


HOT = [np.array([0, 1]), np.array([0, 1])]


def test_partition_is_exact():
    batch = make_batch()
    micro = split_minibatch(batch, HOT)
    assert micro.popular.size + micro.non_popular.size == batch.size
    assert micro.sizes == (3, 3)


def test_popular_inputs_touch_only_hot_rows():
    micro = split_minibatch(make_batch(), HOT)
    for table, hot in enumerate(HOT):
        assert np.isin(micro.popular.sparse[:, table, :], hot).all()


def test_non_popular_inputs_touch_at_least_one_cold_row():
    micro = split_minibatch(make_batch(), HOT)
    for i in range(micro.non_popular.size):
        cold_somewhere = any(
            not np.isin(micro.non_popular.sparse[i, t, :], HOT[t]).all()
            for t in range(len(HOT))
        )
        assert cold_somewhere


def test_popular_fraction():
    micro = split_minibatch(make_batch(), HOT)
    assert micro.popular_fraction == pytest.approx(0.5)


def test_empty_hot_set_sends_everything_to_non_popular():
    batch = make_batch()
    micro = split_minibatch(batch, [np.empty(0, dtype=np.int64)] * 2)
    assert micro.popular.size == 0
    assert micro.non_popular.size == batch.size


def test_full_hot_set_sends_everything_to_popular():
    batch = make_batch()
    hot = [np.arange(10), np.arange(10)]
    micro = split_minibatch(batch, hot)
    assert micro.non_popular.size == 0
    assert micro.popular_fraction == 1.0


def test_wrong_hot_set_count_raises():
    with pytest.raises(ValueError):
        split_minibatch(make_batch(), [np.array([0])])


def test_mask_alignment_with_original_batch():
    batch = make_batch()
    micro = split_minibatch(batch, HOT)
    np.testing.assert_array_equal(
        batch.select(np.nonzero(micro.popular_mask)[0]).labels, micro.popular.labels
    )


def test_precomputed_mask_matches_inline_classification():
    """A valid precomputed mask short-circuits the bitmap pass without
    moving a bit — classify is pure."""
    batch = make_batch()
    inline = split_minibatch(batch, HOT)
    from repro.core.hotset import as_hot_set_index

    mask = as_hot_set_index(HOT).classify(batch.sparse)
    precomputed = split_minibatch(batch, HOT, mask=mask)
    np.testing.assert_array_equal(precomputed.popular_mask, inline.popular_mask)
    np.testing.assert_array_equal(precomputed.popular.labels, inline.popular.labels)
    # Even an all-wrong mask is honoured verbatim (validity is the
    # caller's contract) — proving the mask really bypasses the bitmaps.
    flipped = split_minibatch(batch, HOT, mask=~mask)
    np.testing.assert_array_equal(flipped.popular_mask, ~inline.popular_mask)


def test_wrong_shaped_mask_rejected():
    batch = make_batch()
    with pytest.raises(ValueError, match="mask"):
        split_minibatch(batch, HOT, mask=np.ones(batch.size + 1, dtype=bool))
