"""Unit tests for the Hotline pipeline scheduler (performance model)."""

import pytest

from repro.baselines import HybridCPUGPU
from repro.core.scheduler import HotlineScheduler
from repro.hwsim import multi_node, single_node
from repro.models import RM2, RM3
from repro.perf import TrainingCostModel


@pytest.fixture(scope="module")
def scheduler_rm3():
    return HotlineScheduler(TrainingCostModel(RM3, cluster=single_node(4)))


def test_plan_partitions_batch(scheduler_rm3):
    plan = scheduler_rm3.plan_step(4096)
    assert plan.popular_size + plan.non_popular_size == 4096
    assert plan.popular_fraction == pytest.approx(0.75, abs=0.01)


def test_plan_step_time_is_sum_of_exposed_phases(scheduler_rm3):
    plan = scheduler_rm3.plan_step(4096)
    assert plan.step_time == pytest.approx(
        scheduler_rm3.costs.overheads.gpu_iteration_overhead_s
        + plan.popular_exec_time
        + plan.exposed_gather_time
        + plan.non_popular_exec_time
        + plan.sync_time
    )


def test_gather_hidden_at_default_popularity(scheduler_rm3):
    """Figure 25: with a 3:1 popular ratio the gather is fully hidden."""
    plan = scheduler_rm3.plan_step(4096)
    assert plan.gather_hidden


def test_gather_exposed_only_at_extreme_ratios(scheduler_rm3):
    hidden = scheduler_rm3.plan_step(4096, hot_fraction=0.75)
    extreme = scheduler_rm3.plan_step(4096, hot_fraction=0.05)
    assert hidden.exposed_gather_time <= extreme.exposed_gather_time


def test_timeline_makespan_matches_plan(scheduler_rm3):
    plan = scheduler_rm3.plan_step(4096)
    timeline = scheduler_rm3.step_timeline(4096)
    assert timeline.makespan() == pytest.approx(plan.step_time, rel=0.05)


def test_accelerator_lane_is_used(scheduler_rm3):
    timeline = scheduler_rm3.step_timeline(4096)
    lanes = {event.lane for event in timeline.events}
    assert "accel" in lanes and "gpu" in lanes


def test_hotline_beats_hybrid_baseline():
    costs = TrainingCostModel(RM3, cluster=single_node(4))
    hotline = HotlineScheduler(costs)
    hybrid = HybridCPUGPU(costs)
    speedup = hotline.speedup_over(hybrid, 4096)
    assert 1.5 < speedup < 6.0


def test_epoch_time_includes_profiling_overhead():
    costs = TrainingCostModel(RM2, cluster=single_node(4))
    with_profiling = HotlineScheduler(costs, online_profiling_overhead=0.05)
    without = HotlineScheduler(costs, online_profiling_overhead=0.0)
    assert with_profiling.epoch_time(4096) > without.epoch_time(4096)


def test_multi_node_gather_is_distributed_across_accelerators():
    single = HotlineScheduler(TrainingCostModel(RM3, cluster=single_node(4)))
    multi = HotlineScheduler(TrainingCostModel(RM3, cluster=multi_node(4)))
    # With per-node accelerators, the gather per node does not grow with the
    # (weak-scaled) global batch.
    assert multi.plan_step(16384).gather_time <= single.plan_step(4096).gather_time * 1.5


def test_speedup_grows_with_batch_size():
    """Figure 26: larger mini-batches widen Hotline's advantage."""
    costs = TrainingCostModel(RM3, cluster=single_node(4))
    hotline = HotlineScheduler(costs)
    hybrid = HybridCPUGPU(costs)
    small = hotline.speedup_over(hybrid, 1024)
    large = hotline.speedup_over(hybrid, 16384)
    assert large > small
