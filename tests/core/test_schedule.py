"""Golden parity suite for the composable communication-schedule layer.

The schedule-object migration (``CommOp`` / ``StepSchedule`` /
``ComposedSchedule``) retired four bespoke pricing sites: the reducer's
inline ``_bucket_wire_time`` branches and exposure arithmetic, the
trainer's ``exposed + lookup_alltoall + exposed_prefetch`` composition,
and the lookahead cache's direct ``cache_fill_time`` / DMA write-back
calls.  Each retired formula is re-implemented *locally* here, from the
:mod:`repro.hwsim.collectives` primitives, and asserted **bit-equal**
(``==``, never ``approx``) against the schedule objects on fig30r/fig30s
shaped configurations — sync/overlap/stale-k modes, ring and tree
algorithms, one and two nodes, and the lookahead's fill/write-back
pricing.  Unit tests of the schedule layer itself (mode arithmetic,
tier decomposition, pipeline makespan, compact window refcounts) ride
along.
"""

import numpy as np
import pytest

from repro.core.lookahead import CachedEmbeddingPipeline, WindowRefcounts
from repro.core.reducer import WIRE_BYTES_PER_ELEMENT, GradientBucketReducer
from repro.core.schedule import (
    CommOp,
    ComposedSchedule,
    FlatLinks,
    StepSchedule,
    allreduce_ops,
    pipeline_makespan,
)
from repro.hwsim import DMAEngine, HierarchicalTopology, multi_node, single_node
from repro.hwsim.collectives import (
    allreduce_time,
    cache_fill_time,
    comm_op_time,
    embedding_alltoall_time,
    hierarchical_allreduce_time,
    tree_allreduce_time,
)
from repro.hwsim.interconnect import INFINIBAND_100G, NVLINK2, PCIE_GEN3_X16


# --------------------------------------------------------------------- #
# Retired bespoke formulas, re-implemented locally as the golden truth
# --------------------------------------------------------------------- #
def legacy_bucket_wire_time(reducer: GradientBucketReducer, num_bytes: float) -> float:
    """The pre-migration ``GradientBucketReducer._bucket_wire_time``."""
    if reducer.cluster is None or reducer.num_replicas <= 1:
        return 0.0
    node = reducer.cluster.node
    if reducer.algorithm == "tree":
        if reducer.cluster.num_nodes == 1:
            return tree_allreduce_time(num_bytes, reducer.num_replicas, node.gpu_link)
        return tree_allreduce_time(
            num_bytes, node.num_gpus, node.gpu_link
        ) + tree_allreduce_time(
            num_bytes, reducer.cluster.num_nodes, reducer.cluster.inter_link
        )
    if reducer.cluster.num_nodes == 1:
        return allreduce_time(num_bytes, reducer.num_replicas, node.gpu_link)
    return hierarchical_allreduce_time(
        num_bytes,
        node.num_gpus,
        reducer.cluster.num_nodes,
        node.gpu_link,
        reducer.cluster.inter_link,
    )


def legacy_exposed_time(mode: str, staleness: int, bucket_times, compute: float) -> float:
    """The pre-migration ``GradientBucketReducer.exposed_time`` arithmetic."""
    if not bucket_times:
        return 0.0
    total = float(sum(bucket_times))
    if mode == "overlap":
        count = len(bucket_times)
        finish = 0.0
        for i, wire_time in enumerate(bucket_times):
            ready = compute * (i + 1) / count
            finish = max(ready, finish) + wire_time
        return max(0.0, finish - compute)
    if staleness > 0:
        return max(0.0, total - staleness * compute)
    return total


#: fig30r/fig30s-shaped configurations: replicas × topology × bucket size.
PARITY_CONFIGS = [
    (4, single_node(4), 64 * 1024),
    (4, single_node(4), 4 * 1024),
    (8, multi_node(2, 4), 64 * 1024),
    (16, multi_node(4, 4), 4 * 1024),
]

#: Dense-gradient sizes covering the sub-bucket and many-bucket regimes.
GRADIENT_ELEMENTS = [1, 1000, 333_333]

MODES = ["sync", "overlap", "stale-1", "stale-2", "stale-4"]


@pytest.mark.parametrize("algorithm", ["ring", "tree"])
@pytest.mark.parametrize("replicas,cluster,bucket_bytes", PARITY_CONFIGS)
def test_bucket_times_bit_match_retired_pricing(replicas, cluster, bucket_bytes, algorithm):
    """Schedule-object wire pricing == the retired inline branches, bitwise."""
    reducer = GradientBucketReducer(
        replicas, bucket_bytes=bucket_bytes, algorithm=algorithm, cluster=cluster
    )
    for num_elements in GRADIENT_ELEMENTS:
        times = reducer.bucket_times(num_elements)
        assert len(times) == reducer.num_buckets(num_elements)
        for chunk, priced in zip(reducer.bucket_slices(num_elements), times):
            num_bytes = (chunk.stop - chunk.start) * WIRE_BYTES_PER_ELEMENT
            assert priced == legacy_bucket_wire_time(reducer, num_bytes)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("replicas,cluster,bucket_bytes", PARITY_CONFIGS)
def test_exposed_time_bit_matches_retired_arithmetic(replicas, cluster, bucket_bytes, mode):
    """StepSchedule exposure == the retired mode arithmetic, bitwise."""
    reducer = GradientBucketReducer(
        replicas, bucket_bytes=bucket_bytes, mode=mode, cluster=cluster
    )
    for num_elements in GRADIENT_ELEMENTS:
        times = reducer.bucket_times(num_elements)
        total = float(sum(times))
        for compute in (0.0, total / 3.0, total, 2.5 * total):
            expected = legacy_exposed_time(mode, reducer.staleness, times, compute)
            assert reducer.exposed_time(times, compute) == expected
            assert reducer.comm_schedule(times).exposed_time(compute) == expected
        assert reducer.step_schedule(num_elements).total_s == total


def test_trainer_lane_composition_matches_retired_sum():
    """ComposedSchedule == the retired left-to-right exposure sum, bitwise."""
    cluster = single_node(4)
    reducer = GradientBucketReducer(4, bucket_bytes=4096, mode="overlap", cluster=cluster)
    bucket_times = reducer.bucket_times(50_000)
    remote_lookups, row_bytes, shards = 1234, 16, 4
    link = cluster.inter_link
    prefetch = 3.7e-4
    for compute in (0.0, 1e-4, 1e-2):
        # The retired trainer composition, term by term.
        exposed = reducer.exposed_time(bucket_times, compute)
        lookup_alltoall = embedding_alltoall_time(remote_lookups, row_bytes, shards, link)
        exposed_prefetch = max(0.0, prefetch - compute)
        legacy = exposed + lookup_alltoall + exposed_prefetch

        alltoall_op = CommOp(
            "embedding_alltoall",
            tier="node",
            rows=float(remote_lookups),
            row_bytes=row_bytes,
            participants=shards,
        )
        comm = ComposedSchedule(
            (
                reducer.comm_schedule(bucket_times),
                StepSchedule.sequential(
                    (comm_op_time(alltoall_op, FlatLinks(link)),), label="lookup-alltoall"
                ),
                StepSchedule.staged((prefetch,), 1, label="prefetch"),
            )
        )
        assert comm.exposed_time(compute) == legacy
        lanes = dict(comm.lane_exposures(compute))
        assert lanes["dense-allreduce"] == exposed
        assert lanes["lookup-alltoall"] == lookup_alltoall
        assert lanes["prefetch"] == exposed_prefetch


def test_lookahead_fill_and_writeback_bit_match_retired_pricing():
    """The pipeline's fill/write-back ops == the direct primitive calls."""
    pipe = CachedEmbeddingPipeline(
        (500, 300),
        window=2,
        row_bytes=32,
        num_replicas=4,
        link=INFINIBAND_100G,
        dma=DMAEngine(),
    )
    reference = DMAEngine()
    for fills in (1, 17, 4096):
        assert pipe._fill_time(fills) == cache_fill_time(
            fills, 32, 4, INFINIBAND_100G, dma=reference
        )
    for rows in (1, 29, 1000):
        assert pipe._writeback_time(rows) == reference.write_time(
            rows * 32, scattered=True
        )
    # One pricing call per charge: the engines saw identical traffic.
    assert pipe.dma.bytes_read == reference.bytes_read
    assert pipe.dma.bytes_written == reference.bytes_written


# --------------------------------------------------------------------- #
# StepSchedule / ComposedSchedule unit behaviour
# --------------------------------------------------------------------- #
def test_schedule_mode_and_stage_validation():
    with pytest.raises(ValueError, match="mode"):
        StepSchedule(segments_s=(1.0,), mode="bogus")
    with pytest.raises(ValueError, match="stage"):
        StepSchedule.staged((1.0,), 0)
    with pytest.raises(ValueError, match="compute_window_s"):
        StepSchedule.sequential((1.0,)).exposed_time(-1.0)
    with pytest.raises(ValueError, match="kind"):
        CommOp("teleport")


def test_empty_schedule_exposes_zero_in_every_mode():
    for schedule in (
        StepSchedule.sequential(()),
        StepSchedule.overlap(()),
        StepSchedule.staged((), 3),
    ):
        assert schedule.exposed_time(0.0) == 0.0
        assert schedule.exposed_time(5.0) == 0.0
        assert schedule.total_s == 0.0


def test_sequential_exposes_total_regardless_of_window():
    schedule = StepSchedule.sequential((0.25, 0.5))
    assert schedule.exposed_time(0.0) == 0.75
    assert schedule.exposed_time(100.0) == 0.75


def test_staged_hides_k_windows():
    schedule = StepSchedule.staged((0.3, 0.3), 2)
    assert schedule.exposed_time(0.0) == pytest.approx(0.6)
    assert schedule.exposed_time(0.2) == pytest.approx(0.2)
    assert schedule.exposed_time(0.5) == 0.0


def test_overlap_exposes_only_the_tail():
    # Two equal segments, window 1.0: segment 0 ready at 0.5, done 0.9;
    # segment 1 ready at 1.0, done 1.4 -> 0.4 exposed.
    schedule = StepSchedule.overlap((0.4, 0.4))
    assert schedule.exposed_time(1.0) == pytest.approx(0.4)
    # No window: everything is exposed, in every mode.
    assert schedule.exposed_time(0.0) == pytest.approx(0.8)


def test_composed_schedule_totals_and_lanes():
    comm = ComposedSchedule(
        (
            StepSchedule.sequential((0.1,), label="a"),
            StepSchedule.staged((0.5,), 1, label="b"),
        )
    )
    assert comm.total_s == pytest.approx(0.6)
    assert comm.exposed_time(0.2) == pytest.approx(0.1 + 0.3)
    assert comm.lane_exposures(0.2) == (("a", 0.1), ("b", pytest.approx(0.3)))


def test_price_threads_each_op_through_comm_op_time():
    topo = HierarchicalTopology(gpus_per_nic=4, nics_per_node=2, num_nodes=4)
    ops = allreduce_ops(topo, 1 << 20, topo.total_gpus)
    schedule = StepSchedule.price(ops, topo, label="dense")
    assert schedule.segments_s == tuple(comm_op_time(op, topo) for op in ops)
    assert schedule.label == "dense"


# --------------------------------------------------------------------- #
# allreduce_ops tier decomposition
# --------------------------------------------------------------------- #
def test_allreduce_ops_trivial_cases():
    assert allreduce_ops(None, 1024, 8) == ()
    assert allreduce_ops(single_node(4), 1024, 1) == ()


def test_allreduce_ops_single_node_is_one_gpu_ring():
    (op,) = allreduce_ops(single_node(4), 1024, 4)
    assert (op.kind, op.tier, op.participants) == ("allreduce", "gpu", 4)


def test_allreduce_ops_flat_cluster_matches_hierarchical_allreduce():
    cluster = multi_node(3, 4)
    ops = allreduce_ops(cluster, 1 << 16, 12)
    assert [(op.tier, op.participants) for op in ops] == [("gpu", 4), ("node", 3)]
    total = sum(comm_op_time(op, cluster) for op in ops)
    assert total == hierarchical_allreduce_time(
        1 << 16, 4, 3, cluster.node.gpu_link, cluster.inter_link
    )


def test_allreduce_ops_hierarchical_three_levels():
    topo = HierarchicalTopology(gpus_per_nic=4, nics_per_node=2, num_nodes=8)
    ops = allreduce_ops(topo, 1024, topo.total_gpus, kind="tree_allreduce")
    assert [(op.kind, op.tier, op.participants) for op in ops] == [
        ("tree_allreduce", "gpu", 4),
        ("tree_allreduce", "nic", 2),
        ("tree_allreduce", "spine", 8),
    ]
    # A single NIC group per node skips the nic level.
    topo_single = HierarchicalTopology(gpus_per_nic=8, nics_per_node=1, num_nodes=8)
    assert [op.tier for op in allreduce_ops(topo_single, 1024, 64)] == ["gpu", "spine"]


def test_spine_link_derates_bandwidth_not_latency():
    topo = HierarchicalTopology(num_nodes=4, oversubscription=4.0)
    spine = topo.spine_link
    assert spine.bandwidth == INFINIBAND_100G.bandwidth / 4.0
    assert spine.latency_s == INFINIBAND_100G.latency_s
    # Non-blocking fabric: the spine *is* the leaf link.
    assert HierarchicalTopology(num_nodes=4).spine_link is INFINIBAND_100G


def test_topology_link_tiers():
    topo = HierarchicalTopology(num_nodes=2, oversubscription=2.0)
    assert topo.link("gpu") is NVLINK2
    assert topo.link("nic") is INFINIBAND_100G
    assert topo.link("node") is INFINIBAND_100G
    assert topo.link("pcie") is PCIE_GEN3_X16
    assert topo.link("spine").bandwidth == INFINIBAND_100G.bandwidth / 2.0
    with pytest.raises(ValueError, match="unknown link tier"):
        topo.link("carrier-pigeon")


# --------------------------------------------------------------------- #
# pipeline_makespan
# --------------------------------------------------------------------- #
def test_pipeline_makespan_fill_drain():
    assert pipeline_makespan(2.0, 4, 16) == (16 + 4 - 1) * 2.0
    assert pipeline_makespan(1.0, 1, 5) == 5.0  # depth 1: no bubble
    assert pipeline_makespan(1.0, 4, 0) == 0.0
    assert pipeline_makespan(1.0, 0, 5) == 0.0
    with pytest.raises(ValueError, match="stage_time_s"):
        pipeline_makespan(-1.0, 2, 2)


# --------------------------------------------------------------------- #
# WindowRefcounts (compact per-window reference counts)
# --------------------------------------------------------------------- #
def test_window_refcounts_enter_release_roundtrip():
    refs = WindowRefcounts((100, 50))
    a = np.array([3, 7, 9], dtype=np.int64)
    b = np.array([7, 42], dtype=np.int64)
    refs.enter(0, a)
    refs.enter(0, b)
    assert refs.tracked_rows(0) == 4  # {3, 7, 9, 42}
    # Releasing the first batch evicts only rows no other batch holds.
    gone = refs.release(0, a)
    np.testing.assert_array_equal(gone, np.array([3, 9], dtype=np.int64))
    assert refs.tracked_rows(0) == 2  # {7, 42}
    gone = refs.release(0, b)
    np.testing.assert_array_equal(gone, b)
    assert refs.tracked_rows(0) == 0
    assert refs.nbytes == 0


def test_window_refcounts_footprint_tracks_window_not_table():
    refs = WindowRefcounts((10_000_000,))
    rows = np.arange(0, 1000, dtype=np.int64)
    refs.enter(0, rows)
    # int64 row + int32 count per *referenced* row — not 40 MB per table.
    assert refs.nbytes == rows.size * (8 + 4)
    refs.clear()
    assert refs.nbytes == 0


def test_window_refcounts_empty_arrays_are_noops():
    refs = WindowRefcounts((10,))
    empty = np.empty(0, dtype=np.int64)
    refs.enter(0, empty)
    assert refs.release(0, empty).size == 0
    assert refs.nbytes == 0
