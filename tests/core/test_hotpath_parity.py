"""Bit-for-bit parity of the vectorised hot path against the loop references.

The vectorised :class:`~repro.nn.embedding.EmbeddingBag` and the bitmap
:func:`~repro.core.classifier.split_minibatch` replaced per-sample Python
loops and ``np.isin`` scans.  Hotline's Eq. 5 guarantee (µ-batch training is
numerically identical to mini-batch training) only survives the optimisation
if the new paths produce *exactly* the same bits, so every comparison here
is exact equality, not approximate.
"""

import numpy as np
import pytest

from repro.core.classifier import split_minibatch
from repro.core.hotset import HotSetIndex
from repro.data.batch import MiniBatch
from repro.nn.embedding import EmbeddingBag
from repro.reference import (
    reference_backward,
    reference_forward,
    split_minibatch_reference,
)


def make_bag(rows=64, dim=8, seed=3):
    return EmbeddingBag(rows, dim, np.random.default_rng(seed))


def random_indices(batch, pooling, rows=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, rows, size=(batch, pooling), dtype=np.int64)


@pytest.mark.parametrize(
    "batch,pooling",
    [(1, 1), (7, 1), (32, 4), (5, 16), (0, 3), (4, 0)],
    ids=["single", "one-hot", "multi-hot", "wide-pool", "empty-batch", "zero-pooling"],
)
def test_embedding_forward_backward_parity(batch, pooling):
    bag = make_bag()
    indices = random_indices(batch, pooling)
    grad_output = np.random.default_rng(1).normal(size=(batch, bag.dim))

    out = bag.forward(indices)
    ref_out = reference_forward(bag.weight, indices)
    np.testing.assert_array_equal(out, ref_out)

    grad = bag.backward(grad_output)
    ref_grad = reference_backward(indices, grad_output, bag.dim)
    np.testing.assert_array_equal(grad.indices, ref_grad.indices)
    np.testing.assert_array_equal(grad.values, ref_grad.values)


def test_embedding_parity_with_heavy_index_collisions():
    """Shared rows across samples must accumulate in the same order."""
    bag = make_bag(rows=4)
    indices = random_indices(256, 8, rows=4, seed=9)
    grad_output = np.random.default_rng(2).normal(size=(256, bag.dim))

    np.testing.assert_array_equal(
        bag.forward(indices), reference_forward(bag.weight, indices)
    )
    grad = bag.backward(grad_output)
    ref_grad = reference_backward(indices, grad_output, bag.dim)
    np.testing.assert_array_equal(grad.indices, ref_grad.indices)
    np.testing.assert_array_equal(grad.values, ref_grad.values)


def make_minibatch(batch=64, tables=3, pooling=2, rows=32, seed=11):
    rng = np.random.default_rng(seed)
    return MiniBatch(
        dense=rng.normal(size=(batch, 4)),
        sparse=rng.integers(0, rows, size=(batch, tables, pooling), dtype=np.int64),
        labels=rng.integers(0, 2, size=batch).astype(np.float64),
    )


def assert_micro_batches_equal(a, b):
    np.testing.assert_array_equal(a.popular_mask, b.popular_mask)
    for micro_a, micro_b in ((a.popular, b.popular), (a.non_popular, b.non_popular)):
        np.testing.assert_array_equal(micro_a.dense, micro_b.dense)
        np.testing.assert_array_equal(micro_a.sparse, micro_b.sparse)
        np.testing.assert_array_equal(micro_a.labels, micro_b.labels)


@pytest.mark.parametrize("pooling", [1, 4], ids=["one-hot", "multi-hot"])
def test_split_minibatch_parity(pooling):
    batch = make_minibatch(pooling=pooling)
    rng = np.random.default_rng(7)
    hot_sets = [np.sort(rng.choice(32, size=20, replace=False)) for _ in range(3)]
    assert_micro_batches_equal(
        split_minibatch(batch, hot_sets), split_minibatch_reference(batch, hot_sets)
    )


def test_split_minibatch_parity_empty_hot_set():
    batch = make_minibatch()
    hot_sets = [np.arange(32), np.empty(0, dtype=np.int64), np.arange(32)]
    micro = split_minibatch(batch, hot_sets)
    assert_micro_batches_equal(micro, split_minibatch_reference(batch, hot_sets))
    assert micro.popular.size == 0


def test_split_minibatch_parity_empty_batch():
    batch = make_minibatch(batch=0)
    hot_sets = [np.arange(32)] * 3
    assert_micro_batches_equal(
        split_minibatch(batch, hot_sets), split_minibatch_reference(batch, hot_sets)
    )


def test_split_minibatch_accepts_prebuilt_index():
    batch = make_minibatch()
    rng = np.random.default_rng(13)
    hot_sets = [np.sort(rng.choice(32, size=12, replace=False)) for _ in range(3)]
    index = HotSetIndex(hot_sets, rows_per_table=(32, 32, 32))
    assert_micro_batches_equal(
        split_minibatch(batch, index), split_minibatch_reference(batch, hot_sets)
    )
