"""Fused-vs-sequential µ-batch parity: one gather/scatter, same bits.

The fused execution path gathers each table's **whole mini-batch block
once**, trains the µ-batches on selections of the pooled output, and
produces every µ-batch's sparse gradient with **one**
:func:`~repro.nn.embedding.segmented_scatter` (each lookup keyed into its
segment's private id space, so per-row contributions accumulate in the
exact per-segment order).  This suite proves the path is bit-transparent
at every layer — the raw kernels, the model-level
``fused_loss_and_gradients`` on DLRM and TBSM, the single-replica
:class:`HotlineTrainer`, and the multi-replica
:class:`ShardedHotlineTrainer` including the stale-0 + lookahead fast path.
"""

import numpy as np
import pytest

from repro.core.classifier import split_minibatch
from repro.core.distributed import ShardedHotlineTrainer
from repro.core.pipeline import HotlineTrainer
from repro.data.loader import MiniBatchLoader
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM
from repro.nn.embedding import EmbeddingBag, segment_ids_for, segmented_scatter


def assert_bit_identical(state_a, state_b):
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        np.testing.assert_array_equal(state_a[key], state_b[key], err_msg=key)


def partition(batch_size, rng, parts=2):
    """A random ascending partition of ``range(batch_size)``."""
    assignment = rng.integers(0, parts, size=batch_size)
    assignment[: parts] = np.arange(parts)  # every part non-empty
    return [np.nonzero(assignment == s)[0] for s in range(parts)]


# --------------------------------------------------------------------- #
# Kernel level
# --------------------------------------------------------------------- #
def test_backward_segments_matches_per_segment_backward(rng):
    bag = EmbeddingBag(40, 4, np.random.default_rng(1))
    block = rng.integers(0, 40, size=(9, 2))
    segments = partition(9, rng)
    grads = [rng.normal(size=(len(idx), 4)) for idx in segments]
    bag.forward(block)
    fused = bag.backward_segments(grads, segments)
    for idx, grad_out, grad_fused in zip(segments, grads, fused, strict=True):
        bag.forward(block[idx])
        reference = bag.backward(grad_out)
        np.testing.assert_array_equal(grad_fused.indices, reference.indices)
        np.testing.assert_array_equal(grad_fused.values, reference.values)


def test_segmented_scatter_overlapping_rows(rng):
    """Rows shared across segments stay separated: each segment's gradient
    only accumulates its own contributions, in its own order."""
    flat_indices = np.asarray([1, 2, 1, 1, 2, 1])
    flat_segments = np.asarray([0, 1, 0, 1, 0, 1])
    flat_grads = rng.normal(size=(6, 2))
    seg_a, seg_b = segmented_scatter(flat_indices, flat_grads, flat_segments, 2, 8, 2)
    np.testing.assert_array_equal(seg_a.indices, [1, 2])
    np.testing.assert_array_equal(seg_a.values[0], flat_grads[0] + flat_grads[2])
    np.testing.assert_array_equal(seg_a.values[1], flat_grads[4])
    np.testing.assert_array_equal(seg_b.indices, [1, 2])
    np.testing.assert_array_equal(seg_b.values[0], flat_grads[3] + flat_grads[5])


def test_segmented_scatter_empty():
    out = segmented_scatter(
        np.empty(0, dtype=np.int64), np.empty((0, 3)), np.empty(0, dtype=np.int64),
        2, 10, 3,
    )
    assert [grad.nnz for grad in out] == [0, 0]
    assert all(grad.values.shape == (0, 3) for grad in out)


def test_segment_ids_and_backward_guards():
    bag = EmbeddingBag(10, 2, np.random.default_rng(2))
    with pytest.raises(RuntimeError):
        bag.backward_segments([np.zeros((1, 2))], [np.arange(1)])
    bag.forward(np.zeros((3, 1), dtype=np.int64))
    with pytest.raises(ValueError):  # one gradient block per segment
        bag.backward_segments([np.zeros((3, 2))], [np.arange(2), np.arange(2, 3)])
    with pytest.raises(ValueError):  # gradient block / segment size mismatch
        bag.backward_segments(
            [np.zeros((1, 2)), np.zeros((1, 2))], [np.arange(2), np.arange(2, 3)]
        )
    with pytest.raises(ValueError):  # not a partition: a sample is missing
        segment_ids_for([np.arange(2)], 3)
    with pytest.raises(ValueError):  # not a partition: overlap
        segment_ids_for([np.arange(2), np.arange(1, 3)], 3)
    np.testing.assert_array_equal(
        segment_ids_for([np.asarray([0, 2]), np.asarray([1])], 3), [0, 1, 0]
    )


# --------------------------------------------------------------------- #
# Model level
# --------------------------------------------------------------------- #
def model_level_parity(model_cls, config, log, seed):
    sequential = model_cls(config, seed=seed)
    fused = model_cls(config, seed=seed)
    batch = log.batch(0, 64)
    rng = np.random.default_rng(seed)
    segments = partition(batch.size, rng)

    sequential.zero_grad()
    seq_losses, seq_grads = [], []
    for idx in segments:
        loss, grads = sequential.loss_and_gradients(
            batch.select(idx), normalizer=batch.size
        )
        seq_losses.append(float(loss))
        seq_grads.append(grads)

    fused.zero_grad()
    fused_losses, fused_grads = fused.fused_loss_and_gradients(
        batch, segments, normalizer=batch.size
    )

    assert fused_losses == seq_losses
    for table in range(len(sequential.tables)):
        for segment in range(2):
            reference = seq_grads[segment][table]
            candidate = fused_grads[table][segment]
            np.testing.assert_array_equal(candidate.indices, reference.indices)
            np.testing.assert_array_equal(candidate.values, reference.values)
    for (_, grad_seq), (_, grad_fused) in zip(
        sequential.dense_parameters(), fused.dense_parameters(), strict=True
    ):
        np.testing.assert_array_equal(grad_fused, grad_seq)


def test_fused_loss_and_gradients_parity_dlrm(tiny_model_config, tiny_click_log):
    model_level_parity(DLRM, tiny_model_config, tiny_click_log, seed=5)


def test_fused_loss_and_gradients_parity_tbsm(tiny_ts_model_config, tiny_ts_click_log):
    model_level_parity(TBSM, tiny_ts_model_config, tiny_ts_click_log, seed=5)


def test_fused_after_segment_hook_sees_per_segment_state(
    tiny_model_config, tiny_click_log
):
    """The hook fires after each segment's backward with that segment's
    loss — the point the sharded trainer snapshots per-µ-batch partials."""
    model = DLRM(tiny_model_config, seed=0)
    batch = tiny_click_log.batch(0, 32)
    segments = [np.arange(16), np.arange(16, 32)]
    seen = []
    model.zero_grad()
    losses, _ = model.fused_loss_and_gradients(
        batch, segments, normalizer=batch.size,
        after_segment=lambda s, loss: seen.append((s, loss)),
    )
    assert seen == [(0, losses[0]), (1, losses[1])]


def test_fused_rejects_bad_segments(tiny_model_config, tiny_click_log):
    model = DLRM(tiny_model_config, seed=0)
    batch = tiny_click_log.batch(0, 8)
    with pytest.raises(ValueError):  # empty segment
        model.fused_loss_and_gradients(batch, [np.arange(8), np.empty(0, np.int64)])
    with pytest.raises(ValueError):  # not a partition
        model.fused_loss_and_gradients(batch, [np.arange(4)])
    assert model.fused_loss_and_gradients(batch, []) == (
        [], [[]] * len(model.tables)
    )


# --------------------------------------------------------------------- #
# Trainer level
# --------------------------------------------------------------------- #
def hotline_run(model_cls, config, log, *, fused):
    trainer = HotlineTrainer(
        model_cls(config, seed=31), lr=0.1, sample_fraction=0.25, fused=fused
    )
    result = trainer.train(
        MiniBatchLoader(log, batch_size=128), epochs=2, eval_batch=log.batch(0, 256)
    )
    return trainer, result


@pytest.mark.parametrize(
    "model_cls, config_fixture, log_fixture",
    [
        (DLRM, "tiny_model_config", "tiny_click_log"),
        (TBSM, "tiny_ts_model_config", "tiny_ts_click_log"),
    ],
)
def test_hotline_trainer_fused_bit_parity(
    model_cls, config_fixture, log_fixture, request
):
    config = request.getfixturevalue(config_fixture)
    log = request.getfixturevalue(log_fixture)
    trainer_f, result_f = hotline_run(model_cls, config, log, fused=True)
    trainer_s, result_s = hotline_run(model_cls, config, log, fused=False)
    assert result_f.losses == result_s.losses
    assert result_f.final_metrics == result_s.final_metrics
    assert_bit_identical(
        trainer_f.model.state_snapshot(), trainer_s.model.state_snapshot()
    )


def test_hotline_fused_handles_single_segment_steps(tiny_model_config, tiny_click_log):
    """An empty popular (or non-popular) µ-batch degenerates to one fused
    segment; the split invariant O ∪ X = M still holds."""
    trainer = HotlineTrainer(DLRM(tiny_model_config, seed=3), sample_fraction=0.25)
    loader = MiniBatchLoader(tiny_click_log, batch_size=64)
    trainer.bind(loader)
    batch = next(iter(loader))
    # Force the degenerate split: no hot rows at all -> everything is
    # non-popular -> exactly one fused segment.
    for table in range(trainer.placement.index.num_tables):
        trainer.placement.index.replace_table(table, np.empty(0, dtype=np.int64))
    micro = split_minibatch(batch, trainer.placement.index)
    assert micro.popular.size == 0
    loss, micro_out = trainer.train_step(batch)
    assert micro_out.non_popular.size == batch.size
    assert np.isfinite(loss)


def sharded_run(config, log, *, fused, num_shards=2, **knobs):
    model = DLRM(config, seed=17)
    trainer = ShardedHotlineTrainer(
        model, num_shards, lr=0.05, sample_fraction=0.25, fused=fused, **knobs
    )
    result = trainer.train(
        MiniBatchLoader(log, batch_size=128), epochs=1, eval_batch=log.batch(0, 256)
    )
    return trainer, result


@pytest.mark.parametrize(
    "knobs",
    [
        {},
        {"mode": "overlap"},
        {"partition_embeddings": True},
        # The stale-0 + lookahead fast path: the cached pipeline defers
        # nothing, so the fused path must stay bit-identical through it.
        {"lookahead_window": 3},
        # And a genuinely deferring pipeline: fused and sequential must
        # agree on every flush too (same merged gradients in, same out).
        {"lookahead_window": 3, "mode": "stale-2"},
        # Shard-count extremes (K=1 degenerate, K=4 wide) through the new
        # single-pass interaction + fused-epilogue kernels.
        {"num_shards": 1},
        {"num_shards": 4},
    ],
)
def test_sharded_trainer_fused_bit_parity(tiny_model_config, tiny_click_log, knobs):
    trainer_f, result_f = sharded_run(tiny_model_config, tiny_click_log, fused=True, **knobs)
    trainer_s, result_s = sharded_run(tiny_model_config, tiny_click_log, fused=False, **knobs)
    assert result_f.losses == result_s.losses
    assert result_f.cache_hits == result_s.cache_hits
    assert result_f.stale_rows == result_s.stale_rows
    assert_bit_identical(
        trainer_f.model.state_snapshot(), trainer_s.model.state_snapshot()
    )
    assert trainer_f.replica_drift() == 0.0
