"""Seeded-determinism guarantees of the training engine.

Two runs with identical seeds must produce bit-identical
:class:`~repro.core.engine.TrainingResult` losses for every trainer —
reference, Hotline, and sharded — guarding the PR 2 fixes that made the
loader prefetch thread and ``sample_batches`` side-effect free (a perturbed
RNG or a racy prefetch would show up here first).
"""

import numpy as np

from repro.core.distributed import ShardedHotlineTrainer
from repro.core.pipeline import HotlineTrainer, ReferenceTrainer
from repro.data.loader import MiniBatchLoader
from repro.models.dlrm import DLRM


def _run(make_trainer, log, *, shuffle=False):
    loader = MiniBatchLoader(log, batch_size=128, shuffle=shuffle, seed=3)
    trainer = make_trainer()
    result = trainer.train(loader, epochs=2, eval_batch=log.batch(0, 256))
    return result, trainer.model.state_snapshot()


def assert_identical_runs(make_trainer, log, *, shuffle=False):
    first, first_state = _run(make_trainer, log, shuffle=shuffle)
    second, second_state = _run(make_trainer, log, shuffle=shuffle)
    assert first.losses == second.losses
    assert first.auc_history == second.auc_history
    assert first.final_metrics == second.final_metrics
    for key in first_state:
        np.testing.assert_array_equal(first_state[key], second_state[key], err_msg=key)


def test_reference_trainer_is_seed_deterministic(tiny_model_config, tiny_click_log):
    assert_identical_runs(
        lambda: ReferenceTrainer(DLRM(tiny_model_config, seed=9), lr=0.05),
        tiny_click_log,
    )


def test_reference_trainer_deterministic_with_shuffle(tiny_model_config, tiny_click_log):
    """Shuffled epochs draw from the loader's seeded RNG — still repeatable."""
    assert_identical_runs(
        lambda: ReferenceTrainer(DLRM(tiny_model_config, seed=9), lr=0.05),
        tiny_click_log,
        shuffle=True,
    )


def test_hotline_trainer_is_seed_deterministic(tiny_model_config, tiny_click_log):
    assert_identical_runs(
        lambda: HotlineTrainer(
            DLRM(tiny_model_config, seed=9), lr=0.05, sample_fraction=0.25
        ),
        tiny_click_log,
    )


def test_sharded_trainer_is_seed_deterministic(tiny_model_config, tiny_click_log):
    assert_identical_runs(
        lambda: ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9), 2, lr=0.05, sample_fraction=0.25
        ),
        tiny_click_log,
    )


def test_parallel_workers_seed_deterministic(tiny_model_config, tiny_click_log):
    """Thread-pooled replica stepping is repeatable run over run for every
    worker count — and each worker count reproduces the sequential run's
    bits exactly (the pool changes the schedule, never the arithmetic)."""
    runs = {}
    for workers in (1, 2, 4):
        assert_identical_runs(
            lambda workers=workers: ShardedHotlineTrainer(
                DLRM(tiny_model_config, seed=9), 2, lr=0.05, sample_fraction=0.25,
                parallel_workers=workers,
            ),
            tiny_click_log,
        )
        runs[workers], _ = _run(
            lambda workers=workers: ShardedHotlineTrainer(
                DLRM(tiny_model_config, seed=9), 2, lr=0.05, sample_fraction=0.25,
                parallel_workers=workers,
            ),
            tiny_click_log,
        )
    assert runs[1].losses == runs[2].losses == runs[4].losses
    assert runs[1].final_metrics == runs[2].final_metrics == runs[4].final_metrics


def test_parallel_workers_deterministic_with_prefetch_and_shuffle(
    tiny_model_config, tiny_click_log
):
    """The full overlap stack at once — thread-pooled replicas, prefetched
    loader (which also runs the µ-batch pre-classification on its worker
    thread), shuffled epochs — stays seed-deterministic."""
    assert_identical_runs(
        lambda: ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9), 2, lr=0.05, sample_fraction=0.25,
            parallel_workers=2,
        ),
        tiny_click_log,
        shuffle=True,
    )


def test_replica_stacked_dense_is_seed_deterministic(tiny_model_config, tiny_click_log):
    """The replica-stacked sync dense path (PR 7 default) is repeatable."""
    assert_identical_runs(
        lambda: ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9, batched=True), 2,
            lr=0.05, sample_fraction=0.25, dense_batching="replica",
        ),
        tiny_click_log,
    )


def test_dense_batching_modes_produce_identical_runs(tiny_model_config, tiny_click_log):
    """Replica-stacked, per-replica batched, and PR 6 sequential dense
    paths all reproduce the same bits end-to-end (losses, metrics, every
    parameter) — the batching knobs change the schedule, never the math."""
    runs = {
        "stacked": lambda: ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9, batched=True), 2,
            lr=0.05, sample_fraction=0.25, dense_batching="replica",
        ),
        "per-replica": lambda: ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9, batched=True), 2,
            lr=0.05, sample_fraction=0.25, dense_batching="per-replica",
        ),
        "sequential": lambda: ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9, batched=False), 2,
            lr=0.05, sample_fraction=0.25, dense_batching="per-replica",
        ),
    }
    results = {name: _run(make, tiny_click_log) for name, make in runs.items()}
    reference, reference_state = results["sequential"]
    for name, (result, state) in results.items():
        assert result.losses == reference.losses, name
        assert result.final_metrics == reference.final_metrics, name
        for key in reference_state:
            np.testing.assert_array_equal(
                state[key], reference_state[key], err_msg=f"{name}: {key}"
            )


def test_stale_mode_is_seed_deterministic(tiny_model_config, tiny_click_log):
    """Staleness delays the dense update but stays perfectly repeatable."""
    assert_identical_runs(
        lambda: ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9), 2, lr=0.05, sample_fraction=0.25,
            mode="stale-1",
        ),
        tiny_click_log,
    )


def test_stale_k_is_seed_deterministic(tiny_model_config, tiny_click_log):
    """The whole stale-k family is repeatable — the k-deep deque and the
    bounded-staleness sparse flush introduce no hidden nondeterminism."""
    for staleness in (2, 4):
        assert_identical_runs(
            lambda staleness=staleness: ShardedHotlineTrainer(
                DLRM(tiny_model_config, seed=9), 2, lr=0.05, sample_fraction=0.25,
                mode=f"stale-{staleness}", lookahead_window=3,
            ),
            tiny_click_log,
        )


def test_lookahead_pipeline_deterministic_with_shuffle(
    tiny_model_config, tiny_click_log
):
    """The lookahead window walks the shuffled epoch order eagerly, so
    shuffled cached runs repeat bit for bit (and never touch the RNG)."""
    assert_identical_runs(
        lambda: ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9), 2, lr=0.05, sample_fraction=0.25,
            mode="stale-2", lookahead_window=4,
        ),
        tiny_click_log,
        shuffle=True,
    )


def test_prefetch_depth_never_changes_results(tiny_model_config, tiny_click_log):
    """Synchronous, double-buffered, and deep prefetch yield the same run."""
    from repro.core.engine import TrainingEngine

    results = []
    for depth in (0, 1, 4):
        model = DLRM(tiny_model_config, seed=9)
        trainer = HotlineTrainer(model, lr=0.05, sample_fraction=0.25)
        engine = TrainingEngine(trainer, prefetch=depth)
        loader = MiniBatchLoader(tiny_click_log, batch_size=128)
        results.append(engine.train(loader, epochs=1, eval_batch=tiny_click_log.batch(0, 256)))
    assert results[0].losses == results[1].losses == results[2].losses
    assert (
        results[0].final_metrics == results[1].final_metrics == results[2].final_metrics
    )
