"""Unit tests for the HotSetIndex membership bitmaps."""

import numpy as np
import pytest

from repro.core.hotset import HotSetIndex, as_hot_set_index


def test_contains_matches_isin():
    hot = np.array([1, 5, 9])
    index = HotSetIndex([hot], rows_per_table=(12,))
    rows = np.array([0, 1, 5, 8, 9, 11])
    np.testing.assert_array_equal(index.contains(0, rows), np.isin(rows, hot))


def test_contains_preserves_input_shape():
    index = HotSetIndex([np.array([2, 3])])
    rows = np.array([[2, 0], [3, 3], [1, 2]])
    result = index.contains(0, rows)
    assert result.shape == rows.shape
    assert result.tolist() == [[True, False], [True, True], [False, True]]


def test_contains_out_of_range_rows_are_cold():
    index = HotSetIndex.from_hot_sets([np.array([0, 2])])
    rows = np.array([2, 3, 100])
    np.testing.assert_array_equal(index.contains(0, rows), [True, False, False])


def test_empty_hot_set_reports_everything_cold():
    index = HotSetIndex([np.empty(0, dtype=np.int64)], rows_per_table=(8,))
    rows = np.arange(8)
    assert not index.contains(0, rows).any()
    assert index.hot_rows_total == 0


def test_is_hot_scalar():
    index = HotSetIndex([np.array([4])], rows_per_table=(10,))
    assert index.is_hot(0, 4)
    assert not index.is_hot(0, 5)
    assert not index.is_hot(0, 99)


def test_split_rows_preserves_order():
    index = HotSetIndex([np.array([1, 3])], rows_per_table=(6,))
    rows = np.array([5, 3, 0, 1])
    hot, cold = index.split_rows(0, rows)
    assert hot.tolist() == [3, 1]
    assert cold.tolist() == [5, 0]


def test_classify_requires_matching_table_count():
    index = HotSetIndex([np.array([0])], rows_per_table=(4,))
    with pytest.raises(ValueError):
        index.classify(np.zeros((2, 2, 1), dtype=np.int64))


def test_classify_all_lookups_must_hit():
    index = HotSetIndex([np.array([0, 1]), np.array([2])], rows_per_table=(4, 4))
    sparse = np.array(
        [
            [[0, 1], [2, 2]],  # popular: every lookup hot
            [[0, 3], [2, 2]],  # row 3 of table 0 is cold
            [[1, 1], [2, 0]],  # row 0 of table 1 is cold
        ]
    )
    np.testing.assert_array_equal(index.classify(sparse), [True, False, False])


def test_classify_empty_hot_set_masks_everything():
    index = HotSetIndex([np.array([0]), np.empty(0, dtype=np.int64)])
    sparse = np.zeros((3, 2, 2), dtype=np.int64)
    assert not index.classify(sparse).any()


def test_out_of_range_hot_rows_rejected_with_table_sizes():
    with pytest.raises(ValueError):
        HotSetIndex([np.array([10])], rows_per_table=(10,))
    with pytest.raises(ValueError):
        HotSetIndex([np.array([-1])], rows_per_table=(10,))


def test_negative_hot_rows_rejected_without_table_sizes():
    """Regression: -2 must not wrap around and mark bitmap[size-2] hot."""
    with pytest.raises(ValueError):
        HotSetIndex.from_hot_sets([np.array([-2, 5])])


def test_rows_per_table_length_mismatch_rejected():
    with pytest.raises(ValueError):
        HotSetIndex([np.array([0])], rows_per_table=(4, 4))


def test_as_hot_set_index_passthrough_and_coercion():
    index = HotSetIndex([np.array([1])])
    assert as_hot_set_index(index) is index
    coerced = as_hot_set_index([np.array([1])])
    assert isinstance(coerced, HotSetIndex)
    assert coerced.is_hot(0, 1)


# ---------------------------------------------------------------------- #
# Incremental (delta) updates
# ---------------------------------------------------------------------- #
def test_set_rows_marks_hot_and_syncs_hot_sets():
    index = HotSetIndex([np.array([1, 5])], rows_per_table=(16,))
    index.set_rows(0, np.array([3, 7]))
    np.testing.assert_array_equal(index.hot_sets[0], [1, 3, 5, 7])
    np.testing.assert_array_equal(
        index.contains(0, np.arange(16)),
        np.isin(np.arange(16), [1, 3, 5, 7]),
    )
    assert index.hot_rows_total == 4


def test_clear_rows_marks_cold_and_syncs_hot_sets():
    index = HotSetIndex([np.array([1, 3, 5, 7])], rows_per_table=(16,))
    index.clear_rows(0, np.array([3, 7, 12]))  # 12 was never hot: no-op
    np.testing.assert_array_equal(index.hot_sets[0], [1, 5])
    assert not index.is_hot(0, 3)
    assert index.is_hot(0, 5)


def test_delta_validation_matches_constructor_rules():
    index = HotSetIndex([np.array([1])], rows_per_table=(8,))
    with pytest.raises(ValueError):
        index.set_rows(0, np.array([8]))
    with pytest.raises(ValueError):
        index.set_rows(0, np.array([-1]))
    with pytest.raises(ValueError):
        index.clear_rows(0, np.array([-1]))


def test_set_rows_grows_dynamic_bitmap():
    index = HotSetIndex.from_hot_sets([np.array([2])])
    assert index.table_size(0) == 3
    index.set_rows(0, np.array([10]))
    assert index.is_hot(0, 10)
    assert index.table_size(0) == 11
    np.testing.assert_array_equal(index.hot_sets[0], [2, 10])


def test_replace_table_equals_rebuild():
    rng = np.random.default_rng(0)
    old_hot = np.unique(rng.integers(0, 5000, size=400))
    new_hot = np.unique(rng.integers(0, 5000, size=400))
    index = HotSetIndex([old_hot], rows_per_table=(5000,))
    added, removed = index.replace_table(0, new_hot)
    rebuilt = HotSetIndex([new_hot], rows_per_table=(5000,))
    probe = np.arange(5000)
    np.testing.assert_array_equal(index.contains(0, probe), rebuilt.contains(0, probe))
    np.testing.assert_array_equal(index.hot_sets[0], new_hot)
    # The reported delta is exactly the symmetric difference.
    np.testing.assert_array_equal(np.sort(added), np.setdiff1d(new_hot, old_hot))
    np.testing.assert_array_equal(np.sort(removed), np.setdiff1d(old_hot, new_hot))


def test_empty_deltas_are_noops():
    index = HotSetIndex([np.array([1, 2])], rows_per_table=(8,))
    index.set_rows(0, np.empty(0, dtype=np.int64))
    index.clear_rows(0, np.empty(0, dtype=np.int64))
    np.testing.assert_array_equal(index.hot_sets[0], [1, 2])


def test_version_bumps_after_every_mutation():
    """The version counter increments once per delta — and only after the
    bitmaps are updated, so observing a version implies its mutations are
    visible (the precomputed-mask validity token relies on this)."""
    index = HotSetIndex([np.array([1, 2])], rows_per_table=(8,))
    start = index.version
    index.set_rows(0, np.array([4]))
    assert index.version == start + 1
    index.clear_rows(0, np.array([1]))
    assert index.version == start + 2
    index.replace_table(0, np.array([0, 5]))
    assert index.version == start + 3
    # Empty deltas are no-ops: the bitmaps are untouched, so a mask
    # computed before one remains valid and the version must not move.
    index.set_rows(0, np.empty(0, dtype=np.int64))
    index.clear_rows(0, np.empty(0, dtype=np.int64))
    assert index.version == start + 3
