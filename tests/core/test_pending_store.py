"""Bit-parity suite: flat-array pending store vs the dict reference.

The :class:`~repro.core.lookahead.FlatPendingStore` replaces the original
dict-of-rows deferred write-back store with dense buffers, bitmaps, and a
birth-step array.  Everything observable must be **bit-identical** to the
retained :class:`~repro.core.lookahead.ReferencePendingStore`: flushed
gradients (row order and accumulated values), birth steps, pending counts,
eviction/age flush order through a full :class:`CachedEmbeddingPipeline`,
epoch carries, and conservation of every deferred unit of gradient.  The
reset paths are pinned too: clearing the store must reset the gradient
buffer, bitmap, and birth array atomically so a reused trainer starts from
a state indistinguishable from a fresh one (the PR 5 counterpart of the
PR 4 ``bind()`` fix).
"""

import numpy as np
import pytest

from repro.core.lookahead import (
    CachedEmbeddingPipeline,
    FlatPendingStore,
    ReferencePendingStore,
    make_pending_store,
)
from repro.nn.embedding import SparseGradient

ROWS_PER_TABLE = (48, 17)


def random_grad(rng, rows, dim=3, nnz_max=12):
    nnz = int(rng.integers(1, nnz_max))
    indices = np.sort(rng.choice(rows, size=min(nnz, rows), replace=False))
    values = rng.normal(size=(indices.size, dim))
    return SparseGradient(indices.astype(np.int64), values)


def assert_same_gradient(flat: SparseGradient, ref: SparseGradient):
    np.testing.assert_array_equal(flat.indices, ref.indices)
    np.testing.assert_array_equal(flat.values, ref.values)


def test_make_pending_store_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_pending_store("hash", ROWS_PER_TABLE)
    assert isinstance(make_pending_store("flat", ROWS_PER_TABLE), FlatPendingStore)
    assert isinstance(
        make_pending_store("reference", ROWS_PER_TABLE), ReferencePendingStore
    )


def test_stores_agree_on_a_random_defer_take_schedule():
    """Fuzz both stores through an identical schedule of defers, age scans,
    and partial takes; every observable must match bit for bit."""
    rng = np.random.default_rng(11)
    flat = FlatPendingStore(ROWS_PER_TABLE)
    ref = ReferencePendingStore(ROWS_PER_TABLE)
    for step in range(40):
        for table, rows in enumerate(ROWS_PER_TABLE):
            grad = random_grad(rng, rows)
            flat.defer(table, grad, step)
            ref.defer(table, grad, step)
            assert flat.pending_count(table) == ref.pending_count(table)
            assert flat.birth_steps(table) == ref.birth_steps(table)
            staleness = int(rng.integers(1, 4))
            aged_flat = flat.aged_rows(table, step, staleness)
            aged_ref = ref.aged_rows(table, step, staleness)
            np.testing.assert_array_equal(aged_flat, aged_ref)
            # Take a random sorted subset (some rows pending, some not).
            probe = np.sort(rng.choice(rows, size=min(8, rows), replace=False))
            np.testing.assert_array_equal(
                flat.pending_mask(table, probe), ref.pending_mask(table, probe)
            )
            assert_same_gradient(flat.take(table, probe), ref.take(table, probe))
        assert flat.total_pending == ref.total_pending
    # Drain everything left; both must produce the identical gradient.
    for table in range(len(ROWS_PER_TABLE)):
        assert_same_gradient(flat.take_all(table), ref.take_all(table))
    assert flat.total_pending == ref.total_pending == 0


def test_take_of_nothing_matches_reference_shape():
    flat = FlatPendingStore(ROWS_PER_TABLE)
    ref = ReferencePendingStore(ROWS_PER_TABLE)
    empty_rows = np.empty(0, dtype=np.int64)
    assert_same_gradient(flat.take(0, empty_rows), ref.take(0, empty_rows))
    assert flat.take(0, np.asarray([3, 5])).nnz == 0
    assert flat.take_all(1).nnz == 0


def test_accumulation_order_matches_dict_reference():
    """A row deferred several times accumulates its contributions in
    arrival order in both stores — bit-identical float sums."""
    flat = FlatPendingStore((4,))
    ref = ReferencePendingStore((4,))
    rng = np.random.default_rng(3)
    for step in range(7):
        values = rng.normal(size=(2, 5)) * 10.0 ** rng.integers(-3, 3)
        grad = SparseGradient(np.asarray([1, 3], dtype=np.int64), values)
        flat.defer(0, grad, step)
        ref.defer(0, grad, step)
        assert flat.birth_steps(0) == {1: 0, 3: 0}
    assert_same_gradient(flat.take_all(0), ref.take_all(0))


def test_duplicate_indices_accumulate_like_the_reference():
    """Merged gradients carry unique indices by contract, but a directly
    built gradient with a repeated row must still accumulate both
    contributions (the flat store falls back to the duplicate-safe
    scatter instead of silently keeping only the last write)."""
    flat = FlatPendingStore((8,))
    ref = ReferencePendingStore((8,))
    dup = SparseGradient(np.asarray([5, 5, 2], dtype=np.int64), np.full((3, 2), 1.5))
    flat.defer(0, dup, 0)
    ref.defer(0, dup, 0)
    assert flat.pending_count(0) == ref.pending_count(0) == 2
    taken_flat, taken_ref = flat.take_all(0), ref.take_all(0)
    np.testing.assert_array_equal(taken_flat.indices, taken_ref.indices)
    np.testing.assert_array_equal(taken_flat.values, taken_ref.values)
    np.testing.assert_array_equal(taken_flat.values[1], [3.0, 3.0])  # both hits


def test_buffers_allocate_lazily_and_window_bounded():
    """A store that never defers allocates nothing, and one that defers
    allocates proportionally to the *deferred* row set — never a
    table-sized float buffer or birth array (the window-bound invariant
    the Criteo-Terabyte deferral path depends on)."""
    store = FlatPendingStore((1 << 20, 64))
    assert store._values == [None, None]
    assert store._births == [None, None]
    assert store.pending_bytes == 0
    store.defer(1, SparseGradient(np.asarray([3], dtype=np.int64), np.ones((1, 2))), 0)
    assert store._values[0] is None and store._births[0] is None
    # The value slab tracks the single deferred row, not the 64-row table.
    assert store._values[1].shape == (1, 2)
    store.clear()  # must tolerate the un-allocated table
    assert store.total_pending == 0
    # clear() frees (not zeroes): no capacity survives the reset.
    assert store.pending_bytes == 0
    assert store.peak_pending_bytes == 0


def test_footprint_is_window_bounded_at_terabyte_scale():
    """Memory-footprint regression: a 10M-row table with a small window
    never allocates table-sized deferral structures — peak pending-store
    bytes stay proportional to the cached row set.  Runs the full
    pipeline (window + staleness flushes + epoch carry) so the bound
    covers every path a training run exercises."""
    rows_per_table = (10_000_000,)
    dim, window, staleness = 8, 4, 2
    pipe = CachedEmbeddingPipeline(
        rows_per_table, window=window, staleness=staleness, pending_store="flat"
    )
    rng = np.random.default_rng(17)
    # Rows recur across nearby batches (a hot pool) so deferral genuinely
    # accumulates instead of every row flushing as its batch retires.
    pool = rng.choice(10_000_000, size=2_000, replace=False)
    batches = [
        np.unique(
            np.concatenate(
                [
                    rng.choice(pool, size=48, replace=False),
                    rng.choice(10_000_000, size=16, replace=False),
                ]
            )
        )
        for _ in range(28)
    ]
    pipe.begin_epoch(iter([[rows.astype(np.int64)] for rows in batches]))
    window_rows = 0
    # Stop four batches short of the stream so the window is still full at
    # the epoch boundary and the carry path has real pending rows to flush.
    for rows in batches[:24]:
        pipe.observe(rows.astype(np.int64).reshape(-1, 1, 1))
        # Pending rows are a subset of the cached set plus (transiently)
        # the retiring batch's rows — the window bound of the invariant.
        window_rows = max(window_rows, pipe.cached_rows_total + rows.size)
        grad = SparseGradient(rows.astype(np.int64), rng.normal(size=(rows.size, dim)))
        pipe.defer([grad])
    carry = pipe.begin_epoch(None)
    assert carry is not None  # the deferral path genuinely ran
    # Bytes per pending row: (dim + 1) slab float64/int64 on <2x-capacity
    # slabs, plus row id + slot + recycled free-slot entries.
    per_row_bound = 2 * (dim * 8 + 8) + 16 + 2 * 8
    assert pipe.peak_pending_bytes <= window_rows * per_row_bound
    # And nowhere near the ~10 GB table-sized buffer this regression pins.
    assert pipe.peak_pending_bytes < 1_000_000
    # The epoch carry freed the slabs entirely (satellite of the same fix).
    assert pipe.pending_bytes == 0


def test_fuzz_duplicate_and_unsorted_indices_match_reference():
    """Boundary-contract fuzz: gradients violating the SparseGradient
    sorted-unique contract (duplicates, shuffled order, repeats of rows
    already pending) must accumulate bit-identically to the dict
    reference through defers, age scans, and takes."""
    rng = np.random.default_rng(23)
    flat = FlatPendingStore(ROWS_PER_TABLE)
    ref = ReferencePendingStore(ROWS_PER_TABLE)
    for step in range(30):
        for table, rows in enumerate(ROWS_PER_TABLE):
            nnz = int(rng.integers(2, 10))
            # Sampling with replacement yields duplicates; the shuffle
            # breaks sortedness.
            indices = rng.choice(rows, size=nnz, replace=True)
            rng.shuffle(indices)
            grad = SparseGradient(
                indices.astype(np.int64), rng.normal(size=(nnz, 3))
            )
            flat.defer(table, grad, step)
            ref.defer(table, grad, step)
            assert flat.pending_count(table) == ref.pending_count(table)
            assert flat.birth_steps(table) == ref.birth_steps(table)
            aged_flat = flat.aged_rows(table, step, 2)
            aged_ref = ref.aged_rows(table, step, 2)
            np.testing.assert_array_equal(aged_flat, aged_ref)
            assert_same_gradient(flat.take(table, aged_flat), ref.take(table, aged_ref))
    for table in range(len(ROWS_PER_TABLE)):
        assert_same_gradient(flat.take_all(table), ref.take_all(table))


def run_pipeline(pending_store, batches, grads, *, window, staleness):
    """Drive one pipeline over a fixed stream; collect every flush."""
    pipe = CachedEmbeddingPipeline(
        (64,), window=window, staleness=staleness, pending_store=pending_store
    )
    pipe.begin_epoch(iter([[np.asarray(rows, dtype=np.int64)] for rows in batches]))
    flushes, stats = [], []
    for rows, grad in zip(batches, grads, strict=True):
        pipe.observe(np.asarray(rows, dtype=np.int64).reshape(-1, 1, 1))
        flushes.append(pipe.defer([grad]))
        stats.append(
            (pipe.last_stats.stale_rows, pipe.last_stats.evicted_rows,
             pipe.pending_rows_total)
        )
    carry = pipe.begin_epoch(None)
    return pipe, flushes, stats, carry


def make_stream(seed, steps=24, universe=64):
    rng = np.random.default_rng(seed)
    batches, grads = [], []
    for _ in range(steps):
        rows = np.sort(rng.choice(universe, size=4, replace=False))
        batches.append(rows.tolist())
        grads.append(SparseGradient(rows.astype(np.int64), rng.normal(size=(4, 2))))
    return batches, grads


@pytest.mark.parametrize("staleness", [1, 2, 4])
@pytest.mark.parametrize("window", [0, 2])
def test_pipeline_parity_flat_vs_reference(window, staleness):
    """Eviction flushes, age flushes, their order, the per-step stats, and
    the epoch carry are bit-identical between the two stores."""
    batches, grads = make_stream(seed=staleness * 10 + window)
    _, flushes_f, stats_f, carry_f = run_pipeline(
        "flat", batches, grads, window=window, staleness=staleness
    )
    _, flushes_r, stats_r, carry_r = run_pipeline(
        "reference", batches, grads, window=window, staleness=staleness
    )
    assert stats_f == stats_r
    for step_f, step_r in zip(flushes_f, flushes_r, strict=True):
        for grad_f, grad_r in zip(step_f, step_r, strict=True):
            assert_same_gradient(grad_f, grad_r)
    assert (carry_f is None) == (carry_r is None)
    if carry_f is not None:
        for grad_f, grad_r in zip(carry_f, carry_r, strict=True):
            assert_same_gradient(grad_f, grad_r)


@pytest.mark.parametrize("pending_store", ["flat", "reference"])
def test_conservation_under_both_stores(pending_store):
    """Every deferred unit of gradient is applied exactly once."""
    batches, grads = make_stream(seed=9, steps=16)
    total_in = np.zeros((64, 2))
    for grad in grads:
        total_in[grad.indices] += grad.values
    _, flushes, _, carry = run_pipeline(
        pending_store, batches, grads, window=3, staleness=2
    )
    total_out = np.zeros((64, 2))
    for step in flushes:
        for grad in step:
            if grad.nnz:
                total_out[grad.indices] += grad.values
    if carry is not None:
        total_out[carry[0].indices] += carry[0].values
    np.testing.assert_allclose(total_out, total_in)


def test_clear_resets_buffer_bitmap_and_births_atomically():
    """Regression (PR 5): after ``clear()`` the flat store must be
    indistinguishable from a fresh one — a surviving birth step or a
    non-zeroed buffer row would poison the next run's flush timing or
    values."""
    store = FlatPendingStore((16,))
    rng = np.random.default_rng(5)
    for step in range(4):
        store.defer(0, random_grad(rng, 16, dim=2), step)
    assert store.total_pending > 0
    store.clear()
    assert store.total_pending == 0
    assert store.birth_steps(0) == {}
    assert store.aged_rows(0, step=100, staleness=0).size == 0
    # The buffer rows really are zero: a fresh defer must flush exactly its
    # own value, with the fresh birth step.
    grad = SparseGradient(np.asarray([3], dtype=np.int64), np.full((1, 2), 7.5))
    store.defer(0, grad, 0)
    assert store.birth_steps(0) == {3: 0}
    assert_same_gradient(store.take_all(0), grad)


def test_pipeline_reset_is_equivalent_to_a_fresh_pipeline():
    """Reuse-the-trainer regression, pipeline level: a reset pipeline must
    replay a stream bit-identically to a never-used pipeline (gradient
    buffers, birth arrays, and bitmaps all restart together)."""
    batches, grads = make_stream(seed=21, steps=12)
    used = CachedEmbeddingPipeline((64,), window=2, staleness=2)
    used.begin_epoch(iter([[np.asarray(rows, dtype=np.int64)] for rows in batches]))
    for rows, grad in zip(batches[:7], grads[:7], strict=False):
        used.observe(np.asarray(rows, dtype=np.int64).reshape(-1, 1, 1))
        used.defer([grad])
    assert used.pending_rows_total > 0  # there is state to leak
    used.reset()

    fresh = CachedEmbeddingPipeline((64,), window=2, staleness=2)
    replay_f, replay_u = [], []
    for pipe, sink in ((used, replay_u), (fresh, replay_f)):
        pipe.begin_epoch(iter([[np.asarray(rows, dtype=np.int64)] for rows in batches]))
        for rows, grad in zip(batches, grads, strict=True):
            pipe.observe(np.asarray(rows, dtype=np.int64).reshape(-1, 1, 1))
            sink.append(pipe.defer([grad]))
    for step_u, step_f in zip(replay_u, replay_f, strict=True):
        for grad_u, grad_f in zip(step_u, step_f, strict=True):
            assert_same_gradient(grad_u, grad_f)
    assert used.pending_rows_total == fresh.pending_rows_total
