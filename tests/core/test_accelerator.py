"""Unit tests for the assembled Hotline accelerator device model."""

import numpy as np
import pytest

from repro.core.accelerator import (
    HOTLINE_ACCELERATOR_SPEC,
    AcceleratorSpec,
    HotlineAccelerator,
)
from repro.core.eal import EALConfig


def test_table4_specification():
    spec = HOTLINE_ACCELERATOR_SPEC
    assert spec.frequency_hz == pytest.approx(350e6)
    assert spec.eal_size_bytes == 4 * 1024 * 1024
    assert spec.num_lookup_engines == 64
    assert spec.num_reducer_alus == 16
    assert spec.input_edram_bytes == pytest.approx(2.5 * 1024 * 1024)
    assert spec.embedding_vector_buffer_bytes == 512
    assert spec.total_area_mm2 == pytest.approx(7.01)
    assert spec.average_energy_joules == pytest.approx(0.132)


def test_cycle_time():
    assert AcceleratorSpec().cycle_time_s == pytest.approx(1.0 / 350e6)


def make_accelerator():
    return HotlineAccelerator(
        row_bytes=64, eal_config=EALConfig(size_bytes=8192, ways=8), seed=0
    )


def test_learning_phase_populates_hot_sets():
    accel = make_accelerator()
    rng = np.random.default_rng(0)
    sparse = rng.integers(0, 16, size=(64, 2, 1))
    accel.learn_from_batch(sparse)
    hot = accel.hot_sets(num_tables=2)
    assert sum(h.size for h in hot) > 0


def test_recalibrate_clears_tracked_set():
    accel = make_accelerator()
    accel.learn_from_batch(np.zeros((4, 2, 1), dtype=np.int64))
    accel.recalibrate()
    hot = accel.hot_sets(num_tables=2)
    assert all(h.size == 0 for h in hot)


def test_segregation_time_scales_with_batch_and_is_fast():
    accel = make_accelerator()
    small = accel.segregation_time(1024, 26)
    large = accel.segregation_time(4096, 26)
    assert large > small
    # Accelerator segregation of a 4K mini-batch takes well under 1 ms
    # (vs tens of ms on the CPU, Figure 7).
    assert large < 1e-3


def test_gather_time_scales_with_cold_rows():
    accel = make_accelerator()
    few = accel.gather_time(100, 0, dim=16)
    many = accel.gather_time(10_000, 0, dim=16)
    assert many > few
    assert accel.gather_time(0, 0) == 0.0


def test_scatter_and_writeback_positive():
    accel = make_accelerator()
    assert accel.scatter_time(1000, num_gpus=4) > 0
    assert accel.writeback_time(1000) > 0
    with pytest.raises(ValueError):
        accel.scatter_time(10, num_gpus=0)


def test_area_and_power_come_from_energy_model():
    accel = make_accelerator()
    assert accel.area_mm2 == pytest.approx(7.01, rel=0.01)
    assert accel.power_w > 0
    assert accel.energy_joules(2.0) == pytest.approx(2.0 * accel.power_w)
