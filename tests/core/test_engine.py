"""Tests for the pluggable training engine shared by every trainer."""

import numpy as np
import pytest

from repro.core.engine import (
    StepExecutor,
    StepOutcome,
    TrainingEngine,
    TrainingResult,
    recalibration_points,
)
from repro.core.pipeline import HotlineTrainer, ReferenceTrainer
from repro.data.loader import MiniBatchLoader
from repro.models.dlrm import DLRM


class RecordingExecutor(StepExecutor):
    """Minimal executor that logs every engine callback."""

    def __init__(self, model):
        self.model = model
        self.bound = 0
        self.recalibrations: list[int] = []
        self.batch_sizes: list[int] = []

    def bind(self, loader):
        self.bound += 1

    def run_step(self, batch):
        self.batch_sizes.append(batch.size)
        return StepOutcome(loss=1.0, compute_time_s=0.25, communication_time_s=0.75)

    def recalibrate(self, loader, seed=0):
        self.recalibrations.append(seed)


def test_recalibration_points_spacing():
    assert recalibration_points(16, 0) == set()
    assert recalibration_points(2, 4) == set()
    assert recalibration_points(16, 1) == {8}
    assert recalibration_points(15, 2) == {5, 10}


def test_engine_drives_executor_callbacks(tiny_model_config, tiny_click_log):
    executor = RecordingExecutor(DLRM(tiny_model_config, seed=0))
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    engine = TrainingEngine(executor)
    result = engine.train(loader, epochs=2, recalibrations_per_epoch=2)
    assert executor.bound == 1
    assert result.iterations == 2 * len(loader)
    assert len(executor.recalibrations) == 4
    assert all(size == 128 for size in executor.batch_sizes)
    # Compute/communication splits accumulate into the simulated total.
    assert result.compute_time_s == pytest.approx(0.25 * result.iterations)
    assert result.communication_time_s == pytest.approx(0.75 * result.iterations)
    assert result.simulated_time_s == pytest.approx(result.iterations)


def test_engine_eval_cadence_and_final_metrics(tiny_model_config, tiny_click_log):
    executor = RecordingExecutor(DLRM(tiny_model_config, seed=0))
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    eval_batch = tiny_click_log.batch(0, 256)
    result = TrainingEngine(executor).train(
        loader, epochs=1, eval_batch=eval_batch, eval_every=4
    )
    cadence_evals = len(loader) // 4
    assert len(result.auc_history) == cadence_evals + 1  # + final evaluation
    assert set(result.final_metrics) == {"accuracy", "auc", "logloss"}


def test_engine_prefetch_matches_synchronous_losses(tiny_model_config, tiny_click_log):
    """Double-buffered batch assembly must not change the training stream."""
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    runs = []
    for prefetch in (0, 1):
        trainer = ReferenceTrainer(DLRM(tiny_model_config, seed=11), lr=0.1)
        runs.append(TrainingEngine(trainer, prefetch=prefetch).train(loader, epochs=1))
    np.testing.assert_array_equal(runs[0].losses, runs[1].losses)


def test_engine_defers_to_explicit_loader_prefetch(tiny_model_config, tiny_click_log):
    """prefetch=0 on the loader is a real opt-out; None gets double-buffering."""
    import repro.data.loader as loader_mod

    depths = []
    original = loader_mod._prefetched

    def spying(producer, depth):
        depths.append(depth)
        return original(producer, depth)

    loader_mod._prefetched = spying
    try:
        trainer = ReferenceTrainer(DLRM(tiny_model_config, seed=0), lr=0.1)
        trainer.train(MiniBatchLoader(tiny_click_log, batch_size=128, prefetch=0), epochs=1)
        assert depths == []
        trainer.train(MiniBatchLoader(tiny_click_log, batch_size=128), epochs=1)
        assert depths == [1]
        trainer.train(MiniBatchLoader(tiny_click_log, batch_size=128, prefetch=3), epochs=1)
        assert depths == [1, 3]
    finally:
        loader_mod._prefetched = original


def test_trainers_share_the_engine_loop(tiny_model_config, tiny_click_log):
    """Baseline and Hotline trainers are step executors — no private loops."""
    assert isinstance(ReferenceTrainer(DLRM(tiny_model_config, seed=0)), StepExecutor)
    assert isinstance(HotlineTrainer(DLRM(tiny_model_config, seed=0)), StepExecutor)
    # Their train() methods return the engine's TrainingResult.
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    result = ReferenceTrainer(DLRM(tiny_model_config, seed=0), lr=0.1).train(loader)
    assert isinstance(result, TrainingResult)


def test_perf_split_uses_collective_time_hook(tiny_model_config, tiny_click_log):
    from repro.core.scheduler import HotlineScheduler
    from repro.hwsim import single_node
    from repro.models import RM2
    from repro.perf import TrainingCostModel

    perf = HotlineScheduler(TrainingCostModel(RM2, cluster=single_node(4)))
    trainer = ReferenceTrainer(DLRM(tiny_model_config, seed=0), lr=0.1, perf_model=perf)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    result = trainer.train(loader, epochs=1)
    steps = result.iterations
    assert result.communication_time_s == pytest.approx(steps * perf.collective_time())
    assert result.simulated_time_s == pytest.approx(steps * perf.step_time(128))
    assert result.compute_time_s == pytest.approx(
        result.simulated_time_s - result.communication_time_s
    )


def test_engine_accumulates_per_bucket_comm(tiny_model_config, tiny_click_log):
    """bucket_comm_s sums each bucket's wire time across every step."""
    from repro.core.distributed import ShardedHotlineTrainer
    from repro.core.reducer import WIRE_BYTES_PER_ELEMENT
    from repro.models.dlrm import DLRM

    model = DLRM(tiny_model_config, seed=0)
    bucket_elements = 64
    trainer = ShardedHotlineTrainer(
        model, 2, sample_fraction=0.25,
        bucket_bytes=bucket_elements * WIRE_BYTES_PER_ELEMENT,
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    result = trainer.train(loader, epochs=1)
    expected_buckets = -(-model.num_dense_parameters // bucket_elements)
    assert len(result.bucket_comm_s) == expected_buckets
    per_step = trainer.reducer.bucket_times(model.num_dense_parameters)
    for total, one_step in zip(result.bucket_comm_s, per_step, strict=True):
        assert total == pytest.approx(one_step * result.iterations)
    # Sync mode: the exposed communication is exactly the summed wire time.
    assert result.communication_time_s == pytest.approx(sum(result.bucket_comm_s))


def test_baseline_outcomes_report_no_buckets(tiny_model_config, tiny_click_log):
    from repro.core.pipeline import ReferenceTrainer
    from repro.models.dlrm import DLRM

    trainer = ReferenceTrainer(DLRM(tiny_model_config, seed=0))
    result = trainer.train(MiniBatchLoader(tiny_click_log, batch_size=128), epochs=1)
    assert result.bucket_comm_s == []


# --------------------------------------------------------------------- #
# finalize(): the end-of-run drain hook
# --------------------------------------------------------------------- #
class DrainingExecutor(RecordingExecutor):
    """Executor with one simulated in-flight gradient to drain."""

    def __init__(self, model):
        super().__init__(model)
        self.finalized = 0

    def finalize(self):
        self.finalized += 1
        return StepOutcome(
            loss=0.0, communication_time_s=0.5, stale_rows=7, prefetch_time_s=0.5
        )


def test_engine_calls_finalize_before_final_eval(tiny_model_config, tiny_click_log):
    executor = DrainingExecutor(DLRM(tiny_model_config, seed=0))
    loader = MiniBatchLoader(tiny_click_log, batch_size=512)
    result = TrainingEngine(executor).train(
        loader, epochs=1, eval_batch=tiny_click_log.batch(0, 128)
    )
    assert executor.finalized == 1
    # The drain's traffic is folded into the run's totals (no loss entry).
    steps = len(result.losses)
    assert result.stale_rows == 7
    assert result.communication_time_s == pytest.approx(0.75 * steps + 0.5)
    assert result.prefetch_time_s == pytest.approx(0.5)
    assert result.simulated_time_s == pytest.approx(1.0 * steps + 0.5)


def test_default_finalize_is_a_noop(tiny_model_config, tiny_click_log):
    executor = RecordingExecutor(DLRM(tiny_model_config, seed=0))
    assert executor.finalize() is None
    result = TrainingEngine(executor).train(
        MiniBatchLoader(tiny_click_log, batch_size=512), epochs=1
    )
    assert result.stale_rows == 0


def test_parallel_workers_knob_forwarded_to_executor(tiny_model_config):
    """The engine's convenience knob writes through to the executor."""
    from repro.core.distributed import ShardedHotlineTrainer

    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=0), 2, sample_fraction=0.25
    )
    assert trainer.parallel_workers == 1
    TrainingEngine(trainer, parallel_workers=3)
    assert trainer.parallel_workers == 3


def test_parallel_workers_knob_validated(tiny_model_config):
    """Executors without the knob, and non-positive values, fail fast."""
    plain = RecordingExecutor(DLRM(tiny_model_config, seed=0))
    with pytest.raises(ValueError, match="parallel_workers"):
        TrainingEngine(plain, parallel_workers=2)
    from repro.core.distributed import ShardedHotlineTrainer

    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=0), 2, sample_fraction=0.25
    )
    with pytest.raises(ValueError, match=">= 1"):
        TrainingEngine(trainer, parallel_workers=0)


def test_engine_threads_prepare_batch_through_the_loader(
    tiny_model_config, tiny_click_log
):
    """An executor exposing ``prepare_batch`` sees every epoch batch once
    (via the loader's transform hook); one without it is untouched."""

    class PreparingExecutor(RecordingExecutor):
        def __init__(self, model):
            super().__init__(model)
            self.prepared = 0

        def prepare_batch(self, batch):
            self.prepared += 1
            return batch

    executor = PreparingExecutor(DLRM(tiny_model_config, seed=0))
    loader = MiniBatchLoader(tiny_click_log, batch_size=512)
    TrainingEngine(executor, prefetch=0).train(loader, epochs=1)
    assert executor.prepared == len(loader)
    assert executor.batch_sizes == [512] * len(loader)


def test_engine_records_replica_times(tiny_model_config, tiny_click_log):
    """Per-replica wall times flow from StepOutcome into TrainingResult."""
    from repro.core.distributed import ShardedHotlineTrainer

    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=0), 2, sample_fraction=0.25
    )
    result = trainer.train(MiniBatchLoader(tiny_click_log, batch_size=128), epochs=1)
    assert len(result.replica_time_s) == 2
    assert all(t > 0.0 for t in result.replica_time_s)
