"""Unit tests for the accelerator ISA (Table I) and its functional interpreter."""

import numpy as np
import pytest

from repro.core.isa import (
    AcceleratorInterpreter,
    Instruction,
    InstructionDriver,
    Opcode,
)


def test_table1_has_six_opcodes():
    assert {op.value for op in Opcode} == {
        "dmard",
        "dmawr",
        "v_add",
        "v_mul",
        "s_wr",
        "gpu_rd",
    }


def test_driver_builds_dma_read_addresses():
    driver = InstructionDriver(row_bytes=64)
    instr = driver.gather_row_from_cpu(table=2, row=10, base_address=4096)
    assert instr.opcode == Opcode.DMA_READ
    assert instr.operand1 == 4096 + 640
    assert instr.operand2 == 64
    assert instr.table == 2


def test_driver_rejects_invalid_row_bytes():
    with pytest.raises(ValueError):
        InstructionDriver(row_bytes=0)


def make_tables(dim=4):
    rng = np.random.default_rng(0)
    cpu = {0: rng.normal(size=(16, dim))}
    gpu = {0: cpu[0][:8].copy()}  # rows 0-7 replicated on the GPU
    return cpu, gpu


def test_interpreter_pooled_gather_matches_numpy_sum():
    cpu, gpu = make_tables()
    driver = InstructionDriver(row_bytes=cpu[0].shape[1] * cpu[0].itemsize)
    interpreter = AcceleratorInterpreter(cpu, gpu)
    sample_indices = [np.array([1, 9]), np.array([3])]
    program = driver.pooled_gather_program(sample_indices, table=0, hot_rows=np.arange(8))
    buffer = interpreter.execute(program, num_buffer_slots=2)
    np.testing.assert_allclose(buffer[0], cpu[0][1] + cpu[0][9])
    np.testing.assert_allclose(buffer[1], cpu[0][3])


def test_interpreter_gpu_read_of_unreplicated_row_raises():
    cpu, gpu = make_tables()
    interpreter = AcceleratorInterpreter(cpu, gpu)
    program = [Instruction(Opcode.GPU_READ, operand1=0, operand2=12, table=0)]
    with pytest.raises(KeyError):
        interpreter.execute(program, num_buffer_slots=1)


def test_interpreter_scalar_write_records_base_address():
    cpu, gpu = make_tables()
    interpreter = AcceleratorInterpreter(cpu, gpu)
    driver = InstructionDriver(row_bytes=32)
    interpreter.execute([driver.set_base_address(3, 0xDEAD)], num_buffer_slots=1)
    assert interpreter.base_registers[3] == 0xDEAD


def test_interpreter_v_add_before_fetch_raises():
    cpu, gpu = make_tables()
    interpreter = AcceleratorInterpreter(cpu, gpu)
    with pytest.raises(RuntimeError):
        interpreter.execute(
            [Instruction(Opcode.VECTOR_ADD, operand1=0, operand2=0)], num_buffer_slots=1
        )


def test_interpreter_dma_write_updates_cpu_table():
    cpu, gpu = make_tables()
    row_bytes = cpu[0].shape[1] * cpu[0].itemsize
    driver = InstructionDriver(row_bytes=row_bytes)
    interpreter = AcceleratorInterpreter(cpu, gpu, row_bytes=row_bytes)
    program = [
        driver.gather_row_from_cpu(table=0, row=2),
        driver.writeback_row_to_cpu(table=0, row=5),
    ]
    interpreter.execute(program, num_buffer_slots=1)
    np.testing.assert_allclose(cpu[0][5], cpu[0][2])
