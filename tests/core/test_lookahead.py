"""Unit + acceptance tests of the BagPipe-style cached lookahead pipeline.

The window mechanics are pinned on a hand-computed stream (fills, hits,
evictions per step), bounded staleness is asserted as an invariant (no
deferred row ever ages past k, nothing is lost), hit-rate is proven
monotone in the window size, and the ``fig30s`` sweep's acceptance claims
(exposed time shrinking, final loss degrading monotonically with k) run as
a slow end-to-end check.
"""

import numpy as np
import pytest

from repro.core.lookahead import CachedEmbeddingPipeline, epoch_row_stream
from repro.data.loader import MiniBatchLoader
from repro.data.synthetic import generate_click_log
from repro.hwsim.cluster import single_node
from repro.nn.embedding import SparseGradient
from tests.conftest import TINY_DATASET


def block(*rows):
    """A (batch, 1, 1) index block looking up ``rows`` of a 1-table model."""
    return np.asarray(rows, dtype=np.int64).reshape(-1, 1, 1)


def grad(*rows, dim=2, value=1.0):
    """A unit sparse gradient touching ``rows`` (sorted unique)."""
    rows = np.asarray(sorted(rows), dtype=np.int64)
    return SparseGradient(rows, np.full((rows.size, dim), value))


def stream(*batches):
    """A lookahead stream of single-table batches."""
    return iter([[np.asarray(batch, dtype=np.int64)] for batch in batches])


def test_pipeline_validates_configuration():
    with pytest.raises(ValueError):
        CachedEmbeddingPipeline((10,), window=-1)
    with pytest.raises(ValueError):
        CachedEmbeddingPipeline((10,), window=1, staleness=-1)
    with pytest.raises(ValueError):
        CachedEmbeddingPipeline((10,), window=1, row_bytes=0)
    pipe = CachedEmbeddingPipeline((10,), window=1)
    with pytest.raises(ValueError):
        pipe.observe(np.zeros((2, 2), dtype=np.int64))  # not 3-D
    with pytest.raises(ValueError):
        pipe.defer([])  # wrong table count


def test_window_mechanics_hand_computed():
    """Fills, hits, and evictions of a known stream, step by step."""
    pipe = CachedEmbeddingPipeline((10,), window=1)
    pipe.begin_epoch(stream([0, 1], [1, 2], [3], [0, 3]))

    # Step 0: entries b0+b1 enter (rows 0,1 then the uncached 2) — 3 fills;
    # every lookup of b0 was freshly filled by its own entry.
    stats = pipe.observe(block(0, 1))
    assert (stats.fill_rows, stats.cache_hits, stats.cache_misses) == (3, 0, 2)
    assert pipe.cached_rows_total == 3
    pipe.defer([grad(0, 1)])
    assert pipe.last_stats.evicted_rows == 1  # row 0: only b0 used it

    # Step 1: b2 enters (row 3 fresh); row 1 was cached before b1 entered.
    stats = pipe.observe(block(1, 2))
    assert (stats.fill_rows, stats.cache_hits, stats.cache_misses) == (1, 1, 1)
    pipe.defer([grad(1, 2)])
    assert pipe.last_stats.evicted_rows == 2  # rows 1 and 2 leave the window

    # Step 2: b3 enters (row 0 refilled, row 3 already cached by b2).
    stats = pipe.observe(block(3))
    assert (stats.fill_rows, stats.cache_hits, stats.cache_misses) == (1, 0, 1)
    pipe.defer([grad(3)])
    assert pipe.last_stats.evicted_rows == 0  # b3 still needs row 3

    # Step 3: stream dry; row 3 is a hit (cached since b2), row 0 a miss.
    stats = pipe.observe(block(0, 3))
    assert (stats.fill_rows, stats.cache_hits, stats.cache_misses) == (0, 1, 1)
    pipe.defer([grad(0, 3)])
    assert pipe.last_stats.evicted_rows == 2
    assert pipe.cached_rows_total == 0


def test_staleness_zero_defer_is_identity():
    """k = 0: defer returns the very gradients it was given — the parity
    fast path that keeps cached runs bit-identical."""
    pipe = CachedEmbeddingPipeline((10,), window=2)
    pipe.begin_epoch(stream([0, 1], [1]))
    pipe.observe(block(0, 1))
    merged = [grad(0, 1)]
    applied = pipe.defer(merged)
    assert applied[0] is merged[0]
    assert pipe.pending_rows_total == 0


def test_bounded_staleness_invariant_and_conservation():
    """No deferred row ever ages past k, and every deferred unit of
    gradient is eventually applied exactly once (flush or epoch carry)."""
    rng = np.random.default_rng(0)
    batches = [sorted(rng.choice(12, size=3, replace=False).tolist()) for _ in range(8)]
    staleness = 2
    pipe = CachedEmbeddingPipeline((12,), window=3, staleness=staleness)
    pipe.begin_epoch(stream(*batches))
    total_in = np.zeros(12)
    total_out = np.zeros(12)
    for step, rows in enumerate(batches):
        pipe.observe(block(*rows))
        merged = grad(*rows, dim=1)
        total_in[merged.indices] += merged.values[:, 0]
        for flushed in pipe.defer([merged]):
            if flushed.nnz:
                total_out[flushed.indices] += flushed.values[:, 0]
        # The staleness bound: every still-pending contribution was born
        # within the last k defers.
        for table in range(pipe.num_tables):
            births = pipe.pending.birth_steps(table)
            assert all(step - birth < staleness for birth in births.values())
    carry = pipe.begin_epoch(None)
    if carry is not None:
        total_out[carry[0].indices] += carry[0].values[:, 0]
    np.testing.assert_allclose(total_out, total_in)


def test_hit_rate_is_monotone_in_window_size():
    """A wider window keeps rows cached across more upcoming batches, so
    the hit-rate can only grow with W (the fig30s sweep's cache claim)."""
    rng = np.random.default_rng(3)
    batches = [rng.integers(0, 40, size=(16, 1, 1)) for _ in range(12)]
    rates = []
    for window in (0, 1, 2, 4, 8):
        pipe = CachedEmbeddingPipeline((40,), window=window)
        pipe.begin_epoch(stream(*[np.unique(batch) for batch in batches]))
        hits = misses = 0
        for batch in batches:
            stats = pipe.observe(batch)
            hits += stats.cache_hits
            misses += stats.cache_misses
            pipe.defer([grad(*np.unique(batch).tolist())])
        rates.append(hits / (hits + misses))
    assert all(later >= earlier for earlier, later in zip(rates, rates[1:], strict=False))
    assert rates[-1] > rates[0]


def test_begin_epoch_carries_pending_and_resets_cache():
    pipe = CachedEmbeddingPipeline((10,), window=2, staleness=5)
    # Rows 0 and 1 stay referenced by upcoming batches, so with a loose
    # staleness bound their deferred gradient is still pending when the
    # epoch ends — begin_epoch must hand it back, never drop it.
    pipe.begin_epoch(stream([0, 1], [0, 1], [0, 1]))
    pipe.observe(block(0, 1))
    pipe.defer([grad(0, 1, value=2.5)])
    assert pipe.pending_rows_total == 2
    carry = pipe.begin_epoch(stream([5]))
    assert carry is not None
    np.testing.assert_array_equal(carry[0].indices, [0, 1])
    np.testing.assert_allclose(carry[0].values, 2.5)
    assert pipe.pending_rows_total == 0
    assert pipe.cached_rows_total == 0


def test_prefetch_priced_only_with_a_link():
    cluster = single_node(4)
    priced = CachedEmbeddingPipeline(
        (64,), window=1, row_bytes=32, num_replicas=4, link=cluster.node.gpu_link
    )
    priced.begin_epoch(stream(list(range(32))))
    stats = priced.observe(block(*range(32)))
    assert stats.prefetch_time_s > 0.0
    assert priced.dma.bytes_read == 32 * 32
    free = CachedEmbeddingPipeline((64,), window=1, row_bytes=32, num_replicas=4)
    free.begin_epoch(stream(list(range(32))))
    assert free.observe(block(*range(32))).prefetch_time_s == 0.0


def test_self_feed_without_stream_still_accounts():
    """With no epoch stream the pipeline degenerates to a current-batch
    cache: the guarantees (and counters) survive, just with no lookahead."""
    pipe = CachedEmbeddingPipeline((10,), window=4, staleness=1)
    pipe.begin_epoch(None)
    stats = pipe.observe(block(1, 2))
    assert stats.cache_misses == 2
    flushed = pipe.defer([grad(1, 2)])
    # Retiring the only window batch evicts both rows — flushed right away.
    np.testing.assert_array_equal(flushed[0].indices, [1, 2])


def test_epoch_row_stream_mirrors_loader_epochs():
    log = generate_click_log(TINY_DATASET, 512, seed=1)
    for shuffle in (False, True):
        loader = MiniBatchLoader(log, batch_size=128, shuffle=shuffle, seed=4)
        batches = list(loader.epoch())  # draws (and records) the order
        mirrored = list(epoch_row_stream(loader))
        assert len(mirrored) == len(batches)
        for batch, rows in zip(batches, mirrored, strict=True):
            assert len(rows) == batch.num_tables
            for table, table_rows in enumerate(rows):
                np.testing.assert_array_equal(
                    table_rows, np.unique(batch.sparse[:, table, :])
                )


def test_epoch_row_stream_cache_hit_is_identical():
    """A replayed epoch serves the memoised row sets — same values, and
    provably the cached objects (no recompute) — without changing the
    stream a consumer sees."""
    log = generate_click_log(TINY_DATASET, 512, seed=2)
    loader = MiniBatchLoader(log, batch_size=128)
    list(loader.epoch())
    first = list(epoch_row_stream(loader))
    assert getattr(loader, "_row_stream_cache", None) is not None
    list(loader.epoch())  # unshuffled: same order (None) every epoch
    second = list(epoch_row_stream(loader))
    assert len(second) == len(first)
    for rows_a, rows_b in zip(first, second, strict=True):
        for table_a, table_b in zip(rows_a, rows_b, strict=True):
            assert table_b is table_a  # served from cache, not recomputed
            np.testing.assert_array_equal(table_a, table_b)


def test_epoch_row_stream_cache_invalidated_by_new_order():
    """A shuffled loader draws a fresh order each epoch, so the cache never
    serves a stale epoch's rows — each walk mirrors its own epoch exactly."""
    log = generate_click_log(TINY_DATASET, 512, seed=3)
    loader = MiniBatchLoader(log, batch_size=128, shuffle=True, seed=9)
    for _ in range(2):
        batches = list(loader.epoch())
        mirrored = list(epoch_row_stream(loader))
        for batch, rows in zip(batches, mirrored, strict=True):
            for table, table_rows in enumerate(rows):
                np.testing.assert_array_equal(
                    table_rows, np.unique(batch.sparse[:, table, :])
                )


def test_epoch_row_stream_partial_walk_never_caches():
    """Abandoning the stream mid-epoch must not install a truncated cache
    that a later full walk would silently serve."""
    log = generate_click_log(TINY_DATASET, 512, seed=5)
    loader = MiniBatchLoader(log, batch_size=128)
    list(loader.epoch())
    partial = epoch_row_stream(loader)
    next(partial)
    partial.close()
    assert getattr(loader, "_row_stream_cache", None) is None
    full = list(epoch_row_stream(loader))
    assert len(full) == len(loader)


@pytest.mark.slow
def test_fig30s_convergence_vs_exposure_acceptance():
    """Acceptance: exposed time shrinks and final loss degrades
    monotonically as k grows, at every window size; hit-rate grows with W."""
    from repro.experiments import run_experiment

    data = run_experiment("fig30s")
    for window in (2, 8):
        column = [data[f"k={k} / W={window}"] for k in (0, 1, 2, 4)]
        losses = [entry["final_loss"] for entry in column]
        exposed = [entry["exposed_communication_s"] for entry in column]
        pairs = zip(losses, losses[1:], strict=False)
        assert all(later > earlier for earlier, later in pairs), losses
        pairs = zip(exposed, exposed[1:], strict=False)
        assert all(later < earlier for earlier, later in pairs), exposed
        assert all(entry["replica_drift"] == 0.0 for entry in column)
        assert column[0]["stale_rows"] == 0  # k=0 defers nothing
        assert all(entry["stale_rows"] > 0 for entry in column[1:])
    for k in (0, 1, 2, 4):
        narrow = data[f"k={k} / W=2"]
        wide = data[f"k={k} / W=8"]
        assert wide["cache_hit_rate"] >= narrow["cache_hit_rate"]
        assert narrow["cache_hit_rate"] > 0.5  # the cache genuinely serves lookups
