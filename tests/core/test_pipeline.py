"""Tests for the end-to-end Hotline trainer, including the paper's central
claim: training with µ-batch fragmentation is numerically equivalent to the
baseline (Eq. 5, Figure 18, Table V)."""

import numpy as np
import pytest

from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.pipeline import HotlineTrainer, ReferenceTrainer, evaluate
from repro.data.loader import MiniBatchLoader
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM


def make_accelerator(dim=8):
    return HotlineAccelerator(
        row_bytes=dim * 4, eal_config=EALConfig(size_bytes=1 << 16, ways=8), seed=0
    )


def test_learning_phase_builds_placement(tiny_model_config, tiny_click_log):
    model = DLRM(tiny_model_config, seed=0)
    trainer = HotlineTrainer(model, make_accelerator(), sample_fraction=0.25)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    placement = trainer.learning_phase(loader)
    assert placement.hot_rows_total > 0
    assert len(placement.hot_sets) == tiny_model_config.num_sparse_features


def test_train_step_before_learning_phase_raises(tiny_model_config, tiny_click_log):
    trainer = HotlineTrainer(DLRM(tiny_model_config, seed=0), make_accelerator())
    with pytest.raises(RuntimeError):
        trainer.train_step(tiny_click_log.batch(0, 32))


def test_hotline_update_identical_to_baseline_dlrm(tiny_model_config, tiny_click_log):
    """The headline fidelity claim: same mini-batch, same parameter update."""
    hotline_model = DLRM(tiny_model_config, seed=42)
    baseline_model = DLRM(tiny_model_config, seed=42)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer = HotlineTrainer(hotline_model, make_accelerator(), lr=0.05, sample_fraction=0.25)
    trainer.learning_phase(loader)

    for start in (0, 128, 256):
        batch = tiny_click_log.batch(start, 128)
        trainer.train_step(batch)
        baseline_model.train_step(batch, lr=0.05)

    hotline_state = hotline_model.state_snapshot()
    baseline_state = baseline_model.state_snapshot()
    for key in baseline_state:
        np.testing.assert_allclose(
            hotline_state[key], baseline_state[key], rtol=1e-9, atol=1e-12
        )


def test_hotline_update_identical_to_baseline_tbsm(tiny_ts_model_config, tiny_ts_click_log):
    hotline_model = TBSM(tiny_ts_model_config, seed=9)
    baseline_model = TBSM(tiny_ts_model_config, seed=9)
    loader = MiniBatchLoader(tiny_ts_click_log, batch_size=128)
    trainer = HotlineTrainer(hotline_model, make_accelerator(), lr=0.05, sample_fraction=0.25)
    trainer.learning_phase(loader)
    batch = tiny_ts_click_log.batch(0, 128)
    trainer.train_step(batch)
    baseline_model.train_step(batch, lr=0.05)
    hotline_state = hotline_model.state_snapshot()
    baseline_state = baseline_model.state_snapshot()
    for key in baseline_state:
        np.testing.assert_allclose(
            hotline_state[key], baseline_state[key], rtol=1e-9, atol=1e-12
        )


def test_hotline_training_loop_matches_reference_metrics(tiny_model_config, tiny_click_log):
    """Table V: identical accuracy / AUC / log-loss after full training."""
    hotline_model = DLRM(tiny_model_config, seed=3)
    baseline_model = DLRM(tiny_model_config, seed=3)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    eval_batch = tiny_click_log.batch(1536, 512)

    hotline = HotlineTrainer(hotline_model, make_accelerator(), lr=0.1, sample_fraction=0.25)
    hotline.learning_phase(loader)
    hotline_result = hotline.train(loader, epochs=1, eval_batch=eval_batch)

    reference = ReferenceTrainer(baseline_model, lr=0.1)
    reference_result = reference.train(loader, epochs=1, eval_batch=eval_batch)

    assert hotline_result.final_metrics["auc"] == pytest.approx(
        reference_result.final_metrics["auc"], abs=1e-9
    )
    assert hotline_result.final_metrics["accuracy"] == pytest.approx(
        reference_result.final_metrics["accuracy"], abs=1e-9
    )
    assert hotline_result.final_metrics["logloss"] == pytest.approx(
        reference_result.final_metrics["logloss"], abs=1e-9
    )


def test_training_result_records_losses_and_popularity(tiny_model_config, tiny_click_log):
    model = DLRM(tiny_model_config, seed=1)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer = HotlineTrainer(model, make_accelerator(), sample_fraction=0.25)
    trainer.learning_phase(loader)
    result = trainer.train(loader, epochs=1)
    assert result.iterations == len(loader)
    assert len(result.popular_fractions) == result.iterations
    assert 0.0 <= result.mean_popular_fraction <= 1.0


def test_recalibration_runs_mid_epoch(tiny_model_config, tiny_click_log):
    model = DLRM(tiny_model_config, seed=1)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer = HotlineTrainer(model, make_accelerator(), sample_fraction=0.25)
    trainer.learning_phase(loader)
    result = trainer.train(loader, epochs=1, recalibrations_per_epoch=2)
    assert result.iterations == len(loader)
    # Re-calibration resets EAL statistics, so insertions happened again.
    assert trainer.accelerator.eal.insertions > 0


def test_recalibration_delta_updates_placement_in_place(tiny_model_config, tiny_click_log):
    """Recalibration reuses the existing placement/bitmaps via deltas."""
    model = DLRM(tiny_model_config, seed=1)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer = HotlineTrainer(model, make_accelerator(), sample_fraction=0.25)
    placement = trainer.learning_phase(loader)
    index = placement.index
    recalibrated = trainer.recalibrate(loader, seed=3)
    assert recalibrated is placement
    assert recalibrated.index is index
    # The delta-updated index classifies exactly like a rebuilt one would.
    from repro.core.hotset import HotSetIndex

    rebuilt = HotSetIndex(
        placement.hot_sets, rows_per_table=tiny_model_config.dataset.rows_per_table
    )
    batch = tiny_click_log.batch(0, 256)
    np.testing.assert_array_equal(
        placement.index.classify(batch.sparse), rebuilt.classify(batch.sparse)
    )


def test_evaluate_returns_all_metrics(tiny_model_config, tiny_click_log):
    model = DLRM(tiny_model_config, seed=0)
    metrics = evaluate(model, tiny_click_log.batch(0, 256))
    assert set(metrics) == {"accuracy", "auc", "logloss"}


def test_perf_model_accumulates_simulated_time(tiny_model_config, tiny_click_log):
    from repro.core.scheduler import HotlineScheduler
    from repro.models import RM2
    from repro.perf import TrainingCostModel
    from repro.hwsim import single_node

    model = DLRM(tiny_model_config, seed=0)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    perf = HotlineScheduler(TrainingCostModel(RM2, cluster=single_node(4)))
    trainer = HotlineTrainer(model, make_accelerator(), sample_fraction=0.25, perf_model=perf)
    trainer.learning_phase(loader)
    result = trainer.train(loader, epochs=1)
    assert result.simulated_time_s > 0
