"""K-shard data-parallel Hotline: numerical equivalence and simulated comm.

Extends the Eq. 5 equivalence proof to K > 1: splitting every mini-batch
into K contiguous shards, classifying each shard against its own EAL-derived
placement, and accumulating the per-µ-batch gradients (dense all-reduce +
per-table sparse merge) produces the same update as the single-replica
trainer — at the suite's established tolerance (rtol 1e-9), and bit-for-bit
for K = 1.
"""

import numpy as np
import pytest

from repro.core.accelerator import HotlineAccelerator
from repro.core.distributed import ShardedHotlineTrainer
from repro.core.eal import EALConfig
from repro.core.pipeline import HotlineTrainer
from repro.data.loader import MiniBatchLoader, ShardedLoader
from repro.hwsim.cluster import multi_node, single_node
from repro.hwsim.collectives import allreduce_time, hierarchical_allreduce_time
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM


def make_accelerator(dim=8, seed=0):
    return HotlineAccelerator(
        row_bytes=dim * 4, eal_config=EALConfig(size_bytes=1 << 16, ways=8), seed=seed
    )


def single_replica_run(model_cls, config, log, *, lr=0.05, epochs=1):
    model = model_cls(config, seed=42)
    loader = MiniBatchLoader(log, batch_size=128)
    trainer = HotlineTrainer(model, make_accelerator(), lr=lr, sample_fraction=0.25)
    result = trainer.train(loader, epochs=epochs, eval_batch=log.batch(0, 256))
    return model, result


def sharded_run(model_cls, config, log, num_shards, *, lr=0.05, epochs=1):
    model = model_cls(config, seed=42)
    loader = MiniBatchLoader(log, batch_size=128)
    trainer = ShardedHotlineTrainer(
        model, num_shards, lr=lr, sample_fraction=0.25
    )
    result = trainer.train(loader, epochs=epochs, eval_batch=log.batch(0, 256))
    return model, result, trainer


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_sharded_matches_single_replica_dlrm(
    tiny_model_config, tiny_click_log, num_shards
):
    """Figure 18 config: K-shard losses and final parameters match K=1."""
    single_model, single_result = single_replica_run(
        DLRM, tiny_model_config, tiny_click_log
    )
    sharded_model, sharded_result, _ = sharded_run(
        DLRM, tiny_model_config, tiny_click_log, num_shards
    )
    np.testing.assert_allclose(
        sharded_result.losses, single_result.losses, rtol=1e-9, atol=1e-9
    )
    single_state = single_model.state_snapshot()
    sharded_state = sharded_model.state_snapshot()
    for key in single_state:
        np.testing.assert_allclose(
            sharded_state[key], single_state[key], rtol=1e-9, atol=1e-12
        )
    assert sharded_result.final_metrics["auc"] == pytest.approx(
        single_result.final_metrics["auc"], abs=1e-9
    )


def test_one_shard_is_bit_identical_to_single_replica(tiny_model_config, tiny_click_log):
    """K=1 runs the identical computation, so equality is exact."""
    single_model, single_result = single_replica_run(
        DLRM, tiny_model_config, tiny_click_log
    )
    sharded_model, sharded_result, _ = sharded_run(
        DLRM, tiny_model_config, tiny_click_log, 1
    )
    assert sharded_result.losses == single_result.losses
    single_state = single_model.state_snapshot()
    sharded_state = sharded_model.state_snapshot()
    for key in single_state:
        np.testing.assert_array_equal(sharded_state[key], single_state[key])


@pytest.mark.parametrize("num_shards", [2, 4])
def test_sharded_matches_single_replica_tbsm(
    tiny_ts_model_config, tiny_ts_click_log, num_shards
):
    single_model, single_result = single_replica_run(
        TBSM, tiny_ts_model_config, tiny_ts_click_log
    )
    sharded_model, sharded_result, _ = sharded_run(
        TBSM, tiny_ts_model_config, tiny_ts_click_log, num_shards
    )
    np.testing.assert_allclose(
        sharded_result.losses, single_result.losses, rtol=1e-9, atol=1e-9
    )
    single_state = single_model.state_snapshot()
    sharded_state = sharded_model.state_snapshot()
    for key in single_state:
        np.testing.assert_allclose(
            sharded_state[key], single_state[key], rtol=1e-9, atol=1e-12
        )


def test_sharded_matches_full_batch_baseline(tiny_model_config, tiny_click_log):
    """The chain closes: K-shard Hotline == single-replica == baseline."""
    baseline = DLRM(tiny_model_config, seed=42)
    sharded_model, _, trainer = sharded_run(DLRM, tiny_model_config, tiny_click_log, 4)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    for batch in loader:
        baseline.train_step(batch, lr=0.05)
    baseline_state = baseline.state_snapshot()
    sharded_state = sharded_model.state_snapshot()
    for key in baseline_state:
        np.testing.assert_allclose(
            sharded_state[key], baseline_state[key], rtol=1e-9, atol=1e-12
        )


def test_four_shards_match_single_replica_on_figure18_config():
    """Acceptance check on the Figure 18 setup (scaled Criteo Kaggle)."""
    from repro.data.synthetic import generate_click_log
    from repro.models import RM2

    config = RM2.scaled(max_rows_per_table=1200, samples_per_epoch=3072)
    log = generate_click_log(config.dataset, 3072, seed=41)
    loader = MiniBatchLoader(log, batch_size=256)
    eval_batch = log.batch(2048, 1024)

    single = HotlineTrainer(
        DLRM(config, seed=13), make_accelerator(config.embedding_dim), lr=0.3,
        sample_fraction=0.25,
    )
    single_result = single.train(loader, epochs=1, eval_batch=eval_batch)

    sharded = ShardedHotlineTrainer(
        DLRM(config, seed=13), 4, lr=0.3, sample_fraction=0.25
    )
    sharded_result = sharded.train(loader, epochs=1, eval_batch=eval_batch)

    np.testing.assert_allclose(
        sharded_result.losses, single_result.losses, rtol=1e-9, atol=1e-9
    )
    single_state = single.model.state_snapshot()
    sharded_state = sharded.model.state_snapshot()
    for key in single_state:
        np.testing.assert_allclose(
            sharded_state[key], single_state[key], rtol=1e-9, atol=1e-12
        )
    # The reported simulated time carries the hwsim all-reduce term.
    expected_comm = allreduce_time(
        sharded.model.num_dense_parameters * 4.0, 4, sharded.cluster.node.gpu_link
    )
    assert sharded_result.communication_time_s == pytest.approx(
        expected_comm * sharded_result.iterations
    )


def test_train_before_learning_phase_raises(tiny_model_config, tiny_click_log):
    trainer = ShardedHotlineTrainer(DLRM(tiny_model_config, seed=0), 2)
    with pytest.raises(RuntimeError):
        trainer.train_step(tiny_click_log.batch(0, 32))


def test_invalid_shard_counts_rejected(tiny_model_config):
    with pytest.raises(ValueError):
        ShardedHotlineTrainer(DLRM(tiny_model_config, seed=0), 0)
    with pytest.raises(ValueError):
        # 2 shards cannot map one-per-GPU onto a 4-GPU node.
        ShardedHotlineTrainer(DLRM(tiny_model_config, seed=0), 2, cluster=single_node(4))


def test_batch_smaller_than_shard_count(tiny_model_config, tiny_click_log):
    """Empty trailing shards are skipped, and the update still matches."""
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=1), 8, lr=0.05, sample_fraction=0.25
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.learning_phase(loader)
    batch = tiny_click_log.batch(0, 5)
    baseline = DLRM(tiny_model_config, seed=1)
    loss, popular_fraction = trainer.train_step(batch)
    baseline.train_step(batch, lr=0.05)
    assert 0.0 <= popular_fraction <= 1.0
    for key, value in baseline.state_snapshot().items():
        np.testing.assert_allclose(
            trainer.model.state_snapshot()[key], value, rtol=1e-9, atol=1e-12
        )


def test_single_node_allreduce_term(tiny_model_config, tiny_click_log):
    """Simulated comm time is exactly hwsim's ring all-reduce term."""
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=0), 4, sample_fraction=0.25
    )
    expected = allreduce_time(
        trainer.model.num_dense_parameters * 4.0,
        4,
        trainer.cluster.node.gpu_link,
    )
    assert trainer.dense_sync_time() == pytest.approx(expected)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    result = trainer.train(loader, epochs=1)
    assert result.communication_time_s == pytest.approx(expected * result.iterations)
    assert result.simulated_time_s == pytest.approx(
        result.compute_time_s + result.communication_time_s
    )


def test_multi_node_uses_hierarchical_allreduce(tiny_model_config):
    cluster = multi_node(2, 4)
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=0), 8, cluster=cluster
    )
    expected = hierarchical_allreduce_time(
        trainer.model.num_dense_parameters * 4.0,
        4,
        2,
        cluster.node.gpu_link,
        cluster.inter_link,
    )
    assert trainer.dense_sync_time() == pytest.approx(expected)
    # The flat single-node ring uses the plain all-reduce formula instead.
    single = ShardedHotlineTrainer(DLRM(tiny_model_config, seed=0), 8)
    assert single.dense_sync_time() == pytest.approx(
        allreduce_time(
            single.model.num_dense_parameters * 4.0, 8, single.cluster.node.gpu_link
        )
    )


def test_recalibration_updates_every_shard(tiny_model_config, tiny_click_log):
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=3), 2, sample_fraction=0.25
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    result = trainer.train(loader, epochs=1, recalibrations_per_epoch=2)
    assert result.iterations == len(loader)
    placements = [replica.placement for replica in trainer.replicas]
    assert all(placement is not None for placement in placements)
    # Recalibration delta-updates the placements in place.
    assert all(replica.accelerator.eal.insertions > 0 for replica in trainer.replicas)


def test_sharded_loader_deals_contiguous_views(tiny_click_log):
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    sharded = ShardedLoader(loader, 4)
    assert len(sharded) == len(loader)
    for shards, batch in zip(sharded, loader, strict=True):
        assert len(shards) == 4
        assert sum(shard.size for shard in shards) == batch.size
        np.testing.assert_array_equal(
            np.concatenate([shard.labels for shard in shards]), batch.labels
        )
        # Sequential epochs deal basic-slice views straight into the log.
        assert all(
            shard.size == 0 or np.shares_memory(shard.dense, tiny_click_log.dense)
            for shard in shards
        )
        break


def test_sharded_loader_rejects_bad_shard_count(tiny_click_log):
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    with pytest.raises(ValueError):
        ShardedLoader(loader, 0)


# --------------------------------------------------------------------------- #
# Wire-time cache invalidation (reducer reconfigured mid-run)
# --------------------------------------------------------------------------- #
def test_bucket_time_cache_invalidates_on_reducer_reconfiguration(tiny_model_config):
    """Regression: the cached per-bucket schedule used to survive a mid-run
    reducer reconfiguration, reporting stale wire time forever."""
    from repro.core.reducer import GradientBucketReducer

    trainer = ShardedHotlineTrainer(DLRM(tiny_model_config, seed=0), 4)
    single_bucket = trainer.dense_sync_time()
    assert len(trainer._step_bucket_times()) == 1
    # Shrinking the bucket size must re-price into a multi-bucket schedule.
    trainer.reducer.bucket_bytes = 1024
    rebucketed = trainer._step_bucket_times()
    assert len(rebucketed) > 1
    assert trainer.dense_sync_time() == pytest.approx(sum(rebucketed))
    # A mode flip re-keys too (mode feeds exposure, but the key is total).
    trainer.reducer.mode = "stale-2"
    assert trainer._step_bucket_times() == rebucketed
    # Swapping the whole reducer (different replica count) re-prices again.
    trainer.reducer = GradientBucketReducer(2, cluster=trainer.cluster)
    assert trainer.dense_sync_time() != pytest.approx(single_bucket)
    assert trainer.dense_sync_time() == pytest.approx(
        sum(trainer.reducer.bucket_times(trainer.model.num_dense_parameters))
    )
    # Swapping the *trainer's* cluster re-prices too: the trainer is the
    # pricing authority, so the reducer follows it onto the new topology.
    flat_time = trainer.dense_sync_time()
    trainer.cluster = multi_node(2, 2)
    assert trainer.reducer.cluster is not trainer.cluster  # not yet synced
    hierarchical_time = trainer.dense_sync_time()
    assert trainer.reducer.cluster is trainer.cluster
    assert hierarchical_time != pytest.approx(flat_time)


def test_merged_trainer_sync_time_cache_keyed_on_configuration(tiny_model_config):
    """The merged reference's cached collective re-prices when the cluster
    (or shard count) changes instead of reporting the old constant."""
    from repro.core.distributed import MergedGradientShardedTrainer

    trainer = MergedGradientShardedTrainer(DLRM(tiny_model_config, seed=0), 4)
    single_node_time = trainer.dense_sync_time()
    assert trainer.dense_sync_time() == single_node_time  # cache hit
    trainer.cluster = multi_node(2, 2)
    multi_node_time = trainer.dense_sync_time()
    assert multi_node_time != pytest.approx(single_node_time)
    assert multi_node_time == pytest.approx(
        hierarchical_allreduce_time(
            trainer.model.num_dense_parameters * 4.0,
            2,
            2,
            trainer.cluster.node.gpu_link,
            trainer.cluster.inter_link,
        )
    )


def test_lowering_staleness_mid_run_drains_the_dense_backlog(
    tiny_model_config, tiny_click_log
):
    """Regression: flipping a stale-k reducer back to sync mid-run used to
    strand the in-flight reduces in the deque (dropping their gradient);
    the pipeline must drain the backlog instead, and the lookahead's
    sparse staleness bound must follow the reducer's live value."""
    from repro.models.dlrm import DLRM

    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=2), 2, sample_fraction=0.25,
        mode="stale-3", lookahead_window=3,
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.bind(loader)
    batches = list(loader)
    for batch in batches[:4]:
        trainer.train_step(batch)
    assert len(trainer._pending_dense) == 3
    assert trainer.lookahead.staleness == 3
    trainer.reducer.mode = "sync"  # mid-run reconfiguration
    trainer.train_step(batches[4])
    # The whole backlog (3 queued reduces + this step's) applied at once...
    assert len(trainer._pending_dense) == 0
    # ...and the sparse pipeline followed the live bound, flushing its own
    # backlog rather than deferring forever.
    assert trainer.lookahead.staleness == 0
    assert trainer.lookahead.pending_rows_total == 0
    assert trainer.replica_drift() == 0.0


def test_rebinding_a_trainer_drops_the_previous_runs_inflight_state(
    tiny_model_config, tiny_click_log
):
    """Regression: a reused trainer's stale-k deque (and the lookahead's
    deferred write-backs) used to survive into the next train() call, so
    run B's first steps applied run A's gradients.  bind() must start from
    a clean synchronisation state."""
    from repro.models.dlrm import DLRM

    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=4), 2, sample_fraction=0.25,
        mode="stale-4", lookahead_window=3,
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    # An abandoned raw-step run (no engine, so no finalize() drain) leaves
    # its last k reduces and deferred write-backs in flight.
    trainer.bind(loader)
    batches = list(loader)
    for batch in batches[:6]:
        trainer.train_step(batch)
    assert len(trainer._pending_dense) == 4  # in-flight reduces of run A
    # Re-binding (what a second train() does first) drops them...
    trainer.bind(loader)
    assert len(trainer._pending_dense) == 0
    assert trainer.lookahead.pending_rows_total == 0
    assert trainer.lookahead.cached_rows_total == 0
    # ...and a full run after the re-bind works, never sees run A's
    # backlog, and ends drained (the engine's finalize() hook).
    result = trainer.train(loader, epochs=1)
    assert len(result.losses) == len(batches)
    assert len(trainer._pending_dense) == 0  # drained by finalize()
    assert trainer.lookahead.pending_rows_total == 0
    assert trainer.replica_drift() == 0.0


def test_lookahead_replaces_partitioned_lookup_alltoall(
    tiny_model_config, tiny_click_log
):
    """With the window cache attached, remotely-owned lookups are served
    from the cache whose fills already paid the owner round-trip — the
    per-lookup all-to-all must not be charged again (BagPipe's trade)."""
    from repro.models.dlrm import DLRM

    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=0), 2, sample_fraction=0.25,
        partition_embeddings=True, lookahead_window=4,
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.bind(loader)
    batch = next(iter(loader))
    outcome = trainer.run_step(batch)
    # The avoided per-lookup volume is still observable...
    assert trainer.last_remote_lookups > 0
    assert trainer.alltoall_time(trainer.last_remote_lookups) > 0.0
    # ...but the step charges only the dense schedule plus the prefetch
    # tail — not the per-lookup exchange on top of the fills.
    exposed_dense = trainer.reducer.exposed_time(
        trainer._step_bucket_times(), outcome.compute_time_s
    )
    expected = exposed_dense + max(
        0.0, outcome.prefetch_time_s - outcome.compute_time_s
    )
    assert outcome.communication_time_s == pytest.approx(expected)
    assert outcome.prefetch_time_s > 0.0


# --------------------------------------------------------------------- #
# finalize(): the end-of-run staleness drain (PR 5)
# --------------------------------------------------------------------- #
def finalize_run(config, log, *, mode, steps, lookahead_window=0):
    from dataclasses import replace

    trainer = ShardedHotlineTrainer(
        DLRM(config, seed=23), 2, sample_fraction=0.25,
        mode=mode, lookahead_window=lookahead_window,
    )
    # A log view of exactly `steps` batches, so runs shorter than the
    # staleness bound are expressible.
    size = steps * 128
    short = replace(
        log, dense=log.dense[:size], sparse=log.sparse[:size], labels=log.labels[:size]
    )
    result = trainer.train(MiniBatchLoader(short, batch_size=128), epochs=1)
    return trainer, result


def test_finalize_drains_short_runs_to_sync_equivalence(
    tiny_model_config, tiny_click_log
):
    """Regression: a 1-step stale-4 run used to apply *no* dense update at
    all (the reduce died in the deque), so k-sweeps compared models trained
    on different gradient counts.  With finalize() the drained 1-step run
    is bit-identical to the 1-step sync run — like with like."""
    trainer_sync, _ = finalize_run(tiny_model_config, tiny_click_log, mode="sync", steps=1)
    for k in (1, 2, 4):
        trainer_stale, _ = finalize_run(
            tiny_model_config, tiny_click_log, mode=f"stale-{k}", steps=1
        )
        assert len(trainer_stale._pending_dense) == 0
        for key, value in trainer_sync.model.state_snapshot().items():
            np.testing.assert_array_equal(
                trainer_stale.model.state_snapshot()[key], value, err_msg=key
            )


def test_finalize_drains_lookahead_backlog_and_reports_it(
    tiny_model_config, tiny_click_log
):
    """A run abandoned mid-epoch leaves rows deferred in the window (a
    completed epoch evicts everything, so this is the raw-step case);
    finalize() must flush and apply them, reporting the write-back."""
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=23), 2, sample_fraction=0.25,
        mode="stale-4", lookahead_window=8,
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.bind(loader)
    for batch in list(loader)[:3]:  # 3 of the epoch's batches: window still full
        trainer.train_step(batch)
    assert trainer.lookahead.pending_rows_total > 0
    assert len(trainer._pending_dense) == 3  # all 3 reduces still in flight
    outcome = trainer.finalize()
    assert outcome is not None
    assert outcome.stale_rows > 0
    assert outcome.prefetch_time_s >= 0.0
    assert trainer.lookahead.pending_rows_total == 0
    assert len(trainer._pending_dense) == 0
    assert trainer.replica_drift() == 0.0
    # Nothing left in flight: a second finalize is a no-op.
    assert trainer.finalize() is None


def test_engine_run_ends_with_nothing_deferred(tiny_model_config, tiny_click_log):
    """Through the engine, a stale-k + lookahead run ends fully applied:
    epoch-end evictions flush the sparse side and finalize() drains the
    dense deque, so the final evaluation sees every computed gradient."""
    trainer, _ = finalize_run(
        tiny_model_config, tiny_click_log, mode="stale-4", steps=4, lookahead_window=4
    )
    assert len(trainer._pending_dense) == 0
    assert trainer.lookahead.pending_rows_total == 0
    assert trainer.replica_drift() == 0.0


def test_finalize_is_noop_for_sync_runs(tiny_model_config, tiny_click_log):
    trainer, _ = finalize_run(tiny_model_config, tiny_click_log, mode="sync", steps=3)
    assert trainer.finalize() is None
