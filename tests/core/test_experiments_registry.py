"""Tests for the programmatic experiment registry."""

import pytest

from repro.experiments import Experiment, list_experiments, run_experiment


def test_registry_lists_all_performance_figures():
    ids = [experiment.id for experiment in list_experiments()]
    assert ids == sorted(ids, key=ids.index)  # stable order
    for expected in ("fig3", "fig5", "fig19", "fig22", "fig25", "fig26", "fig30"):
        assert expected in ids
    assert all(isinstance(e, Experiment) and e.title for e in list_experiments())


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_fig19_structure_and_claims():
    data = run_experiment("fig19")
    assert "Criteo Terabyte / 4 GPU" in data
    entry = data["Criteo Terabyte / 4 GPU"]
    assert entry["over_xdl"] > entry["over_dlrm"] > entry["over_fae"] > 1.0


def test_fig22_contains_oom_markers():
    data = run_experiment("fig22")
    assert data["Criteo Terabyte / 1 GPU"] == "OOM"
    assert isinstance(data["Criteo Terabyte / 4 GPU"], float)


def test_fig25_gather_hidden_at_default_ratio():
    data = run_experiment("fig25")
    assert data[0.8]["hidden"] is True
    assert data[0.2]["exposed_ms"] >= data[0.8]["exposed_ms"]


def test_fig26_speedups_grow_with_batch():
    data = run_experiment("fig26")
    for label, sweep in data.items():
        batches = sorted(sweep)
        assert sweep[batches[-1]] > sweep[batches[1]], label


def test_fig30_oom_pattern():
    data = run_experiment("fig30")
    assert data["SYN-M2 / 4 node(s)"] == "OOM"
    assert isinstance(data["SYN-M1 / 4 node(s)"], float)


def test_fig30f_functional_scaling_is_loss_invariant():
    data = run_experiment("fig30f")
    losses = [entry["final_loss"] for entry in data.values()]
    assert losses[0] == pytest.approx(losses[1], rel=1e-9)
    assert losses[0] == pytest.approx(losses[2], rel=1e-9)
    comm = [entry["communication_time_s"] for entry in data.values()]
    assert comm[0] > 0.0 and comm[2] > comm[1] > comm[0]
    for entry in data.values():
        assert entry["simulated_time_s"] == pytest.approx(
            entry["compute_time_s"] + entry["communication_time_s"]
        )


def test_breakdowns_sum_to_one():
    for fig in ("fig3", "fig4", "fig5"):
        data = run_experiment(fig)
        for label, breakdown in data.items():
            assert sum(breakdown.values()) == pytest.approx(1.0), (fig, label)


def test_fig30_replicated_registered():
    ids = [experiment.id for experiment in list_experiments()]
    assert "fig30r" in ids
    assert ids.index("fig30r") == ids.index("fig30f") + 1


def test_fig30_stale_lookahead_registered():
    ids = [experiment.id for experiment in list_experiments()]
    assert "fig30s" in ids
    assert ids.index("fig30s") == ids.index("fig30r") + 1


def test_fig30_nested_pipeline_registered():
    ids = [experiment.id for experiment in list_experiments()]
    assert "fig30n" in ids
    assert ids.index("fig30n") == ids.index("fig30s") + 1


@pytest.mark.slow
def test_fig30n_sweeps_past_1024_devices_and_reports_crossover():
    """Acceptance: the nested-pipelining sweep reaches >= 1,024 simulated
    devices on the hierarchical topology and locates the scale where the
    Hotline split stops paying relative to nested stage pipelining."""
    data = run_experiment("fig30n")
    sweep = data["sweep"]
    assert max(sweep) >= 1024
    for devices, row in sweep.items():
        assert row["nodes"] * 8 == devices
        assert row["hotline_step_s"] > 0.0 and row["nested_step_s"] > 0.0
        assert row["pipeline_stages"] * row["pipeline_replicas"] == row["nodes"]
    smallest, largest = min(sweep), max(sweep)
    # The popular/non-popular split pays at testbed scale...
    assert sweep[smallest]["nested_speedup"] < 1.0
    # ...and stops paying at the large end, inside the sweep.
    assert sweep[largest]["nested_speedup"] > 1.0
    crossover = data["crossover_devices"]
    assert crossover is not None and smallest < crossover <= largest
    # Hotline's whole-cluster spine all-reduce is what grows; the nested
    # arm's per-stage replica ring stays far cheaper at the large end.
    assert (
        sweep[largest]["hotline_dense_sync_s"]
        > 5.0 * sweep[largest]["nested_dense_sync_s"]
    )
