"""Unit tests for the access-aware embedding placement."""

import numpy as np
import pytest

from repro.core.placement import EmbeddingPlacement


def make_placement(hot0=(0, 1, 2), hot1=(4,), budget=1 << 20):
    return EmbeddingPlacement(
        hot_sets=[np.array(hot0, dtype=np.int64), np.array(hot1, dtype=np.int64)],
        rows_per_table=(100, 50),
        embedding_dim=8,
        dtype_bytes=4,
        hbm_budget_bytes=budget,
    )


def test_row_accounting():
    placement = make_placement()
    assert placement.hot_rows_total == 4
    assert placement.cold_rows_total == 146
    assert placement.row_bytes == 32
    assert placement.gpu_bytes == 4 * 32
    assert placement.cpu_bytes == 146 * 32


def test_hot_and_cold_queries():
    placement = make_placement()
    assert placement.is_hot(0, 1)
    assert not placement.is_hot(0, 50)
    hot, cold = placement.split_rows(0, np.array([0, 1, 7]))
    assert hot.tolist() == [0, 1]
    assert cold.tolist() == [7]


def test_split_rows_with_empty_hot_set():
    placement = EmbeddingPlacement(
        hot_sets=[np.empty(0, dtype=np.int64)],
        rows_per_table=(10,),
        embedding_dim=4,
    )
    hot, cold = placement.split_rows(0, np.array([1, 2]))
    assert hot.size == 0
    assert cold.tolist() == [1, 2]


def test_budget_check():
    assert make_placement(budget=1 << 20).fits_budget()
    assert not make_placement(budget=64).fits_budget()


def test_out_of_range_hot_rows_rejected():
    with pytest.raises(ValueError):
        EmbeddingPlacement(
            hot_sets=[np.array([1000])], rows_per_table=(10,), embedding_dim=4
        )


def test_mismatched_table_count_rejected():
    with pytest.raises(ValueError):
        EmbeddingPlacement(hot_sets=[], rows_per_table=(10,), embedding_dim=4)


def test_truncate_to_budget_keeps_most_accessed_rows():
    placement = make_placement(hot0=(0, 1, 2, 3), hot1=(0, 1), budget=4 * 32)
    counts = [np.zeros(100), np.zeros(50)]
    counts[0][[0, 1, 2, 3]] = [100, 90, 5, 1]
    counts[1][[0, 1]] = [80, 2]
    truncated = placement.truncate_to_budget(counts)
    assert truncated.hot_rows_total == 4
    assert truncated.fits_budget()
    assert 0 in truncated.hot_sets[0] and 1 in truncated.hot_sets[0]
    assert 0 in truncated.hot_sets[1]
    assert 3 not in truncated.hot_sets[0]


def test_truncate_noop_when_within_budget():
    placement = make_placement()
    counts = [np.ones(100), np.ones(50)]
    assert placement.truncate_to_budget(counts) is placement


def test_update_hot_sets_applies_in_place_deltas():
    placement = make_placement(hot0=(0, 1, 2), hot1=(4,))
    index_before = placement.index
    new_hot = [np.array([1, 2, 9], dtype=np.int64), np.array([4, 10], dtype=np.int64)]
    assert placement.update_hot_sets(new_hot) is placement
    assert placement.index is index_before  # bitmaps updated, not rebuilt
    np.testing.assert_array_equal(placement.hot_sets[0], [1, 2, 9])
    np.testing.assert_array_equal(placement.hot_sets[1], [4, 10])
    assert placement.hot_rows_total == 5
    assert not placement.is_hot(0, 0)
    assert placement.is_hot(0, 9) and placement.is_hot(1, 10)


def test_update_hot_sets_validates_table_count():
    placement = make_placement()
    with pytest.raises(ValueError):
        placement.update_hot_sets([np.array([1])])


# ---------------------------------------------------------------------- #
# PartitionedEmbeddingPlacement (row-wise model parallelism)
# ---------------------------------------------------------------------- #

from repro.core.placement import PartitionedEmbeddingPlacement
from repro.nn.embedding import SparseGradient


def make_partition(rows=(100, 50), shards=4, dim=8):
    return PartitionedEmbeddingPlacement(
        rows_per_table=rows, num_shards=shards, embedding_dim=dim
    )


def test_partition_bounds_are_balanced_and_cover():
    partition = make_partition(rows=(10,), shards=3)
    assert partition.bounds(0).tolist() == [0, 3, 6, 10]
    ranges = [partition.owned_range(0, k) for k in range(3)]
    assert ranges == [(0, 3), (3, 6), (6, 10)]
    assert sum(hi - lo for lo, hi in ranges) == 10


def test_partition_owner_lookup_vectorised():
    partition = make_partition(rows=(10,), shards=2)
    owners = partition.owner_of(0, np.array([0, 4, 5, 9]))
    assert owners.tolist() == [0, 0, 1, 1]
    with pytest.raises(ValueError):
        partition.owner_of(0, np.array([10]))


def test_partition_memory_accounting():
    partition = make_partition(rows=(100, 50), shards=4, dim=8)
    assert sum(partition.owned_row_count(k) for k in range(4)) == 150
    assert partition.shard_bytes(0) == partition.owned_row_count(0) * 8 * 4
    assert partition.num_tables == 2
    assert partition.row_bytes == 32


def test_partition_tables_smaller_than_shard_count():
    """A 2-row table over 4 shards: trailing shards own nothing."""
    partition = make_partition(rows=(2,), shards=4)
    counts = [partition.owned_range(0, k) for k in range(4)]
    assert [hi - lo for lo, hi in counts] == [0, 1, 0, 1]
    assert sum(hi - lo for lo, hi in counts) == 2


def test_partition_remote_lookup_count():
    partition = make_partition(rows=(10,), shards=2)
    # shard 0 owns rows [0, 5); lookups of 5..9 are remote to it.
    sparse = np.array([[[0, 5]], [[9, 2]]])  # (batch=2, tables=1, pooling=2)
    assert partition.remote_lookup_count(sparse, 0) == 2
    assert partition.remote_lookup_count(sparse, 1) == 2
    with pytest.raises(ValueError):
        partition.remote_lookup_count(np.zeros((2, 3)), 0)
    assert partition.remote_lookup_count(np.empty((0, 1, 2), dtype=np.int64), 0) == 0


def test_partition_routes_merged_gradient_by_owner():
    partition = make_partition(rows=(10,), shards=2)
    grad = SparseGradient(np.array([0, 3, 5, 9]), np.arange(16.0).reshape(4, 4))
    routed = partition.route_gradient(0, grad)
    assert routed[0].indices.tolist() == [0, 3]
    assert routed[1].indices.tolist() == [5, 9]
    np.testing.assert_array_equal(routed[1].values, grad.values[2:])
    # Routed values are views — dtype (and storage) preserved.
    assert routed[0].values.dtype == grad.values.dtype


def test_partition_validates_configuration():
    with pytest.raises(ValueError):
        PartitionedEmbeddingPlacement(rows_per_table=(10,), num_shards=0, embedding_dim=4)
    with pytest.raises(ValueError):
        PartitionedEmbeddingPlacement(rows_per_table=(0,), num_shards=2, embedding_dim=4)


# --------------------------------------------------------------------- #
# HybridEmbeddingLayout (hot replicated x cold partitioned)
# --------------------------------------------------------------------- #

from repro.core.placement import HybridEmbeddingLayout


def make_hybrid(hot0=(0, 1, 2), hot1=(4,), shards=2, budget=1 << 20):
    placement = EmbeddingPlacement(
        hot_sets=[np.array(hot0, dtype=np.int64), np.array(hot1, dtype=np.int64)],
        rows_per_table=(100, 50),
        embedding_dim=8,
        dtype_bytes=4,
        hbm_budget_bytes=budget,
    )
    partition = PartitionedEmbeddingPlacement(
        rows_per_table=(100, 50), num_shards=shards, embedding_dim=8
    )
    return HybridEmbeddingLayout(placement=placement, partition=partition)


def test_hybrid_shard_bytes_replicates_hot_and_partitions_cold():
    hybrid = make_hybrid()
    # Shard 0 owns rows [0, 50) of table 0 (3 hot inside) and [0, 25) of
    # table 1 (row 4 hot inside): 50 - 3 + 25 - 1 = 71 cold rows.
    assert hybrid.owned_cold_row_count(0) == 71
    # Shard 1's owned ranges contain no hot rows: 50 + 25 cold rows.
    assert hybrid.owned_cold_row_count(1) == 75
    row_bytes = hybrid.row_bytes
    assert hybrid.shard_bytes(0) == 4 * row_bytes + 71 * row_bytes
    assert hybrid.shard_bytes(1) == 4 * row_bytes + 75 * row_bytes
    # Every row has exactly one cold home or is replicated: totals add up.
    total_cold = sum(hybrid.owned_cold_row_count(k) for k in range(2))
    assert total_cold == 150 - 4


def test_hybrid_unsorted_hot_sets_count_correctly():
    hybrid = make_hybrid(hot0=(2, 0, 1))  # construction order is the user's
    assert hybrid.owned_cold_row_count(0) == 71


def test_hybrid_fits_budget_uses_max_shard():
    row_bytes = 8 * 4
    assert make_hybrid(budget=(4 + 75) * row_bytes).fits_budget()
    assert not make_hybrid(budget=(4 + 74) * row_bytes).fits_budget()


def test_hybrid_remote_lookups_are_cold_only():
    hybrid = make_hybrid()
    # Table 0: shard 0 owns [0, 50).  Row 1 is hot (never remote), row 60
    # is cold+remote to shard 0, row 10 is cold+local to shard 0.
    sparse = np.array([[[1, 60], [4, 4]], [[10, 99], [30, 30]]])
    assert hybrid.remote_cold_lookup_count(sparse, 0) == 4  # 60, 99, 30, 30
    # The plain partition charges the hot lookups too.
    assert hybrid.partition.remote_lookup_count(sparse, 0) >= 4
    with pytest.raises(ValueError):
        hybrid.remote_cold_lookup_count(np.zeros((2, 3)), 0)
    assert hybrid.remote_cold_lookup_count(np.empty((0, 2, 1), dtype=np.int64), 0) == 0


def test_hybrid_route_gradient_splits_replicated_from_owned():
    hybrid = make_hybrid()
    grad = SparseGradient(np.array([0, 2, 10, 60]), np.arange(16.0).reshape(4, 4))
    hot_grad, per_owner = hybrid.route_gradient(0, grad)
    assert hot_grad.indices.tolist() == [0, 2]
    assert per_owner[0].indices.tolist() == [10]
    assert per_owner[1].indices.tolist() == [60]
    np.testing.assert_array_equal(hot_grad.values, grad.values[[0, 1]])
    np.testing.assert_array_equal(per_owner[1].values, grad.values[3:])


def test_hybrid_validates_matching_layouts():
    placement = EmbeddingPlacement(
        hot_sets=[np.array([0], dtype=np.int64)],
        rows_per_table=(10,),
        embedding_dim=8,
    )
    partition = PartitionedEmbeddingPlacement(
        rows_per_table=(20,), num_shards=2, embedding_dim=8
    )
    with pytest.raises(ValueError):
        HybridEmbeddingLayout(placement=placement, partition=partition)
    partition = PartitionedEmbeddingPlacement(
        rows_per_table=(10,), num_shards=2, embedding_dim=4
    )
    with pytest.raises(ValueError):
        HybridEmbeddingLayout(placement=placement, partition=partition)
