"""Cross-table stacked fusion: store mechanics, parity, deepcopy safety.

:class:`~repro.nn.embedding.StackedEmbeddingStore` concatenates a model's
embedding tables into one ``(sum_rows, dim)`` buffer so the fused step
issues one gather and one segmented scatter per *step* instead of per
table.  Pinned here:

* store mechanics — offsets, views, stacked index arithmetic, and the
  combined :func:`~repro.nn.embedding.stacked_segmented_scatter` against
  the per-table :func:`~repro.nn.embedding.segmented_scatter` reference;
* **bit-parity** — ``stacked=True`` DLRM/TBSM training (fused and
  unfused, single- and multi-replica) is bit-identical to the per-table
  layout it replaces;
* **deepcopy safety** — replicating a stacked model copies the store once
  per replica and mutating one replica's buffer never reaches another's
  weights (the hazard the ``(store, slot)`` handle scheme exists to
  avoid: ndarray *views* stored as attributes would materialise into
  orphaned copies under ``copy.deepcopy``).
"""

import copy

import numpy as np
import pytest

from repro.core.distributed import ShardedHotlineTrainer
from repro.core.pipeline import HotlineTrainer
from repro.data.loader import MiniBatchLoader
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM
from repro.nn.embedding import (
    EmbeddingBag,
    SparseGradient,
    StackedEmbeddingStore,
    segment_ids_for,
    segmented_scatter,
    stacked_segmented_scatter,
)


def make_tables(rows=(16, 8, 4), dim=4):
    return [
        EmbeddingBag(r, dim, np.random.default_rng(100 + i), name=f"t{i}")
        for i, r in enumerate(rows)
    ]


# --------------------------------------------------------------------- #
# Store mechanics
# --------------------------------------------------------------------- #
def test_store_offsets_views_and_stacked_indices():
    tables = make_tables()
    originals = [table.weight.copy() for table in tables]
    store = StackedEmbeddingStore(tables)
    np.testing.assert_array_equal(store.offsets, [0, 16, 24, 28])
    assert store.total_rows == 28
    for slot, (table, original) in enumerate(zip(tables, originals, strict=True)):
        # Adoption rebinds each table's weight to a view of the buffer...
        assert table.weight.base is store.buffer
        np.testing.assert_array_equal(table.weight, original)
        np.testing.assert_array_equal(store.table_view(slot), original)
    # ...so updates through either side are the same storage.
    tables[1].weight[3, :] = 7.5
    np.testing.assert_array_equal(store.buffer[16 + 3], 7.5)
    block = np.array([[[2], [3], [1]]])  # (batch=1, tables=3, pooling=1)
    stacked = store.stacked_indices(block)
    np.testing.assert_array_equal(stacked[0, :, 0], [2, 16 + 3, 24 + 1])
    np.testing.assert_array_equal(store.gather(stacked)[0, 2, 0], store.buffer[25])


def test_store_rejects_mixed_dims_and_empty():
    with pytest.raises(ValueError, match="zero tables"):
        StackedEmbeddingStore([])
    rng = np.random.default_rng(0)
    mixed = [EmbeddingBag(4, 2, rng), EmbeddingBag(4, 3, rng)]
    with pytest.raises(ValueError, match="one dim"):
        StackedEmbeddingStore(mixed)


def test_adopted_weight_is_read_only_handle():
    """No setter: accidental ``table.weight = ...`` must raise, adopted or
    not — the handle scheme is what keeps deepcopy safe."""
    tables = make_tables()
    StackedEmbeddingStore(tables)
    with pytest.raises(AttributeError):
        tables[0].weight = np.zeros((16, 4))


def test_stacked_scatter_matches_per_table_reference():
    """The combined scatter returns, per table and segment, exactly the
    per-table ``segmented_scatter``'s buckets — same rows, same bits (the
    (b, t, p) ravel restricted to one table is (b, p)-lexicographic, i.e.
    the per-table flat order)."""
    rng = np.random.default_rng(5)
    rows, dim, batch, pooling = (16, 8, 4), 4, 12, 3
    store = StackedEmbeddingStore(make_tables(rows, dim))
    sparse = np.stack(
        [rng.integers(0, r, size=(batch, pooling)) for r in rows], axis=1
    )
    grads = rng.standard_normal((batch, len(rows), pooling, dim))
    segments = [np.arange(0, 5), np.arange(5, batch)]
    segment_ids = segment_ids_for(segments, batch)

    stacked_block = store.stacked_indices(sparse)
    combined = stacked_segmented_scatter(
        stacked_block.reshape(-1),
        grads.reshape(-1, dim),
        np.repeat(segment_ids, len(rows) * pooling),
        len(segments),
        store.offsets,
        dim,
    )
    for t in range(len(rows)):
        reference = segmented_scatter(
            sparse[:, t].reshape(-1),
            grads[:, t].reshape(-1, dim),
            np.repeat(segment_ids, pooling),
            len(segments),
            rows[t],
            dim,
        )
        for s in range(len(segments)):
            np.testing.assert_array_equal(
                combined[t][s].indices, reference[s].indices, err_msg=f"t{t}s{s}"
            )
            np.testing.assert_array_equal(
                combined[t][s].values, reference[s].values, err_msg=f"t{t}s{s}"
            )


def test_stacked_scatter_empty_input():
    store = StackedEmbeddingStore(make_tables())
    out = stacked_segmented_scatter(
        np.empty(0, dtype=np.int64),
        np.empty((0, 4)),
        np.empty(0, dtype=np.int64),
        2,
        store.offsets,
        4,
    )
    assert len(out) == 3
    for per_segment in out:
        assert len(per_segment) == 2
        assert all(grad.nnz == 0 for grad in per_segment)


# --------------------------------------------------------------------- #
# Model-level bit-parity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("fused", [True, False])
def test_stacked_dlrm_training_bit_identical(
    tiny_model_config, tiny_click_log, fused
):
    """A stacked DLRM trains bit-identically to the per-table layout on
    both the fused and the sequential two-pass µ-batch schedule."""
    results = {}
    for stacked in (False, True):
        model = DLRM(tiny_model_config, seed=9, stacked=stacked)
        trainer = HotlineTrainer(model, lr=0.05, sample_fraction=0.25, fused=fused)
        result = trainer.train(
            MiniBatchLoader(tiny_click_log, batch_size=128),
            epochs=1,
            eval_batch=tiny_click_log.batch(0, 256),
        )
        results[stacked] = (result, model.state_snapshot())
    assert results[True][0].losses == results[False][0].losses
    assert results[True][0].final_metrics == results[False][0].final_metrics
    for key, value in results[False][1].items():
        np.testing.assert_array_equal(results[True][1][key], value, err_msg=key)


def test_stacked_tbsm_training_bit_identical(tiny_ts_model_config, tiny_ts_click_log):
    """TBSM (history sequence + pooled tables) shares the guarantee."""
    states = {}
    for stacked in (False, True):
        model = TBSM(tiny_ts_model_config, seed=9, stacked=stacked)
        trainer = HotlineTrainer(model, lr=0.05, sample_fraction=0.25)
        result = trainer.train(
            MiniBatchLoader(tiny_ts_click_log, batch_size=128), epochs=1
        )
        states[stacked] = (result.losses, model.state_snapshot())
    assert states[True][0] == states[False][0]
    for key, value in states[False][1].items():
        np.testing.assert_array_equal(states[True][1][key], value, err_msg=key)


def test_stacked_sharded_training_bit_identical(tiny_model_config, tiny_click_log):
    """K=2 replicas of a stacked model — deepcopied stores and all —
    reproduce the per-table sharded run exactly."""
    losses = {}
    states = {}
    for stacked in (False, True):
        model = DLRM(tiny_model_config, seed=9, stacked=stacked)
        trainer = ShardedHotlineTrainer(model, 2, lr=0.05, sample_fraction=0.25)
        result = trainer.train(MiniBatchLoader(tiny_click_log, batch_size=128), epochs=1)
        assert trainer.replica_drift() == 0.0
        losses[stacked] = result.losses
        states[stacked] = model.state_snapshot()
    assert losses[True] == losses[False]
    for key, value in states[False].items():
        np.testing.assert_array_equal(states[True][key], value, err_msg=key)


def test_stacked_state_snapshot_matches_per_table(tiny_model_config):
    """Snapshots see through the stacked layout: same keys, same arrays."""
    per_table = DLRM(tiny_model_config, seed=9).state_snapshot()
    stacked = DLRM(tiny_model_config, seed=9, stacked=True).state_snapshot()
    assert per_table.keys() == stacked.keys()
    for key, value in per_table.items():
        np.testing.assert_array_equal(stacked[key], value, err_msg=key)


# --------------------------------------------------------------------- #
# Deepcopy safety
# --------------------------------------------------------------------- #
def test_deepcopy_rebinds_handles_to_the_copied_store(tiny_model_config):
    model = DLRM(tiny_model_config, seed=3, stacked=True)
    clone = copy.deepcopy(model)
    assert clone.stacked is not model.stacked
    assert not np.shares_memory(clone.stacked.buffer, model.stacked.buffer)
    for table, original in zip(clone.tables, model.tables, strict=True):
        # Every cloned table resolves into the *cloned* store's buffer
        # (deepcopy memoisation: one store copy per replica, not per table).
        assert table.weight.base is clone.stacked.buffer
        assert not np.shares_memory(table.weight, original.weight)
        np.testing.assert_array_equal(table.weight, original.weight)


def test_mutating_one_replica_never_aliases_another(tiny_model_config):
    """The acceptance claim: an in-place sparse update on one replica's
    stacked store leaves every other replica's weights untouched."""
    model = DLRM(tiny_model_config, seed=3, stacked=True)
    trainer = ShardedHotlineTrainer(model, 2, sample_fraction=0.25)
    replica_a, replica_b = (replica.model for replica in trainer.replicas)
    before_b = [table.weight.copy() for table in replica_b.tables]
    grad = SparseGradient(np.array([0, 1]), np.full((2, model.config.embedding_dim), 3.0))
    replica_a.tables[0].apply_sparse_update(grad, lr=1.0)
    assert not np.allclose(replica_a.tables[0].weight[:2], before_b[0][:2])
    for table, before in zip(replica_b.tables, before_b, strict=True):
        np.testing.assert_array_equal(table.weight, before)
