"""Bit-parity grid for the batched dense path (PR 7).

The segment-packed dense pass (:mod:`repro.nn.gemm`) and the sharded
trainer's replica-stacked sync GEMMs both claim *bit*-identity with the
retained sequential path.  This grid proves it:

* ``fused_loss_and_gradients`` batched-vs-sequential on DLRM and TBSM,
  across {stacked, per-table} embedding stores and segment shapes
  {whole batch, contiguous halves, popular/non-popular-style interleaved
  partition, segments below the certification threshold} — comparing
  losses, every dense gradient, every sparse gradient, and the
  ``after_segment`` per-segment partial snapshots the sharded trainer
  depends on.
* A real RM2-width DLRM (K=512 hidden layers), where the OpenBLAS
  small-matrix kernel actually diverges from the blocked path and the
  per-shape certification (:func:`repro.nn.gemm.packed_rows_threshold`)
  has to route individual layers to their per-segment fallback.
* Replica-stacked vs per-replica sync training at K ∈ {1, 2, 4}:
  bitwise-equal losses, final parameters, and zero replica drift.
"""

import numpy as np
import pytest

from repro.core.distributed import ShardedHotlineTrainer
from repro.data import generate_click_log
from repro.data.loader import MiniBatchLoader
from repro.models import RM2
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM
from repro.nn.gemm import NEVER_PACKED, PackedMLP, packed_rows_threshold, segment_bounds
from repro.nn.mlp import MLP


def whole(batch_size):
    return [np.arange(batch_size)]


def halves(batch_size):
    half = batch_size // 2
    return [np.arange(0, half), np.arange(half, batch_size)]


def interleaved(batch_size):
    """Popular/non-popular shape: two ascending, interleaved index sets."""
    idx = np.arange(batch_size)
    return [idx[idx % 3 == 0], idx[idx % 3 != 0]]


def tiny_segments(batch_size):
    """Segments below any GEMM certification threshold (fallback path)."""
    return [np.arange(0, 2), np.arange(2, 3), np.arange(3, batch_size)]


SEGMENT_GRIDS = {
    "whole": whole,
    "halves": halves,
    "interleaved": interleaved,
    "tiny": tiny_segments,
}


def run_dense_pass(model, batch, segments):
    """Losses, sparse grads, dense grads, and per-segment partials."""
    model.zero_grad()
    partials = []

    def snapshot(_segment, _loss):
        partials.append(
            np.concatenate([g.ravel().copy() for _p, g in model.dense_parameters()])
        )

    losses, table_grads = model.fused_loss_and_gradients(
        batch, segments, normalizer=batch.size, after_segment=snapshot
    )
    dense = [g.copy() for _p, g in model.dense_parameters()]
    return losses, table_grads, dense, partials


def assert_bitwise_equal_pass(model_seq, model_packed, batch, segments):
    seq = run_dense_pass(model_seq, batch, segments)
    packed = run_dense_pass(model_packed, batch, segments)
    assert packed[0] == seq[0], "per-segment losses diverged"
    for table, (grads_seq, grads_packed) in enumerate(zip(seq[1], packed[1])):
        for seg, (gs, gp) in enumerate(zip(grads_seq, grads_packed, strict=True)):
            np.testing.assert_array_equal(
                gp.indices, gs.indices, err_msg=f"table {table} segment {seg} indices"
            )
            np.testing.assert_array_equal(
                gp.values, gs.values, err_msg=f"table {table} segment {seg} values"
            )
    for i, (gs, gp) in enumerate(zip(seq[2], packed[2], strict=True)):
        np.testing.assert_array_equal(gp, gs, err_msg=f"dense grad {i}")
    assert len(packed[3]) == len(seq[3]) == len(segments)
    for seg, (ps, pp) in enumerate(zip(seq[3], packed[3])):
        np.testing.assert_array_equal(
            pp, ps, err_msg=f"after_segment partial {seg}"
        )


@pytest.mark.parametrize("stacked", [False, True], ids=["per-table", "stacked"])
@pytest.mark.parametrize("grid", sorted(SEGMENT_GRIDS), ids=sorted(SEGMENT_GRIDS))
def test_dlrm_batched_matches_sequential(tiny_model_config, tiny_click_log, stacked, grid):
    batch = tiny_click_log.batch(0, 128)
    segments = SEGMENT_GRIDS[grid](batch.size)
    assert_bitwise_equal_pass(
        DLRM(tiny_model_config, seed=3, stacked=stacked, batched=False),
        DLRM(tiny_model_config, seed=3, stacked=stacked, batched=True),
        batch,
        segments,
    )


@pytest.mark.parametrize("stacked", [False, True], ids=["per-table", "stacked"])
@pytest.mark.parametrize("grid", sorted(SEGMENT_GRIDS), ids=sorted(SEGMENT_GRIDS))
def test_tbsm_batched_matches_sequential(
    tiny_ts_model_config, tiny_ts_click_log, stacked, grid
):
    batch = tiny_ts_click_log.batch(0, 128)
    segments = SEGMENT_GRIDS[grid](batch.size)
    assert_bitwise_equal_pass(
        TBSM(tiny_ts_model_config, seed=3, stacked=stacked, batched=False),
        TBSM(tiny_ts_model_config, seed=3, stacked=stacked, batched=True),
        batch,
        segments,
    )


@pytest.mark.parametrize("grid", sorted(SEGMENT_GRIDS), ids=sorted(SEGMENT_GRIDS))
def test_rm2_width_dlrm_batched_matches_sequential(grid):
    """Real RM2 MLP widths (K=512): certification must route the unstable
    GEMM shapes per-segment and still reproduce the sequential bits."""
    config = RM2.scaled(max_rows_per_table=600, samples_per_epoch=512)
    log = generate_click_log(config.dataset, 512, seed=17)
    batch = log.batch(0, 256)
    segments = SEGMENT_GRIDS[grid](batch.size)
    assert_bitwise_equal_pass(
        DLRM(config, seed=5, batched=False),
        DLRM(config, seed=5, batched=True),
        batch,
        segments,
    )


def test_packed_pass_is_deterministic_across_block_heights(tiny_model_config, tiny_click_log):
    """The same segment trained alone or packed with others yields the
    same bits — the certification's two-heights guarantee, end to end."""
    batch = tiny_click_log.batch(0, 128)
    model = DLRM(tiny_model_config, seed=3, batched=True)
    losses_whole, _, dense_whole, _ = run_dense_pass(model, batch, whole(batch.size))
    losses_again, _, dense_again, _ = run_dense_pass(model, batch, whole(batch.size))
    assert losses_whole == losses_again
    for a, b in zip(dense_whole, dense_again, strict=True):
        np.testing.assert_array_equal(a, b)


# --------------------------------------------------------------------- #
# Replica-stacked sync GEMMs
# --------------------------------------------------------------------- #
def run_sharded(config, log, num_shards, *, batched, dense_batching, steps=6):
    trainer = ShardedHotlineTrainer(
        DLRM(config, seed=9, batched=batched),
        num_shards,
        lr=0.1,
        sample_fraction=0.25,
        dense_batching=dense_batching,
    )
    loader = MiniBatchLoader(log, batch_size=128)
    trainer.bind(loader)
    losses = [trainer.run_step(batch).loss for batch in list(loader)[:steps]]
    return trainer, losses


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_replica_stacked_matches_per_replica(
    tiny_model_config, tiny_click_log, num_shards
):
    """Stacking K sync replicas into one GEMM changes no observable bit."""
    baseline, losses_ref = run_sharded(
        tiny_model_config, tiny_click_log, num_shards,
        batched=False, dense_batching="per-replica",
    )
    stacked, losses_stacked = run_sharded(
        tiny_model_config, tiny_click_log, num_shards,
        batched=True, dense_batching="replica",
    )
    assert losses_stacked == losses_ref
    assert stacked.replica_drift() == 0.0
    for replica_ref, replica_stacked in zip(
        baseline.replicas, stacked.replicas, strict=True
    ):
        state_ref = replica_ref.model.state_snapshot()
        state_stacked = replica_stacked.model.state_snapshot()
        for key, value in state_ref.items():
            np.testing.assert_array_equal(state_stacked[key], value, err_msg=key)


def test_replica_stacking_requires_sync_mode(tiny_model_config):
    with pytest.raises(ValueError, match="dense_batching"):
        ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=9), 2, dense_batching="global"
        )


def test_stale_mode_falls_back_per_replica(tiny_model_config, tiny_click_log):
    """stale-k weights diverge, so the stacked dispatch must not engage —
    the run must match the per-replica dense path bit for bit."""
    stale_default, losses_default = run_sharded_stale(
        tiny_model_config, tiny_click_log, dense_batching="replica"
    )
    stale_off, losses_off = run_sharded_stale(
        tiny_model_config, tiny_click_log, dense_batching="per-replica"
    )
    assert losses_default == losses_off
    state_a = stale_default.replicas[0].model.state_snapshot()
    state_b = stale_off.replicas[0].model.state_snapshot()
    for key, value in state_a.items():
        np.testing.assert_array_equal(state_b[key], value, err_msg=key)


def run_sharded_stale(config, log, *, dense_batching, steps=6):
    trainer = ShardedHotlineTrainer(
        DLRM(config, seed=9, batched=True),
        2,
        lr=0.1,
        sample_fraction=0.25,
        mode="stale-1",
        dense_batching=dense_batching,
    )
    loader = MiniBatchLoader(log, batch_size=128)
    trainer.bind(loader)
    losses = [trainer.run_step(batch).loss for batch in list(loader)[:steps]]
    return trainer, losses


# --------------------------------------------------------------------- #
# Kernel-layer units
# --------------------------------------------------------------------- #
def test_packed_rows_threshold_is_cached_and_sane():
    first = packed_rows_threshold(16, 64)
    again = packed_rows_threshold(16, 64)
    assert first == again
    assert first >= 2
    transposed = packed_rows_threshold(16, 64, transposed=True)
    assert transposed >= 2
    assert NEVER_PACKED > 1 << 20


def test_segment_bounds_partition_in_order():
    segments = [np.array([0, 2, 4]), np.array([1, 3]), np.array([5])]
    assert segment_bounds(segments) == [(0, 3), (3, 5), (5, 6)]


def test_packed_mlp_rejects_sigmoid_output(rng):
    assert not PackedMLP(MLP([4, 8, 2], rng, sigmoid_output=True)).supported
    assert PackedMLP(MLP([4, 8, 2], rng)).supported


def test_dense_time_split_is_populated(tiny_model_config, tiny_click_log):
    """StepOutcome/TrainingResult surface the measured dense-time share,
    with the interaction's share split out of it."""
    from repro.core.pipeline import HotlineTrainer

    trainer = HotlineTrainer(
        DLRM(tiny_model_config, seed=9), lr=0.05, sample_fraction=0.25
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.bind(loader)
    outcome = trainer.run_step(tiny_click_log.batch(0, 128))
    assert outcome.dense_time_s > 0.0
    assert 0.0 < outcome.interaction_time_s <= outcome.dense_time_s
    result = trainer.train(loader, epochs=1)
    assert result.dense_time_s > 0.0
    assert 0.0 < result.interaction_time_s <= result.dense_time_s


def test_tbsm_interaction_time_measures_attention(
    tiny_ts_model_config, tiny_ts_click_log
):
    from repro.core.pipeline import HotlineTrainer

    trainer = HotlineTrainer(
        TBSM(tiny_ts_model_config, seed=9), lr=0.05, sample_fraction=0.25
    )
    loader = MiniBatchLoader(tiny_ts_click_log, batch_size=128)
    trainer.bind(loader)
    outcome = trainer.run_step(tiny_ts_click_log.batch(0, 128))
    assert 0.0 < outcome.interaction_time_s <= outcome.dense_time_s


def test_sharded_dense_time_split_is_populated(tiny_model_config, tiny_click_log):
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=9), 2, lr=0.05, sample_fraction=0.25
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.bind(loader)
    outcome = trainer.run_step(tiny_click_log.batch(0, 128))
    assert outcome.dense_time_s > 0.0
    assert 0.0 < outcome.interaction_time_s <= outcome.dense_time_s


# --------------------------------------------------------------------- #
# New-kernel vs retained-reference parity (PR 10)
# --------------------------------------------------------------------- #
def test_epilogue_reference_training_is_bit_identical(
    tiny_model_config, tiny_click_log
):
    """The fused loss epilogue claims *bit*-identity with the retained
    two-pass pair — so a whole training run forced through the reference
    epilogue must reproduce the fused run's losses and parameters exactly."""
    from repro.nn import loss as loss_mod

    batches = [tiny_click_log.batch(i * 128, 128) for i in range(4)]
    model_fused = DLRM(tiny_model_config, seed=21)
    losses_fused = [model_fused.train_step(b, lr=0.1) for b in batches]
    model_ref = DLRM(tiny_model_config, seed=21)
    with loss_mod.force_reference():
        losses_ref = [model_ref.train_step(b, lr=0.1) for b in batches]
    assert losses_fused == losses_ref
    state_fused = model_fused.state_snapshot()
    for key, value in model_ref.state_snapshot().items():
        np.testing.assert_array_equal(state_fused[key], value, err_msg=key)


def test_interaction_reference_training_stays_close(
    tiny_model_config, tiny_click_log
):
    """The batched interaction GEMM is allclose (not bitwise) to the einsum
    reference — certification guarantees *row stability across execution
    paths*, not equality with einsum.  A short training run through each
    must stay within tight fp tolerance."""
    from repro.nn import interaction as interaction_mod

    batches = [tiny_click_log.batch(i * 128, 128) for i in range(4)]
    model_new = DLRM(tiny_model_config, seed=23)
    losses_new = [model_new.train_step(b, lr=0.1) for b in batches]
    model_ref = DLRM(tiny_model_config, seed=23)
    with interaction_mod.force_reference():
        losses_ref = [model_ref.train_step(b, lr=0.1) for b in batches]
    np.testing.assert_allclose(losses_new, losses_ref, rtol=1e-9)
    state_new = model_new.state_snapshot()
    for key, value in model_ref.state_snapshot().items():
        np.testing.assert_allclose(state_new[key], value, rtol=1e-7, atol=1e-10)


# --------------------------------------------------------------------- #
# FLOP accounting (satellite bugfix)
# --------------------------------------------------------------------- #
def test_config_mlp_flops_count_bias_and_activation():
    """RM2 arch strings (bottom 13-512-256-64-16, top 512-256-1), by hand:
    2*in*out MACs + out bias adds per layer, + out ReLU ops per hidden."""
    bottom = (
        (2 * 13 * 512 + 512 + 512)
        + (2 * 512 * 256 + 256 + 256)
        + (2 * 256 * 64 + 64 + 64)
        + (2 * 64 * 16 + 16)
    )
    top = (2 * 512 * 256 + 256 + 256) + (2 * 256 * 1 + 1)
    assert RM2.mlp_flops_per_sample == bottom + top


def test_model_flops_match_actual_layer_sizes(tiny_model_config):
    """The model's MLPs count their *actual* widths (the top MLP's input
    is the interaction output, wider than the config's arch string)."""
    model = DLRM(tiny_model_config, seed=0)
    for mlp in (model.bottom_mlp, model.top_mlp):
        sizes = mlp.layer_sizes
        expected = 0.0
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:], strict=True)):
            expected += 2.0 * fan_in * fan_out + fan_out
            if i != len(sizes) - 2:
                expected += fan_out
        assert mlp.flops_per_sample == expected
