"""The replica bit-parity harness: K true replicas == merged-gradient PR 2.

The headline guarantee of the multi-replica trainer: in ``sync`` mode,
training K genuinely separate model replicas synchronised through the
bucketed :class:`~repro.core.reducer.GradientBucketReducer` and the
deterministic sparse exchange is **bit-identical** — losses and every
parameter — to the PR 2 merged-gradient trainer
(:class:`~repro.core.distributed.MergedGradientShardedTrainer`), which
accumulated all shards' gradients in one shared model.  Verified for
K ∈ {1, 2, 4} on DLRM and TBSM, with and without row-partitioned embedding
tables, and the replicas themselves are asserted to never drift.

``overlap`` mode only reschedules communication, so it shares the
guarantee, as do ``stale-0`` (the sync alias of the generalised ``stale-k``
family) and a ``stale-0`` run with the BagPipe-style cached lookahead
attached (zero staleness flushes every deferred sparse update immediately).
``stale-k`` with k > 0 applies the reduced dense gradient k steps late and
is asserted to diverge from the reference while staying deterministic and
drift-free for k ∈ {1, 2, 4}.
"""

import numpy as np
import pytest

from repro.core.distributed import MergedGradientShardedTrainer, ShardedHotlineTrainer
from repro.data.loader import MiniBatchLoader
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM


def merged_run(model_cls, config, log, num_shards, *, lr=0.05, epochs=1):
    model = model_cls(config, seed=42)
    trainer = MergedGradientShardedTrainer(model, num_shards, lr=lr, sample_fraction=0.25)
    result = trainer.train(
        MiniBatchLoader(log, batch_size=128), epochs=epochs, eval_batch=log.batch(0, 256)
    )
    return model, result


def replicated_run(model_cls, config, log, num_shards, *, lr=0.05, epochs=1, **knobs):
    model = model_cls(config, seed=42)
    trainer = ShardedHotlineTrainer(
        model, num_shards, lr=lr, sample_fraction=0.25, **knobs
    )
    result = trainer.train(
        MiniBatchLoader(log, batch_size=128), epochs=epochs, eval_batch=log.batch(0, 256)
    )
    return model, result, trainer


def assert_bit_identical(state_a, state_b):
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        np.testing.assert_array_equal(state_a[key], state_b[key], err_msg=key)


@pytest.mark.parametrize("num_shards", [1, 2, pytest.param(4, marks=pytest.mark.slow)])
def test_sync_replicas_bit_identical_to_merged_dlrm(
    tiny_model_config, tiny_click_log, num_shards
):
    """Sync-mode K-replica DLRM training is bit-identical to PR 2's trainer."""
    merged_model, merged_result = merged_run(
        DLRM, tiny_model_config, tiny_click_log, num_shards
    )
    replica_model, replica_result, trainer = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, num_shards
    )
    assert replica_result.losses == merged_result.losses
    assert_bit_identical(merged_model.state_snapshot(), replica_model.state_snapshot())
    assert replica_result.final_metrics == merged_result.final_metrics
    assert trainer.replica_drift() == 0.0


@pytest.mark.parametrize("num_shards", [1, 2, pytest.param(4, marks=pytest.mark.slow)])
def test_sync_replicas_bit_identical_to_merged_tbsm(
    tiny_ts_model_config, tiny_ts_click_log, num_shards
):
    """Sync-mode K-replica TBSM training is bit-identical to PR 2's trainer."""
    merged_model, merged_result = merged_run(
        TBSM, tiny_ts_model_config, tiny_ts_click_log, num_shards
    )
    replica_model, replica_result, trainer = replicated_run(
        TBSM, tiny_ts_model_config, tiny_ts_click_log, num_shards
    )
    assert replica_result.losses == merged_result.losses
    assert_bit_identical(merged_model.state_snapshot(), replica_model.state_snapshot())
    assert trainer.replica_drift() == 0.0


@pytest.mark.parametrize("num_shards", [1, 2, pytest.param(4, marks=pytest.mark.slow)])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_workers_bit_identical_dlrm(
    tiny_model_config, tiny_click_log, num_shards, workers
):
    """Thread-pooled replica stepping never moves a bit: for every K x
    ``parallel_workers`` combination the run matches the merged-gradient
    reference exactly — partials are collected per replica index and the
    loss fold / reduce / exchange stay on the caller thread in replica
    order, so the schedule parallelises but the arithmetic order doesn't."""
    merged_model, merged_result = merged_run(
        DLRM, tiny_model_config, tiny_click_log, num_shards
    )
    replica_model, replica_result, trainer = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, num_shards, parallel_workers=workers
    )
    assert replica_result.losses == merged_result.losses
    assert_bit_identical(merged_model.state_snapshot(), replica_model.state_snapshot())
    assert replica_result.final_metrics == merged_result.final_metrics
    assert trainer.replica_drift() == 0.0
    # The per-replica wall times surfaced through the engine cover every
    # shard of every step.
    assert len(replica_result.replica_time_s) == num_shards
    assert all(t > 0.0 for t in replica_result.replica_time_s)


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_workers_bit_identical_tbsm(
    tiny_ts_model_config, tiny_ts_click_log, workers
):
    """The TBSM step (history table + pooled tables) shares the guarantee."""
    merged_model, merged_result = merged_run(
        TBSM, tiny_ts_model_config, tiny_ts_click_log, 2
    )
    replica_model, replica_result, trainer = replicated_run(
        TBSM, tiny_ts_model_config, tiny_ts_click_log, 2, parallel_workers=workers
    )
    assert replica_result.losses == merged_result.losses
    assert_bit_identical(merged_model.state_snapshot(), replica_model.state_snapshot())
    assert trainer.replica_drift() == 0.0


def test_parallel_workers_pool_is_released_by_finalize(
    tiny_model_config, tiny_click_log
):
    """finalize() shuts the replica pool down (no thread leak across
    trainers) and stepping afterwards lazily rebuilds it."""
    import threading

    _, _, trainer = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 2, parallel_workers=2
    )
    assert trainer._pool is None  # engine's finalize() already ran
    alive = [t.name for t in threading.enumerate() if "replica-step" in t.name]
    assert not alive
    batch = tiny_click_log.batch(0, 128)
    loss_after, _ = trainer.train_step(batch)
    assert trainer._pool is not None  # rebuilt on demand
    assert loss_after > 0.0
    trainer.finalize()
    assert trainer._pool is None


def test_parity_survives_bucket_size(tiny_model_config, tiny_click_log):
    """Bucketing is pure communication structure: any size, same bits."""
    merged_model, merged_result = merged_run(DLRM, tiny_model_config, tiny_click_log, 2)
    for bucket_bytes in (64, 4096, 4 * 1024 * 1024):
        replica_model, replica_result, _ = replicated_run(
            DLRM, tiny_model_config, tiny_click_log, 2, bucket_bytes=bucket_bytes
        )
        assert replica_result.losses == merged_result.losses, bucket_bytes
        assert_bit_identical(
            merged_model.state_snapshot(), replica_model.state_snapshot()
        )


def test_parity_with_partitioned_embeddings(tiny_model_config, tiny_click_log):
    """Row-partitioning tables changes accounting, never the numerics."""
    merged_model, merged_result = merged_run(DLRM, tiny_model_config, tiny_click_log, 2)
    replica_model, replica_result, trainer = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 2, partition_embeddings=True
    )
    assert replica_result.losses == merged_result.losses
    assert_bit_identical(merged_model.state_snapshot(), replica_model.state_snapshot())
    # ...but the partitioned run accounts the model-parallel traffic.
    assert trainer.last_remote_lookups > 0
    assert trainer.last_routed_rows > 0
    assert replica_result.communication_time_s > 0.0


def test_overlap_mode_shares_the_parity_guarantee(tiny_model_config, tiny_click_log):
    """Overlap reschedules buckets behind backward; the numbers don't move."""
    merged_model, merged_result = merged_run(DLRM, tiny_model_config, tiny_click_log, 2)
    replica_model, replica_result, _ = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 2, mode="overlap"
    )
    assert replica_result.losses == merged_result.losses
    assert_bit_identical(merged_model.state_snapshot(), replica_model.state_snapshot())


def test_stale_zero_is_bit_identical_sync_alias(tiny_model_config, tiny_click_log):
    """stale-0 collapses to sync: the k-deep deque holds nothing, so the
    parity guarantee extends to the staleness family's boundary."""
    merged_model, merged_result = merged_run(DLRM, tiny_model_config, tiny_click_log, 2)
    replica_model, replica_result, trainer = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 2, mode="stale-0"
    )
    assert replica_result.losses == merged_result.losses
    assert_bit_identical(merged_model.state_snapshot(), replica_model.state_snapshot())
    assert trainer.replica_drift() == 0.0


def test_stale_zero_with_lookahead_is_bit_identical(tiny_model_config, tiny_click_log):
    """The cached lookahead pipeline at staleness 0 is pure accounting:
    every deferred write-back flushes immediately, so training with the
    cache attached stays bit-identical to the merged reference."""
    merged_model, merged_result = merged_run(DLRM, tiny_model_config, tiny_click_log, 2)
    replica_model, replica_result, trainer = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 2, mode="stale-0", lookahead_window=4
    )
    assert replica_result.losses == merged_result.losses
    assert_bit_identical(merged_model.state_snapshot(), replica_model.state_snapshot())
    # ...and the cache observed real traffic while staying invisible.
    assert replica_result.cache_hits > 0
    assert replica_result.cache_fill_rows > 0
    assert replica_result.stale_rows == 0
    assert trainer.replica_drift() == 0.0


@pytest.mark.parametrize("staleness", [1, 2, 4])
def test_stale_k_diverges_deterministically(
    tiny_model_config, tiny_click_log, staleness
):
    """Every stale-k > 0 changes the trajectory but is repeatable and
    drift-free — staleness is uniform across replicas."""
    _, merged_result = merged_run(DLRM, tiny_model_config, tiny_click_log, 2)
    model_a, result_a, trainer_a = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 2, mode=f"stale-{staleness}"
    )
    model_b, result_b, _ = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 2, mode=f"stale-{staleness}"
    )
    # Step 0's loss is computed before any update lands, so it still
    # matches the reference; afterwards the paths diverge.
    assert result_a.losses[0] == merged_result.losses[0]
    assert result_a.losses != merged_result.losses
    assert result_a.losses == result_b.losses
    assert_bit_identical(model_a.state_snapshot(), model_b.state_snapshot())
    assert trainer_a.replica_drift() == 0.0


def test_deeper_staleness_defers_more_updates(tiny_model_config, tiny_click_log):
    """The k-deep deque really holds k reduces in flight: deeper staleness
    leaves more gradient unapplied at any point, so the trajectories of
    k = 1, 2, 4 are pairwise distinct.  At the end of the run the engine's
    ``finalize()`` hook drains the deque (the PR 5 end-of-run flush), so
    no reduce is left dying with the run."""
    losses = {}
    for staleness in (1, 2, 4):
        _, result, trainer = replicated_run(
            DLRM, tiny_model_config, tiny_click_log, 2, mode=f"stale-{staleness}"
        )
        losses[staleness] = result.losses
        assert len(trainer._pending_dense) == 0  # drained by finalize()
        assert trainer.replica_drift() == 0.0  # the drain is uniform too
    assert losses[1] != losses[2]
    assert losses[2] != losses[4]


def test_stale_mode_diverges_after_first_step(tiny_model_config, tiny_click_log):
    """stale-1 applies the dense reduce one step late: step 0 matches, then not."""
    _, merged_result = merged_run(DLRM, tiny_model_config, tiny_click_log, 2)
    _, stale_result, trainer = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 2, mode="stale-1"
    )
    # Step 0's loss is computed before any update, so it is still identical.
    assert stale_result.losses[0] == merged_result.losses[0]
    # Staleness changes the trajectory...
    assert stale_result.losses[1:] != merged_result.losses[1:]
    # ...but the staleness is uniform, so replicas still do not drift.
    assert trainer.replica_drift() == 0.0


def test_tree_algorithm_is_deterministic_and_close(tiny_model_config, tiny_click_log):
    """Tree reduce re-associates the sum: not bit-parity, but deterministic
    and within the suite's numerical tolerance of the merged reference."""
    merged_model, merged_result = merged_run(DLRM, tiny_model_config, tiny_click_log, 4)
    model_a, result_a, _ = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 4, algorithm="tree"
    )
    model_b, result_b, _ = replicated_run(
        DLRM, tiny_model_config, tiny_click_log, 4, algorithm="tree"
    )
    assert result_a.losses == result_b.losses  # deterministic across runs
    assert_bit_identical(model_a.state_snapshot(), model_b.state_snapshot())
    np.testing.assert_allclose(
        result_a.losses, merged_result.losses, rtol=1e-9, atol=1e-9
    )
    for key, value in merged_model.state_snapshot().items():
        np.testing.assert_allclose(
            model_a.state_snapshot()[key], value, rtol=1e-9, atol=1e-12
        )


def test_replicas_own_distinct_parameter_storage(tiny_model_config, tiny_click_log):
    """Each replica holds its own arrays — no aliasing back to replica 0."""
    model = DLRM(tiny_model_config, seed=0)
    trainer = ShardedHotlineTrainer(model, 2, sample_fraction=0.25)
    assert trainer.replicas[0].model is model
    other = trainer.replicas[1].model
    assert other is not model
    for (param_a, _), (param_b, _) in zip(
        model.dense_parameters(), other.dense_parameters(), strict=True
    ):
        assert not np.shares_memory(param_a, param_b)
        np.testing.assert_array_equal(param_a, param_b)
    for table_a, table_b in zip(model.tables, other.tables, strict=True):
        assert not np.shares_memory(table_a.weight, table_b.weight)


@pytest.mark.slow
def test_fig30r_runs_end_to_end_with_per_bucket_times():
    """Acceptance: the fig30r sweep reports per-bucket communication time."""
    from repro.experiments import run_experiment

    data = run_experiment("fig30r")
    sync = data["1 node(s) / sync"]
    overlap = data["1 node(s) / overlap"]
    stale = data["1 node(s) / stale-1"]
    # 64 KiB buckets split the dense gradient into several buckets, and the
    # per-bucket wire times are reported through TrainingResult.
    assert sync["num_buckets"] > 1
    assert len(sync["per_bucket_comm_s"]) == sync["num_buckets"]
    assert all(t > 0.0 for t in sync["per_bucket_comm_s"])
    # Overlap hides most of the wire time but computes the same numbers.
    assert overlap["final_loss"] == sync["final_loss"]
    assert overlap["exposed_communication_s"] < sync["exposed_communication_s"]
    # Staleness hides even more and changes the trajectory.
    assert stale["exposed_communication_s"] <= overlap["exposed_communication_s"]
    assert stale["final_loss"] != sync["final_loss"]
    # Sync losses are scale-invariant (Eq. 5 across replicas) and replicas
    # never drift.
    assert data["2 node(s) / sync"]["final_loss"] == sync["final_loss"]
    assert all(entry["replica_drift"] == 0.0 for entry in data.values())


def test_wrong_length_reduced_gradient_rejected_before_mutation(tiny_model_config):
    """A mis-sized reduced gradient must fail fast, not half-apply."""
    model = DLRM(tiny_model_config, seed=0)
    trainer = ShardedHotlineTrainer(model, 2, sample_fraction=0.25)
    before = model.state_snapshot()
    for bad_size in (7, model.num_dense_parameters + 1):
        with pytest.raises(ValueError, match="elements"):
            trainer._apply_dense_gradient(model, np.zeros(bad_size))
    for key, value in model.state_snapshot().items():
        np.testing.assert_array_equal(value, before[key])
