"""Trainer integration for the window-bound / tiering PR.

Three accounting-only features ride on the sharded trainer and must never
touch numerics:

* ``per_shard_lookahead`` — K per-shard fill-accounting pipelines next to
  the global deferral pipeline (which stops pricing fills itself);
* ``tiered_hot_bytes`` — one shared hot/cold embedding tier fronting every
  replica's tables, pinning the placement's hot rows;
* the ``pending_bytes`` / tier-counter plumbing through
  :class:`~repro.core.engine.StepOutcome` into
  :class:`~repro.core.engine.TrainingResult`.

Each test pairs a run with the feature on against the identical run with it
off and asserts bit-identical losses and parameters, then checks that the
feature's *accounting* actually moved.  The rebind test pins the DMA/tier
counter-lifetime contract (see ``DMAEngine``'s docstring).
"""

import numpy as np
import pytest

from repro.core.distributed import ShardedHotlineTrainer
from repro.data.loader import MiniBatchLoader
from repro.models.dlrm import DLRM


def run_trainer(config, log, **kwargs):
    kwargs.setdefault("sample_fraction", 0.25)
    trainer = ShardedHotlineTrainer(DLRM(config, seed=42), 2, **kwargs)
    loader = MiniBatchLoader(log, batch_size=128)
    result = trainer.train(loader, epochs=1)
    return trainer, result


def assert_states_equal(model_a, model_b):
    state_a = model_a.state_snapshot()
    state_b = model_b.state_snapshot()
    assert state_a.keys() == state_b.keys()
    for key, value in state_a.items():
        np.testing.assert_array_equal(state_b[key], value, err_msg=key)


# --------------------------------------------------------------------- #
# Per-shard lookahead accounting
# --------------------------------------------------------------------- #
def test_per_shard_lookahead_is_bit_identical_to_global(
    tiny_model_config, tiny_click_log
):
    """The per-shard pipelines are accounting-only (staleness 0, never
    defer) and the global pipeline keeps the deferral numerics, so the
    trained model must be bit-identical with the knob on or off."""
    base_trainer, base_result = run_trainer(
        tiny_model_config, tiny_click_log, lookahead_window=4
    )
    shard_trainer, shard_result = run_trainer(
        tiny_model_config, tiny_click_log,
        lookahead_window=4, per_shard_lookahead=True,
    )
    assert shard_result.losses == base_result.losses
    assert_states_equal(base_trainer.model, shard_trainer.model)
    # ...but the accounting differentiates: each shard windowed its own
    # slice and priced its own fills, while the global pipeline stopped
    # pricing fills (its DMA now carries write-back traffic only).
    assert len(shard_trainer.shard_lookaheads) == 2
    assert not shard_trainer.lookahead.price_fills
    for pipe in shard_trainer.shard_lookaheads:
        assert pipe.cached_rows_total > 0
        assert pipe.dma.bytes_read > 0
        assert pipe.pending_rows_total == 0  # accounting-only: never defers


def test_per_shard_lookahead_charges_slowest_shard(
    tiny_model_config, tiny_click_log
):
    """One raw step: the step's prefetch is the global write-back plus the
    *max* over the shard fills (shards fill in parallel), and every shard
    pipeline advanced its window."""
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=7), 2, sample_fraction=0.25,
        lookahead_window=4, per_shard_lookahead=True,
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.bind(loader)
    outcome = trainer.run_step(next(iter(loader)))
    shard_fill = max(
        pipe.last_stats.prefetch_time_s for pipe in trainer.shard_lookaheads
    )
    assert shard_fill > 0.0
    assert outcome.prefetch_time_s >= shard_fill
    # The global pipeline observed the full batch, shards their slices.
    full = trainer.lookahead.cached_rows_total
    assert all(
        0 < pipe.cached_rows_total <= full for pipe in trainer.shard_lookaheads
    )


def test_per_shard_lookahead_requires_a_window(tiny_model_config):
    with pytest.raises(ValueError, match="per_shard_lookahead"):
        ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=0), 2, per_shard_lookahead=True
        )


# --------------------------------------------------------------------- #
# Tiered embedding storage through the trainer
# --------------------------------------------------------------------- #
def test_tiered_run_is_bit_identical_and_counts_traffic(
    tiny_model_config, tiny_click_log
):
    """The tier is a pricing/counting front — weights never move — so a
    tiered run trains the identical model while the hit/miss/eviction
    counters surface through the result."""
    base_trainer, base_result = run_trainer(tiny_model_config, tiny_click_log)
    # 96 rows of capacity against 736 total rows: the Zipf head pins hot,
    # the tail misses and churns the LFU victim pool.
    hot_bytes = 96 * tiny_model_config.embedding_dim * 4
    tier_trainer, tier_result = run_trainer(
        tiny_model_config, tiny_click_log, tiered_hot_bytes=hot_bytes
    )
    assert tier_result.losses == base_result.losses
    assert_states_equal(base_trainer.model, tier_trainer.model)
    assert tier_result.tier_hits > 0
    assert tier_result.tier_misses > 0
    assert tier_result.tier_evictions > 0
    assert base_result.tier_hits == 0  # untired runs report nothing
    tier = tier_trainer.tier
    assert tier is not None
    assert tier.hits + tier.misses == tier_result.tier_hits + tier_result.tier_misses
    assert tier.resident_bytes <= hot_bytes + sum(
        pinned.size for pinned in tier._pinned
    ) * tier.row_bytes


def test_tier_pins_the_placements_hot_rows(tiny_model_config, tiny_click_log):
    """bind() builds the tier from the learning-phase placement: every hot
    row is pinned resident on every table and never evicts."""
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=3), 2, sample_fraction=0.25,
        tiered_hot_bytes=16 * tiny_model_config.embedding_dim * 4,
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.bind(loader)
    placement = trainer.replicas[0].placement
    assert placement is not None and placement.hot_rows_total > 0
    for table, hot in enumerate(placement.hot_sets):
        assert np.all(trainer.tier.is_resident(table, hot))
    # A full epoch of churn (capacity far below the hot-set size) cannot
    # evict a pinned row.
    for batch in loader:
        trainer.train_step(batch)
    for table, hot in enumerate(placement.hot_sets):
        assert np.all(trainer.tier.is_resident(table, hot))
    # Every replica's bags resolve through the one shared tier.
    for replica in trainer.replicas:
        for bag in replica.model.tables:
            assert bag._tier is trainer.tier


def test_tiered_hot_bytes_rejects_negative(tiny_model_config):
    with pytest.raises(ValueError, match="tiered_hot_bytes"):
        ShardedHotlineTrainer(
            DLRM(tiny_model_config, seed=0), 2, tiered_hot_bytes=-1.0
        )


# --------------------------------------------------------------------- #
# Counter lifetime across bind() (satellite: DMA audit regression)
# --------------------------------------------------------------------- #
def test_rebind_starts_with_fresh_dma_and_tier_counters(
    tiny_model_config, tiny_click_log
):
    """Regression: a reused trainer must not report run A's DMA traffic or
    tier counters as run B's.  bind() resets the lookahead pipelines'
    engines and rebuilds the tier from scratch."""
    hot_bytes = 48 * tiny_model_config.embedding_dim * 4
    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=5), 2, sample_fraction=0.25,
        mode="stale-2", lookahead_window=4, per_shard_lookahead=True,
        tiered_hot_bytes=hot_bytes,
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.bind(loader)
    for batch in list(loader)[:4]:
        trainer.train_step(batch)
    assert trainer.lookahead.dma.bytes_written > 0  # write-backs priced
    assert all(p.dma.bytes_read > 0 for p in trainer.shard_lookaheads)
    assert trainer.tier.hits + trainer.tier.misses > 0
    run_a_tier = trainer.tier
    # Re-binding (what a second train() does first) starts clean...
    trainer.bind(loader)
    assert trainer.lookahead.dma.bytes_read == 0
    assert trainer.lookahead.dma.bytes_written == 0
    assert trainer.lookahead.dma.requests == 0
    for pipe in trainer.shard_lookaheads:
        assert pipe.dma.bytes_read == 0 and pipe.dma.requests == 0
    # ...with a rebuilt tier: fresh counters, fresh residency, re-attached.
    assert trainer.tier is not run_a_tier
    assert trainer.tier.hits == 0 and trainer.tier.misses == 0
    assert trainer.tier.evictions == 0
    assert trainer._tier_seen == (0, 0, 0)
    for replica in trainer.replicas:
        for bag in replica.model.tables:
            assert bag._tier is trainer.tier


# --------------------------------------------------------------------- #
# Footprint plumbing into TrainingResult (satellite: peak bytes)
# --------------------------------------------------------------------- #
def test_pending_peak_bytes_surfaces_and_stays_window_bounded(
    tiny_model_config, tiny_click_log
):
    """The run's peak pending-store footprint reaches TrainingResult, for
    the flat and the tiered store alike, and stays proportional to the
    cached row set rather than the table sizes."""
    dim = tiny_model_config.embedding_dim
    # Per pending row: values + births slabs (< 2x peak each), row id +
    # slot + free-list entry — the bound test_pending_store derives.
    per_row_bound = 2 * (dim * 8 + 8) + 16 + 2 * 8
    for tiered in (None, 96 * dim * 4):
        trainer, result = run_trainer(
            tiny_model_config, tiny_click_log,
            mode="stale-2", lookahead_window=4, tiered_hot_bytes=tiered,
        )
        assert result.pending_peak_bytes > 0
        # At most window batches are cached at once, each contributing at
        # most batch x tables x pooling rows — a bound derived from the
        # window, never from the table sizes.
        spec = tiny_model_config.dataset
        window_rows = 4 * 128 * len(spec.rows_per_table) * spec.pooling
        assert result.pending_peak_bytes <= window_rows * per_row_bound
        # Run over: everything drained, but the high-water mark persists.
        assert trainer.lookahead.pending_rows_total == 0
        assert result.pending_peak_bytes == trainer.lookahead.peak_pending_bytes


def test_windowless_runs_report_zero_pending_bytes(
    tiny_model_config, tiny_click_log
):
    _, result = run_trainer(tiny_model_config, tiny_click_log)
    assert result.pending_peak_bytes == 0
