"""Unit tests for the Data Dispatcher (address registers, eDRAM, requests)."""

import numpy as np
import pytest

from repro.core.dispatcher import AddressRegisters, DataDispatcher, InputEDRAM
from repro.core.isa import Opcode


def make_registers(num_tables=3, row_bytes=64):
    registers = AddressRegisters()
    for table in range(num_tables):
        registers.register_table(table, cpu_address=table * 1_000_000, gpu_address=table * 500_000)
    return registers


def test_address_registers_compute_row_addresses():
    registers = make_registers()
    assert registers.cpu_address(1, 10, 64) == 1_000_000 + 640
    assert registers.gpu_address(2, 3, 64) == 1_000_000 + 192
    assert registers.num_tables == 3


def test_address_registers_reject_negative_table():
    with pytest.raises(ValueError):
        AddressRegisters().register_table(-1, 0, 0)


def test_edram_capacity_matches_paper_claim():
    """2.5 MB of eDRAM holds mini-batches of up to 16 K inputs (26 lookups)."""
    edram = InputEDRAM()
    assert edram.max_inputs(lookups_per_input=26) >= 16_384


def test_edram_fits_check():
    edram = InputEDRAM(size_bytes=1000)
    assert edram.fits(num_inputs=10, lookups_per_input=2)
    assert not edram.fits(num_inputs=1000, lookups_per_input=26)


def test_build_requests_split_hot_and_cold():
    registers = make_registers(num_tables=2)
    dispatcher = DataDispatcher(registers, row_bytes=64)
    sparse = np.array([[[1], [5]], [[2], [5]]])
    hot_sets = [np.array([1]), np.array([], dtype=np.int64)]
    requests = dispatcher.build_requests(sparse, hot_sets)
    gpu_reads = [r for r in requests if r.opcode == Opcode.GPU_READ]
    dma_reads = [r for r in requests if r.opcode == Opcode.DMA_READ]
    # Row 1 of table 0 is hot; rows 2 (table 0) and 5 (table 1) are cold.
    assert len(gpu_reads) == 1
    assert len(dma_reads) == 2


def test_build_requests_deduplicates_rows():
    registers = make_registers(num_tables=1)
    dispatcher = DataDispatcher(registers, row_bytes=64)
    sparse = np.array([[[7]], [[7]], [[7]]])
    requests = dispatcher.build_requests(sparse, [np.empty(0, dtype=np.int64)])
    assert len(requests) == 1


def test_build_requests_requires_hot_set_per_table():
    dispatcher = DataDispatcher(make_registers(num_tables=2))
    with pytest.raises(ValueError):
        dispatcher.build_requests(np.zeros((1, 2, 1), dtype=np.int64), [np.array([0])])


def test_build_requests_rejects_oversized_microbatch():
    dispatcher = DataDispatcher(make_registers(num_tables=1), InputEDRAM(size_bytes=64))
    sparse = np.zeros((100, 1, 1), dtype=np.int64)
    with pytest.raises(ValueError):
        dispatcher.build_requests(sparse, [np.empty(0, dtype=np.int64)])


def test_traffic_summary():
    registers = make_registers(num_tables=2)
    dispatcher = DataDispatcher(registers, row_bytes=64)
    sparse = np.array([[[1], [5]], [[2], [6]]])
    hot_sets = [np.array([1, 2]), np.empty(0, dtype=np.int64)]
    requests = dispatcher.build_requests(sparse, hot_sets)
    summary = dispatcher.traffic_summary(requests)
    assert summary["gpu_requests"] == 2
    assert summary["cpu_requests"] == 2
    assert summary["cpu_bytes"] == 2 * 64
    assert summary["gpu_bytes"] == 2 * 64
