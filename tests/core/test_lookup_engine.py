"""Unit tests for the Lookup Engine array and the Feistel randomizer."""

import numpy as np
import pytest

from repro.core.eal import EALConfig, EmbeddingAccessLogger
from repro.core.lookup_engine import FeistelRandomizer, LookupEngine, LookupEngineArray


def test_feistel_is_a_permutation():
    randomizer = FeistelRandomizer(seed=3)
    values = list(range(2000))
    hashed = [randomizer.hash(v) for v in values]
    assert len(set(hashed)) == len(values)
    for v in values[:200]:
        assert randomizer.inverse(randomizer.hash(v)) == v


def test_feistel_scatters_consecutive_keys():
    randomizer = FeistelRandomizer(seed=1)
    banks = [randomizer.hash(v) % 64 for v in range(640)]
    counts = np.bincount(banks, minlength=64)
    # No bank should receive more than a handful of consecutive keys.
    assert counts.max() < 40
    assert (counts > 0).sum() > 48


def test_feistel_seeds_differ():
    a = FeistelRandomizer(seed=0)
    b = FeistelRandomizer(seed=99)
    assert any(a.hash(v) != b.hash(v) for v in range(32))


def test_feistel_requires_rounds():
    with pytest.raises(ValueError):
        FeistelRandomizer(rounds=0)


def test_lookup_engine_cycles_ceiling():
    engine = LookupEngine(0, lookups_per_cycle=4)
    assert engine.cycles_for(0) == 0
    assert engine.cycles_for(4) == 1
    assert engine.cycles_for(5) == 2


def test_array_requires_engines():
    with pytest.raises(ValueError):
        LookupEngineArray(0)


def test_classify_matches_hot_set_definition():
    eal = EmbeddingAccessLogger(EALConfig(size_bytes=4096, ways=8), seed=0)
    for idx in (1, 2, 3):
        eal.access(0, idx)
        eal.access(1, idx)
    array = LookupEngineArray(8)
    sparse = np.array(
        [
            [[1], [2]],   # all hot -> popular
            [[1], [9]],   # one cold lookup -> non-popular
            [[3], [3]],   # all hot -> popular
        ]
    )
    mask = array.classify(sparse, eal)
    assert mask.tolist() == [True, False, True]


def test_classify_with_hot_sets_matches_tracker_path():
    eal = EmbeddingAccessLogger(EALConfig(size_bytes=4096, ways=8), seed=0)
    rng = np.random.default_rng(0)
    sparse = rng.integers(0, 30, size=(40, 2, 1))
    for row in rng.integers(0, 30, size=60):
        eal.access(0, int(row))
        eal.access(1, int(row))
    array = LookupEngineArray(16)
    by_tracker = array.classify(sparse, eal)
    by_sets = array.classify_with_hot_sets(sparse, eal.hot_indices(2))
    np.testing.assert_array_equal(by_tracker, by_sets)


def test_classify_with_empty_hot_set_marks_all_non_popular():
    array = LookupEngineArray(4)
    sparse = np.zeros((5, 2, 1), dtype=np.int64)
    mask = array.classify_with_hot_sets(sparse, [np.empty(0, dtype=np.int64)] * 2)
    assert not mask.any()


def test_classify_with_wrong_hot_set_count_raises():
    array = LookupEngineArray(4)
    with pytest.raises(ValueError):
        array.classify_with_hot_sets(np.zeros((2, 3, 1), dtype=np.int64), [np.array([0])])


def test_segregation_cycles_scale_with_batch():
    array = LookupEngineArray(64)
    assert array.segregation_cycles(0, 26) == 0
    assert array.segregation_cycles(64, 1) == 1
    assert array.segregation_cycles(4096, 26) == -(-4096 * 26 // 64)


def test_throughput_per_input_bounded_by_engines():
    array = LookupEngineArray(64)
    assert array.throughput_per_input(26) == 26
    assert array.throughput_per_input(100) == 64
