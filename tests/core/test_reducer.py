"""Unit tests for the Reducer (sparse-length-sum unit)."""

import numpy as np
import pytest

from repro.core.reducer import Reducer


def test_reduce_sums_rows():
    reducer = Reducer()
    rows = np.arange(12, dtype=float).reshape(3, 4)
    np.testing.assert_allclose(reducer.reduce(rows), rows.sum(axis=0))


def test_reduce_empty_stack_is_zero():
    reducer = Reducer()
    out = reducer.reduce(np.empty((0, 4)))
    np.testing.assert_allclose(out, np.zeros(4))


def test_reduce_rejects_non_2d():
    with pytest.raises(ValueError):
        Reducer().reduce(np.zeros(4))


def test_reduce_batch_matches_embeddingbag_pooling():
    reducer = Reducer()
    per_sample = [np.ones((3, 4)), np.full((1, 4), 2.0)]
    out = reducer.reduce_batch(per_sample)
    np.testing.assert_allclose(out[0], 3.0 * np.ones(4))
    np.testing.assert_allclose(out[1], 2.0 * np.ones(4))


def test_reduce_batch_requires_samples():
    with pytest.raises(ValueError):
        Reducer().reduce_batch([])


def test_cycle_model_scales_with_work():
    reducer = Reducer(num_alus=16, lanes_per_alu=16)
    assert reducer.cycles_for(0, 64) == 0
    one_row = reducer.cycles_for(1, 64)
    many_rows = reducer.cycles_for(100, 64)
    assert many_rows > one_row
    assert reducer.cycles_for(4, 64) == 1  # 256 element-ops fit one cycle


def test_invalid_configuration():
    with pytest.raises(ValueError):
        Reducer(num_alus=0)


# ---------------------------------------------------------------------- #
# GradientBucketReducer / SparseGradientExchange (multi-replica training)
# ---------------------------------------------------------------------- #
# Includes the dtype-drift regression suite: every reducer on the bucket
# path must preserve float32 end-to-end (the merge_sparse_gradients class
# of bug fixed in PR 1) and reject silently-promoting mixed-dtype inputs.

from repro.core.placement import PartitionedEmbeddingPlacement
from repro.core.reducer import (
    REDUCE_ALGORITHMS,
    WIRE_BYTES_PER_ELEMENT,
    GradientBucketReducer,
    SparseGradientExchange,
    parse_staleness,
)
from repro.hwsim.cluster import multi_node, single_node
from repro.hwsim.collectives import (
    allreduce_time,
    hierarchical_allreduce_time,
    tree_allreduce_time,
)
from repro.nn.embedding import SparseGradient


def test_bucket_slices_cover_the_gradient_exactly():
    reducer = GradientBucketReducer(2, bucket_bytes=8 * WIRE_BYTES_PER_ELEMENT)
    slices = reducer.bucket_slices(20)
    assert [s.start for s in slices] == [0, 8, 16]
    assert [s.stop for s in slices] == [8, 16, 20]
    assert reducer.num_buckets(20) == 3
    assert reducer.bucket_slices(0) == []


def test_ring_reduce_is_rank_major_chain_sum():
    reducer = GradientBucketReducer(2, bucket_bytes=4 * WIRE_BYTES_PER_ELEMENT)
    partials = [np.arange(10.0), np.ones(10), np.full(10, 0.5)]
    np.testing.assert_array_equal(
        reducer.reduce(partials), (partials[0] + partials[1]) + partials[2]
    )


def test_tree_reduce_pairwise_halving():
    reducer = GradientBucketReducer(4, algorithm="tree")
    partials = [np.full(3, float(i)) for i in range(5)]
    expected = ((partials[0] + partials[1]) + (partials[2] + partials[3])) + partials[4]
    np.testing.assert_array_equal(reducer.reduce(partials), expected)


def test_reduce_accepts_more_partials_than_replicas():
    """Per-(replica, µ-batch) partials: the count exceeds num_replicas."""
    reducer = GradientBucketReducer(2)
    partials = [np.ones(4) for _ in range(6)]
    np.testing.assert_array_equal(reducer.reduce(partials), np.full(4, 6.0))


def test_reduce_preserves_float32_end_to_end():
    """Regression: the bucket path must not drift float32 up to float64."""
    for algorithm in REDUCE_ALGORITHMS:
        reducer = GradientBucketReducer(
            2, bucket_bytes=4 * WIRE_BYTES_PER_ELEMENT, algorithm=algorithm
        )
        partials = [np.linspace(0, 1, 11, dtype=np.float32) for _ in range(3)]
        reduced = reducer.reduce(partials)
        assert reduced.dtype == np.float32, algorithm


def test_reduce_rejects_mixed_dtypes():
    reducer = GradientBucketReducer(2)
    with pytest.raises(ValueError, match="dtype"):
        reducer.reduce([np.ones(4, dtype=np.float32), np.ones(4, dtype=np.float64)])


def test_reduce_rejects_shape_mismatch_and_empty():
    reducer = GradientBucketReducer(2)
    with pytest.raises(ValueError):
        reducer.reduce([np.ones(4), np.ones(5)])
    with pytest.raises(ValueError):
        reducer.reduce([])


def test_reducer_validates_configuration():
    with pytest.raises(ValueError):
        GradientBucketReducer(0)
    with pytest.raises(ValueError):
        GradientBucketReducer(2, bucket_bytes=0)
    with pytest.raises(ValueError):
        GradientBucketReducer(2, mode="async")
    with pytest.raises(ValueError):
        GradientBucketReducer(2, algorithm="butterfly")
    # The accepted mode family: the two named modes plus any stale-<k>.
    for mode in ("sync", "overlap", "stale-0", "stale-1", "stale-9"):
        assert GradientBucketReducer(2, mode=mode).mode == mode


def test_stale_k_mode_family_parses_and_reports_staleness():
    """stale-<k> generalises stale-1: any integer depth k >= 0 is a mode."""
    assert parse_staleness("sync") == 0
    assert parse_staleness("overlap") == 0
    assert parse_staleness("stale-0") == 0
    assert parse_staleness("stale-1") == 1
    assert parse_staleness("stale-7") == 7
    for bad in ("stale-", "stale--1", "stale-x", "stale-1.5", "fresh-1"):
        with pytest.raises(ValueError):
            parse_staleness(bad)
    for mode, expected in (("sync", 0), ("overlap", 0), ("stale-0", 0), ("stale-4", 4)):
        assert GradientBucketReducer(2, mode=mode).staleness == expected
    # Mid-run mode changes re-derive the staleness (and re-validate).
    reducer = GradientBucketReducer(2, mode="stale-2")
    reducer.mode = "stale-5"
    assert reducer.staleness == 5
    with pytest.raises(ValueError):
        reducer.mode = "stale-oops"


def test_stale_k_exposure_is_the_unhidden_remainder():
    """stale-k hides the wire time under k compute windows; the rest is paid."""
    cluster = single_node(4)
    kwargs = dict(bucket_bytes=64 * WIRE_BYTES_PER_ELEMENT, cluster=cluster)
    times = GradientBucketReducer(4, **kwargs).bucket_times(256)
    total = sum(times)
    window = total / 3.0
    for k, expected in ((0, total), (1, total - window), (2, total - 2 * window), (4, 0.0)):
        reducer = GradientBucketReducer(4, mode=f"stale-{k}", **kwargs)
        assert reducer.exposed_time(times, window) == pytest.approx(expected)
    # stale-0 is sync bit for bit, whatever the window.
    sync = GradientBucketReducer(4, mode="sync", **kwargs)
    alias = GradientBucketReducer(4, mode="stale-0", **kwargs)
    for window in (0.0, total, 10 * total):
        assert alias.exposed_time(times, window) == sync.exposed_time(times, window)


def test_exposure_edge_cases_are_well_defined_zeros():
    """Zero-element gradients and zero compute windows must not surprise.

    These paths go live under stale-k (a k-deep pipeline may drain an
    empty or degenerate schedule), so they are pinned here.
    """
    cluster = single_node(4)
    for mode in ("sync", "overlap", "stale-0", "stale-1", "stale-3"):
        reducer = GradientBucketReducer(4, mode=mode, cluster=cluster)
        # A zero-element gradient has no buckets: empty — but defined —
        # schedule, zero exposure in every mode.
        assert reducer.bucket_times(0) == []
        assert reducer.exposed_time([], 0.0) == 0.0
        schedule = reducer.schedule(0, 0.0)
        assert schedule.per_bucket_s == ()
        assert schedule.exposed_s == 0.0
        assert schedule.total_s == 0.0
        # A zero compute window exposes the full wire time in every mode
        # (nothing to hide behind).
        times = reducer.bucket_times(256)
        assert reducer.exposed_time(times, 0.0) == pytest.approx(sum(times))
        # Negative windows are rejected rather than silently "hiding" time.
        with pytest.raises(ValueError):
            reducer.exposed_time(times, -1.0)
    # Reducing zero-element partials round-trips the empty array.
    reduced = GradientBucketReducer(2).reduce([np.empty(0, dtype=np.float32)] * 3)
    assert reduced.shape == (0,)
    assert reduced.dtype == np.float32


def test_reducer_signature_tracks_reconfiguration():
    cluster = single_node(4)
    reducer = GradientBucketReducer(4, cluster=cluster)
    before = reducer.signature
    assert before == GradientBucketReducer(4, cluster=cluster).signature
    reducer.bucket_bytes = 1024
    assert reducer.signature != before
    reducer.bucket_bytes = 4 * 1024 * 1024
    reducer.mode = "stale-2"
    assert reducer.signature != before


def test_bucket_times_match_hwsim_collectives():
    cluster = single_node(4)
    reducer = GradientBucketReducer(
        4, bucket_bytes=64 * WIRE_BYTES_PER_ELEMENT, cluster=cluster
    )
    times = reducer.bucket_times(100)
    assert len(times) == 2
    assert times[0] == pytest.approx(
        allreduce_time(64 * 4.0, 4, cluster.node.gpu_link)
    )
    assert times[1] == pytest.approx(
        allreduce_time(36 * 4.0, 4, cluster.node.gpu_link)
    )
    # Multi-node ring goes hierarchical; tree composes intra + inter stages.
    wide = multi_node(2, 4)
    ring = GradientBucketReducer(8, cluster=wide)
    assert ring.bucket_times(10)[0] == pytest.approx(
        hierarchical_allreduce_time(40.0, 4, 2, wide.node.gpu_link, wide.inter_link)
    )
    tree = GradientBucketReducer(8, cluster=wide, algorithm="tree")
    assert tree.bucket_times(10)[0] == pytest.approx(
        tree_allreduce_time(40.0, 4, wide.node.gpu_link)
        + tree_allreduce_time(40.0, 2, wide.inter_link)
    )
    # No cluster, or a single replica: the wire is free.
    assert GradientBucketReducer(1, cluster=cluster).bucket_times(10) == [0.0]
    assert GradientBucketReducer(4).bucket_times(10) == [0.0]


def test_exposed_time_modes():
    cluster = single_node(4)
    kwargs = dict(bucket_bytes=64 * WIRE_BYTES_PER_ELEMENT, cluster=cluster)
    sync = GradientBucketReducer(4, mode="sync", **kwargs)
    overlap = GradientBucketReducer(4, mode="overlap", **kwargs)
    stale = GradientBucketReducer(4, mode="stale-1", **kwargs)
    times = sync.bucket_times(256)
    compute = sum(times) * 10  # plenty of backward to hide behind
    assert sync.exposed_time(times, compute) == pytest.approx(sum(times))
    assert stale.exposed_time(times, compute) == 0.0
    hidden = overlap.exposed_time(times, compute)
    assert 0.0 <= hidden < sum(times)
    # With no compute to hide behind, overlap degenerates to sync.
    assert overlap.exposed_time(times, 0.0) == pytest.approx(sum(times))


def test_exchange_preserves_dtype_and_order():
    exchange = SparseGradientExchange(1)
    partials = [
        SparseGradient(
            np.array([0, 2]), np.ones((2, 4), dtype=np.float32)
        ),
        SparseGradient(
            np.array([2, 5]), np.full((2, 4), 2.0, dtype=np.float32)
        ),
    ]
    merged = exchange.exchange([partials])[0]
    assert merged.values.dtype == np.float32
    np.testing.assert_array_equal(merged.indices, [0, 2, 5])
    np.testing.assert_allclose(merged.values[1], np.full(4, 3.0))
    assert exchange.last_exchanged_rows == 3


def test_exchange_rejects_mixed_dtype_partials():
    exchange = SparseGradientExchange(1)
    partials = [
        SparseGradient(np.array([0]), np.ones((1, 4), dtype=np.float32)),
        SparseGradient(np.array([1]), np.ones((1, 4), dtype=np.float64)),
    ]
    with pytest.raises(ValueError, match="dtype"):
        exchange.exchange([partials])


def test_exchange_validates_table_count_and_routing():
    exchange = SparseGradientExchange(2)
    with pytest.raises(ValueError):
        exchange.exchange([[]])
    with pytest.raises(RuntimeError):
        exchange.route(0, SparseGradient(np.array([0]), np.ones((1, 4))))
    partition = PartitionedEmbeddingPlacement(
        rows_per_table=(10, 10), num_shards=2, embedding_dim=4
    )
    routed = SparseGradientExchange(2, partition=partition).route(
        0, SparseGradient(np.array([1, 7]), np.ones((2, 4)))
    )
    assert [piece.indices.tolist() for piece in routed] == [[1], [7]]
