"""Unit tests for the Reducer (sparse-length-sum unit)."""

import numpy as np
import pytest

from repro.core.reducer import Reducer


def test_reduce_sums_rows():
    reducer = Reducer()
    rows = np.arange(12, dtype=float).reshape(3, 4)
    np.testing.assert_allclose(reducer.reduce(rows), rows.sum(axis=0))


def test_reduce_empty_stack_is_zero():
    reducer = Reducer()
    out = reducer.reduce(np.empty((0, 4)))
    np.testing.assert_allclose(out, np.zeros(4))


def test_reduce_rejects_non_2d():
    with pytest.raises(ValueError):
        Reducer().reduce(np.zeros(4))


def test_reduce_batch_matches_embeddingbag_pooling():
    reducer = Reducer()
    per_sample = [np.ones((3, 4)), np.full((1, 4), 2.0)]
    out = reducer.reduce_batch(per_sample)
    np.testing.assert_allclose(out[0], 3.0 * np.ones(4))
    np.testing.assert_allclose(out[1], 2.0 * np.ones(4))


def test_reduce_batch_requires_samples():
    with pytest.raises(ValueError):
        Reducer().reduce_batch([])


def test_cycle_model_scales_with_work():
    reducer = Reducer(num_alus=16, lanes_per_alu=16)
    assert reducer.cycles_for(0, 64) == 0
    one_row = reducer.cycles_for(1, 64)
    many_rows = reducer.cycles_for(100, 64)
    assert many_rows > one_row
    assert reducer.cycles_for(4, 64) == 1  # 256 element-ops fit one cycle


def test_invalid_configuration():
    with pytest.raises(ValueError):
        Reducer(num_alus=0)
