"""Unit tests for the Embedding Access Logger (SRRIP tracker)."""

import numpy as np
import pytest

from repro.core.eal import (
    EALConfig,
    EmbeddingAccessLogger,
    OracleLFUTracker,
    expected_parallel_requests,
    simulate_parallel_requests,
)


def small_eal(entries=256, ways=8, seed=0):
    config = EALConfig(size_bytes=entries * 2, ways=ways)
    return EmbeddingAccessLogger(config, seed=seed)


def test_config_entry_count_matches_paper():
    """4 MB at ~2 bytes/entry gives ~2 million trackable indices."""
    config = EALConfig()
    assert config.num_entries == pytest.approx(2_000_000, rel=0.05)
    assert config.num_sets * config.ways == config.num_entries


def test_first_access_is_a_miss_then_hit():
    eal = small_eal()
    assert eal.access(0, 42) is False
    assert eal.access(0, 42) is True
    assert eal.contains(0, 42)
    assert eal.hits == 1
    assert eal.misses == 1


def test_distinct_tables_do_not_collide_logically():
    eal = small_eal()
    eal.access(0, 7)
    assert eal.contains(0, 7)
    assert not eal.contains(1, 7)


def test_hot_indices_grouped_per_table():
    eal = small_eal()
    eal.access(0, 1)
    eal.access(1, 2)
    eal.access(1, 3)
    hot = eal.hot_indices(num_tables=2)
    assert hot[0].tolist() == [1]
    assert hot[1].tolist() == [2, 3]


def test_access_batch_counts_hits():
    eal = small_eal()
    sparse = np.array([[[1], [2]], [[1], [2]]])  # two samples, two tables
    hits = eal.access_batch(sparse)
    assert hits == 2  # second sample hits both entries inserted by the first


def test_srrip_keeps_frequent_entries_under_pressure():
    """Frequently re-accessed indices survive eviction pressure from a long
    tail of one-off accesses — the property Figure 15 relies on."""
    eal = small_eal(entries=64, ways=8, seed=1)
    rng = np.random.default_rng(0)
    hot_rows = np.arange(8)
    for step in range(3000):
        eal.access(0, int(hot_rows[step % len(hot_rows)]))
        if step % 2 == 0:
            eal.access(0, int(rng.integers(1000, 100_000)))
    tracked_hot = sum(eal.contains(0, int(row)) for row in hot_rows)
    assert tracked_hot >= 6


def test_evictions_occur_when_capacity_exceeded():
    eal = small_eal(entries=32, ways=4)
    for i in range(1000):
        eal.access(0, i)
    assert eal.evictions > 0
    assert eal.occupancy == 1.0


def test_clear_resets_everything():
    eal = small_eal()
    eal.access(0, 5)
    eal.clear()
    assert not eal.contains(0, 5)
    assert eal.occupancy == 0.0
    assert eal.hits == 0 and eal.misses == 0


def test_reset_statistics_keeps_tracked_set():
    eal = small_eal()
    eal.access(0, 5)
    eal.reset_statistics()
    assert eal.contains(0, 5)
    assert eal.misses == 0


def test_hit_rate():
    eal = small_eal()
    assert eal.hit_rate == 0.0
    eal.access(0, 1)
    eal.access(0, 1)
    assert eal.hit_rate == pytest.approx(0.5)


def test_oracle_tracker_top_k():
    oracle = OracleLFUTracker(capacity_entries=2)
    for _ in range(10):
        oracle.access(0, 1)
    for _ in range(5):
        oracle.access(0, 2)
    oracle.access(0, 3)
    hot = oracle.hot_indices(num_tables=1)
    assert set(hot[0].tolist()) == {1, 2}
    assert oracle.contains(0, 1)
    assert not oracle.contains(0, 3)


def test_oracle_batch_access():
    oracle = OracleLFUTracker(capacity_entries=4)
    sparse = np.array([[[1], [2]], [[1], [3]]])
    oracle.access_batch(sparse)
    hot = oracle.hot_indices(num_tables=2)
    assert 1 in hot[0].tolist()


def test_oracle_invalid_capacity():
    with pytest.raises(ValueError):
        OracleLFUTracker(0)


def test_expected_parallel_requests_monotone_in_queue():
    """Figure 16: more queue entries allow more parallel requests."""
    small = expected_parallel_requests(queue_size=8, num_banks=64)
    large = expected_parallel_requests(queue_size=512, num_banks=64)
    assert large > small
    assert large <= 64


def test_expected_parallel_requests_paper_design_point():
    """A 512-entry queue with 64 banks sustains ~60 requests/iteration."""
    assert expected_parallel_requests(512, 64) > 55


def test_simulated_parallel_requests_close_to_expectation():
    simulated = simulate_parallel_requests(256, 32, trials=50, seed=0)
    expected = expected_parallel_requests(256, 32)
    assert simulated == pytest.approx(expected, rel=0.15)


def test_parallel_requests_invalid_arguments():
    with pytest.raises(ValueError):
        expected_parallel_requests(0, 64)
    with pytest.raises(ValueError):
        simulate_parallel_requests(8, 8, trials=0)
