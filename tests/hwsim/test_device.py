"""Unit tests for the CPU/GPU device models."""

import pytest

from repro.hwsim.device import TESLA_V100, TESLA_V100_32GB, XEON_SILVER_4116
from repro.hwsim.units import GIB


def test_paper_testbed_specs():
    """Table III: Xeon Silver 4116 (24 cores), V100 16 GB HBM2."""
    assert XEON_SILVER_4116.cores == 24
    assert XEON_SILVER_4116.memory_capacity_bytes == 192 * GIB
    assert TESLA_V100.memory_capacity_bytes == 16 * GIB
    assert TESLA_V100_32GB.memory_capacity_bytes == 32 * GIB


def test_cpu_peak_flops_positive():
    assert XEON_SILVER_4116.peak_flops > 1e11
    assert XEON_SILVER_4116.peak_flops < TESLA_V100.peak_flops


def test_cpu_dense_compute_scales_with_flops():
    t1 = XEON_SILVER_4116.dense_compute_time(1e9)
    t2 = XEON_SILVER_4116.dense_compute_time(2e9)
    assert t2 == pytest.approx(2 * t1)


def test_cpu_dense_compute_scales_with_cores():
    full = XEON_SILVER_4116.dense_compute_time(1e9)
    half = XEON_SILVER_4116.dense_compute_time(1e9, cores=12)
    assert half == pytest.approx(2 * full)


def test_cpu_random_gather_plateaus_beyond_memory_parallelism():
    """Figure 8: adding cores past the MLP limit does not help gathers."""
    at_24 = XEON_SILVER_4116.random_gather_time(100_000, 64, cores=24)
    at_32 = XEON_SILVER_4116.random_gather_time(100_000, 64, cores=32)
    at_8 = XEON_SILVER_4116.random_gather_time(100_000, 64, cores=8)
    assert at_24 == pytest.approx(at_32)
    assert at_8 > at_24


def test_gpu_faster_than_cpu_for_dense_compute():
    flops = 1e10
    assert TESLA_V100.dense_compute_time(flops) < XEON_SILVER_4116.dense_compute_time(flops)


def test_gpu_hbm_gather_faster_than_cpu_stream():
    num_bytes = 100e6
    assert TESLA_V100.hbm_gather_time(num_bytes) < XEON_SILVER_4116.stream_time(num_bytes)


def test_gpu_kernel_launch_overhead_additive():
    single = TESLA_V100.dense_compute_time(1e9, kernels=1)
    many = TESLA_V100.dense_compute_time(1e9, kernels=10)
    assert many - single == pytest.approx(9 * TESLA_V100.kernel_launch_overhead_s)


def test_gpu_fits():
    assert TESLA_V100.fits(10 * GIB)
    assert not TESLA_V100.fits(20 * GIB)
