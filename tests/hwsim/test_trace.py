"""Unit tests for the event timeline."""

import pytest

from repro.hwsim.trace import Event, Timeline


def test_event_end():
    event = Event(lane="gpu", category="mlp", start=1.0, duration=2.0)
    assert event.end == 3.0


def test_empty_timeline():
    timeline = Timeline()
    assert timeline.makespan() == 0.0
    assert timeline.lane_end("gpu") == 0.0
    assert timeline.utilisation("gpu") == 0.0
    assert timeline.category_fractions() == {}


def test_makespan_is_latest_end():
    timeline = Timeline()
    timeline.add("gpu", "mlp", 0.0, 2.0)
    timeline.add("cpu", "embedding", 1.0, 5.0)
    assert timeline.makespan() == 6.0


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        Timeline().add("gpu", "mlp", 0.0, -1.0)


def test_lane_busy_time_and_utilisation():
    timeline = Timeline()
    timeline.add("gpu", "mlp", 0.0, 2.0)
    timeline.add("gpu", "comm", 2.0, 2.0)
    timeline.add("cpu", "embedding", 0.0, 8.0)
    assert timeline.lane_busy_time("gpu") == 4.0
    assert timeline.utilisation("gpu") == pytest.approx(0.5)
    assert timeline.utilisation("cpu") == pytest.approx(1.0)


def test_category_breakdown_and_fractions():
    timeline = Timeline()
    timeline.add("gpu", "mlp", 0.0, 3.0)
    timeline.add("gpu", "comm", 3.0, 1.0)
    breakdown = timeline.category_breakdown()
    assert breakdown == {"mlp": 3.0, "comm": 1.0}
    fractions = timeline.category_fractions()
    assert fractions["mlp"] == pytest.approx(0.75)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_extend_appends_prebuilt_events():
    timeline = Timeline()
    timeline.extend([Event("gpu", "mlp", 0.0, 1.0), Event("gpu", "mlp", 1.0, 1.0)])
    assert len(timeline.events) == 2
    assert timeline.makespan() == 2.0
