"""Unit tests for the DMA engine model."""

import pytest

from repro.hwsim.dma import DMAEngine
from repro.hwsim.units import MB


def test_zero_bytes_is_free():
    dma = DMAEngine()
    assert dma.read_time(0) == 0.0
    assert dma.write_time(0) == 0.0


def test_read_time_scales_with_bytes():
    dma = DMAEngine()
    assert dma.read_time(100 * MB) > dma.read_time(1 * MB)


def test_scattered_reads_cost_at_least_sequential():
    dma = DMAEngine()
    assert dma.read_time(64 * MB, scattered=True) >= dma.read_time(64 * MB, scattered=False)


def test_counters_accumulate():
    dma = DMAEngine()
    dma.read_time(1 * MB)
    dma.write_time(2 * MB)
    assert dma.bytes_read == pytest.approx(1 * MB)
    assert dma.bytes_written == pytest.approx(2 * MB)
    assert dma.requests == 2
    dma.reset_counters()
    assert dma.requests == 0
    assert dma.bytes_read == 0.0


def test_setup_latency_included():
    dma = DMAEngine()
    tiny = dma.read_time(1)
    assert tiny >= dma.setup_latency_s
