"""Unit tests for the node/cluster topology."""

from repro.hwsim.cluster import Node, multi_node, single_node
from repro.hwsim.units import GIB


def test_single_node_defaults_match_paper_testbed():
    cluster = single_node()
    assert cluster.num_nodes == 1
    assert cluster.total_gpus == 4
    assert cluster.node.has_accelerator


def test_total_hbm_and_dram():
    cluster = single_node(4)
    assert cluster.total_hbm_bytes == 4 * 16 * GIB
    assert cluster.total_dram_bytes == 192 * GIB


def test_multi_node_scales_resources():
    cluster = multi_node(4, gpus_per_node=4)
    assert cluster.total_gpus == 16
    assert cluster.total_hbm_bytes == 16 * 16 * GIB
    assert cluster.total_dram_bytes == 4 * 192 * GIB


def test_fits_in_hbm():
    cluster = single_node(4)
    assert cluster.fits_in_hbm(60 * GIB)
    assert not cluster.fits_in_hbm(70 * GIB)


def test_fits_in_dram():
    cluster = single_node(1)
    assert cluster.fits_in_dram(100 * GIB)
    assert not cluster.fits_in_dram(300 * GIB)


def test_node_capacity_properties():
    node = Node(num_gpus=2)
    assert node.total_hbm_bytes == 2 * 16 * GIB
    assert node.total_dram_bytes == 192 * GIB


def test_custom_gpu_count():
    assert single_node(1).total_gpus == 1
    assert single_node(2).total_gpus == 2
