"""Unit tests for the node/cluster topology."""

import pytest

from repro.hwsim.cluster import Cluster, HierarchicalTopology, Node, multi_node, single_node
from repro.hwsim.interconnect import INFINIBAND_100G, NVLINK2, PCIE_GEN3_X16
from repro.hwsim.units import GIB


def test_single_node_defaults_match_paper_testbed():
    cluster = single_node()
    assert cluster.num_nodes == 1
    assert cluster.total_gpus == 4
    assert cluster.node.has_accelerator


def test_total_hbm_and_dram():
    cluster = single_node(4)
    assert cluster.total_hbm_bytes == 4 * 16 * GIB
    assert cluster.total_dram_bytes == 192 * GIB


def test_multi_node_scales_resources():
    cluster = multi_node(4, gpus_per_node=4)
    assert cluster.total_gpus == 16
    assert cluster.total_hbm_bytes == 16 * 16 * GIB
    assert cluster.total_dram_bytes == 4 * 192 * GIB


def test_fits_in_hbm():
    cluster = single_node(4)
    assert cluster.fits_in_hbm(60 * GIB)
    assert not cluster.fits_in_hbm(70 * GIB)


def test_fits_in_dram():
    cluster = single_node(1)
    assert cluster.fits_in_dram(100 * GIB)
    assert not cluster.fits_in_dram(300 * GIB)


def test_node_capacity_properties():
    node = Node(num_gpus=2)
    assert node.total_hbm_bytes == 2 * 16 * GIB
    assert node.total_dram_bytes == 192 * GIB


def test_custom_gpu_count():
    assert single_node(1).total_gpus == 1
    assert single_node(2).total_gpus == 2


@pytest.mark.parametrize("num_gpus", [0, -1, -4])
def test_node_rejects_nonpositive_gpu_count(num_gpus):
    with pytest.raises(ValueError, match="at least one GPU"):
        Node(num_gpus=num_gpus)


@pytest.mark.parametrize("num_nodes", [0, -2])
def test_cluster_rejects_nonpositive_node_count(num_nodes):
    with pytest.raises(ValueError, match="at least one node"):
        Cluster(num_nodes=num_nodes)


def test_cluster_link_tiers_collapse_onto_two_fabrics():
    cluster = multi_node(2, 4)
    assert cluster.link("gpu") is cluster.node.gpu_link
    for tier in ("nic", "node", "spine"):
        assert cluster.link(tier) is cluster.inter_link
    assert cluster.link("pcie") is cluster.node.pcie
    with pytest.raises(ValueError, match="unknown link tier"):
        cluster.link("smoke-signal")


def test_hierarchical_topology_counts_and_links():
    topo = HierarchicalTopology(gpus_per_nic=4, nics_per_node=2, num_nodes=8)
    assert topo.gpus_per_node == 8
    assert topo.total_gpus == 64
    assert topo.total_nics == 16
    assert topo.link("gpu") is NVLINK2
    assert topo.link("pcie") is PCIE_GEN3_X16
    assert topo.link("spine") is INFINIBAND_100G  # non-blocking by default


@pytest.mark.parametrize(
    "kwargs,match",
    [
        ({"gpus_per_nic": 0}, "gpus_per_nic"),
        ({"gpus_per_nic": -4}, "gpus_per_nic"),
        ({"nics_per_node": 0}, "nics_per_node"),
        ({"nics_per_node": -1}, "nics_per_node"),
        ({"num_nodes": 0}, "at least one node"),
        ({"num_nodes": -8}, "at least one node"),
        ({"oversubscription": 0.0}, "oversubscription"),
        ({"oversubscription": -4.0}, "oversubscription"),
    ],
)
def test_hierarchical_topology_rejects_degenerate_shapes(kwargs, match):
    with pytest.raises(ValueError, match=match):
        HierarchicalTopology(**kwargs)
