"""Unit tests for the unit-conversion helpers."""

import pytest

from repro.hwsim.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    MS,
    US,
    gbit_per_s,
    ms_to_seconds,
    seconds_to_ms,
)


def test_binary_vs_decimal_sizes():
    assert KIB == 1024
    assert MIB == 1024 * 1024
    assert GIB == 1024 ** 3
    assert KB == 1000
    assert MB == 1_000_000
    assert GB == 1_000_000_000
    assert GIB > GB


def test_time_units():
    assert MS == pytest.approx(1e-3)
    assert US == pytest.approx(1e-6)


def test_gbit_conversion():
    assert gbit_per_s(100) == pytest.approx(12.5e9)


def test_ms_round_trip():
    assert seconds_to_ms(ms_to_seconds(125.0)) == pytest.approx(125.0)
