"""Unit tests for the interconnect (link) models."""

import pytest

from repro.hwsim.interconnect import INFINIBAND_100G, NVLINK2, PCIE_GEN3_X16
from repro.hwsim.units import MB, gbit_per_s


def test_relative_link_speeds():
    """NVLink >> PCIe > InfiniBand per the paper's Section II-A3."""
    assert NVLINK2.bandwidth > PCIE_GEN3_X16.bandwidth > 0
    assert NVLINK2.bandwidth > INFINIBAND_100G.bandwidth


def test_infiniband_matches_100gbit():
    assert INFINIBAND_100G.bandwidth <= gbit_per_s(100)
    assert INFINIBAND_100G.bandwidth >= 0.8 * gbit_per_s(100)


def test_transfer_time_includes_latency():
    assert PCIE_GEN3_X16.transfer_time(0, messages=1) == PCIE_GEN3_X16.latency_s
    assert PCIE_GEN3_X16.transfer_time(0, messages=0) == 0.0


def test_transfer_time_scales_with_bytes():
    small = PCIE_GEN3_X16.transfer_time(1 * MB)
    large = PCIE_GEN3_X16.transfer_time(100 * MB)
    assert large > small


def test_transfer_multiple_messages_adds_latency():
    one = NVLINK2.transfer_time(10 * MB, messages=1)
    ten = NVLINK2.transfer_time(10 * MB, messages=10)
    assert ten - one == pytest.approx(9 * NVLINK2.latency_s)


def test_effective_bandwidth_below_peak():
    assert PCIE_GEN3_X16.effective_bandwidth(1 * MB) < PCIE_GEN3_X16.bandwidth
    assert PCIE_GEN3_X16.effective_bandwidth(1_000 * MB) == pytest.approx(
        PCIE_GEN3_X16.bandwidth, rel=0.01
    )


def test_gbit_per_s_conversion():
    assert gbit_per_s(8) == pytest.approx(1e9)
