"""Unit tests for the collective-communication cost models."""

import pytest

from repro.hwsim.collectives import (
    allreduce_time,
    alltoall_time,
    broadcast_time,
    gather_time,
    hierarchical_allreduce_time,
)
from repro.hwsim.interconnect import INFINIBAND_100G, NVLINK2
from repro.hwsim.units import MB


def test_single_participant_is_free():
    assert allreduce_time(10 * MB, 1, NVLINK2) == 0.0
    assert alltoall_time(10 * MB, 1, NVLINK2) == 0.0
    assert broadcast_time(10 * MB, 1, NVLINK2) == 0.0
    assert gather_time(10 * MB, 1, NVLINK2) == 0.0


def test_zero_bytes_is_free():
    assert allreduce_time(0, 4, NVLINK2) == 0.0
    assert alltoall_time(0, 4, NVLINK2) == 0.0


def test_allreduce_grows_with_participants():
    assert allreduce_time(10 * MB, 8, NVLINK2) > allreduce_time(10 * MB, 2, NVLINK2)


def test_allreduce_ring_bandwidth_term():
    """For large messages the ring time approaches 2*(p-1)/p * bytes / bw."""
    num_bytes = 1000 * MB
    p = 4
    expected = 2 * (p - 1) / p * num_bytes / NVLINK2.bandwidth
    assert allreduce_time(num_bytes, p, NVLINK2) == pytest.approx(expected, rel=0.05)


def test_alltoall_cheaper_than_allreduce_per_byte():
    num_bytes = 100 * MB
    assert alltoall_time(num_bytes, 4, NVLINK2) < allreduce_time(num_bytes, 4, NVLINK2)


def test_alltoall_slower_over_infiniband_than_nvlink():
    """The Figure 5 effect: inter-node all-to-all dominates training time."""
    num_bytes = 50 * MB
    assert alltoall_time(num_bytes, 4, INFINIBAND_100G) > 5 * alltoall_time(
        num_bytes, 4, NVLINK2
    )


def test_broadcast_log_scaling():
    num_bytes = 10 * MB
    assert broadcast_time(num_bytes, 8, NVLINK2) == pytest.approx(
        3 * (NVLINK2.latency_s + num_bytes / NVLINK2.bandwidth)
    )


def test_gather_collects_from_all_peers():
    num_bytes = MB
    assert gather_time(num_bytes, 5, NVLINK2) > gather_time(num_bytes, 2, NVLINK2)


def test_hierarchical_allreduce_adds_inter_node_cost():
    num_bytes = 20 * MB
    single_node = allreduce_time(num_bytes, 4, NVLINK2)
    two_nodes = hierarchical_allreduce_time(num_bytes, 4, 2, NVLINK2, INFINIBAND_100G)
    assert two_nodes > single_node


def test_tree_allreduce_doubles_broadcast_hops():
    from repro.hwsim.collectives import broadcast_time, tree_allreduce_time

    link = NVLINK2
    assert tree_allreduce_time(1024, 1, link) == 0.0
    assert tree_allreduce_time(0, 8, link) == 0.0
    # Reduce up + broadcast down: twice the one-way tree traversal.
    assert tree_allreduce_time(1 << 20, 8, link) == pytest.approx(
        2.0 * broadcast_time(1 << 20, 8, link)
    )


def test_embedding_alltoall_prices_forward_and_backward():
    from repro.hwsim.collectives import alltoall_time, embedding_alltoall_time

    link = NVLINK2
    rows, row_bytes, p = 4096, 256.0, 4
    expected = 2.0 * alltoall_time(rows * row_bytes / p, p, link)
    assert embedding_alltoall_time(rows, row_bytes, p, link) == pytest.approx(expected)
    assert embedding_alltoall_time(0, row_bytes, p, link) == 0.0
    assert embedding_alltoall_time(rows, row_bytes, 1, link) == 0.0
    # In the bandwidth-bound regime, more participants spread the same
    # remote volume across more injectors (at tiny payloads the per-hop
    # latency term dominates instead).
    many_rows = 1 << 24
    assert embedding_alltoall_time(many_rows, row_bytes, 8, link) < (
        embedding_alltoall_time(many_rows, row_bytes, 4, link)
    )


def test_cache_fill_time_prices_alltoall_plus_dma():
    from repro.hwsim.collectives import cache_fill_time, embedding_alltoall_time
    from repro.hwsim.dma import DMAEngine

    link = NVLINK2
    rows, row_bytes, p = 2048, 128.0, 4
    dma = DMAEngine()
    priced = cache_fill_time(rows, row_bytes, p, link, dma=dma)
    # The round-trip all-to-all with the owners plus the host-DRAM gather.
    assert priced == pytest.approx(
        embedding_alltoall_time(rows, row_bytes, p, link)
        + DMAEngine().read_time(rows * row_bytes)
    )
    assert dma.bytes_read == rows * row_bytes  # the live engine tracked it
    # Degenerate inputs price to zero; one replica still pays the DMA term.
    assert cache_fill_time(0, row_bytes, p, link) == 0.0
    assert cache_fill_time(rows, 0.0, p, link) == 0.0
    solo = cache_fill_time(rows, row_bytes, 1, link)
    assert solo == pytest.approx(DMAEngine().read_time(rows * row_bytes))
