"""Unit tests for the memory-technology models."""

import pytest

from repro.hwsim.memory import DDR4_SERVER, EDRAM, HBM2, SRAM_ON_CHIP
from repro.hwsim.units import GB, MB


def test_paper_bandwidths():
    """Table III quotes 76.8 GB/s DDR4 and 900 GB/s HBM2."""
    assert DDR4_SERVER.stream_bandwidth == pytest.approx(76.8 * GB)
    assert HBM2.stream_bandwidth == pytest.approx(900 * GB)


def test_hbm_roofline_advantage_over_ddr4():
    """Section IV's roofline: HBM offers >=3x for embedding gathers."""
    num_bytes = 512 * MB
    ratio = DDR4_SERVER.gather_time(num_bytes) / HBM2.gather_time(num_bytes)
    assert ratio >= 3.0


def test_stream_time_zero_bytes():
    assert DDR4_SERVER.stream_time(0) == 0.0
    assert DDR4_SERVER.gather_time(0) == 0.0


def test_stream_faster_than_gather():
    num_bytes = 64 * MB
    assert DDR4_SERVER.stream_time(num_bytes) < DDR4_SERVER.gather_time(num_bytes)


def test_stream_time_monotone_in_size():
    assert DDR4_SERVER.stream_time(2 * MB) > DDR4_SERVER.stream_time(1 * MB)


def test_on_chip_memories_have_lower_latency():
    assert SRAM_ON_CHIP.access_latency_s < EDRAM.access_latency_s < DDR4_SERVER.access_latency_s


def test_random_access_time_positive():
    assert DDR4_SERVER.random_access_time(64) > 0.0
    assert HBM2.random_access_time(256) > 0.0
