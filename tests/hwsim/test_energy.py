"""Unit tests for the accelerator area/power/energy model (Table IV, Fig 29)."""

import pytest

from repro.hwsim.energy import (
    HOTLINE_ENERGY_MODEL,
    AcceleratorEnergyModel,
    ComponentEnergy,
    perf_per_watt_gain,
)


def test_total_area_matches_table4():
    assert HOTLINE_ENERGY_MODEL.total_area_mm2 == pytest.approx(7.01, rel=0.01)


def test_eal_dominates_area_and_power():
    """Figure 29: the EAL SRAM is the largest consumer."""
    assert "Embedding Access Logger" in HOTLINE_ENERGY_MODEL.dominant_component()
    power = HOTLINE_ENERGY_MODEL.power_breakdown()
    eal_share = max(share for name, share in power.items() if "Logger" in name)
    assert eal_share > 0.3


def test_breakdowns_sum_to_one():
    assert sum(HOTLINE_ENERGY_MODEL.area_breakdown().values()) == pytest.approx(1.0)
    assert sum(HOTLINE_ENERGY_MODEL.power_breakdown().values()) == pytest.approx(1.0)


def test_energy_scales_with_runtime():
    one = HOTLINE_ENERGY_MODEL.energy_joules(1.0)
    ten = HOTLINE_ENERGY_MODEL.energy_joules(10.0)
    assert ten == pytest.approx(10 * one)


def test_perf_per_watt_gain_exceeds_speedup_discount():
    """Adding a few watts to a kW-scale training node barely dents perf/W."""
    gain = perf_per_watt_gain(speedup=2.2, baseline_power_w=1500.0, added_power_w=4.5)
    assert 2.0 < gain < 2.2


def test_perf_per_watt_invalid_baseline():
    with pytest.raises(ValueError):
        perf_per_watt_gain(2.0, 0.0, 5.0)


def test_custom_model_totals():
    model = AcceleratorEnergyModel(
        components=(
            ComponentEnergy("a", area_mm2=1.0, power_w=2.0),
            ComponentEnergy("b", area_mm2=3.0, power_w=1.0),
        )
    )
    assert model.total_area_mm2 == 4.0
    assert model.total_power_w == 3.0
    assert model.dominant_component() == "b"
