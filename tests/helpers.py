"""Numerical helpers shared by the test-suite (finite-difference checks)."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat_x = x.reshape(-1)
    flat_grad = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = fn(x)
        flat_x[i] = original - eps
        minus = fn(x)
        flat_x[i] = original
        flat_grad[i] = (plus - minus) / (2.0 * eps)
    return grad


def assert_gradients_close(
    analytic: np.ndarray, numeric: np.ndarray, rtol: float = 1e-4, atol: float = 1e-6
) -> None:
    """Assert analytic and numeric gradients agree."""
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
