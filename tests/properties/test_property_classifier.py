"""Property-based tests of µ-batch fragmentation and sparse-gradient merging."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import split_minibatch
from repro.data.batch import MiniBatch
from repro.nn.embedding import SparseGradient, merge_sparse_gradients


@st.composite
def random_batch_and_hot_sets(draw):
    n = draw(st.integers(2, 40))
    tables = draw(st.integers(1, 4))
    pooling = draw(st.integers(1, 3))
    rows = draw(st.integers(4, 32))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    batch = MiniBatch(
        dense=rng.normal(size=(n, 2)),
        sparse=rng.integers(0, rows, size=(n, tables, pooling)),
        labels=rng.integers(0, 2, size=n).astype(float),
    )
    hot_sets = []
    for _ in range(tables):
        hot_count = draw(st.integers(0, rows))
        hot_sets.append(np.sort(rng.choice(rows, size=hot_count, replace=False)))
    return batch, hot_sets


@given(random_batch_and_hot_sets())
@settings(max_examples=60, deadline=None)
def test_micro_batches_partition_the_minibatch(data):
    """Eq. 3: O ∪ X = M and O ∩ X = ∅ for any batch and hot set."""
    batch, hot_sets = data
    micro = split_minibatch(batch, hot_sets)
    assert micro.popular.size + micro.non_popular.size == batch.size
    # Labels (with multiplicity) are preserved by the partition.
    merged = np.sort(np.concatenate([micro.popular.labels, micro.non_popular.labels]))
    np.testing.assert_array_equal(merged, np.sort(batch.labels))
    # Masks are consistent.
    assert micro.popular_mask.sum() == micro.popular.size


@given(random_batch_and_hot_sets())
@settings(max_examples=60, deadline=None)
def test_popular_inputs_never_touch_cold_rows(data):
    batch, hot_sets = data
    micro = split_minibatch(batch, hot_sets)
    for table, hot in enumerate(hot_sets):
        if micro.popular.size == 0:
            break
        if hot.size == 0:
            assert micro.popular.size == 0
            break
        assert np.isin(micro.popular.sparse[:, table, :], hot).all()


@st.composite
def random_sparse_gradients(draw):
    dim = draw(st.integers(1, 8))
    parts = []
    for _ in range(draw(st.integers(1, 4))):
        nnz = draw(st.integers(0, 10))
        rng = np.random.default_rng(draw(st.integers(0, 2**16)))
        indices = np.sort(rng.choice(100, size=nnz, replace=False))
        values = rng.normal(size=(nnz, dim))
        parts.append(SparseGradient(indices, values))
    return parts, dim


@given(random_sparse_gradients())
@settings(max_examples=60, deadline=None)
def test_merge_sparse_gradients_preserves_total_mass(data):
    """Merging µ-batch gradients preserves the dense-equivalent sum."""
    parts, dim = data
    merged = merge_sparse_gradients(parts)
    dense_total = np.zeros((100, dim))
    for part in parts:
        for idx, value in zip(part.indices, part.values, strict=True):
            dense_total[idx] += value
    dense_merged = np.zeros((100, dim))
    for idx, value in zip(merged.indices, merged.values, strict=True):
        dense_merged[idx] += value
    np.testing.assert_allclose(dense_merged, dense_total, rtol=1e-12, atol=1e-12)
    assert len(np.unique(merged.indices)) == merged.nnz
