"""Property-based tests of the paper's loss-decomposition argument (Eq. 1-5).

The core of Hotline's fidelity claim is that for *any* partition of a
mini-batch into two µ-batches, the summed BCE loss and the accumulated
gradients equal the single-shot computation.  Hypothesis explores random
logits, labels, and partitions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.loss import bce_with_logits, bce_with_logits_backward


batch_sizes = st.integers(min_value=2, max_value=64)


@st.composite
def logits_labels_mask(draw):
    n = draw(batch_sizes)
    logits = draw(
        arrays(np.float64, n, elements=st.floats(-30, 30, allow_nan=False))
    )
    labels = draw(arrays(np.int64, n, elements=st.integers(0, 1))).astype(np.float64)
    mask = draw(arrays(np.bool_, n, elements=st.booleans()))
    return logits, labels, mask


@given(logits_labels_mask())
@settings(max_examples=100, deadline=None)
def test_loss_sum_decomposes_over_any_partition(data):
    logits, labels, mask = data
    total = bce_with_logits(logits, labels, reduction="sum")
    part = 0.0
    if mask.any():
        part += bce_with_logits(logits[mask], labels[mask], reduction="sum")
    if (~mask).any():
        part += bce_with_logits(logits[~mask], labels[~mask], reduction="sum")
    np.testing.assert_allclose(part, total, rtol=1e-12, atol=1e-12)


@given(logits_labels_mask())
@settings(max_examples=100, deadline=None)
def test_gradient_decomposes_over_any_partition(data):
    logits, labels, mask = data
    full_grad = bce_with_logits_backward(logits, labels, reduction="sum")
    pieced = np.zeros_like(full_grad)
    if mask.any():
        pieced[mask] = bce_with_logits_backward(logits[mask], labels[mask], reduction="sum")
    if (~mask).any():
        pieced[~mask] = bce_with_logits_backward(logits[~mask], labels[~mask], reduction="sum")
    np.testing.assert_allclose(pieced, full_grad, rtol=1e-12, atol=1e-12)


@given(logits_labels_mask())
@settings(max_examples=50, deadline=None)
def test_loss_is_non_negative(data):
    logits, labels, _ = data
    assert bce_with_logits(logits, labels, reduction="sum") >= 0.0
