"""Property-based tests of the Embedding Access Logger and Feistel randomizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eal import EALConfig, EmbeddingAccessLogger, expected_parallel_requests
from repro.core.lookup_engine import FeistelRandomizer


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**10))
@settings(max_examples=200, deadline=None)
def test_feistel_round_trip(value, seed):
    randomizer = FeistelRandomizer(seed=seed)
    assert randomizer.inverse(randomizer.hash(value)) == value


@given(
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 500)), min_size=1, max_size=200),
    st.integers(0, 100),
)
@settings(max_examples=50, deadline=None)
def test_eal_accessed_key_is_immediately_queryable(accesses, seed):
    """Directly after access(t, i), the entry is tracked (it was just inserted
    or refreshed), regardless of the access history."""
    eal = EmbeddingAccessLogger(EALConfig(size_bytes=2048, ways=4), seed=seed)
    for table, index in accesses:
        eal.access(table, index)
        assert eal.contains(table, index)


@given(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 200)), min_size=1, max_size=150)
)
@settings(max_examples=50, deadline=None)
def test_eal_counters_are_consistent(accesses):
    eal = EmbeddingAccessLogger(EALConfig(size_bytes=1024, ways=4), seed=0)
    for table, index in accesses:
        eal.access(table, index)
    assert eal.hits + eal.misses == len(accesses)
    assert eal.insertions == eal.misses
    assert 0.0 <= eal.occupancy <= 1.0
    tracked = sum(h.size for h in eal.hot_indices(num_tables=4))
    assert tracked <= eal.config.num_entries


@given(st.integers(1, 1024), st.integers(1, 128))
@settings(max_examples=100, deadline=None)
def test_expected_parallel_requests_bounded(queue, banks):
    value = expected_parallel_requests(queue, banks)
    assert 0 < value <= min(queue, banks) + 1e-9
