"""Property-based tests of the numpy NN substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.embedding import EmbeddingBag
from repro.nn.metrics import roc_auc
from repro.nn.mlp import MLP


@given(st.integers(1, 32), st.integers(1, 16), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_embedding_forward_backward_shapes(batch, pooling, seed):
    rng = np.random.default_rng(seed)
    bag = EmbeddingBag(64, 8, rng)
    indices = [rng.integers(0, 64, size=pooling) for _ in range(batch)]
    out = bag.forward(indices)
    assert out.shape == (batch, 8)
    grad = bag.backward(np.ones((batch, 8)))
    assert grad.values.shape[1] == 8
    assert grad.nnz <= batch * pooling
    # Total gradient mass equals batch * pooling (each lookup contributes 1s).
    assert grad.values.sum() == float(batch * pooling * 8)


@given(st.integers(0, 1000), st.integers(1, 24))
@settings(max_examples=30, deadline=None)
def test_mlp_deterministic_given_seed(seed, batch):
    rng_data = np.random.default_rng(seed)
    x = rng_data.normal(size=(batch, 6))
    a = MLP([6, 12, 3], np.random.default_rng(seed))
    b = MLP([6, 12, 3], np.random.default_rng(seed))
    np.testing.assert_allclose(a.forward(x), b.forward(x))


@given(st.integers(0, 5000))
@settings(max_examples=40, deadline=None)
def test_auc_invariant_under_monotone_transform(seed):
    rng = np.random.default_rng(seed)
    targets = rng.integers(0, 2, size=64).astype(float)
    if targets.min() == targets.max():
        targets[0] = 1.0 - targets[0]
    scores = rng.normal(size=64)
    base = roc_auc(targets, scores)
    transformed = roc_auc(targets, 3.0 * scores + 7.0)
    np.testing.assert_allclose(base, transformed, atol=1e-12)
    sigmoid = roc_auc(targets, 1.0 / (1.0 + np.exp(-scores)))
    np.testing.assert_allclose(base, sigmoid, atol=1e-12)
