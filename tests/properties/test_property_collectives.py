"""Property-based tests of the collective cost primitives.

The schedule layer (:mod:`repro.core.schedule`) treats every
``*_time`` primitive in :mod:`repro.hwsim.collectives` as a pricing
oracle, so the layer's orderings (deeper staleness never exposes more,
bigger buckets never cost less) only hold if the primitives themselves
are **monotone**:

* every primitive is non-decreasing in its payload (bytes, or rows and
  row-bytes for the embedding kinds);
* the peer-to-peer collectives (all-reduce, tree all-reduce, all-to-all,
  broadcast, gather, hierarchical all-reduce) are non-decreasing in the
  participant count — more peers, more hops;
* the embedding kinds (``embedding_alltoall_time``, ``cache_fill_time``)
  are deliberately **excluded** from participant monotonicity: their
  per-device payload is ``rows * row_bytes / p``, so the bandwidth term
  *shrinks* as ``(p - 1) / p²`` while only the latency term grows —
  adding shards can genuinely cheapen the exchange.

Hypothesis explores random links, payload pairs, and participant pairs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwsim.collectives import (
    allreduce_time,
    alltoall_time,
    broadcast_time,
    cache_fill_time,
    embedding_alltoall_time,
    gather_time,
    hierarchical_allreduce_time,
    tree_allreduce_time,
)
from repro.hwsim.dma import DMAEngine
from repro.hwsim.interconnect import Link

links = st.builds(
    Link,
    name=st.just("test-link"),
    bandwidth=st.floats(1e6, 1e12, allow_nan=False),
    latency_s=st.floats(0.0, 1e-3, allow_nan=False),
)

payloads = st.floats(0.0, 1e12, allow_nan=False)
participant_counts = st.integers(1, 4096)

#: Collectives priced as (num_bytes, participants, link).
PEER_COLLECTIVES = [
    allreduce_time,
    tree_allreduce_time,
    alltoall_time,
    broadcast_time,
    gather_time,
]


@given(
    link=links,
    bytes_pair=st.tuples(payloads, payloads),
    participants=participant_counts,
)
@settings(max_examples=80, deadline=None)
def test_peer_collectives_monotone_in_bytes(link, bytes_pair, participants):
    """More payload never costs less, for every peer collective."""
    low, high = sorted(bytes_pair)
    for collective in PEER_COLLECTIVES:
        assert collective(low, participants, link) <= collective(high, participants, link)


@given(
    link=links,
    num_bytes=payloads,
    participant_pair=st.tuples(participant_counts, participant_counts),
)
@settings(max_examples=80, deadline=None)
def test_peer_collectives_monotone_in_participants(link, num_bytes, participant_pair):
    """More peers never cost less, for every peer collective."""
    low, high = sorted(participant_pair)
    for collective in PEER_COLLECTIVES:
        assert collective(num_bytes, low, link) <= collective(num_bytes, high, link)


@given(
    intra=links,
    inter=links,
    bytes_pair=st.tuples(payloads, payloads),
    gpus=st.tuples(st.integers(1, 64), st.integers(1, 64)),
    nodes=st.tuples(st.integers(1, 256), st.integers(1, 256)),
)
@settings(max_examples=80, deadline=None)
def test_hierarchical_allreduce_monotone(intra, inter, bytes_pair, gpus, nodes):
    """Hierarchical all-reduce is monotone in bytes and both level widths."""
    low_bytes, high_bytes = sorted(bytes_pair)
    low_gpus, high_gpus = sorted(gpus)
    low_nodes, high_nodes = sorted(nodes)
    assert hierarchical_allreduce_time(
        low_bytes, low_gpus, low_nodes, intra, inter
    ) <= hierarchical_allreduce_time(high_bytes, high_gpus, high_nodes, intra, inter)


@given(
    link=links,
    rows_pair=st.tuples(payloads, payloads),
    row_bytes=st.floats(1.0, 4096.0, allow_nan=False),
    participants=participant_counts,
)
@settings(max_examples=80, deadline=None)
def test_embedding_kinds_monotone_in_rows(link, rows_pair, row_bytes, participants):
    """The row-based kinds are monotone in the row count."""
    low, high = sorted(rows_pair)
    assert embedding_alltoall_time(
        low, row_bytes, participants, link
    ) <= embedding_alltoall_time(high, row_bytes, participants, link)
    dma = DMAEngine()
    assert cache_fill_time(low, row_bytes, participants, link, dma=dma) <= cache_fill_time(
        high, row_bytes, participants, link, dma=dma
    )


@given(
    link=links,
    rows=st.floats(1.0, 1e9, allow_nan=False),
    row_bytes_pair=st.tuples(
        st.floats(0.0, 4096.0, allow_nan=False), st.floats(0.0, 4096.0, allow_nan=False)
    ),
    participants=participant_counts,
)
@settings(max_examples=80, deadline=None)
def test_embedding_kinds_monotone_in_row_bytes(link, rows, row_bytes_pair, participants):
    """The row-based kinds are monotone in the bytes per row."""
    low, high = sorted(row_bytes_pair)
    assert embedding_alltoall_time(
        rows, low, participants, link
    ) <= embedding_alltoall_time(rows, high, participants, link)
    assert cache_fill_time(rows, low, participants, link) <= cache_fill_time(
        rows, high, participants, link
    )


@given(link=links, participants=participant_counts)
@settings(max_examples=40, deadline=None)
def test_zero_payload_prices_to_zero(link, participants):
    """Nothing to move costs nothing, for every kind."""
    for collective in PEER_COLLECTIVES:
        assert collective(0.0, participants, link) == 0.0
    assert embedding_alltoall_time(0.0, 64.0, participants, link) == 0.0
    assert cache_fill_time(0.0, 64.0, participants, link) == 0.0
    assert hierarchical_allreduce_time(0.0, 4, participants, link, link) == 0.0
