"""Property-based tests of the bucketed all-reduce and the sparse routing.

The bit-parity guarantee of the multi-replica trainer rests on structural
invariants of :class:`~repro.core.reducer.GradientBucketReducer`: the
per-element association order is fixed by the algorithm and the partial's
rank — never by how elements are packed into buckets.  Hypothesis explores
random partial sets, bucket sizes, and packings to assert:

* **bucket-size invariance** — any ``bucket_bytes`` produces bit-identical
  reductions (ring and tree);
* **packing-permutation invariance** — permuting the element layout before
  reduction and un-permuting after is a no-op, bit for bit;
* **dtype preservation** — float32 partials reduce to float32 (no silent
  upcast), the ``merge_sparse_gradients`` drift class of bug;
* **mode ordering** — exposed communication obeys
  ``stale-(k+1) <= stale-k <= ... <= stale-1 <= overlap <= sync (total)``,
  with ``stale-k`` exposing exactly ``max(0, total - k * compute)`` and
  ``stale-0`` degenerating to ``sync``;
* **partition routing** — row-wise routing of a merged sparse gradient is a
  partition: concatenating the per-owner pieces reproduces the original,
  and every row lands on the shard that owns it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.placement import PartitionedEmbeddingPlacement
from repro.core.reducer import (
    WIRE_BYTES_PER_ELEMENT,
    GradientBucketReducer,
    SparseGradientExchange,
)
from repro.hwsim.cluster import single_node
from repro.nn.embedding import SparseGradient, merge_sparse_gradients

finite = st.floats(-1e6, 1e6, allow_nan=False, width=32)


@st.composite
def partial_sets(draw):
    """A list of 1..6 equal-length float64 partial gradients."""
    num_elements = draw(st.integers(min_value=1, max_value=257))
    count = draw(st.integers(min_value=1, max_value=6))
    return [
        draw(arrays(np.float64, num_elements, elements=finite))
        for _ in range(count)
    ]


@st.composite
def bucket_reducers(draw):
    algorithm = draw(st.sampled_from(["ring", "tree"]))
    bucket_elements = draw(st.integers(min_value=1, max_value=300))
    return GradientBucketReducer(
        4,
        bucket_bytes=bucket_elements * WIRE_BYTES_PER_ELEMENT,
        algorithm=algorithm,
    )


@given(partials=partial_sets(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_bucket_size_invariance(partials, data):
    """Any two bucket sizes produce bit-identical reductions."""
    algorithm = data.draw(st.sampled_from(["ring", "tree"]))
    sizes = data.draw(
        st.lists(st.integers(1, 300), min_size=2, max_size=2, unique=True)
    )
    reduced = [
        GradientBucketReducer(
            4, bucket_bytes=size * WIRE_BYTES_PER_ELEMENT, algorithm=algorithm
        ).reduce(partials)
        for size in sizes
    ]
    np.testing.assert_array_equal(reduced[0], reduced[1])


@given(partials=partial_sets(), reducer=bucket_reducers(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_packing_permutation_invariance(partials, reducer, data):
    """Shuffling the element packing and unshuffling after is a no-op."""
    num_elements = partials[0].shape[0]
    seed = data.draw(st.integers(0, 2**32 - 1))
    permutation = np.random.default_rng(seed).permutation(num_elements)
    inverse = np.argsort(permutation)
    direct = reducer.reduce(partials)
    permuted = reducer.reduce([partial[permutation] for partial in partials])
    np.testing.assert_array_equal(permuted[inverse], direct)


@given(partials=partial_sets(), reducer=bucket_reducers())
@settings(max_examples=60, deadline=None)
def test_reduction_matches_elementwise_sum(partials, reducer):
    """The reduced value is the element-wise sum, to float tolerance."""
    reduced = reducer.reduce(partials)
    np.testing.assert_allclose(
        reduced, np.sum(partials, axis=0), rtol=1e-12, atol=1e-6
    )


@given(partials=partial_sets(), reducer=bucket_reducers())
@settings(max_examples=40, deadline=None)
def test_float32_partials_reduce_to_float32(partials, reducer):
    """The wire dtype survives the reduction — no silent float64 upcast."""
    down = [partial.astype(np.float32) for partial in partials]
    reduced = reducer.reduce(down)
    assert reduced.dtype == np.float32


@given(
    num_elements=st.integers(1, 4096),
    bucket_elements=st.integers(1, 1024),
    compute=st.floats(0.0, 1.0, allow_nan=False),
    staleness=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_mode_exposure_ordering(num_elements, bucket_elements, compute, staleness):
    """Deeper staleness exposes less: stale-(k+1) <= stale-k <= overlap <= sync."""
    cluster = single_node(4)
    schedules = {}
    modes = ("sync", "overlap", f"stale-{staleness}", f"stale-{staleness + 1}")
    for mode in modes:
        reducer = GradientBucketReducer(
            4,
            bucket_bytes=bucket_elements * WIRE_BYTES_PER_ELEMENT,
            mode=mode,
            cluster=cluster,
        )
        schedules[mode] = reducer.schedule(num_elements, compute)
    total = schedules["sync"].total_s
    assert schedules["sync"].exposed_s == total
    # stale-k pipelines the reduce behind k compute windows; the remainder
    # is exposed, so staleness buys exposure down monotonically.
    stale_k = schedules[f"stale-{staleness}"].exposed_s
    stale_deeper = schedules[f"stale-{staleness + 1}"].exposed_s
    assert stale_k == max(0.0, total - staleness * compute)
    assert stale_deeper <= stale_k <= schedules["overlap"].exposed_s + 1e-15
    assert 0.0 <= schedules["overlap"].exposed_s <= total + 1e-15
    # A compute window covering the whole wire time hides stale-1 entirely
    # (the PR 3 behaviour); stale-0 is sync by definition.
    hiding = GradientBucketReducer(
        4,
        bucket_bytes=bucket_elements * WIRE_BYTES_PER_ELEMENT,
        mode="stale-1",
        cluster=cluster,
    )
    assert hiding.exposed_time(list(schedules["sync"].per_bucket_s), total) == 0.0
    alias = GradientBucketReducer(
        4,
        bucket_bytes=bucket_elements * WIRE_BYTES_PER_ELEMENT,
        mode="stale-0",
        cluster=cluster,
    )
    assert alias.schedule(num_elements, compute).exposed_s == total
    # The wire time itself is mode-independent.
    assert schedules["overlap"].per_bucket_s == schedules["sync"].per_bucket_s


@st.composite
def merged_gradients(draw):
    """A sorted-unique-index sparse gradient plus a table size bounding it."""
    rows = draw(st.integers(min_value=1, max_value=500))
    nnz = draw(st.integers(min_value=0, max_value=min(rows, 64)))
    indices = draw(
        st.lists(
            st.integers(0, rows - 1), min_size=nnz, max_size=nnz, unique=True
        )
    )
    indices = np.array(sorted(indices), dtype=np.int64)
    values = draw(
        arrays(np.float64, (nnz, 4), elements=st.floats(-100, 100, allow_nan=False))
    )
    return rows, SparseGradient(indices, values)


@given(merged=merged_gradients(), num_shards=st.integers(1, 7))
@settings(max_examples=60, deadline=None)
def test_partition_routing_is_a_partition(merged, num_shards):
    """Routed pieces concatenate back to the original, owners respected."""
    rows, grad = merged
    partition = PartitionedEmbeddingPlacement(
        rows_per_table=(rows,), num_shards=num_shards, embedding_dim=4
    )
    routed = partition.route_gradient(0, grad)
    assert len(routed) == num_shards
    np.testing.assert_array_equal(
        np.concatenate([piece.indices for piece in routed]), grad.indices
    )
    np.testing.assert_array_equal(
        np.concatenate([piece.values for piece in routed], axis=0), grad.values
    )
    for shard, piece in enumerate(routed):
        if piece.nnz:
            assert set(np.unique(partition.owner_of(0, piece.indices))) == {shard}
    # Ownership covers every row exactly once.
    assert partition.owned_row_count(num_shards - 1) >= 0
    assert sum(partition.owned_row_count(k) for k in range(num_shards)) == rows


@given(merged=merged_gradients(), num_shards=st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_exchange_round_trip_preserves_merge(merged, num_shards):
    """Exchanging split partials reproduces the plain merged gradient."""
    rows, grad = merged
    partition = PartitionedEmbeddingPlacement(
        rows_per_table=(rows,), num_shards=num_shards, embedding_dim=4
    )
    pieces = partition.route_gradient(0, grad)
    exchange = SparseGradientExchange(1, partition=partition)
    merged_back = exchange.exchange([pieces])[0]
    reference = merge_sparse_gradients(pieces)
    np.testing.assert_array_equal(merged_back.indices, reference.indices)
    np.testing.assert_array_equal(merged_back.values, reference.values)
    np.testing.assert_array_equal(merged_back.indices, grad.indices)
