"""Unit tests for the mini-batch loader."""

import numpy as np
import pytest

from repro.data.loader import MiniBatchLoader
from repro.data.synthetic import generate_click_log
from tests.conftest import TINY_DATASET


@pytest.fixture(scope="module")
def log():
    return generate_click_log(TINY_DATASET, 1000, seed=0)


def test_len_with_drop_last(log):
    loader = MiniBatchLoader(log, batch_size=256, drop_last=True)
    assert len(loader) == 3


def test_len_without_drop_last(log):
    loader = MiniBatchLoader(log, batch_size=256, drop_last=False)
    assert len(loader) == 4


def test_iteration_yields_full_batches(log):
    loader = MiniBatchLoader(log, batch_size=128)
    batches = list(loader)
    assert len(batches) == len(loader)
    assert all(batch.size == 128 for batch in batches)


def test_no_shuffle_is_sequential(log):
    loader = MiniBatchLoader(log, batch_size=100, shuffle=False)
    first = next(iter(loader))
    np.testing.assert_allclose(first.dense, log.dense[:100])


def test_shuffle_changes_order_but_not_content(log):
    loader = MiniBatchLoader(log, batch_size=500, shuffle=True, drop_last=True, seed=3)
    first = next(iter(loader))
    assert not np.allclose(first.dense, log.dense[:500])


def test_sample_batches_fraction(log):
    loader = MiniBatchLoader(log, batch_size=100)
    sampled = loader.sample_batches(0.5, seed=1)
    assert len(sampled) == max(1, round(len(loader) * 0.5))


def test_sample_batches_minimum_one(log):
    loader = MiniBatchLoader(log, batch_size=100)
    assert len(loader.sample_batches(0.01)) == 1


def test_sample_batches_invalid_fraction(log):
    loader = MiniBatchLoader(log, batch_size=100)
    with pytest.raises(ValueError):
        loader.sample_batches(0.0)


def test_invalid_batch_size(log):
    with pytest.raises(ValueError):
        MiniBatchLoader(log, batch_size=0)
