"""Unit tests for the mini-batch loader."""

import numpy as np
import pytest

from repro.data.loader import MiniBatchLoader
from repro.data.synthetic import generate_click_log
from tests.conftest import TINY_DATASET


@pytest.fixture(scope="module")
def log():
    return generate_click_log(TINY_DATASET, 1000, seed=0)


def test_len_with_drop_last(log):
    loader = MiniBatchLoader(log, batch_size=256, drop_last=True)
    assert len(loader) == 3


def test_len_without_drop_last(log):
    loader = MiniBatchLoader(log, batch_size=256, drop_last=False)
    assert len(loader) == 4


def test_iteration_yields_full_batches(log):
    loader = MiniBatchLoader(log, batch_size=128)
    batches = list(loader)
    assert len(batches) == len(loader)
    assert all(batch.size == 128 for batch in batches)


def test_no_shuffle_is_sequential(log):
    loader = MiniBatchLoader(log, batch_size=100, shuffle=False)
    first = next(iter(loader))
    np.testing.assert_allclose(first.dense, log.dense[:100])


def test_shuffle_changes_order_but_not_content(log):
    loader = MiniBatchLoader(log, batch_size=500, shuffle=True, drop_last=True, seed=3)
    first = next(iter(loader))
    assert not np.allclose(first.dense, log.dense[:500])


def test_sample_batches_fraction(log):
    loader = MiniBatchLoader(log, batch_size=100)
    sampled = loader.sample_batches(0.5, seed=1)
    assert len(sampled) == max(1, round(len(loader) * 0.5))


def test_sample_batches_minimum_one(log):
    loader = MiniBatchLoader(log, batch_size=100)
    assert len(loader.sample_batches(0.01)) == 1


def test_sample_batches_invalid_fraction(log):
    loader = MiniBatchLoader(log, batch_size=100)
    with pytest.raises(ValueError):
        loader.sample_batches(0.0)


def test_invalid_batch_size(log):
    with pytest.raises(ValueError):
        MiniBatchLoader(log, batch_size=0)


def test_invalid_prefetch_depth(log):
    with pytest.raises(ValueError):
        MiniBatchLoader(log, batch_size=10, prefetch=-1)


# ---------------------------------------------------------------------- #
# Prefetching
# ---------------------------------------------------------------------- #
def assert_same_batches(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right, strict=True):
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.sparse, b.sparse)
        np.testing.assert_array_equal(a.labels, b.labels)


@pytest.mark.parametrize("shuffle", [False, True])
def test_prefetch_yields_identical_batches(log, shuffle):
    """Background assembly must not change what an epoch yields."""
    sync = MiniBatchLoader(log, batch_size=128, shuffle=shuffle, seed=5)
    prefetched = MiniBatchLoader(log, batch_size=128, shuffle=shuffle, seed=5, prefetch=2)
    for _epoch in range(2):  # shuffled orders advance identically too
        assert_same_batches(list(sync), list(prefetched))


def test_epoch_prefetch_override(log):
    loader = MiniBatchLoader(log, batch_size=128)
    assert_same_batches(list(loader.epoch(prefetch=3)), list(loader.epoch(prefetch=0)))


def test_epoch_transform_applied_to_every_batch(log):
    """The transform hook sees each batch exactly once, in epoch order,
    and its return value is what the epoch yields."""
    loader = MiniBatchLoader(log, batch_size=128)
    seen = []

    def tag(batch):
        seen.append(batch)
        batch._tag = len(seen)
        return batch

    batches = list(loader.epoch(transform=tag))
    assert [batch._tag for batch in batches] == list(range(1, len(batches) + 1))
    assert all(a is b for a, b in zip(batches, seen, strict=True))
    assert_same_batches(batches, list(loader.epoch()))


def test_epoch_transform_runs_on_prefetch_worker_thread(log):
    """With prefetching enabled the transform executes on the loader's
    worker thread — that is what lets µ-batch pre-classification overlap
    the training step instead of extending it."""
    import threading

    loader = MiniBatchLoader(log, batch_size=128)
    thread_names = set()

    def spy(batch):
        thread_names.add(threading.current_thread().name)
        return batch

    synchronous = list(loader.epoch(prefetch=0, transform=spy))
    assert thread_names == {threading.current_thread().name}
    thread_names.clear()
    prefetched = list(loader.epoch(prefetch=2, transform=spy))
    assert thread_names == {"minibatch-prefetch"}
    assert_same_batches(synchronous, prefetched)


def test_prefetch_early_break_does_not_hang(log):
    loader = MiniBatchLoader(log, batch_size=64, prefetch=1)
    for i, _batch in enumerate(loader):
        if i == 1:
            break
    # A fresh epoch still yields everything after an abandoned iterator.
    assert len(list(loader)) == len(loader)


def _prefetch_threads():
    import threading

    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("minibatch-prefetch")
    ]


def test_abandoned_prefetch_iterator_leaks_no_worker_thread(log):
    """Regression: the worker used to stay blocked on the full queue when
    the consumer abandoned the iterator mid-epoch; close() must drain the
    queue and *join* the thread."""
    assert _prefetch_threads() == []
    iterator = MiniBatchLoader(log, batch_size=64, prefetch=2).epoch(prefetch=2)
    next(iterator)  # abandon after one batch, worker ahead on a full queue
    iterator.close()
    assert _prefetch_threads() == []


def test_prefetch_break_joins_worker_thread(log):
    """The early-break path (GeneratorExit via refcount) joins the worker too."""
    loader = MiniBatchLoader(log, batch_size=64, prefetch=3)
    for i, _batch in enumerate(loader):
        if i == 0:
            break
    # CPython closes the abandoned generator as the loop's reference dies;
    # the finally block must have drained and joined before returning.
    assert _prefetch_threads() == []


def test_exhausted_prefetch_epoch_joins_worker_thread(log):
    loader = MiniBatchLoader(log, batch_size=256, prefetch=2)
    assert len(list(loader)) == len(loader)
    assert _prefetch_threads() == []


def test_prefetch_propagates_producer_errors():
    class ExplodingLog:
        num_samples = 256

        def __getattr__(self, name):
            raise RuntimeError("boom")

    loader = MiniBatchLoader.__new__(MiniBatchLoader)  # bypass validation
    loader.log = ExplodingLog()
    loader.batch_size = 64
    loader.shuffle = False
    loader.drop_last = True
    loader.seed = 0
    loader.prefetch = 1
    loader._rng = np.random.default_rng(0)
    with pytest.raises(RuntimeError, match="boom"):
        list(loader)


# ---------------------------------------------------------------------- #
# Epoch-order exposure (lookahead consumers)
# ---------------------------------------------------------------------- #
def test_last_epoch_order_mirrors_the_served_epoch(log):
    """epoch() records the eagerly-drawn order so lookahead consumers can
    walk the in-flight epoch's batches without touching the RNG."""
    loader = MiniBatchLoader(log, batch_size=100, shuffle=True, seed=6)
    assert loader.last_epoch_order is None
    first = list(loader)
    order = loader.last_epoch_order
    assert order is not None
    np.testing.assert_array_equal(first[0].labels, log.labels[order[:100]])
    # A sequential loader records None (identity order).
    sequential = MiniBatchLoader(log, batch_size=100)
    list(sequential)
    assert sequential.last_epoch_order is None


# ---------------------------------------------------------------------- #
# Sampling side-effect freedom
# ---------------------------------------------------------------------- #
def test_sample_batches_does_not_perturb_epoch_order(log):
    """Regression: sampling used to consume the epoch-shuffling RNG."""
    undisturbed = MiniBatchLoader(log, batch_size=100, shuffle=True, seed=9)
    sampled_from = MiniBatchLoader(log, batch_size=100, shuffle=True, seed=9)
    first = list(undisturbed)
    sampled_from.sample_batches(0.5, seed=1)  # must not advance the epoch RNG
    assert_same_batches(first, list(sampled_from))
    # And the *next* epochs stay aligned as well.
    assert_same_batches(list(undisturbed), list(sampled_from))


def test_sample_batches_deterministic_on_shuffled_loader(log):
    loader = MiniBatchLoader(log, batch_size=100, shuffle=True, seed=9)
    first = loader.sample_batches(0.5, seed=1)
    second = loader.sample_batches(0.5, seed=1)
    assert_same_batches(first, second)


def test_sample_batches_mirrors_first_epoch_content(log):
    """Sampled batches are actual batches of the loader's first epoch."""
    loader = MiniBatchLoader(log, batch_size=100, shuffle=True, seed=4)
    epoch = list(MiniBatchLoader(log, batch_size=100, shuffle=True, seed=4))
    for batch in loader.sample_batches(0.3, seed=2):
        assert any(np.array_equal(batch.labels, other.labels) for other in epoch)


# ---------------------------------------------------------------------- #
# ShardedLoader edge cases
# ---------------------------------------------------------------------- #

def test_sharded_loader_batch_not_divisible_by_shards(log):
    """Batch 100 over K=3: shard sizes differ by at most one, order kept."""
    from repro.data.loader import ShardedLoader

    loader = MiniBatchLoader(log, batch_size=100)
    sharded = ShardedLoader(loader, 3)
    for shards, batch in zip(sharded, loader, strict=True):
        sizes = [shard.size for shard in shards]
        assert sum(sizes) == batch.size == 100
        assert max(sizes) - min(sizes) <= 1
        # Pin the exact deal order: the balanced-split bounds formula puts
        # the larger shards last (PartitionedEmbeddingPlacement relies on
        # the same arithmetic).
        assert sizes == [33, 33, 34]
        np.testing.assert_array_equal(
            np.concatenate([shard.labels for shard in shards]), batch.labels
        )
        np.testing.assert_array_equal(
            np.concatenate([shard.sparse for shard in shards]), batch.sparse
        )


def test_sharded_loader_more_shards_than_samples(log):
    """K > batch: every batch still deals K shards, the extras empty."""
    from repro.data.loader import ShardedLoader

    loader = MiniBatchLoader(log, batch_size=5)
    sharded = ShardedLoader(loader, 8)
    shards = next(iter(sharded))
    assert len(shards) == 8
    sizes = [shard.size for shard in shards]
    assert sum(sizes) == 5
    assert sizes.count(0) == 3
    # Empty shards are structurally valid MiniBatches (0, tables, pooling).
    for shard in shards:
        assert shard.sparse.shape[1:] == shards[0].sparse.shape[1:]
        assert shard.dense.shape[0] == shard.labels.shape[0] == shard.size


def test_sharded_loader_empty_shards_are_skippable_views(log):
    """Empty shards carry no data but keep the dtype/shape contract."""
    loader = MiniBatchLoader(log, batch_size=2)
    batch = next(iter(loader))
    shards = batch.shards(4)
    empty = [shard for shard in shards if shard.size == 0]
    assert len(empty) == 2
    for shard in empty:
        assert shard.labels.size == 0
        assert shard.sparse.dtype == batch.sparse.dtype
    # Concatenation round-trips even through the empties.
    np.testing.assert_array_equal(
        np.concatenate([shard.dense for shard in shards]), batch.dense
    )


def test_sharded_loader_single_shard_is_identity(log):
    from repro.data.loader import ShardedLoader

    loader = MiniBatchLoader(log, batch_size=128)
    for shards, batch in zip(ShardedLoader(loader, 1), loader, strict=True):
        assert len(shards) == 1
        assert shards[0].size == batch.size
        np.testing.assert_array_equal(shards[0].labels, batch.labels)
        break


def test_sharded_trainer_handles_empty_shards(tiny_model_config, tiny_click_log):
    """A K=8 trainer on a 5-sample batch trains only the populated shards."""
    from repro.core.distributed import ShardedHotlineTrainer
    from repro.models.dlrm import DLRM

    trainer = ShardedHotlineTrainer(
        DLRM(tiny_model_config, seed=1), 8, lr=0.05, sample_fraction=0.25
    )
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    trainer.learning_phase(loader)
    loss, popular_fraction = trainer.train_step(tiny_click_log.batch(0, 5))
    assert np.isfinite(loss)
    assert 0.0 <= popular_fraction <= 1.0
    assert trainer.replica_drift() == 0.0
