"""Unit tests for the dataset specifications (Table II datasets)."""

import pytest

from repro.data.datasets import (
    AVAZU,
    CRITEO_KAGGLE,
    CRITEO_TERABYTE,
    PAPER_DATASETS,
    SYN_D1,
    SYN_D2,
    TAOBAO_ALIBABA,
    dataset_by_name,
)


def test_table2_sparse_feature_counts():
    assert CRITEO_KAGGLE.num_sparse == 26
    assert CRITEO_TERABYTE.num_sparse == 26
    assert AVAZU.num_sparse == 21
    assert TAOBAO_ALIBABA.num_sparse == 3


def test_table2_dense_feature_counts():
    assert CRITEO_KAGGLE.num_dense == 13
    assert CRITEO_TERABYTE.num_dense == 13
    assert AVAZU.num_dense == 1
    assert TAOBAO_ALIBABA.num_dense == 1


def test_table2_total_rows_match_sparse_parameters():
    # Table II sparse parameter counts: 33.8M, 266M, 9.3M, 5.1M (rows).
    assert CRITEO_KAGGLE.total_rows == pytest.approx(33.8e6, rel=0.02)
    assert CRITEO_TERABYTE.total_rows == pytest.approx(266e6, rel=0.02)
    assert AVAZU.total_rows == pytest.approx(9.3e6, rel=0.02)
    assert TAOBAO_ALIBABA.total_rows == pytest.approx(5.1e6, rel=0.02)


def test_taobao_is_a_time_series():
    assert TAOBAO_ALIBABA.time_series_length == 21
    assert CRITEO_KAGGLE.time_series_length == 1


def test_lookups_per_sample_one_hot():
    assert CRITEO_KAGGLE.lookups_per_sample() == 26
    assert AVAZU.lookups_per_sample() == 21


def test_lookups_per_sample_time_series_counts_history_once_per_step():
    # 21 history lookups + 2 context tables.
    assert TAOBAO_ALIBABA.lookups_per_sample() == 23


def test_lookups_per_sample_multi_hot():
    assert SYN_D1.lookups_per_sample() == 102 * 4
    assert SYN_D2.lookups_per_sample() == 204 * 4


def test_embedding_bytes_scales_with_dim():
    assert CRITEO_KAGGLE.embedding_bytes(32) == 2 * CRITEO_KAGGLE.embedding_bytes(16)


def test_scaled_preserves_table_count_and_relative_sizes():
    scaled = CRITEO_TERABYTE.scaled(max_rows_per_table=10_000)
    assert scaled.num_sparse == CRITEO_TERABYTE.num_sparse
    assert max(scaled.rows_per_table) <= 10_000
    original_largest = max(CRITEO_TERABYTE.rows_per_table)
    original_second = sorted(CRITEO_TERABYTE.rows_per_table)[-3]
    scaled_largest = max(scaled.rows_per_table)
    scaled_second = sorted(scaled.rows_per_table)[-3]
    assert scaled_second / scaled_largest == pytest.approx(
        original_second / original_largest, rel=0.1
    )


def test_scaled_noop_when_already_small():
    small = TAOBAO_ALIBABA.scaled(max_rows_per_table=10_000_000)
    assert small.rows_per_table == TAOBAO_ALIBABA.rows_per_table


def test_dataset_registry_lookup():
    assert dataset_by_name("Criteo Kaggle") is CRITEO_KAGGLE
    with pytest.raises(KeyError):
        dataset_by_name("MovieLens")
    assert len(PAPER_DATASETS) == 6
