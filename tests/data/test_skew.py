"""Unit tests for popularity / access-skew analysis (Figures 6 and 9)."""

import numpy as np
import pytest

from repro.data.skew import (
    EvolvingSkewGenerator,
    access_histogram,
    popular_entries,
    popular_input_fraction,
    popular_input_mask,
    top_k_overlap,
)
from repro.data.synthetic import generate_click_log
from tests.conftest import TINY_DATASET


@pytest.fixture(scope="module")
def log():
    return generate_click_log(TINY_DATASET, 8192, seed=0)


def test_access_histogram_counts_every_lookup(log):
    histograms = access_histogram(log.sparse, TINY_DATASET.rows_per_table)
    total = sum(int(h.sum()) for h in histograms)
    assert total == log.num_samples * TINY_DATASET.lookups_per_sample()
    assert len(histograms) == TINY_DATASET.num_sparse


def test_popular_entries_threshold(log):
    histograms = access_histogram(log.sparse, TINY_DATASET.rows_per_table)
    hot = popular_entries(histograms, threshold=1.0 / 1000)
    # Popular entries must be a small subset of all rows but not empty.
    total_hot = sum(h.size for h in hot)
    assert 0 < total_hot < sum(TINY_DATASET.rows_per_table)


def test_popular_entries_empty_histograms():
    empty = [np.zeros(10, dtype=int)]
    assert popular_entries(empty)[0].size == 0


def test_popular_input_mask_requires_every_lookup_hot(log):
    histograms = access_histogram(log.sparse, TINY_DATASET.rows_per_table)
    hot = popular_entries(histograms, threshold=1.0 / 1000)
    mask = popular_input_mask(log.sparse, hot)
    # Verify the definition on a sample of inputs.
    for i in range(0, 200, 17):
        expected = all(
            np.isin(log.sparse[i, t, :], hot[t]).all() for t in range(len(hot))
        )
        assert mask[i] == expected


def test_popular_input_fraction_majority(log):
    """With the paper's threshold, the skewed data yields a popular majority."""
    histograms = access_histogram(log.sparse, TINY_DATASET.rows_per_table)
    hot = popular_entries(histograms)
    assert popular_input_fraction(log.sparse, hot) > 0.5


def test_empty_hot_set_means_no_popular_inputs(log):
    hot = [np.empty(0, dtype=np.int64) for _ in TINY_DATASET.rows_per_table]
    assert popular_input_fraction(log.sparse, hot) == 0.0


def test_top_k_overlap_bounds():
    a = np.array([10, 5, 1, 0])
    assert top_k_overlap(a, a, k=2) == 1.0
    b = np.array([0, 1, 5, 10])
    assert top_k_overlap(a, b, k=2) == 0.0
    with pytest.raises(ValueError):
        top_k_overlap(a, b, k=0)


def test_evolving_skew_drifts_over_days():
    generator = EvolvingSkewGenerator(TINY_DATASET, drift_per_day=0.3, seed=1)
    day0 = generator.day(0, 4096)
    day1 = generator.day(1, 4096)
    day5 = generator.day(5, 4096)
    h0 = access_histogram(day0.sparse, TINY_DATASET.rows_per_table)[0]
    h1 = access_histogram(day1.sparse, TINY_DATASET.rows_per_table)[0]
    h5 = access_histogram(day5.sparse, TINY_DATASET.rows_per_table)[0]
    k = 32
    near = top_k_overlap(h0, h1, k)
    far = top_k_overlap(h0, h5, k)
    assert far <= near
    assert near < 1.0 or far < 1.0


def test_evolving_skew_day_zero_is_base():
    generator = EvolvingSkewGenerator(TINY_DATASET, drift_per_day=0.3, seed=1)
    base = generate_click_log(TINY_DATASET, 1024, seed=1)
    day0 = generator.day(0, 1024)
    np.testing.assert_array_equal(day0.sparse, base.sparse)


def test_evolving_skew_invalid_drift():
    generator = EvolvingSkewGenerator(TINY_DATASET, drift_per_day=1.5, seed=1)
    with pytest.raises(ValueError):
        generator.day(1, 128)
