"""Unit tests for the MiniBatch container."""

import numpy as np
import pytest

from repro.data.batch import MiniBatch


def make_batch(n=8, tables=3, pooling=2, dense=4, seed=0):
    rng = np.random.default_rng(seed)
    return MiniBatch(
        dense=rng.normal(size=(n, dense)),
        sparse=rng.integers(0, 10, size=(n, tables, pooling)),
        labels=(rng.uniform(size=n) < 0.5).astype(float),
    )


def test_properties():
    batch = make_batch(n=8, tables=3, pooling=2)
    assert batch.size == 8
    assert batch.num_tables == 3
    assert batch.pooling == 2


def test_shape_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        MiniBatch(rng.normal(size=(4,)), rng.integers(0, 5, size=(4, 2, 1)), np.zeros(4))
    with pytest.raises(ValueError):
        MiniBatch(rng.normal(size=(4, 2)), rng.integers(0, 5, size=(4, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        MiniBatch(rng.normal(size=(4, 2)), rng.integers(0, 5, size=(3, 2, 1)), np.zeros(4))


def test_select_preserves_alignment():
    batch = make_batch()
    subset = batch.select(np.array([1, 3]))
    assert subset.size == 2
    np.testing.assert_allclose(subset.dense[0], batch.dense[1])
    np.testing.assert_allclose(subset.labels[1], batch.labels[3])


def test_split_partitions_batch():
    batch = make_batch(n=10)
    mask = np.arange(10) % 2 == 0
    popular, non_popular = batch.split(mask)
    assert popular.size == 5
    assert non_popular.size == 5
    assert popular.size + non_popular.size == batch.size


def test_split_wrong_mask_length_raises():
    batch = make_batch(n=4)
    with pytest.raises(ValueError):
        batch.split(np.array([True, False]))


def test_table_block_format():
    batch = make_batch(n=3, tables=2, pooling=2)
    block = batch.table_block(1)
    assert block.shape == (3, 2)
    np.testing.assert_array_equal(block, batch.sparse[:, 1, :])
