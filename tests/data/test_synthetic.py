"""Unit tests for the synthetic Zipf click-log generator."""

import numpy as np
import pytest

from repro.data.synthetic import _zipf_probabilities, generate_click_log
from tests.conftest import TINY_DATASET


def test_zipf_probabilities_sum_to_one():
    probs = _zipf_probabilities(1000, 1.2)
    assert probs.sum() == pytest.approx(1.0)
    assert np.all(np.diff(probs) <= 0)


def test_generated_shapes():
    log = generate_click_log(TINY_DATASET, 512, seed=0)
    assert log.dense.shape == (512, TINY_DATASET.num_dense)
    assert log.sparse.shape == (512, TINY_DATASET.num_sparse, TINY_DATASET.pooling)
    assert log.labels.shape == (512,)


def test_indices_within_table_bounds():
    log = generate_click_log(TINY_DATASET, 512, seed=1)
    for table, rows in enumerate(TINY_DATASET.rows_per_table):
        assert log.sparse[:, table, :].min() >= 0
        assert log.sparse[:, table, :].max() < rows


def test_deterministic_given_seed():
    a = generate_click_log(TINY_DATASET, 256, seed=5)
    b = generate_click_log(TINY_DATASET, 256, seed=5)
    np.testing.assert_array_equal(a.sparse, b.sparse)
    np.testing.assert_allclose(a.dense, b.dense)


def test_different_seed_differs():
    a = generate_click_log(TINY_DATASET, 256, seed=5)
    b = generate_click_log(TINY_DATASET, 256, seed=6)
    assert not np.array_equal(a.sparse, b.sparse)


def test_click_rate_near_target():
    log = generate_click_log(TINY_DATASET, 8192, seed=2, click_rate=0.25)
    assert 0.15 < log.click_rate < 0.4


def test_access_skew_is_heavy_tailed():
    log = generate_click_log(TINY_DATASET, 8192, seed=3)
    counts = np.bincount(log.sparse[:, 0, :].reshape(-1), minlength=TINY_DATASET.rows_per_table[0])
    counts = np.sort(counts)[::-1]
    top_decile = counts[: len(counts) // 10].sum()
    assert top_decile / counts.sum() > 0.5


def test_labels_are_learnable_signal():
    """Labels correlate with the hidden model, so AUC > 0.5 is achievable."""
    log = generate_click_log(TINY_DATASET, 4096, seed=4, label_noise=0.0)
    # The dense part of the ground truth alone should give better-than-random
    # separation between the classes.
    positives = log.dense[log.labels == 1].mean(axis=0)
    negatives = log.dense[log.labels == 0].mean(axis=0)
    assert np.abs(positives - negatives).max() > 0.05


def test_batch_slicing():
    log = generate_click_log(TINY_DATASET, 300, seed=0)
    batch = log.batch(250, 100)
    assert batch.size == 50


def test_invalid_sample_count_raises():
    with pytest.raises(ValueError):
        generate_click_log(TINY_DATASET, 0)
