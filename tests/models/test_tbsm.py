"""Unit tests for the TBSM time-series model."""

import numpy as np
import pytest

from repro.data.loader import MiniBatchLoader
from repro.models.tbsm import TBSM
from repro.nn.metrics import roc_auc


def test_requires_attention_config(tiny_model_config):
    with pytest.raises(ValueError):
        TBSM(tiny_model_config)


def test_forward_shape(tiny_tbsm, tiny_ts_click_log):
    logits = tiny_tbsm.forward(tiny_ts_click_log.batch(0, 16))
    assert logits.shape == (16,)


def test_predict_probabilities(tiny_tbsm, tiny_ts_click_log):
    probs = tiny_tbsm.predict(tiny_ts_click_log.batch(0, 8))
    assert np.all((probs > 0) & (probs < 1))


def test_backward_before_forward_raises(tiny_tbsm):
    with pytest.raises(RuntimeError):
        tiny_tbsm.backward(np.zeros(4))


def test_loss_and_gradients_per_table(tiny_tbsm, tiny_ts_click_log):
    loss, grads = tiny_tbsm.loss_and_gradients(tiny_ts_click_log.batch(0, 32))
    assert loss > 0
    assert len(grads) == len(tiny_tbsm.tables)
    # The history table (table 0) receives gradient for each step's lookup.
    assert grads[0].nnz > 0


def test_train_step_reduces_loss(tiny_ts_model_config, tiny_ts_click_log):
    model = TBSM(tiny_ts_model_config, seed=1)
    batch = tiny_ts_click_log.batch(0, 128)
    first = model.train_step(batch, lr=0.1)
    for _ in range(30):
        last = model.train_step(batch, lr=0.1)
    assert last < first


def test_training_improves_auc(tiny_ts_model_config, tiny_ts_click_log):
    model = TBSM(tiny_ts_model_config, seed=2)
    loader = MiniBatchLoader(tiny_ts_click_log, batch_size=128)
    eval_batch = tiny_ts_click_log.batch(768, 256)
    before = roc_auc(eval_batch.labels, model.predict(eval_batch))
    for _epoch in range(3):
        for batch in loader:
            model.train_step(batch, lr=0.1)
    after = roc_auc(eval_batch.labels, model.predict(eval_batch))
    assert after > before


def test_parameter_counts(tiny_tbsm):
    assert tiny_tbsm.num_dense_parameters > 0
    assert tiny_tbsm.num_sparse_parameters > 0


def test_state_snapshot_keys(tiny_tbsm):
    snapshot = tiny_tbsm.state_snapshot()
    assert any(key.startswith("table_") for key in snapshot)
    assert any(key.startswith("dense_") for key in snapshot)
