"""Unit tests for the DLRM model: shapes, gradients, and training behaviour."""

import numpy as np
import pytest

from repro.data.loader import MiniBatchLoader
from repro.models.dlrm import DLRM
from repro.nn.metrics import roc_auc


def test_forward_shape(tiny_dlrm, tiny_click_log):
    batch = tiny_click_log.batch(0, 32)
    logits = tiny_dlrm.forward(batch)
    assert logits.shape == (32,)


def test_predict_probabilities(tiny_dlrm, tiny_click_log):
    probs = tiny_dlrm.predict(tiny_click_log.batch(0, 16))
    assert np.all((probs > 0) & (probs < 1))


def test_mismatched_batch_raises(tiny_dlrm, tiny_ts_click_log):
    with pytest.raises(ValueError):
        tiny_dlrm.forward(tiny_ts_click_log.batch(0, 8))


def test_backward_before_forward_raises(tiny_dlrm):
    with pytest.raises(RuntimeError):
        tiny_dlrm.backward(np.zeros(4))


def test_bottom_mlp_must_match_dense_features(tiny_model_config):
    from dataclasses import replace

    bad = replace(tiny_model_config, bottom_mlp="5-16-8")
    with pytest.raises(ValueError):
        DLRM(bad)


def test_bottom_mlp_must_end_at_embedding_dim(tiny_model_config):
    from dataclasses import replace

    bad = replace(tiny_model_config, bottom_mlp="4-16-4")
    with pytest.raises(ValueError):
        DLRM(bad)


def test_loss_and_gradients_returns_one_grad_per_table(tiny_dlrm, tiny_click_log):
    batch = tiny_click_log.batch(0, 32)
    loss, grads = tiny_dlrm.loss_and_gradients(batch)
    assert loss > 0
    assert len(grads) == len(tiny_dlrm.tables)


def test_normalizer_scales_gradients(tiny_dlrm, tiny_click_log):
    batch = tiny_click_log.batch(0, 32)
    tiny_dlrm.zero_grad()
    _, grads_sum = tiny_dlrm.loss_and_gradients(batch)
    summed_dense = [grad.copy() for _, grad in tiny_dlrm.dense_parameters()]
    tiny_dlrm.zero_grad()
    _, grads_mean = tiny_dlrm.loss_and_gradients(batch, normalizer=32)
    for (_, grad), summed in zip(tiny_dlrm.dense_parameters(), summed_dense, strict=True):
        np.testing.assert_allclose(grad * 32, summed, rtol=1e-10)
    np.testing.assert_allclose(grads_mean[0].values * 32, grads_sum[0].values, rtol=1e-10)


def test_invalid_normalizer_raises(tiny_dlrm, tiny_click_log):
    with pytest.raises(ValueError):
        tiny_dlrm.loss_and_gradients(tiny_click_log.batch(0, 8), normalizer=0)


def test_train_step_reduces_loss(tiny_model_config, tiny_click_log):
    model = DLRM(tiny_model_config, seed=1)
    batch = tiny_click_log.batch(0, 256)
    first = model.train_step(batch, lr=0.1)
    for _ in range(30):
        last = model.train_step(batch, lr=0.1)
    assert last < first


def test_training_improves_auc_on_held_out_data(tiny_model_config, tiny_click_log):
    model = DLRM(tiny_model_config, seed=2)
    loader = MiniBatchLoader(tiny_click_log, batch_size=128)
    eval_batch = tiny_click_log.batch(1536, 512)
    before = roc_auc(eval_batch.labels, model.predict(eval_batch))
    for _epoch in range(3):
        for batch in loader:
            model.train_step(batch, lr=0.1)
    after = roc_auc(eval_batch.labels, model.predict(eval_batch))
    assert after > before
    assert after > 0.55


def test_parameter_counts(tiny_dlrm, tiny_model_config):
    assert tiny_dlrm.num_sparse_parameters == (
        sum(tiny_model_config.dataset.rows_per_table) * tiny_model_config.embedding_dim
    )
    assert tiny_dlrm.num_dense_parameters > 0


def test_state_snapshot_is_a_copy(tiny_dlrm, tiny_click_log):
    snapshot = tiny_dlrm.state_snapshot()
    tiny_dlrm.train_step(tiny_click_log.batch(0, 64), lr=0.5)
    after = tiny_dlrm.state_snapshot()
    changed = any(not np.allclose(snapshot[k], after[k]) for k in snapshot)
    assert changed


def test_apply_sparse_updates_requires_one_grad_per_table(tiny_dlrm):
    with pytest.raises(ValueError):
        tiny_dlrm.apply_sparse_updates([], lr=0.1)
