"""Unit tests for the model zoo (Table II configurations)."""

import pytest

from repro.models.configs import (
    PAPER_MODELS,
    REAL_WORLD_MODELS,
    RM1,
    RM2,
    RM3,
    RM4,
    SYN_M1,
    SYN_M2,
    model_by_name,
)


def test_table2_embedding_dims():
    assert RM1.embedding_dim == 16
    assert RM2.embedding_dim == 16
    assert RM3.embedding_dim == 64
    assert RM4.embedding_dim == 16


def test_table2_mlp_architectures():
    assert RM2.bottom_mlp == "13-512-256-64-16"
    assert RM2.top_mlp == "512-256-1"
    assert RM3.bottom_mlp == "13-512-256-64"
    assert RM3.top_mlp == "512-512-256-1"
    assert RM1.uses_attention


def test_table2_model_sizes_in_gigabytes():
    """Table II sizes: RM1 0.3 GB, RM2 2 GB, RM3 63 GB, RM4 0.55 GB."""
    assert RM1.embedding_gigabytes == pytest.approx(0.33, rel=0.1)
    assert RM2.embedding_gigabytes == pytest.approx(2.16, rel=0.1)
    assert RM3.embedding_gigabytes == pytest.approx(68.1, rel=0.1)
    assert RM4.embedding_gigabytes == pytest.approx(0.6, rel=0.15)


def test_synthetic_models_larger_than_real_ones():
    """Figure 28: SYN-M1 is 196 GB, SYN-M2 is 390 GB."""
    assert SYN_M1.embedding_gigabytes == pytest.approx(196, rel=0.05)
    assert SYN_M2.embedding_gigabytes == pytest.approx(390, rel=0.05)
    assert SYN_M2.num_sparse_features == 2 * SYN_M1.num_sparse_features


def test_dense_parameter_counts_order_of_magnitude():
    """Table II dense parameters: 7.3k (RM1) to 549k (RM3)."""
    assert RM1.dense_parameter_count < 20_000
    assert 200_000 < RM2.dense_parameter_count < 900_000
    assert 300_000 < RM3.dense_parameter_count < 1_200_000


def test_sparse_parameters_dominate_dense():
    for config in (RM2, RM3, RM4):
        assert config.sparse_parameter_count > 10 * config.dense_parameter_count


def test_mlp_flops_positive_and_ordered():
    assert RM3.mlp_flops_per_sample > RM2.mlp_flops_per_sample > 0


def test_bytes_per_lookup():
    assert RM2.bytes_per_lookup() == 16 * 4
    assert RM3.bytes_per_lookup() == 64 * 4


def test_scaled_config_shrinks_embeddings_only():
    scaled = RM3.scaled(max_rows_per_table=5000)
    assert scaled.embedding_dim == RM3.embedding_dim
    assert scaled.bottom_mlp == RM3.bottom_mlp
    assert scaled.dataset.total_rows < RM3.dataset.total_rows
    assert scaled.sparse_parameter_count < RM3.sparse_parameter_count


def test_registry():
    assert model_by_name("RM2") is RM2
    assert len(PAPER_MODELS) == 6
    assert set(REAL_WORLD_MODELS) == {
        "Criteo Kaggle",
        "Taobao Alibaba",
        "Criteo Terabyte",
        "Avazu",
    }
    with pytest.raises(KeyError):
        model_by_name("RM9")
