"""Unit tests for the shared training cost model."""

import pytest

from repro.hwsim import multi_node, single_node
from repro.models import RM1, RM2, RM3
from repro.perf import SoftwareOverheads, TrainingCostModel


@pytest.fixture(scope="module")
def costs():
    return TrainingCostModel(RM3, cluster=single_node(4))


def test_lookup_counting(costs):
    assert costs.lookups(100) == 100 * 26
    assert costs.lookup_bytes(100) == 100 * 26 * 64 * 4
    assert costs.pooled_bytes(100) == 100 * 26 * 64 * 4  # one-hot: pooled == raw


def test_time_series_lookups():
    taobao = TrainingCostModel(RM1, cluster=single_node(4))
    assert taobao.lookups(10) == 10 * 23


def test_mlp_backward_is_twice_forward(costs):
    assert costs.mlp_backward_time(1024) == pytest.approx(2 * costs.mlp_forward_time(1024))


def test_cpu_embedding_costs_scale_with_samples(costs):
    assert costs.cpu_embedding_lookup_time(4096) > costs.cpu_embedding_lookup_time(1024)
    assert costs.cpu_embedding_update_time(1024) > costs.cpu_embedding_lookup_time(1024)


def test_cpu_embedding_sublinear_at_small_batches(costs):
    """Small batches cannot use all cores, so per-sample cost is higher."""
    per_sample_small = costs.cpu_embedding_lookup_time(256) / 256
    per_sample_large = costs.cpu_embedding_lookup_time(8192) / 8192
    assert per_sample_small > per_sample_large


def test_gpu_embedding_lookup_faster_than_cpu(costs):
    assert costs.gpu_embedding_lookup_time(1024) < costs.cpu_embedding_lookup_time(1024)


def test_transfer_times_positive(costs):
    assert costs.cpu_to_gpu_embedding_transfer_time(1024) > 0
    assert costs.gpu_to_cpu_gradient_transfer_time(1024) > 0


def test_allreduce_zero_for_single_gpu():
    single = TrainingCostModel(RM2, cluster=single_node(1))
    assert single.dense_allreduce_time() == 0.0
    assert single.embedding_alltoall_time(1024) == 0.0


def test_allreduce_grows_across_nodes():
    one = TrainingCostModel(RM3, cluster=single_node(4)).dense_allreduce_time()
    four = TrainingCostModel(RM3, cluster=multi_node(4)).dense_allreduce_time()
    assert four > one


def test_alltoall_grows_across_nodes():
    one = TrainingCostModel(RM3, cluster=single_node(4)).embedding_alltoall_time(1024)
    four = TrainingCostModel(RM3, cluster=multi_node(4)).embedding_alltoall_time(1024)
    assert four > 2 * one


def test_segregation_plateaus_with_cores(costs):
    """Figure 8: CPU segregation stops improving past ~24 cores."""
    t1 = costs.cpu_segregation_time(4096, cores=1)
    t8 = costs.cpu_segregation_time(4096, cores=8)
    t24 = costs.cpu_segregation_time(4096, cores=24)
    t32 = costs.cpu_segregation_time(4096, cores=32)
    assert t1 > t8 > t24
    assert t24 == pytest.approx(t32)


def test_segregation_comparable_to_gpu_training_time(costs):
    """Figure 7: CPU segregation is 1-3x a mini-batch's GPU training time."""
    segregation = costs.cpu_segregation_time(4096)
    gpu_compute = costs.mlp_forward_time(1024) + costs.mlp_backward_time(1024)
    assert 0.5 < segregation / gpu_compute < 6.0


def test_memory_feasibility_checks():
    assert TrainingCostModel(RM2, cluster=single_node(1)).embedding_fits_gpu_only()
    assert not TrainingCostModel(RM3, cluster=single_node(2)).embedding_fits_gpu_only()
    assert TrainingCostModel(RM3, cluster=single_node(4)).embedding_fits_gpu_only()
    assert TrainingCostModel(RM3, cluster=single_node(1)).embedding_fits_cpu()


def test_custom_overheads_affect_costs():
    slow = TrainingCostModel(
        RM2,
        cluster=single_node(4),
        overheads=SoftwareOverheads(cpu_lookup_overhead_s=5e-6),
    )
    fast = TrainingCostModel(RM2, cluster=single_node(4))
    assert slow.cpu_embedding_lookup_time(4096) > fast.cpu_embedding_lookup_time(4096)
