"""Shared fixtures: small-but-realistic configs, datasets, and models.

Every fixture is seeded so test runs are deterministic.  The "small"
variants keep embedding tables at a few thousand rows so that functional
training tests run in seconds while preserving the Zipf skew statistics the
Hotline pipeline depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MiniBatchLoader, generate_click_log
from repro.data.datasets import DatasetSpec
from repro.models import RM2, ModelConfig
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM


TINY_DATASET = DatasetSpec(
    name="tiny-test",
    num_dense=4,
    rows_per_table=(512, 128, 64, 32),
    pooling=1,
    zipf_alpha=1.3,
    samples_per_epoch=4096,
)

TINY_MODEL = ModelConfig(
    name="tiny-model",
    dataset=TINY_DATASET,
    embedding_dim=8,
    bottom_mlp="4-16-8",
    top_mlp="16-1",
)

TINY_TS_DATASET = DatasetSpec(
    name="tiny-ts-test",
    num_dense=2,
    rows_per_table=(256, 64, 32),
    pooling=3,
    zipf_alpha=1.1,
    samples_per_epoch=2048,
    time_series_length=3,
)

TINY_TS_MODEL = ModelConfig(
    name="tiny-ts-model",
    dataset=TINY_TS_DATASET,
    embedding_dim=8,
    bottom_mlp="2-8",
    top_mlp="12-1",
    uses_attention=True,
)


@pytest.fixture(scope="session")
def tiny_model_config() -> ModelConfig:
    """A 4-table DLRM configuration small enough for exhaustive tests."""
    return TINY_MODEL


@pytest.fixture(scope="session")
def tiny_ts_model_config() -> ModelConfig:
    """A small TBSM (attention) configuration."""
    return TINY_TS_MODEL


@pytest.fixture(scope="session")
def tiny_click_log(tiny_model_config):
    """2048-sample synthetic click log for the tiny DLRM config."""
    return generate_click_log(tiny_model_config.dataset, 2048, seed=7)


@pytest.fixture(scope="session")
def tiny_ts_click_log(tiny_ts_model_config):
    """1024-sample synthetic click log for the tiny TBSM config."""
    return generate_click_log(tiny_ts_model_config.dataset, 1024, seed=11)


@pytest.fixture()
def tiny_loader(tiny_click_log):
    """128-sample mini-batch loader over the tiny click log."""
    return MiniBatchLoader(tiny_click_log, batch_size=128)


@pytest.fixture()
def tiny_dlrm(tiny_model_config) -> DLRM:
    """A freshly-initialised DLRM for the tiny config."""
    return DLRM(tiny_model_config, seed=0)


@pytest.fixture()
def tiny_tbsm(tiny_ts_model_config) -> TBSM:
    """A freshly-initialised TBSM for the tiny time-series config."""
    return TBSM(tiny_ts_model_config, seed=0)


@pytest.fixture(scope="session")
def scaled_rm2() -> ModelConfig:
    """RM2 (Criteo Kaggle) scaled to a trainable size."""
    return RM2.scaled(max_rows_per_table=2000, samples_per_epoch=4096)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic RNG for ad-hoc test data."""
    return np.random.default_rng(1234)
