"""Unit tests covering each baseline execution model's schedule."""

import pytest

from repro.baselines import (
    FAE,
    HotlineCPU,
    HugeCTRGPUOnly,
    HybridCPUGPU,
    OutOfMemoryError,
    ScratchPipeIdeal,
    XDLParameterServer,
)
from repro.hwsim import multi_node, single_node
from repro.models import RM1, RM2, RM3
from repro.perf import TrainingCostModel


@pytest.fixture(scope="module")
def costs_rm2():
    return TrainingCostModel(RM2, cluster=single_node(4))


@pytest.fixture(scope="module")
def costs_rm3():
    return TrainingCostModel(RM3, cluster=single_node(4))


ALL_MODES = [HybridCPUGPU, XDLParameterServer, FAE, ScratchPipeIdeal, HotlineCPU]


@pytest.mark.parametrize("mode_cls", ALL_MODES)
def test_step_time_positive_and_scales_with_batch(costs_rm2, mode_cls):
    mode = mode_cls(costs_rm2)
    assert mode.step_time(1024) > 0
    assert mode.step_time(4096) > mode.step_time(1024)


@pytest.mark.parametrize("mode_cls", ALL_MODES)
def test_breakdown_fractions_sum_to_one(costs_rm2, mode_cls):
    breakdown = mode_cls(costs_rm2).breakdown(4096)
    assert sum(breakdown.values()) == pytest.approx(1.0)


@pytest.mark.parametrize("mode_cls", ALL_MODES)
def test_epoch_time_and_throughput(costs_rm2, mode_cls):
    mode = mode_cls(costs_rm2)
    assert mode.epoch_time(4096) > mode.step_time(4096)
    assert mode.epochs_per_hour(4096) > 0
    assert mode.samples_per_second(4096) > 0


def test_hybrid_is_dominated_by_embedding_work(costs_rm3):
    """Figure 3: embedding + comm + optimizer dominate the hybrid mode."""
    breakdown = HybridCPUGPU(costs_rm3).breakdown(4096)
    embedding_related = (
        breakdown.get("embedding", 0)
        + breakdown.get("comm", 0)
        + breakdown.get("optimizer", 0)
    )
    assert embedding_related > 0.5


def test_hybrid_cpu_lane_dominates_gpu_lane(costs_rm3):
    timeline = HybridCPUGPU(costs_rm3).step_timeline(4096)
    assert timeline.lane_busy_time("cpu") > timeline.lane_busy_time("gpu")


def test_xdl_slower_than_intel_hybrid(costs_rm2):
    """Figure 19: XDL is the slowest software baseline."""
    assert XDLParameterServer(costs_rm2).step_time(4096) > HybridCPUGPU(costs_rm2).step_time(4096)


def test_fae_faster_than_hybrid_but_pays_profiling(costs_rm2):
    fae = FAE(costs_rm2)
    hybrid = HybridCPUGPU(costs_rm2)
    assert fae.step_time(4096) < hybrid.step_time(4096)
    breakdown = fae.breakdown(4096)
    assert breakdown.get("overhead", 0) > 0.05  # offline profiling is charged


def test_hugectr_requires_hbm_capacity():
    small = HugeCTRGPUOnly(TrainingCostModel(RM2, cluster=single_node(1)))
    assert small.is_feasible()
    terabyte_1gpu = HugeCTRGPUOnly(TrainingCostModel(RM3, cluster=single_node(1)))
    assert not terabyte_1gpu.is_feasible()
    with pytest.raises(OutOfMemoryError):
        terabyte_1gpu.step_time(1024)
    terabyte_4gpu = HugeCTRGPUOnly(TrainingCostModel(RM3, cluster=single_node(4)))
    assert terabyte_4gpu.is_feasible()


def test_hugectr_alltoall_fraction_single_node(costs_rm2):
    """Figure 4: the all-to-all costs roughly 10-20 % on one NVLink node."""
    breakdown = HugeCTRGPUOnly(costs_rm2).breakdown(4096)
    assert 0.05 < breakdown["alltoall"] < 0.3


def test_hugectr_communication_grows_across_nodes():
    """Figure 5: inter-node all-to-all dominates multi-node training."""
    single = HugeCTRGPUOnly(TrainingCostModel(RM3, cluster=single_node(4))).breakdown(4096)
    multi = HugeCTRGPUOnly(TrainingCostModel(RM3, cluster=multi_node(4))).breakdown(16384)
    single_comm = single["alltoall"] + single.get("comm", 0)
    multi_comm = multi["alltoall"] + multi.get("comm", 0)
    assert multi_comm > single_comm
    assert multi_comm > 0.4


def test_scratchpipe_has_no_cpu_gather_on_critical_path(costs_rm2):
    breakdown = ScratchPipeIdeal(costs_rm2).breakdown(4096)
    assert breakdown.get("embedding", 0) < 0.3


def test_hotline_cpu_exposes_segregation(costs_rm3):
    """Figure 23: CPU-driven segregation stalls the GPUs."""
    hotline_cpu = HotlineCPU(costs_rm3)
    breakdown = hotline_cpu.breakdown(4096)
    assert breakdown.get("embedding", 0) > 0.2


def test_cpu_segregation_slower_than_accelerator(costs_rm3):
    """Figures 7/8 vs the accelerator: orders of magnitude apart."""
    cpu_time = costs_rm3.cpu_segregation_time(4096)
    accel_time = costs_rm3.accelerator_segregation_time(4096)
    assert cpu_time > 20 * accel_time


def test_speedup_over_is_symmetric_inverse(costs_rm2):
    hybrid = HybridCPUGPU(costs_rm2)
    xdl = XDLParameterServer(costs_rm2)
    assert hybrid.speedup_over(xdl, 4096) == pytest.approx(
        1.0 / xdl.speedup_over(hybrid, 4096)
    )


def test_tbsm_workload_is_mlp_dominated():
    """Figure 3: Taobao (RM1) spends most of its time in the neural network."""
    costs = TrainingCostModel(RM1, cluster=single_node(4))
    breakdown = HybridCPUGPU(costs).breakdown(4096)
    assert breakdown["mlp"] + breakdown["backward"] > breakdown["embedding"]
