"""Integration tests: the full Hotline stack on a scaled RM2 (Criteo Kaggle).

These tests exercise the complete flow the paper describes — synthetic data
generation, online learning phase on the accelerator, µ-batch training with
placement-aware updates, simulated wall-clock accounting, and the comparison
harness against the baselines — end to end.
"""

import numpy as np
import pytest

from repro.baselines import FAE, HugeCTRGPUOnly, HybridCPUGPU, XDLParameterServer
from repro.core import HotlineScheduler, HotlineTrainer
from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.pipeline import ReferenceTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.data.skew import access_histogram, popular_entries, popular_input_fraction
from repro.hwsim import single_node
from repro.models import RM2
from repro.models.dlrm import DLRM
from repro.perf import TrainingCostModel


@pytest.fixture(scope="module")
def scaled_config():
    return RM2.scaled(max_rows_per_table=1500, samples_per_epoch=4096)


@pytest.fixture(scope="module")
def click_log(scaled_config):
    return generate_click_log(scaled_config.dataset, 4096, seed=17)


def test_full_hotline_training_run(scaled_config, click_log):
    """Train a scaled Criteo Kaggle model with the Hotline pipeline."""
    model = DLRM(scaled_config, seed=5)
    loader = MiniBatchLoader(click_log, batch_size=256)
    accelerator = HotlineAccelerator(
        row_bytes=scaled_config.embedding_dim * 4,
        eal_config=EALConfig(size_bytes=1 << 17, ways=16),
    )
    perf = HotlineScheduler(TrainingCostModel(RM2, cluster=single_node(4)))
    trainer = HotlineTrainer(
        model, accelerator, lr=0.3, sample_fraction=0.25, perf_model=perf
    )
    placement = trainer.learning_phase(loader)
    assert placement.hot_rows_total > 0

    eval_batch = click_log.batch(3072, 1024)
    result = trainer.train(loader, epochs=3, eval_batch=eval_batch, eval_every=4)

    assert result.final_metrics["auc"] > 0.65
    assert result.simulated_time_s > 0
    assert 0.0 < result.mean_popular_fraction <= 1.0
    # Loss trends downward over training.
    first_quarter = np.mean(result.losses[: len(result.losses) // 4])
    last_quarter = np.mean(result.losses[-len(result.losses) // 4 :])
    assert last_quarter < first_quarter


def test_hotline_and_reference_converge_identically(scaled_config, click_log):
    """Figure 18: the AUC trajectories coincide point-for-point."""
    loader = MiniBatchLoader(click_log, batch_size=512)
    eval_batch = click_log.batch(3072, 1024)
    accelerator = HotlineAccelerator(
        row_bytes=scaled_config.embedding_dim * 4,
        eal_config=EALConfig(size_bytes=1 << 17, ways=16),
    )

    hotline = HotlineTrainer(DLRM(scaled_config, seed=8), accelerator, lr=0.1, sample_fraction=0.25)
    hotline.learning_phase(loader)
    hotline_result = hotline.train(loader, epochs=1, eval_batch=eval_batch, eval_every=2)

    reference = ReferenceTrainer(DLRM(scaled_config, seed=8), lr=0.1)
    reference_result = reference.train(loader, epochs=1, eval_batch=eval_batch, eval_every=2)

    assert len(hotline_result.auc_history) == len(reference_result.auc_history)
    for (it_a, auc_a), (it_b, auc_b) in zip(
        hotline_result.auc_history, reference_result.auc_history, strict=True
    ):
        assert it_a == it_b
        assert auc_a == pytest.approx(auc_b, abs=1e-9)


def test_popularity_statistics_support_hotline(click_log, scaled_config):
    """Figure 6: most inputs are popular under the paper's threshold."""
    histograms = access_histogram(click_log.sparse, scaled_config.dataset.rows_per_table)
    hot = popular_entries(histograms)
    fraction = popular_input_fraction(click_log.sparse, hot)
    assert fraction > 0.5


def test_comparison_harness_orders_frameworks_as_in_figure19():
    """Hotline > FAE > Intel DLRM > XDL in throughput at 4 GPUs."""
    costs = TrainingCostModel(RM2, cluster=single_node(4))
    hotline = HotlineScheduler(costs)
    fae = FAE(costs)
    hybrid = HybridCPUGPU(costs)
    xdl = XDLParameterServer(costs)
    times = {
        "hotline": hotline.step_time(4096),
        "fae": fae.step_time(4096),
        "hybrid": hybrid.step_time(4096),
        "xdl": xdl.step_time(4096),
    }
    assert times["hotline"] < times["fae"] < times["hybrid"] < times["xdl"]


def test_hotline_trains_terabyte_scale_on_one_gpu_where_gpu_only_cannot():
    """The capacity argument of Figure 22: RM3 needs 4 GPUs for HugeCTR but
    a single GPU suffices for Hotline (embeddings live in CPU DRAM)."""
    from repro.models import RM3

    costs = TrainingCostModel(RM3, cluster=single_node(1))
    assert not HugeCTRGPUOnly(costs).is_feasible()
    hotline = HotlineScheduler(costs)
    assert hotline.step_time(1024) > 0
    assert costs.embedding_fits_cpu()
