"""Unit tests for breakdowns, roofline analysis, and report formatting."""

import pytest

from repro.analysis.breakdown import (
    BREAKDOWN_CATEGORIES,
    embedding_related_fraction,
    merge_breakdowns,
    normalised_breakdown,
)
from repro.analysis.report import format_breakdown, format_series, format_table
from repro.analysis.roofline import embedding_lookup_roofline
from repro.hwsim.trace import Timeline
from repro.models import RM3


def make_timeline():
    timeline = Timeline()
    timeline.add("gpu", "mlp", 0.0, 3.0)
    timeline.add("cpu", "embedding", 3.0, 6.0)
    timeline.add("pcie", "comm", 9.0, 1.0)
    return timeline


def test_normalised_breakdown_contains_all_categories():
    breakdown = normalised_breakdown(make_timeline())
    for category in BREAKDOWN_CATEGORIES:
        assert category in breakdown
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["embedding"] == pytest.approx(0.6)


def test_merge_breakdowns_averages():
    a = {"mlp": 0.5, "embedding": 0.5}
    b = {"mlp": 0.1, "embedding": 0.9}
    merged = merge_breakdowns([a, b])
    assert merged["mlp"] == pytest.approx(0.3)
    assert merged["embedding"] == pytest.approx(0.7)


def test_merge_breakdowns_empty():
    merged = merge_breakdowns([])
    assert all(value == 0.0 for value in merged.values())


def test_embedding_related_fraction():
    breakdown = {"embedding": 0.4, "comm": 0.2, "optimizer": 0.1, "mlp": 0.3}
    assert embedding_related_fraction(breakdown) == pytest.approx(0.7)


def test_roofline_hbm_advantage():
    """Section IV: roughly 3x theoretical gain for HBM embedding lookups."""
    points = embedding_lookup_roofline(RM3, batch_size=4096)
    assert points["gpu"].lookup_time_s < points["cpu"].lookup_time_s
    assert points["speedup"].bandwidth >= 3.0


def test_format_table_alignment():
    text = format_table(["name", "value"], [("a", 1.0), ("bbbb", 2.5)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_format_series():
    text = format_series("fig", [1, 2], [0.5, 0.25], x_label="x", y_label="y")
    assert "fig" in text
    assert "0.500" in text


def test_format_breakdown_skips_zero_entries():
    text = format_breakdown("bd", {"mlp": 0.5, "comm": 0.0})
    assert "mlp" in text
    assert "comm" not in text
