"""Dataset specifications for the paper's workloads (Table II).

Each :class:`DatasetSpec` records the *statistical* shape of a dataset: the
number of dense and sparse features, rows per embedding table, lookups per
table (pooling), the Zipf skew exponent, and the number of samples per
epoch.  The full-size specs are used by the hardware timing model; the
functional numpy training uses :meth:`DatasetSpec.scaled` copies so they fit
in laptop memory while preserving the skew statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace



@dataclass(frozen=True)
class DatasetSpec:
    """Statistical description of one recommendation dataset.

    Attributes:
        name: Dataset name as used in the paper's figures.
        num_dense: Number of continuous features.
        rows_per_table: Embedding-table sizes (one entry per sparse feature).
        pooling: Lookups per table per sample (1 = one-hot).
        zipf_alpha: Exponent of the Zipf access distribution (larger = more
            skewed).  Criteo/Avazu are highly skewed; Taobao less so.
        samples_per_epoch: Number of training samples in one epoch.
        time_series_length: Number of history steps (TBSM datasets only).
        popular_embedding_mb: Approximate hot-embedding footprint reported by
            the paper (~512 MB covers >=75 % of inputs).
    """

    name: str
    num_dense: int
    rows_per_table: tuple[int, ...]
    pooling: int = 1
    zipf_alpha: float = 1.05
    samples_per_epoch: int = 1_000_000
    time_series_length: int = 1
    popular_embedding_mb: float = 512.0

    @property
    def num_sparse(self) -> int:
        """Number of sparse features (embedding tables)."""
        return len(self.rows_per_table)

    @property
    def total_rows(self) -> int:
        """Total number of embedding rows across all tables."""
        return int(sum(self.rows_per_table))

    def embedding_bytes(self, dim: int, dtype_bytes: int = 4) -> float:
        """Total embedding footprint for a given vector dimension."""
        return float(self.total_rows) * dim * dtype_bytes

    def lookups_per_sample(self) -> int:
        """Total embedding lookups performed for one sample.

        Time-series datasets (TBSM) look up one *history* table per step and
        the remaining (user/context) tables once, rather than every table at
        every step.
        """
        if self.time_series_length > 1:
            history = self.time_series_length
            others = max(0, self.num_sparse - 1)
            return self.pooling * (history + others)
        return self.num_sparse * self.pooling

    def scaled(
        self,
        max_rows_per_table: int = 20_000,
        samples_per_epoch: int | None = None,
    ) -> DatasetSpec:
        """A functionally-trainable copy with capped table sizes.

        The scaling preserves the *relative* table sizes and the Zipf
        exponent, which is what determines the popular-input fraction.
        """
        largest = max(self.rows_per_table)
        if largest <= max_rows_per_table:
            scaled_rows = self.rows_per_table
        else:
            factor = max_rows_per_table / largest
            scaled_rows = tuple(max(8, int(round(rows * factor))) for rows in self.rows_per_table)
        return replace(
            self,
            name=f"{self.name} (scaled)",
            rows_per_table=scaled_rows,
            samples_per_epoch=samples_per_epoch or min(self.samples_per_epoch, 65_536),
        )


def _criteo_like_tables(
    total_rows: int, num_tables: int, seed_sizes: tuple[int, ...]
) -> tuple[int, ...]:
    """Distribute ``total_rows`` across ``num_tables`` with a realistic spread.

    Criteo-style datasets have a few huge tables (tens of millions of rows)
    and many small ones; ``seed_sizes`` gives the relative weights.
    """
    weights = [seed_sizes[i % len(seed_sizes)] for i in range(num_tables)]
    total_weight = sum(weights)
    rows = [max(4, int(round(total_rows * w / total_weight))) for w in weights]
    return tuple(rows)


# Relative table-size profile: a handful of dominant tables plus a long tail
# of small ones, as in the Criteo datasets.
_CRITEO_PROFILE = (4000, 1200, 600, 200, 80, 40, 20, 10, 6, 4, 3, 2, 2)

CRITEO_KAGGLE = DatasetSpec(
    name="Criteo Kaggle",
    num_dense=13,
    rows_per_table=_criteo_like_tables(33_800_000, 26, _CRITEO_PROFILE),
    pooling=1,
    zipf_alpha=1.35,
    samples_per_epoch=45_840_617,
)

TAOBAO_ALIBABA = DatasetSpec(
    name="Taobao Alibaba",
    num_dense=1,
    rows_per_table=(4_100_000, 900_000, 100_000),
    pooling=1,
    zipf_alpha=1.05,
    samples_per_epoch=9_000_000,
    time_series_length=21,
)

CRITEO_TERABYTE = DatasetSpec(
    name="Criteo Terabyte",
    num_dense=13,
    rows_per_table=_criteo_like_tables(266_000_000, 26, _CRITEO_PROFILE),
    pooling=1,
    zipf_alpha=1.40,
    samples_per_epoch=4_373_472_329 // 10,
)

AVAZU = DatasetSpec(
    name="Avazu",
    num_dense=1,
    rows_per_table=_criteo_like_tables(9_300_000, 21, _CRITEO_PROFILE),
    pooling=1,
    zipf_alpha=1.35,
    samples_per_epoch=40_428_967,
)

# Synthetic multi-hot datasets used for the model-size sensitivity study
# (Section VII-F4, Figure 28) and multi-node scaling (Figure 30).
SYN_D1 = DatasetSpec(
    name="SYN-D1",
    num_dense=54,
    rows_per_table=_criteo_like_tables(760_000_000, 102, _CRITEO_PROFILE),
    pooling=4,
    zipf_alpha=1.30,
    samples_per_epoch=100_000_000,
)

SYN_D2 = DatasetSpec(
    name="SYN-D2",
    num_dense=102,
    rows_per_table=_criteo_like_tables(1_520_000_000, 204, _CRITEO_PROFILE),
    pooling=4,
    zipf_alpha=1.30,
    samples_per_epoch=100_000_000,
)

PAPER_DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (CRITEO_KAGGLE, TAOBAO_ALIBABA, CRITEO_TERABYTE, AVAZU, SYN_D1, SYN_D2)
}


def dataset_by_name(name: str) -> DatasetSpec:
    """Look up a paper dataset by its figure label."""
    try:
        return PAPER_DATASETS[name]
    except KeyError as exc:
        known = ", ".join(sorted(PAPER_DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from exc
