"""Mini-batch container shared by models, baselines, and the Hotline pipeline."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MiniBatch:
    """One mini-batch of recommendation training data.

    Attributes:
        dense: Continuous features, shape (batch, num_dense).
        sparse: Categorical lookups, shape (batch, num_tables, pooling);
            each entry is a row index into the corresponding embedding table.
        labels: Click labels in {0, 1}, shape (batch,).
    """

    dense: np.ndarray
    sparse: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.dense.ndim != 2:
            raise ValueError("dense must be 2-D (batch, num_dense)")
        if self.sparse.ndim != 3:
            raise ValueError("sparse must be 3-D (batch, num_tables, pooling)")
        if self.labels.ndim != 1:
            raise ValueError("labels must be 1-D (batch,)")
        if not (self.dense.shape[0] == self.sparse.shape[0] == self.labels.shape[0]):
            raise ValueError("dense, sparse, and labels must agree on batch size")

    @property
    def size(self) -> int:
        """Number of samples in the batch."""
        return int(self.labels.shape[0])

    @property
    def num_tables(self) -> int:
        """Number of sparse features (embedding tables)."""
        return int(self.sparse.shape[1])

    @property
    def pooling(self) -> int:
        """Lookups per table per sample (1 = one-hot, >1 = multi-hot)."""
        return int(self.sparse.shape[2])

    def select(self, indices: np.ndarray) -> MiniBatch:
        """A new MiniBatch containing only the samples at ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return MiniBatch(
            dense=self.dense[indices],
            sparse=self.sparse[indices],
            labels=self.labels[indices],
        )

    def split(self, mask: np.ndarray) -> tuple["MiniBatch", "MiniBatch"]:
        """Split into (where mask is True, where mask is False)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.size:
            raise ValueError("mask length must equal batch size")
        true_idx = np.nonzero(mask)[0]
        false_idx = np.nonzero(~mask)[0]
        return self.select(true_idx), self.select(false_idx)

    def table_block(self, table: int) -> np.ndarray:
        """The (batch, pooling) lookup block of one table (EmbeddingBag input)."""
        return self.sparse[:, table, :]

    def shards(self, num_shards: int) -> list["MiniBatch"]:
        """Deal the batch into ``num_shards`` contiguous slices.

        Shards are basic-slice *views* of this batch's arrays (no copy) and
        differ in size by at most one sample; trailing shards may be empty
        when the batch is smaller than ``num_shards``.  This is the
        data-parallel split used by
        :class:`~repro.core.distributed.ShardedHotlineTrainer`.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        bounds = [(k * self.size) // num_shards for k in range(num_shards + 1)]
        return [
            MiniBatch(
                dense=self.dense[start:stop],
                sparse=self.sparse[start:stop],
                labels=self.labels[start:stop],
            )
            for start, stop in zip(bounds, bounds[1:], strict=False)
        ]
