"""Datasets: specifications of the paper's four workloads plus synthetic
Zipf-distributed click logs that stand in for the proprietary/huge originals.

The paper trains on Criteo Kaggle, Taobao Alibaba, Criteo Terabyte, and
Avazu.  Those datasets are tens of GB to 1 TB and are not redistributable
here, so this package generates seeded synthetic equivalents that match the
statistics Hotline actually depends on: number of tables, rows per table,
pooling factor (one-hot vs multi-hot), and — critically — the heavy-tailed
Zipf access skew that makes >=75 % of inputs "popular" (Figure 6).
"""

from repro.data.batch import MiniBatch
from repro.data.datasets import (
    AVAZU,
    CRITEO_KAGGLE,
    CRITEO_TERABYTE,
    PAPER_DATASETS,
    SYN_D1,
    SYN_D2,
    TAOBAO_ALIBABA,
    DatasetSpec,
    dataset_by_name,
)
from repro.data.loader import MiniBatchLoader, ShardedLoader
from repro.data.skew import (
    EvolvingSkewGenerator,
    access_histogram,
    popular_entries,
    popular_input_fraction,
    popular_input_mask,
    top_k_overlap,
)
from repro.data.synthetic import SyntheticClickLog, generate_click_log

__all__ = [
    "DatasetSpec",
    "CRITEO_KAGGLE",
    "TAOBAO_ALIBABA",
    "CRITEO_TERABYTE",
    "AVAZU",
    "SYN_D1",
    "SYN_D2",
    "PAPER_DATASETS",
    "dataset_by_name",
    "MiniBatch",
    "SyntheticClickLog",
    "generate_click_log",
    "MiniBatchLoader",
    "ShardedLoader",
    "access_histogram",
    "popular_entries",
    "popular_input_mask",
    "popular_input_fraction",
    "top_k_overlap",
    "EvolvingSkewGenerator",
]
