"""Mini-batch loader over a synthetic click log.

Supports sequential epochs, optional shuffling, and the sampling mode used
by Hotline's learning phase (a uniformly sampled ~5 % subset of mini-batches
for online popularity profiling).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.batch import MiniBatch
from repro.data.synthetic import SyntheticClickLog


class MiniBatchLoader:
    """Iterates a :class:`SyntheticClickLog` in fixed-size mini-batches."""

    def __init__(
        self,
        log: SyntheticClickLog,
        batch_size: int,
        *,
        shuffle: bool = False,
        drop_last: bool = True,
        seed: int = 0,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.log = log
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        """Number of mini-batches per epoch."""
        full, remainder = divmod(self.log.num_samples, self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[MiniBatch]:
        """Yield mini-batches for one epoch."""
        order = np.arange(self.log.num_samples)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, self.log.num_samples, self.batch_size):
            indices = order[start : start + self.batch_size]
            if len(indices) < self.batch_size and self.drop_last:
                break
            yield MiniBatch(
                dense=self.log.dense[indices],
                sparse=self.log.sparse[indices],
                labels=self.log.labels[indices],
            )

    def sample_batches(self, fraction: float, seed: int = 0) -> list[MiniBatch]:
        """Uniformly sample a fraction of this epoch's mini-batches.

        This is the input to Hotline's learning phase: the paper samples
        ~5 % of mini-batches to identify >90 % of frequently-accessed
        embeddings with <=5 % profiling overhead (Challenge 3).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        total = len(self)
        count = max(1, int(round(total * fraction)))
        rng = np.random.default_rng(seed)
        chosen = set(rng.choice(total, size=min(count, total), replace=False).tolist())
        return [batch for i, batch in enumerate(self) if i in chosen]
