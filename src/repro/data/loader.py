"""Mini-batch loader over a synthetic click log.

Supports sequential epochs, optional shuffling, opt-in background-thread
prefetching (double-buffering batch assembly under the training step), the
sampling mode used by Hotline's learning phase (a uniformly sampled ~5 %
subset of mini-batches for online popularity profiling), and a
:class:`ShardedLoader` view that deals every mini-batch into contiguous
per-shard slices for data-parallel training.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable, Iterator

import numpy as np

from repro.data.batch import MiniBatch
from repro.data.synthetic import SyntheticClickLog

#: Queue message tags used by the prefetch worker.
_ITEM, _DONE, _ERROR = range(3)


def _prefetched(producer: Iterator[MiniBatch], depth: int) -> Iterator[MiniBatch]:
    """Drain ``producer`` on a background thread through a bounded queue.

    The worker assembles up to ``depth`` batches ahead of the consumer, so
    batch materialisation overlaps the training step.  Exceptions raised by
    the producer are re-raised in the consumer; abandoning the iterator
    (early ``break`` or an explicit ``close()``) signals the worker, drains
    the queue it may be blocked on, and *joins* it — no
    ``minibatch-prefetch`` thread outlives the generator.
    """
    buffer: queue.Queue = queue.Queue(maxsize=depth)
    stop = threading.Event()

    def put(message) -> bool:
        while not stop.is_set():
            try:
                buffer.put(message, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def worker() -> None:
        try:
            for item in producer:
                if not put((_ITEM, item)):
                    return
            put((_DONE, None))
        except BaseException as exc:  # propagated to the consumer
            put((_ERROR, exc))

    thread = threading.Thread(target=worker, name="minibatch-prefetch", daemon=True)
    thread.start()
    try:
        while True:
            tag, payload = buffer.get()
            if tag == _DONE:
                return
            if tag == _ERROR:
                raise payload
            yield payload
    finally:
        # Runs on exhaustion, error, and GeneratorExit (close / abandon)
        # alike.  The stop event alone is not enough: a worker blocked on
        # the full queue would only notice it on its next put timeout, and
        # nothing ever joined the thread — the leak this block fixes.
        # Draining unblocks the worker immediately; the join loop keeps
        # draining until the thread is really gone.
        stop.set()
        while thread.is_alive():
            try:
                while True:
                    buffer.get_nowait()
            except queue.Empty:
                pass
            thread.join(timeout=0.05)


class MiniBatchLoader:
    """Iterates a :class:`SyntheticClickLog` in fixed-size mini-batches.

    Args:
        log: The click log to iterate.
        batch_size: Samples per mini-batch.
        shuffle: Reshuffle the sample order every epoch.
        drop_last: Drop the trailing partial batch.
        seed: Seed of the epoch-shuffling RNG.
        prefetch: Default prefetch depth: ``0`` pins batch assembly
            synchronous (honoured by the training engine as an explicit
            opt-out); ``n >= 1`` assembles up to ``n`` batches ahead on a
            background thread.  The default of ``None`` expresses no
            preference — direct iteration stays synchronous, while the
            engine double-buffers.  Callers can override per epoch via
            :meth:`epoch`.
    """

    def __init__(
        self,
        log: SyntheticClickLog,
        batch_size: int,
        *,
        shuffle: bool = False,
        drop_last: bool = True,
        seed: int = 0,
        prefetch: int | None = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if prefetch is not None and prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        self.log = log
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = seed
        self.prefetch = prefetch
        self._rng = np.random.default_rng(seed)
        #: Sample order of the most recently started epoch (``None`` =
        #: sequential).  Drawn eagerly by :meth:`epoch`, so lookahead
        #: consumers (:mod:`repro.core.lookahead`) can mirror the in-flight
        #: epoch's batches without touching the shuffling RNG.
        self.last_epoch_order: np.ndarray | None = None

    def __len__(self) -> int:
        """Number of mini-batches per epoch."""
        full, remainder = divmod(self.log.num_samples, self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    # ------------------------------------------------------------------ #
    # Epoch iteration
    # ------------------------------------------------------------------ #
    def _batch_at(self, order: np.ndarray | None, start: int, stop: int) -> MiniBatch:
        """Materialise the mini-batch covering ``[start, stop)`` of the epoch.

        Sequential epochs slice the log directly (basic slicing — views, no
        copy); shuffled epochs gather through the permutation.
        """
        if order is None:
            return MiniBatch(
                dense=self.log.dense[start:stop],
                sparse=self.log.sparse[start:stop],
                labels=self.log.labels[start:stop],
            )
        indices = order[start:stop]
        return MiniBatch(
            dense=self.log.dense[indices],
            sparse=self.log.sparse[indices],
            labels=self.log.labels[indices],
        )

    def batch_bounds(self) -> Iterator[tuple[int, int]]:
        """``[start, stop)`` sample bounds of each batch of one epoch.

        The single authority on the epoch's batching (including the
        ``drop_last`` rule): both batch materialisation and lookahead
        consumers (:func:`repro.core.lookahead.epoch_row_stream`) walk
        these bounds, so they can never disagree on which samples form
        batch ``j``.
        """
        for start in range(0, self.log.num_samples, self.batch_size):
            stop = min(start + self.batch_size, self.log.num_samples)
            if stop - start < self.batch_size and self.drop_last:
                break
            yield start, stop

    def _epoch_batches(self, order: np.ndarray | None) -> Iterator[MiniBatch]:
        """Yield one epoch of mini-batches for a fixed sample order."""
        for start, stop in self.batch_bounds():
            yield self._batch_at(order, start, stop)

    def epoch(
        self,
        prefetch: int | None = None,
        transform: Callable[[MiniBatch], MiniBatch] | None = None,
    ) -> Iterator[MiniBatch]:
        """One epoch of mini-batches, optionally prefetched.

        The shuffle order is drawn eagerly (before any background thread
        starts), so prefetching never changes which batches an epoch yields
        — only when they are assembled.

        ``transform`` is applied to every batch right after assembly — and,
        with prefetching enabled, *on the prefetch worker thread*, so work
        like the next batch's µ-batch classification overlaps the current
        training step instead of extending it.  The transform must return
        the (possibly annotated) batch and be safe to run concurrently
        with the consumer's step.
        """
        order: np.ndarray | None = None
        if self.shuffle:
            order = np.arange(self.log.num_samples)
            self._rng.shuffle(order)
        self.last_epoch_order = order
        producer = self._epoch_batches(order)
        if transform is not None:
            producer = (transform(batch) for batch in producer)
        depth = self.prefetch if prefetch is None else prefetch
        if depth is not None and depth > 0:
            return _prefetched(producer, depth)
        return producer

    def __iter__(self) -> Iterator[MiniBatch]:
        """Yield mini-batches for one epoch (honours the ``prefetch`` default)."""
        return self.epoch()

    # ------------------------------------------------------------------ #
    # Learning-phase sampling
    # ------------------------------------------------------------------ #
    def sample_batches(self, fraction: float, seed: int = 0) -> list[MiniBatch]:
        """Uniformly sample a fraction of this epoch's mini-batches.

        This is the input to Hotline's learning phase: the paper samples
        ~5 % of mini-batches to identify >90 % of frequently-accessed
        embeddings with <=5 % profiling overhead (Challenge 3).

        Sampling is side-effect free: it draws from fresh RNGs seeded by
        ``seed`` (for the choice of batches) and the loader's own seed (for
        the shuffled epoch order it mirrors), never from the loader's
        epoch-shuffling RNG — so profiling mid-run does not perturb the
        order of subsequent epochs.  Only the chosen batches are
        materialised; the log is sliced directly rather than enumerating
        every batch of the epoch.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        total = len(self)
        count = max(1, int(round(total * fraction)))
        rng = np.random.default_rng(seed)
        chosen = np.sort(rng.choice(total, size=min(count, total), replace=False))
        order: np.ndarray | None = None
        if self.shuffle:
            # Mirror the first epoch order of a freshly-seeded loader without
            # touching self._rng.
            order = np.arange(self.log.num_samples)
            np.random.default_rng(self.seed).shuffle(order)
        return [
            self._batch_at(
                order,
                int(index) * self.batch_size,
                min((int(index) + 1) * self.batch_size, self.log.num_samples),
            )
            for index in chosen
        ]


class ShardedLoader:
    """Data-parallel view of a loader: each mini-batch dealt into K shards.

    Every iteration yields the list of ``num_shards`` contiguous per-shard
    slices of one global mini-batch.  Shards are basic-slice *views* of the
    underlying batch arrays — for sequential (unshuffled) epochs that means
    views straight into the click log, with no copying anywhere on the path.
    The global batch is recoverable by concatenating the shards in order,
    which is what makes the K-shard update numerically equivalent to the
    single-replica one (Eq. 5 extended across shards).
    """

    def __init__(self, loader: MiniBatchLoader, num_shards: int):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.loader = loader
        self.num_shards = num_shards

    def __len__(self) -> int:
        """Number of sharded mini-batches per epoch."""
        return len(self.loader)

    def __iter__(self) -> Iterator[list[MiniBatch]]:
        """Yield per-shard slice lists for one epoch."""
        for batch in self.loader:
            yield batch.shards(self.num_shards)
