"""Popularity / access-skew analysis of embedding accesses.

Reproduces the measurements behind Figures 6 and 9 of the paper:

* the per-entry access histogram over an epoch (Figure 6, left) and the
  fraction of *popular inputs* — inputs whose every lookup hits a
  frequently-accessed entry (Figure 6, right);
* the paper labels an entry "popular" if it accounts for at least
  1-in-every-100,000 embedding accesses;
* the evolving skew across days (Figure 9): the set of hot entries drifts
  as user behaviour changes, which motivates online (rather than offline)
  profiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.data.datasets import DatasetSpec
from repro.data.synthetic import SyntheticClickLog, generate_click_log

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.hotset import HotSetIndex

#: The paper's popularity threshold: an entry is popular if it receives at
#: least one in every 100,000 embedding accesses.
PAPER_POPULARITY_THRESHOLD = 1.0 / 100_000


def access_histogram(sparse: np.ndarray, rows_per_table: tuple[int, ...]) -> list[np.ndarray]:
    """Per-table access counts.

    Args:
        sparse: Lookup indices of shape (n, num_tables, pooling).
        rows_per_table: Table sizes.

    Returns:
        One count array per table (length = rows in that table).
    """
    if sparse.ndim != 3:
        raise ValueError("sparse must be 3-D (n, num_tables, pooling)")
    histograms: list[np.ndarray] = []
    for table, rows in enumerate(rows_per_table):
        counts = np.bincount(sparse[:, table, :].reshape(-1), minlength=rows)
        histograms.append(counts)
    return histograms


def popular_entries(
    histograms: list[np.ndarray],
    threshold: float = PAPER_POPULARITY_THRESHOLD,
) -> list[np.ndarray]:
    """Row ids whose access share exceeds ``threshold`` of total accesses."""
    total_accesses = float(sum(int(counts.sum()) for counts in histograms))
    if total_accesses <= 0:
        return [np.empty(0, dtype=np.int64) for _ in histograms]
    minimum = threshold * total_accesses
    return [np.nonzero(counts >= minimum)[0].astype(np.int64) for counts in histograms]


def popular_input_mask(
    sparse: np.ndarray, hot_sets: list[np.ndarray] | HotSetIndex
) -> np.ndarray:
    """Boolean mask of inputs whose *every* lookup is a popular entry.

    An input that touches even one non-popular row is non-popular
    (Section I: "If an input accesses even a single non-frequently-accessed
    embedding, it is classified as a non-popular input").  ``hot_sets`` may
    be per-table arrays or a prebuilt
    :class:`~repro.core.hotset.HotSetIndex`.
    """
    # Imported lazily: repro.core's package init reaches back into
    # repro.data via the models' dataset specs.
    from repro.core.hotset import as_hot_set_index

    index = as_hot_set_index(hot_sets)
    if sparse.shape[1] != index.num_tables:
        raise ValueError("hot_sets must have one entry per table")
    return index.classify(sparse)


def popular_input_fraction(
    sparse: np.ndarray, hot_sets: list[np.ndarray] | HotSetIndex
) -> float:
    """Fraction of inputs classified as popular."""
    if sparse.shape[0] == 0:
        return 0.0
    return float(popular_input_mask(sparse, hot_sets).mean())


def top_k_overlap(histogram_a: np.ndarray, histogram_b: np.ndarray, k: int) -> float:
    """Jaccard-style overlap of the top-k entries of two access histograms.

    Used to quantify how much the hot set drifts between days (Figure 9).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    top_a = set(np.argsort(histogram_a)[::-1][:k].tolist())
    top_b = set(np.argsort(histogram_b)[::-1][:k].tolist())
    if not top_a and not top_b:
        return 1.0
    return len(top_a & top_b) / float(k)


@dataclass
class EvolvingSkewGenerator:
    """Generates per-day click logs whose hot set drifts over time.

    Each day reuses the same Zipf shape but rotates a fraction of the
    popular ranks onto different rows, modelling the behaviour change the
    paper observes for Criteo Terabyte's embedding table 20 (Figure 9).

    Attributes:
        spec: Dataset specification to generate from.
        drift_per_day: Fraction of the rank->row mapping re-randomised each
            day (0 = static popularity, 1 = completely new hot set daily).
        seed: Base RNG seed.
    """

    spec: DatasetSpec
    drift_per_day: float = 0.25
    seed: int = 0

    def day(self, day_index: int, num_samples: int) -> SyntheticClickLog:
        """Generate the click log for one day.

        Day ``d`` uses a rank->row permutation derived from day 0 by
        re-randomising ``drift_per_day`` of the hottest ranks ``d`` times, so
        consecutive days overlap strongly while distant days diverge.
        """
        if not 0.0 <= self.drift_per_day <= 1.0:
            raise ValueError("drift_per_day must be within [0, 1]")
        base = generate_click_log(self.spec, num_samples, seed=self.seed)
        if day_index == 0 or self.drift_per_day == 0.0:
            return base
        rng = np.random.default_rng(self.seed + 1000 + day_index)
        drifted_sparse = base.sparse.copy()
        for table, rows in enumerate(self.spec.rows_per_table):
            permutation = base.rank_to_row[table].copy()
            num_drift = max(1, int(round(rows * self.drift_per_day)))
            for _ in range(day_index):
                swap_from = rng.choice(rows, size=num_drift, replace=False)
                swap_to = rng.choice(rows, size=num_drift, replace=False)
                permutation[swap_from], permutation[swap_to] = (
                    permutation[swap_to].copy(),
                    permutation[swap_from].copy(),
                )
            # Rebuild lookups: invert day-0 mapping to ranks, then remap.
            inverse = np.empty(rows, dtype=np.int64)
            inverse[base.rank_to_row[table]] = np.arange(rows)
            ranks = inverse[base.sparse[:, table, :]]
            drifted_sparse[:, table, :] = permutation[ranks]
        return SyntheticClickLog(
            spec=self.spec,
            dense=base.dense,
            sparse=drifted_sparse,
            labels=base.labels,
            rank_to_row=[permutation for permutation in base.rank_to_row],
        )
