"""Synthetic click-log generation with Zipf-distributed embedding accesses.

The generator reproduces the statistics the paper's evaluation relies on:

* per-table Zipf access skew (Figure 6): a small set of rows receives the
  overwhelming majority of accesses;
* a learnable label signal: labels are drawn from a hidden logistic
  ground-truth model over the dense features and the accessed rows, so the
  AUC convergence experiments (Figure 18, Table V) are meaningful;
* optional multi-hot pooling (SYN-D1/D2, Section VII-F4).

Everything is seeded, so experiments are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.batch import MiniBatch
from repro.data.datasets import DatasetSpec


def _zipf_probabilities(num_rows: int, alpha: float) -> np.ndarray:
    """Truncated Zipf probability vector over ``num_rows`` ranks."""
    ranks = np.arange(1, num_rows + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


@dataclass
class SyntheticClickLog:
    """A fully materialised synthetic dataset.

    Attributes:
        spec: The dataset specification the log was generated from.
        dense: Dense features, shape (n, num_dense).
        sparse: Sparse lookups, shape (n, num_tables, pooling).
        labels: Click labels, shape (n,).
        rank_to_row: Per-table permutation mapping Zipf rank -> row id, so
            the most popular rows are scattered across the table (as in real
            data) rather than being the lowest indices.
    """

    spec: DatasetSpec
    dense: np.ndarray
    sparse: np.ndarray
    labels: np.ndarray
    rank_to_row: list[np.ndarray] = field(default_factory=list)

    @property
    def num_samples(self) -> int:
        """Number of samples in the log."""
        return int(self.labels.shape[0])

    @property
    def click_rate(self) -> float:
        """Empirical positive-label rate."""
        return float(self.labels.mean())

    def batch(self, start: int, size: int) -> MiniBatch:
        """Materialise a MiniBatch covering samples [start, start+size)."""
        end = min(start + size, self.num_samples)
        return MiniBatch(
            dense=self.dense[start:end],
            sparse=self.sparse[start:end],
            labels=self.labels[start:end],
        )


def generate_click_log(
    spec: DatasetSpec,
    num_samples: int,
    seed: int = 0,
    *,
    click_rate: float = 0.25,
    label_noise: float = 0.1,
) -> SyntheticClickLog:
    """Generate a synthetic click log matching ``spec``.

    Args:
        spec: Dataset specification (table sizes, pooling, Zipf exponent).
        num_samples: Number of samples to generate.
        seed: RNG seed.
        click_rate: Target positive-label rate.
        label_noise: Fraction of labels flipped at random, bounding the best
            achievable AUC below 1.0 (as with real click data).

    Returns:
        A :class:`SyntheticClickLog`.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    num_tables = spec.num_sparse
    pooling = spec.pooling

    dense = rng.normal(0.0, 1.0, size=(num_samples, spec.num_dense))

    sparse = np.empty((num_samples, num_tables, pooling), dtype=np.int64)
    rank_to_row: list[np.ndarray] = []
    # Hidden ground-truth: a per-row logit contribution for every table, plus
    # a linear model over the dense features.
    dense_weights = rng.normal(0.0, 0.5, size=spec.num_dense)
    row_logits: list[np.ndarray] = []
    logits = dense @ dense_weights

    for table, rows in enumerate(spec.rows_per_table):
        probabilities = _zipf_probabilities(rows, spec.zipf_alpha)
        ranks = rng.choice(rows, size=(num_samples, pooling), p=probabilities)
        permutation = rng.permutation(rows)
        rank_to_row.append(permutation)
        sparse[:, table, :] = permutation[ranks]
        contributions = rng.normal(0.0, 0.35, size=rows)
        row_logits.append(contributions)
        logits = logits + contributions[ranks].sum(axis=1)

    # Centre the logits so the click rate lands near the target.
    logits = logits - np.quantile(logits, 1.0 - click_rate)
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    labels = (rng.uniform(size=num_samples) < probabilities).astype(np.float64)
    flip = rng.uniform(size=num_samples) < label_noise
    labels[flip] = 1.0 - labels[flip]

    return SyntheticClickLog(
        spec=spec,
        dense=dense,
        sparse=sparse,
        labels=labels,
        rank_to_row=rank_to_row,
    )
