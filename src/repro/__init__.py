"""Hotline: heterogeneous acceleration pipeline for recommendation training.

A full Python reproduction of "Heterogeneous Acceleration Pipeline for
Recommendation System Training" (ISCA 2024).  The package is organised as:

* :mod:`repro.core` — the Hotline accelerator and training pipeline (the
  paper's contribution);
* :mod:`repro.nn`, :mod:`repro.models` — a from-scratch numpy DLRM/TBSM
  training stack;
* :mod:`repro.data` — synthetic Zipf-skewed click-log datasets mirroring
  Criteo Kaggle/Terabyte, Taobao, and Avazu;
* :mod:`repro.hwsim`, :mod:`repro.perf` — the hardware timing/energy model
  and the per-phase training cost model;
* :mod:`repro.baselines` — XDL, Intel-optimized hybrid DLRM, FAE, HugeCTR,
  ScratchPipe-Ideal, and CPU-driven Hotline;
* :mod:`repro.analysis` — breakdowns, roofline, and report formatting.
"""

__version__ = "1.0.0"

from repro import analysis, baselines, core, data, experiments, hwsim, models, nn, perf

__all__ = [
    "analysis",
    "baselines",
    "core",
    "data",
    "experiments",
    "hwsim",
    "models",
    "nn",
    "perf",
    "__version__",
]
