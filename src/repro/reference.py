"""Reference (pre-vectorisation) implementations of the training hot path.

These are the per-sample-loop and ``np.isin``-scan originals that the
batched :class:`~repro.nn.embedding.EmbeddingBag` and the bitmap-based
:func:`~repro.core.classifier.split_minibatch` replaced.  They are kept —
deliberately outside the ``core``/``data`` hot-path packages — for two
jobs:

* the parity test-suite asserts the vectorised paths produce *bit-for-bit*
  identical outputs to these references (the Eq. 5 equivalence guarantee
  must survive the optimisation);
* the speedup benchmarks measure the vectorised paths against them.

Nothing in the training loop may call into this module.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import MicroBatches
from repro.data.batch import MiniBatch
from repro.nn.embedding import reference_backward, reference_forward

__all__ = [
    "reference_forward",
    "reference_backward",
    "split_minibatch_reference",
]


def split_minibatch_reference(
    batch: MiniBatch, hot_sets: list[np.ndarray]
) -> MicroBatches:
    """The pre-bitmap ``np.isin``-based split, retained as parity ground truth."""
    if len(hot_sets) != batch.num_tables:
        raise ValueError(
            f"expected {batch.num_tables} hot sets (one per table), got {len(hot_sets)}"
        )
    mask = np.ones(batch.size, dtype=bool)
    for table, hot in enumerate(hot_sets):
        if hot.size == 0:
            mask[:] = False
            break
        mask &= np.isin(batch.sparse[:, table, :], hot).all(axis=1)
    popular, non_popular = batch.split(mask)
    return MicroBatches(popular=popular, non_popular=non_popular, popular_mask=mask)
