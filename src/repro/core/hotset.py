"""Precomputed hot-set membership bitmaps for O(1) popularity tests.

Classifying a mini-batch into popular and non-popular µ-batches requires,
for every lookup, a membership test against the per-table hot set.  Testing
with ``np.isin`` re-sorts (or re-hashes) the hot set on *every* call, which
is wasteful because the hot sets only change when the learning phase runs
(once per epoch, or at a recalibration point).

:class:`HotSetIndex` trades that repeated work for a single boolean bitmap
per table, built once per learning phase: membership of an arbitrary block
of row ids then becomes one fancy-index (``bitmap[rows]``), and classifying
a whole ``(batch, tables, pooling)`` mini-batch is one fancy-index per
table.  This mirrors how BagPipe precomputes cached-embedding membership
ahead of the training step instead of re-testing membership per batch.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class HotSetIndex:
    """Per-table boolean bitmaps over embedding row ids.

    The bitmap of table ``t`` has ``bitmap[row] == True`` iff ``row`` is in
    the table's hot set.  Rows outside the bitmap's range (possible when the
    index was built without table sizes) are never hot.

    Attributes:
        hot_sets: Per-table sorted arrays of hot row ids (lazily resynced
            after delta updates).
    """

    def __init__(
        self,
        hot_sets: Sequence[np.ndarray],
        rows_per_table: Sequence[int] | None = None,
    ):
        if rows_per_table is not None and len(rows_per_table) != len(hot_sets):
            raise ValueError("rows_per_table must have one entry per hot set")
        self._hot_sets: list[np.ndarray | None] = [
            np.asarray(hot, dtype=np.int64) for hot in hot_sets
        ]
        self._rows_per_table = (
            tuple(int(rows) for rows in rows_per_table) if rows_per_table is not None else None
        )
        self._version = 0
        self._bitmaps: list[np.ndarray] = []
        for table, hot in enumerate(self.hot_sets):
            if hot.size and hot.min() < 0:
                # Negative ids would wrap around the bitmap and silently mark
                # an unrelated row hot.
                raise ValueError(f"hot set of table {table} contains negative row ids")
            if self._rows_per_table is not None:
                size = self._rows_per_table[table]
                if hot.size and hot.max() >= size:
                    raise ValueError(
                        f"hot set of table {table} references out-of-range rows"
                    )
            else:
                size = int(hot.max()) + 1 if hot.size else 0
            bitmap = np.zeros(size, dtype=bool)
            if hot.size:
                bitmap[hot] = True
            self._bitmaps.append(bitmap)

    @classmethod
    def from_hot_sets(cls, hot_sets: Sequence[np.ndarray]) -> HotSetIndex:
        """Build an index sized by the largest row id of each hot set."""
        return cls(hot_sets)

    @property
    def hot_sets(self) -> list[np.ndarray]:
        """Per-table sorted arrays of hot row ids.

        Kept lazily: :meth:`set_rows`/:meth:`clear_rows` only flip bitmap
        bits (O(delta)) and invalidate the affected table's array, which is
        rebuilt from its bitmap here on next access.
        """
        for table, hot in enumerate(self._hot_sets):
            if hot is None:
                self._hot_sets[table] = np.nonzero(self._bitmaps[table])[0]
        return self._hot_sets  # type: ignore[return-value]

    @property
    def num_tables(self) -> int:
        """Number of indexed tables."""
        return len(self._bitmaps)

    @property
    def version(self) -> int:
        """Monotonic mutation counter of the bitmaps.

        Bumped *after* every delta update (:meth:`set_rows`,
        :meth:`clear_rows`, :meth:`replace_table`), so a classification
        result computed ahead of time — e.g. the loader-thread µ-batch
        pre-classification of batch N+1 — can be tagged with the version it
        was computed against and discarded if a recalibration has since
        mutated the bitmaps.  Observing the final version implies every
        bitmap mutation of that recalibration is visible.
        """
        return self._version

    def table_size(self, table: int) -> int:
        """Length of one table's bitmap."""
        return int(self._bitmaps[table].shape[0])

    def bitmap(self, table: int) -> np.ndarray:
        """One table's boolean membership bitmap (treat as read-only).

        Exposed for vectorised callers that combine membership with their
        own per-row arrays in one boolean-mask pass — e.g. the lookahead
        cache's flat pending store ANDs this bitmap with its birth-step
        comparison to find age-expired rows without materialising id lists.
        Mutate through :meth:`set_rows`/:meth:`clear_rows` only, so the
        lazily-rebuilt ``hot_sets`` arrays stay in sync.
        """
        return self._bitmaps[table]

    def hot_count(self, table: int) -> int:
        """Number of set bits in one table's bitmap.

        A popcount straight off the bitmap: unlike ``hot_sets[table].size``
        it never rebuilds the lazily-invalidated id arrays, so callers that
        only need occupancy (the lookahead cache's accounting) stay
        O(table)/vectorised with no allocation of the id list.
        """
        return int(np.count_nonzero(self._bitmaps[table]))

    def contains(self, table: int, rows: np.ndarray) -> np.ndarray:
        """Vectorised membership test: True where ``rows`` is hot.

        Accepts an integer array of any shape (or a scalar) and returns a
        boolean array of the same shape.  Rows outside the table's range are
        reported cold rather than raising, so callers can probe arbitrary
        ids.
        """
        bitmap = self._bitmaps[table]
        rows = np.asarray(rows)
        if bitmap.size == 0:
            return np.zeros(rows.shape, dtype=bool)
        result = np.zeros(rows.shape, dtype=bool)
        in_range = (rows >= 0) & (rows < bitmap.size)
        result[in_range] = bitmap[rows[in_range]]
        return result

    def is_hot(self, table: int, row: int) -> bool:
        """Scalar membership test for one row."""
        row = int(row)
        bitmap = self._bitmaps[table]
        return bool(0 <= row < bitmap.size and bitmap[row])

    def split_rows(self, table: int, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split ``rows`` into (hot, cold) subsets, preserving order."""
        mask = self.contains(table, rows)
        return rows[mask], rows[~mask]

    # ------------------------------------------------------------------ #
    # Incremental (delta) updates
    # ------------------------------------------------------------------ #
    # All delta paths stay bitmap-native on purpose: sort-based set ops
    # (np.isin / union1d / setdiff1d) on the hot sets cost more than the
    # fancy-indexed bit flips they would replace.

    def _validated_delta(self, table: int, rows: np.ndarray) -> np.ndarray:
        """Normalise a delta row array and validate it against the table."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size == 0:
            return rows
        if rows.min() < 0:
            raise ValueError(f"delta for table {table} contains negative row ids")
        if self._rows_per_table is not None and rows.max() >= self._rows_per_table[table]:
            raise ValueError(f"delta for table {table} references out-of-range rows")
        return rows

    def _grow_bitmap(self, table: int, needed: int) -> np.ndarray:
        """Extend one table's bitmap to cover ``needed`` rows (dynamic sizing)."""
        bitmap = self._bitmaps[table]
        if needed > bitmap.size:
            grown = np.zeros(needed, dtype=bool)
            grown[: bitmap.size] = bitmap
            self._bitmaps[table] = bitmap = grown
        return bitmap

    def set_rows(self, table: int, rows: np.ndarray) -> None:
        """Mark ``rows`` hot in place (recalibration delta).

        For an index built without fixed table sizes the bitmap grows to
        cover new row ids; with fixed sizes out-of-range rows raise, exactly
        as at construction time.
        """
        rows = self._validated_delta(table, rows)
        if rows.size == 0:
            return
        bitmap = self._grow_bitmap(table, int(rows.max()) + 1)
        bitmap[rows] = True
        self._hot_sets[table] = None  # rebuilt lazily on next hot_sets access
        self._version += 1

    def clear_rows(self, table: int, rows: np.ndarray) -> None:
        """Mark ``rows`` cold in place (recalibration delta).

        Rows beyond the bitmap's range are already cold and are ignored.
        """
        rows = self._validated_delta(table, rows)
        if rows.size == 0:
            return
        bitmap = self._bitmaps[table]
        bitmap[rows[rows < bitmap.size]] = False
        self._hot_sets[table] = None  # rebuilt lazily on next hot_sets access
        self._version += 1

    def replace_table(self, table: int, new_hot: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Swap one table's hot set, flipping only the rows that drifted.

        Instead of reallocating and repopulating the table's bitmap (the
        from-scratch path the constructor takes, whose cost grows with the
        *table* size), the drifted rows are computed in O(hot-set) work —
        one bitmap gather for the additions, one binary search for the
        removals — and flipped in place.  That keeps frequent recalibration
        cheap at Criteo-Terabyte table sizes, where the bitmap dwarfs the
        hot set by orders of magnitude.

        Returns:
            ``(added, removed)`` row-id arrays describing the applied delta.
        """
        new_hot = self._validated_delta(table, new_hot)
        if new_hot.size and np.any(np.diff(new_hot) <= 0):
            new_hot = np.unique(new_hot)
        old_hot = self.hot_sets[table]
        bitmap = self._grow_bitmap(table, int(new_hot.max()) + 1 if new_hot.size else 0)
        # Rows currently set are in range by construction, so the bitmap
        # gather needs no bounds mask: additions are the new rows whose bit
        # is still clear.
        added = new_hot[~bitmap[new_hot]] if new_hot.size else new_hot
        # Removals are old rows absent from the (sorted) new hot set.
        if old_hot.size and new_hot.size:
            slot = np.searchsorted(new_hot, old_hot)
            in_bounds = slot < new_hot.size
            gone = ~in_bounds
            gone[in_bounds] = new_hot[slot[in_bounds]] != old_hot[in_bounds]
            removed = old_hot[gone]
        else:
            removed = old_hot
        bitmap[removed] = False
        bitmap[added] = True
        self._hot_sets[table] = new_hot
        self._version += 1
        return added, removed

    def classify(self, sparse: np.ndarray) -> np.ndarray:
        """Popular-input mask for a ``(batch, tables, pooling)`` index block.

        An input is popular only if *every* one of its lookups hits a hot
        row (Section I of the paper); a table with an empty hot set makes
        every input non-popular.
        """
        if sparse.ndim != 3:
            raise ValueError("sparse must be 3-D (batch, num_tables, pooling)")
        batch, num_tables, _pooling = sparse.shape
        if num_tables != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} tables in the index block, got {num_tables}"
            )
        mask = np.ones(batch, dtype=bool)
        for table in range(num_tables):
            if self._bitmaps[table].size == 0:
                return np.zeros(batch, dtype=bool)
            mask &= self.contains(table, sparse[:, table, :]).all(axis=1)
        return mask

    @property
    def hot_rows_total(self) -> int:
        """Total number of hot rows across all tables."""
        return int(sum(hot.size for hot in self.hot_sets))

    @property
    def nbytes(self) -> int:
        """Bookkeeping bytes: bitmaps plus materialised hot-set arrays.

        The bitmaps are O(table) at one byte per row — the deliberate
        trade the index makes for O(1) membership; the window-bounded
        structures built *on top* of it (the lookahead pending store, the
        tiered embedding store) keep their own footprint proportional to
        the cached/resident row set, which this property lets accounting
        code report separately.
        """
        return int(
            sum(bitmap.nbytes for bitmap in self._bitmaps)
            + sum(hot.nbytes for hot in self._hot_sets if hot is not None)
        )


def as_hot_set_index(
    hot_sets: Sequence[np.ndarray] | HotSetIndex,
) -> HotSetIndex:
    """Coerce raw per-table hot-set arrays into a :class:`HotSetIndex`.

    Lets APIs accept either form: callers on the hot path pass a prebuilt
    index (built once per learning phase), while tests and one-shot callers
    can keep passing plain arrays.
    """
    if isinstance(hot_sets, HotSetIndex):
        return hot_sets
    return HotSetIndex.from_hot_sets(hot_sets)
