"""Precomputed hot-set membership bitmaps for O(1) popularity tests.

Classifying a mini-batch into popular and non-popular µ-batches requires,
for every lookup, a membership test against the per-table hot set.  Testing
with ``np.isin`` re-sorts (or re-hashes) the hot set on *every* call, which
is wasteful because the hot sets only change when the learning phase runs
(once per epoch, or at a recalibration point).

:class:`HotSetIndex` trades that repeated work for a single boolean bitmap
per table, built once per learning phase: membership of an arbitrary block
of row ids then becomes one fancy-index (``bitmap[rows]``), and classifying
a whole ``(batch, tables, pooling)`` mini-batch is one fancy-index per
table.  This mirrors how BagPipe precomputes cached-embedding membership
ahead of the training step instead of re-testing membership per batch.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class HotSetIndex:
    """Per-table boolean bitmaps over embedding row ids.

    The bitmap of table ``t`` has ``bitmap[row] == True`` iff ``row`` is in
    the table's hot set.  Rows outside the bitmap's range (possible when the
    index was built without table sizes) are never hot.

    Attributes:
        hot_sets: The original per-table arrays of hot row ids.
    """

    def __init__(
        self,
        hot_sets: Sequence[np.ndarray],
        rows_per_table: Sequence[int] | None = None,
    ):
        if rows_per_table is not None and len(rows_per_table) != len(hot_sets):
            raise ValueError("rows_per_table must have one entry per hot set")
        self.hot_sets: list[np.ndarray] = [
            np.asarray(hot, dtype=np.int64) for hot in hot_sets
        ]
        self._bitmaps: list[np.ndarray] = []
        for table, hot in enumerate(self.hot_sets):
            if hot.size and hot.min() < 0:
                # Negative ids would wrap around the bitmap and silently mark
                # an unrelated row hot.
                raise ValueError(f"hot set of table {table} contains negative row ids")
            if rows_per_table is not None:
                size = int(rows_per_table[table])
                if hot.size and hot.max() >= size:
                    raise ValueError(
                        f"hot set of table {table} references out-of-range rows"
                    )
            else:
                size = int(hot.max()) + 1 if hot.size else 0
            bitmap = np.zeros(size, dtype=bool)
            if hot.size:
                bitmap[hot] = True
            self._bitmaps.append(bitmap)

    @classmethod
    def from_hot_sets(cls, hot_sets: Sequence[np.ndarray]) -> "HotSetIndex":
        """Build an index sized by the largest row id of each hot set."""
        return cls(hot_sets)

    @property
    def num_tables(self) -> int:
        """Number of indexed tables."""
        return len(self._bitmaps)

    def table_size(self, table: int) -> int:
        """Length of one table's bitmap."""
        return int(self._bitmaps[table].shape[0])

    def contains(self, table: int, rows: np.ndarray) -> np.ndarray:
        """Vectorised membership test: True where ``rows`` is hot.

        Accepts an integer array of any shape (or a scalar) and returns a
        boolean array of the same shape.  Rows outside the table's range are
        reported cold rather than raising, so callers can probe arbitrary
        ids.
        """
        bitmap = self._bitmaps[table]
        rows = np.asarray(rows)
        if bitmap.size == 0:
            return np.zeros(rows.shape, dtype=bool)
        result = np.zeros(rows.shape, dtype=bool)
        in_range = (rows >= 0) & (rows < bitmap.size)
        result[in_range] = bitmap[rows[in_range]]
        return result

    def is_hot(self, table: int, row: int) -> bool:
        """Scalar membership test for one row."""
        row = int(row)
        bitmap = self._bitmaps[table]
        return bool(0 <= row < bitmap.size and bitmap[row])

    def split_rows(self, table: int, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split ``rows`` into (hot, cold) subsets, preserving order."""
        mask = self.contains(table, rows)
        return rows[mask], rows[~mask]

    def classify(self, sparse: np.ndarray) -> np.ndarray:
        """Popular-input mask for a ``(batch, tables, pooling)`` index block.

        An input is popular only if *every* one of its lookups hits a hot
        row (Section I of the paper); a table with an empty hot set makes
        every input non-popular.
        """
        if sparse.ndim != 3:
            raise ValueError("sparse must be 3-D (batch, num_tables, pooling)")
        batch, num_tables, _pooling = sparse.shape
        if num_tables != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} tables in the index block, got {num_tables}"
            )
        mask = np.ones(batch, dtype=bool)
        for table in range(num_tables):
            if self._bitmaps[table].size == 0:
                return np.zeros(batch, dtype=bool)
            mask &= self.contains(table, sparse[:, table, :]).all(axis=1)
        return mask

    @property
    def hot_rows_total(self) -> int:
        """Total number of hot rows across all tables."""
        return int(sum(hot.size for hot in self.hot_sets))


def as_hot_set_index(
    hot_sets: "Sequence[np.ndarray] | HotSetIndex",
) -> HotSetIndex:
    """Coerce raw per-table hot-set arrays into a :class:`HotSetIndex`.

    Lets APIs accept either form: callers on the hot path pass a prebuilt
    index (built once per learning phase), while tests and one-shot callers
    can keep passing plain arrays.
    """
    if isinstance(hot_sets, HotSetIndex):
        return hot_sets
    return HotSetIndex.from_hot_sets(hot_sets)
