"""Embedding layouts: hot/cold placement and row-wise table partitioning.

Hotline's first key insight (Section I): frequently-accessed embeddings have
a small footprint (~512 MB covers >=75 % of inputs) and are replicated on
every GPU's HBM, while the long tail stays in CPU main memory.  Because the
two sets are disjoint and each row has exactly one home, updates never need
coherence traffic (unlike FAE, which synchronises embeddings between CPU and
GPU at every popular/non-popular transition).
:class:`EmbeddingPlacement` captures that hot/cold split.

:class:`PartitionedEmbeddingPlacement` adds the *model-parallel* dimension:
each table's rows are dealt into contiguous ranges, one per shard, so a
K-replica data-parallel run can also split the embedding capacity K ways
(the hybrid layout of multi-node DLRM systems, Figure 1b).  The partition
owns no weights — it is the authority on which shard *owns* each row, which
drives per-shard memory accounting, the all-to-all cost of remotely-owned
lookups, and the routing of merged sparse gradients back to their owners.

:class:`HybridEmbeddingLayout` intersects the two: **hot rows replicate on
every shard, cold rows stay partitioned**.  A popular lookup is always
local (the replica serves it), so only cold, remotely-owned lookups pay
all-to-all; per-shard capacity is the full hot replica plus the shard's
owned slice of the cold tail, and :meth:`HybridEmbeddingLayout.shard_bytes`
drives the budget check.  Like the partition, the hybrid layout owns no
weights — it prices and routes, never changes numerics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hotset import HotSetIndex
from repro.nn.embedding import SparseGradient


@dataclass
class EmbeddingPlacement:
    """Placement of every embedding row: GPU-replicated hot set vs CPU tail.

    Attributes:
        hot_sets: Per-table arrays of row ids replicated on every GPU.
        rows_per_table: Table sizes (for footprint accounting).
        embedding_dim: Row width.
        dtype_bytes: Bytes per element.
        hbm_budget_bytes: Per-GPU budget for the hot replica (paper: 512 MB).
    """

    hot_sets: list[np.ndarray]
    rows_per_table: tuple[int, ...]
    embedding_dim: int
    dtype_bytes: int = 4
    hbm_budget_bytes: float = 512 * 1024 * 1024
    index: HotSetIndex = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.hot_sets) != len(self.rows_per_table):
            raise ValueError("hot_sets must have one entry per table")
        # Builds the per-table membership bitmaps once (and validates row
        # ranges); every later popularity test is a fancy-index against it.
        self.index = HotSetIndex(self.hot_sets, self.rows_per_table)

    @property
    def num_tables(self) -> int:
        """Number of embedding tables."""
        return len(self.rows_per_table)

    @property
    def hot_rows_total(self) -> int:
        """Total number of GPU-resident (hot) rows across tables."""
        return int(sum(hot.size for hot in self.hot_sets))

    @property
    def cold_rows_total(self) -> int:
        """Total number of CPU-resident (cold) rows across tables."""
        return int(sum(self.rows_per_table)) - self.hot_rows_total

    @property
    def row_bytes(self) -> int:
        """Bytes per embedding row."""
        return self.embedding_dim * self.dtype_bytes

    @property
    def gpu_bytes(self) -> float:
        """HBM footprint of the hot replica on each GPU."""
        return float(self.hot_rows_total) * self.row_bytes

    @property
    def cpu_bytes(self) -> float:
        """CPU DRAM footprint of the cold rows."""
        return float(self.cold_rows_total) * self.row_bytes

    def fits_budget(self) -> bool:
        """Whether the hot replica respects the per-GPU HBM budget."""
        return self.gpu_bytes <= self.hbm_budget_bytes

    def is_hot(self, table: int, row: int) -> bool:
        """Whether a row lives in the GPU replica."""
        return self.index.is_hot(table, row)

    def split_rows(self, table: int, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split looked-up ``rows`` of one table into (hot, cold) subsets."""
        return self.index.split_rows(table, rows)

    def update_hot_sets(self, new_hot_sets: list[np.ndarray]) -> EmbeddingPlacement:
        """Apply a recalibration's hot sets as in-place bitmap deltas.

        Only the rows that drifted in or out of each table's hot set are
        touched (:meth:`~repro.core.hotset.HotSetIndex.replace_table`), so
        frequent recalibration avoids rebuilding the per-table bitmaps from
        scratch.  Returns ``self`` for chaining.
        """
        if len(new_hot_sets) != self.num_tables:
            raise ValueError("new_hot_sets must have one entry per table")
        for table, new_hot in enumerate(new_hot_sets):
            self.index.replace_table(table, new_hot)
        self.hot_sets = list(self.index.hot_sets)
        return self

    def truncate_to_budget(self, access_counts: list[np.ndarray]) -> EmbeddingPlacement:
        """Return a placement whose hot replica fits the HBM budget.

        If the tracked hot set exceeds the budget, keep the most-accessed
        rows first (requires per-table access counts, e.g. from the EAL's
        learning phase or an offline histogram).
        """
        max_rows = int(self.hbm_budget_bytes // self.row_bytes)
        if self.hot_rows_total <= max_rows:
            return self
        scored: list[tuple[float, int, int]] = []
        for table, hot in enumerate(self.hot_sets):
            counts = access_counts[table]
            for row in hot:
                scored.append((float(counts[row]), table, int(row)))
        scored.sort(reverse=True)
        kept: list[list[int]] = [[] for _ in self.rows_per_table]
        for _score, table, row in scored[:max_rows]:
            kept[table].append(row)
        new_hot = [np.array(sorted(rows), dtype=np.int64) for rows in kept]
        return EmbeddingPlacement(
            hot_sets=new_hot,
            rows_per_table=self.rows_per_table,
            embedding_dim=self.embedding_dim,
            dtype_bytes=self.dtype_bytes,
            hbm_budget_bytes=self.hbm_budget_bytes,
        )


@dataclass
class PartitionedEmbeddingPlacement:
    """Row-wise contiguous partition of every embedding table across shards.

    Shard ``k`` owns rows ``[bounds[k], bounds[k+1])`` of each table, with
    the same balanced-split arithmetic as
    :meth:`~repro.data.batch.MiniBatch.shards` (range sizes differ by at
    most one row; trailing shards of a table smaller than the shard count
    own nothing).  Ownership is authoritative for memory accounting and
    gradient routing; the functional trainer keeps a full local copy of
    every table per replica (a coherent cache — updates are identical
    everywhere), so partitioning changes *communication accounting*, never
    numerics.

    Attributes:
        rows_per_table: Table sizes.
        num_shards: Number of owning shards.
        embedding_dim: Row width.
        dtype_bytes: Bytes per element.
    """

    rows_per_table: tuple[int, ...]
    num_shards: int
    embedding_dim: int
    dtype_bytes: int = 4
    _bounds: list[np.ndarray] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if any(rows <= 0 for rows in self.rows_per_table):
            raise ValueError("every table must have at least one row")
        self._bounds = [
            np.array(
                [(k * rows) // self.num_shards for k in range(self.num_shards + 1)],
                dtype=np.int64,
            )
            for rows in self.rows_per_table
        ]

    @property
    def num_tables(self) -> int:
        """Number of embedding tables."""
        return len(self.rows_per_table)

    @property
    def row_bytes(self) -> int:
        """Bytes per embedding row."""
        return self.embedding_dim * self.dtype_bytes

    def bounds(self, table: int) -> np.ndarray:
        """The ``num_shards + 1`` row boundaries of one table's partition."""
        return self._bounds[table]

    def owned_range(self, table: int, shard: int) -> tuple[int, int]:
        """The ``[lo, hi)`` row range of ``table`` owned by ``shard``."""
        bounds = self._bounds[table]
        return int(bounds[shard]), int(bounds[shard + 1])

    def owner_of(self, table: int, rows: np.ndarray) -> np.ndarray:
        """Owner shard id of each row index (vectorised)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.rows_per_table[table]):
            raise ValueError(f"row index out of range for table {table}")
        return np.searchsorted(self._bounds[table], rows, side="right") - 1

    def owned_row_count(self, shard: int) -> int:
        """Total rows (across tables) stored on ``shard``."""
        return int(
            sum(bounds[shard + 1] - bounds[shard] for bounds in self._bounds)
        )

    def shard_bytes(self, shard: int) -> float:
        """Embedding-table footprint of one shard's owned rows."""
        return float(self.owned_row_count(shard)) * self.row_bytes

    def remote_lookup_count(self, sparse: np.ndarray, shard: int) -> int:
        """Lookups in a ``(batch, tables, pooling)`` block owned elsewhere.

        This is the per-step all-to-all volume of model parallelism: every
        counted row travels to ``shard`` in the forward pass and its
        gradient travels back to the owner in the backward pass.
        """
        sparse = np.asarray(sparse)
        if sparse.ndim != 3 or sparse.shape[1] != self.num_tables:
            raise ValueError("sparse must be 3-D (batch, num_tables, pooling)")
        if sparse.shape[0] == 0 or sparse.shape[2] == 0:
            return 0
        remote = 0
        for table in range(self.num_tables):
            lo, hi = self.owned_range(table, shard)
            rows = sparse[:, table, :]
            remote += int(((rows < lo) | (rows >= hi)).sum())
        return remote

    def route_gradient(self, table: int, grad: SparseGradient) -> list[SparseGradient]:
        """Split one table's merged gradient by owner shard.

        Returns one :class:`~repro.nn.embedding.SparseGradient` per shard
        (empty where the shard owns none of the touched rows); values are
        array views, preserving dtype.  Relies on merged gradients carrying
        sorted unique indices, so each owner's rows form one contiguous run.
        """
        cuts = np.searchsorted(grad.indices, self._bounds[table])
        return [
            SparseGradient(grad.indices[cuts[k] : cuts[k + 1]], grad.values[cuts[k] : cuts[k + 1]])
            for k in range(self.num_shards)
        ]


@dataclass
class HybridEmbeddingLayout:
    """Hot rows replicated on every shard, cold rows partitioned by owner.

    The intersection of :class:`EmbeddingPlacement` (popularity decides
    device residence) and :class:`PartitionedEmbeddingPlacement` (contiguous
    row ranges decide ownership): every shard carries the full hot replica,
    so popular lookups never leave the device, while the cold tail is dealt
    across shards exactly as the partition dictates.  Per-shard capacity is
    therefore ``hot replica + owned cold slice`` — :meth:`shard_bytes` —
    and the all-to-all volume shrinks to the **cold, remotely-owned**
    lookups only (:meth:`remote_cold_lookup_count`).

    Attributes:
        placement: The hot/cold split (its ``hbm_budget_bytes`` gates
            :meth:`fits_budget`).
        partition: The row-range ownership of the cold tail.
    """

    placement: EmbeddingPlacement
    partition: PartitionedEmbeddingPlacement

    def __post_init__(self) -> None:
        if self.placement.rows_per_table != self.partition.rows_per_table:
            raise ValueError("placement and partition must describe the same tables")
        if (
            self.placement.embedding_dim != self.partition.embedding_dim
            or self.placement.dtype_bytes != self.partition.dtype_bytes
        ):
            raise ValueError("placement and partition must agree on the row format")

    @property
    def num_tables(self) -> int:
        """Number of embedding tables."""
        return self.placement.num_tables

    @property
    def num_shards(self) -> int:
        """Number of owning shards."""
        return self.partition.num_shards

    @property
    def row_bytes(self) -> int:
        """Bytes per embedding row."""
        return self.placement.row_bytes

    def owned_cold_row_count(self, shard: int) -> int:
        """Cold rows (across tables) whose owned range lands on ``shard``.

        A shard's owned range also contains hot rows; those are served by
        the replica (and counted once in the replicated bytes), so they
        are subtracted here — one binary search per table against the
        sorted hot set, never a table-sized scan.
        """
        total = 0
        for table, hot in enumerate(self.placement.hot_sets):
            lo, hi = self.partition.owned_range(table, shard)
            owned = hi - lo
            hot = np.asarray(hot)
            if hot.size > 1 and np.any(np.diff(hot) < 0):
                hot = np.sort(hot)  # construction-time hot sets may be unsorted
            hot_within = int(
                np.searchsorted(hot, hi) - np.searchsorted(hot, lo)
            )
            total += owned - hot_within
        return total

    def shard_bytes(self, shard: int) -> float:
        """Device footprint of one shard: full hot replica + owned cold rows."""
        return self.placement.gpu_bytes + float(
            self.owned_cold_row_count(shard) * self.row_bytes
        )

    def fits_budget(self) -> bool:
        """Whether every shard's footprint respects the per-GPU HBM budget."""
        return all(
            self.shard_bytes(shard) <= self.placement.hbm_budget_bytes
            for shard in range(self.num_shards)
        )

    def remote_cold_lookup_count(self, sparse: np.ndarray, shard: int) -> int:
        """Cold lookups in a ``(batch, tables, pooling)`` block owned elsewhere.

        The hybrid layout's all-to-all volume: hot lookups are always
        local (replicated), so only the cold rows outside ``shard``'s
        owned range travel — by construction no larger than
        :meth:`PartitionedEmbeddingPlacement.remote_lookup_count` on the
        same block.
        """
        sparse = np.asarray(sparse)
        if sparse.ndim != 3 or sparse.shape[1] != self.num_tables:
            raise ValueError("sparse must be 3-D (batch, num_tables, pooling)")
        if sparse.shape[0] == 0 or sparse.shape[2] == 0:
            return 0
        remote = 0
        for table in range(self.num_tables):
            lo, hi = self.partition.owned_range(table, shard)
            rows = sparse[:, table, :].reshape(-1)
            hot = self.placement.index.contains(table, rows)
            cold_rows = rows[~hot]
            remote += int(((cold_rows < lo) | (cold_rows >= hi)).sum())
        return remote

    def route_gradient(
        self, table: int, grad: SparseGradient
    ) -> tuple[SparseGradient, list[SparseGradient]]:
        """Split one table's merged gradient into (replicated, per-owner).

        The hot subset applies to every shard's replica (the coherent-
        update path data parallelism already provides); the cold subset is
        routed to owner shards exactly like
        :meth:`PartitionedEmbeddingPlacement.route_gradient`.  Sorted
        unique indices are preserved on both sides, so downstream
        consumers keep their contiguous-run invariants.
        """
        hot_mask = self.placement.index.contains(table, grad.indices)
        hot_grad = SparseGradient(grad.indices[hot_mask], grad.values[hot_mask])
        cold_grad = SparseGradient(grad.indices[~hot_mask], grad.values[~hot_mask])
        return hot_grad, self.partition.route_gradient(table, cold_grad)
