"""Access-aware embedding layout across GPU HBM and CPU DRAM.

Hotline's first key insight (Section I): frequently-accessed embeddings have
a small footprint (~512 MB covers >=75 % of inputs) and are replicated on
every GPU's HBM, while the long tail stays in CPU main memory.  Because the
two sets are disjoint and each row has exactly one home, updates never need
coherence traffic (unlike FAE, which synchronises embeddings between CPU and
GPU at every popular/non-popular transition).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hotset import HotSetIndex


@dataclass
class EmbeddingPlacement:
    """Placement of every embedding row: GPU-replicated hot set vs CPU tail.

    Attributes:
        hot_sets: Per-table arrays of row ids replicated on every GPU.
        rows_per_table: Table sizes (for footprint accounting).
        embedding_dim: Row width.
        dtype_bytes: Bytes per element.
        hbm_budget_bytes: Per-GPU budget for the hot replica (paper: 512 MB).
    """

    hot_sets: list[np.ndarray]
    rows_per_table: tuple[int, ...]
    embedding_dim: int
    dtype_bytes: int = 4
    hbm_budget_bytes: float = 512 * 1024 * 1024
    index: HotSetIndex = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.hot_sets) != len(self.rows_per_table):
            raise ValueError("hot_sets must have one entry per table")
        # Builds the per-table membership bitmaps once (and validates row
        # ranges); every later popularity test is a fancy-index against it.
        self.index = HotSetIndex(self.hot_sets, self.rows_per_table)

    @property
    def num_tables(self) -> int:
        """Number of embedding tables."""
        return len(self.rows_per_table)

    @property
    def hot_rows_total(self) -> int:
        """Total number of GPU-resident (hot) rows across tables."""
        return int(sum(hot.size for hot in self.hot_sets))

    @property
    def cold_rows_total(self) -> int:
        """Total number of CPU-resident (cold) rows across tables."""
        return int(sum(self.rows_per_table)) - self.hot_rows_total

    @property
    def row_bytes(self) -> int:
        """Bytes per embedding row."""
        return self.embedding_dim * self.dtype_bytes

    @property
    def gpu_bytes(self) -> float:
        """HBM footprint of the hot replica on each GPU."""
        return float(self.hot_rows_total) * self.row_bytes

    @property
    def cpu_bytes(self) -> float:
        """CPU DRAM footprint of the cold rows."""
        return float(self.cold_rows_total) * self.row_bytes

    def fits_budget(self) -> bool:
        """Whether the hot replica respects the per-GPU HBM budget."""
        return self.gpu_bytes <= self.hbm_budget_bytes

    def is_hot(self, table: int, row: int) -> bool:
        """Whether a row lives in the GPU replica."""
        return self.index.is_hot(table, row)

    def split_rows(self, table: int, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split looked-up ``rows`` of one table into (hot, cold) subsets."""
        return self.index.split_rows(table, rows)

    def update_hot_sets(self, new_hot_sets: list[np.ndarray]) -> "EmbeddingPlacement":
        """Apply a recalibration's hot sets as in-place bitmap deltas.

        Only the rows that drifted in or out of each table's hot set are
        touched (:meth:`~repro.core.hotset.HotSetIndex.replace_table`), so
        frequent recalibration avoids rebuilding the per-table bitmaps from
        scratch.  Returns ``self`` for chaining.
        """
        if len(new_hot_sets) != self.num_tables:
            raise ValueError("new_hot_sets must have one entry per table")
        for table, new_hot in enumerate(new_hot_sets):
            self.index.replace_table(table, new_hot)
        self.hot_sets = list(self.index.hot_sets)
        return self

    def truncate_to_budget(self, access_counts: list[np.ndarray]) -> "EmbeddingPlacement":
        """Return a placement whose hot replica fits the HBM budget.

        If the tracked hot set exceeds the budget, keep the most-accessed
        rows first (requires per-table access counts, e.g. from the EAL's
        learning phase or an offline histogram).
        """
        max_rows = int(self.hbm_budget_bytes // self.row_bytes)
        if self.hot_rows_total <= max_rows:
            return self
        scored: list[tuple[float, int, int]] = []
        for table, hot in enumerate(self.hot_sets):
            counts = access_counts[table]
            for row in hot:
                scored.append((float(counts[row]), table, int(row)))
        scored.sort(reverse=True)
        kept: list[list[int]] = [[] for _ in self.rows_per_table]
        for _score, table, row in scored[:max_rows]:
            kept[table].append(row)
        new_hot = [np.array(sorted(rows), dtype=np.int64) for rows in kept]
        return EmbeddingPlacement(
            hot_sets=new_hot,
            rows_per_table=self.rows_per_table,
            embedding_dim=self.embedding_dim,
            dtype_bytes=self.dtype_bytes,
            hbm_budget_bytes=self.hbm_budget_bytes,
        )
