"""The pluggable training engine shared by every functional trainer.

Baseline, Hotline, and sharded-Hotline training all perform the same outer
loop: iterate mini-batches for some number of epochs, occasionally
re-calibrate the hot-set placement, record per-iteration losses, evaluate on
a held-out batch at a fixed cadence, and accumulate the simulated wall-clock
time of the schedule.  What differs between them is only what happens
*inside* one step.

This module factors that split explicitly:

* :class:`StepExecutor` — the per-step strategy.  An executor knows how to
  prepare itself for a loader (e.g. run Hotline's learning phase), execute
  one mini-batch step, and react to a recalibration point.  Each step
  returns a :class:`StepOutcome` carrying the loss plus optional popularity
  and simulated-time observations.
* :class:`TrainingEngine` — the loop.  It owns epochs, the eval cadence,
  the recalibration schedule, loader prefetching (enabled by default so
  batch assembly overlaps the training step), and
  :class:`TrainingResult` recording.

:class:`~repro.core.pipeline.ReferenceTrainer`,
:class:`~repro.core.pipeline.HotlineTrainer`, and
:class:`~repro.core.distributed.ShardedHotlineTrainer` are all thin
executors over this one loop, so their recorded results are directly
comparable — which is what makes the Eq. 5 equivalence suite (baseline vs
Hotline vs K-shard Hotline) meaningful.
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass, field

import numpy as np

from repro.data.batch import MiniBatch
from repro.data.loader import MiniBatchLoader
from repro.nn.metrics import binary_accuracy, log_loss, roc_auc


@dataclass
class TrainingResult:
    """Outcome of one training run (baseline, Hotline, or sharded Hotline).

    Attributes:
        losses: Per-iteration training loss (sum-reduced BCE).
        auc_history: (iteration, validation AUC) pairs.
        popular_fractions: Per-iteration popular µ-batch fraction (Hotline
            runs only; empty for the baseline).
        simulated_time_s: Simulated wall-clock time of the schedule
            (compute + communication).
        compute_time_s: Simulated per-replica compute portion.
        communication_time_s: Simulated *exposed* collective-communication
            portion — the time that actually extends training steps (equal
            to the total wire time in ``sync`` mode; smaller when buckets
            overlap backward; zero when fully hidden by staleness.  Zero
            for single-replica runs whose perf model reports no
            collective).
        comm_lane_s: Exposed communication by schedule lane, summed over
            steps: the per-label split of ``communication_time_s`` for
            executors that compose their step from named
            :class:`~repro.core.schedule.StepSchedule` lanes (e.g.
            ``dense-allreduce`` / ``lookup-alltoall`` / ``prefetch``).
            Empty for executors without a composed schedule.
        bucket_comm_s: Per-bucket dense all-reduce wire time, summed over
            steps: ``bucket_comm_s[i]`` is the total wire time bucket ``i``
            spent on the simulated links across the run, hidden or not.
            Empty for executors without a bucketed reducer.
        cache_hits: Embedding lookups served by already-cached rows across
            the run (lookahead-cache executors only; see
            :class:`~repro.core.lookahead.CachedEmbeddingPipeline`).
        cache_misses: Embedding lookups whose row needed a fresh cache fill.
        cache_fill_rows: Unique rows DMA'd into the lookahead cache.
        stale_rows: Deferred row updates flushed by the staleness bound.
        prefetch_time_s: Total priced lookahead fill/write-back traffic,
            hidden or not (the exposed tail is already folded into
            ``communication_time_s``).
        replica_time_s: Measured (host) wall-clock seconds each replica
            spent in its forward/backward work, summed over steps:
            ``replica_time_s[k]`` is replica ``k``'s total.  Empty for
            single-replica executors; surfaces the load balance of the
            thread-pooled multi-replica step.
        dense_time_s: Measured (host) wall-clock seconds of the fused
            dense sections across the run (all replicas) — the measured,
            not inferred, MLP/interaction share of the training walltime.
        interaction_time_s: The feature-interaction share of
            ``dense_time_s`` across the run — DLRM's dot-interaction
            forward+backward, TBSM's attention forward+backward — so the
            dense breakdown separates interaction cost from MLP GEMMs.
        pending_peak_bytes: High-water mark of the lookahead pipeline's
            deferred write-back store across the run (max over steps).
            The window-bound invariant keeps this proportional to the
            cached row set, never the table size; zero for executors
            without a lookahead pipeline.
        tier_hits: Lookups the hot/cold embedding tier served from its
            resident rows across the run (tiered executors only).
        tier_misses: Lookups the tier fetched from the cold host tier.
        tier_evictions: Resident rows the tier evicted to stay within its
            byte capacity.
        final_metrics: Final validation accuracy / AUC / log-loss.
    """

    losses: list[float] = field(default_factory=list)
    auc_history: list[tuple[int, float]] = field(default_factory=list)
    popular_fractions: list[float] = field(default_factory=list)
    simulated_time_s: float = 0.0
    compute_time_s: float = 0.0
    communication_time_s: float = 0.0
    comm_lane_s: dict[str, float] = field(default_factory=dict)
    bucket_comm_s: list[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_fill_rows: int = 0
    stale_rows: int = 0
    prefetch_time_s: float = 0.0
    replica_time_s: list[float] = field(default_factory=list)
    dense_time_s: float = 0.0
    interaction_time_s: float = 0.0
    pending_peak_bytes: int = 0
    tier_hits: int = 0
    tier_misses: int = 0
    tier_evictions: int = 0
    final_metrics: dict[str, float] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Number of training iterations performed."""
        return len(self.losses)

    @property
    def mean_popular_fraction(self) -> float:
        """Average popular-input fraction across the run."""
        if not self.popular_fractions:
            return 0.0
        return float(np.mean(self.popular_fractions))

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of embedding lookups served without a fresh cache fill."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def evaluate(model, batch: MiniBatch) -> dict[str, float]:
    """Validation accuracy, AUC, and log-loss of ``model`` on ``batch``."""
    probabilities = model.predict(batch)
    return {
        "accuracy": binary_accuracy(batch.labels, probabilities),
        "auc": roc_auc(batch.labels, probabilities),
        "logloss": log_loss(batch.labels, probabilities),
    }


@dataclass
class StepOutcome:
    """Observations from one executed training step.

    Attributes:
        loss: Sum-reduced training loss of the mini-batch.
        popular_fraction: Popular µ-batch fraction, or ``None`` when the
            executor does not fragment (the baseline).
        compute_time_s: Simulated per-replica compute time of the step.
        communication_time_s: Simulated *exposed* collective time of the
            step (the portion not hidden under backward compute).
        comm_lanes_s: The step's exposed communication split by schedule
            lane, as ``(label, exposed_s)`` pairs in lane order — the
            per-lane view of a
            :class:`~repro.core.schedule.ComposedSchedule`; the pairs sum
            to ``communication_time_s`` for executors that report them.
            Empty for executors without a composed schedule.
        bucket_times_s: Per-bucket wire time of the step's dense
            all-reduce, in bucket order (empty when the executor has no
            bucketed reducer).  May sum to more than
            ``communication_time_s`` when buckets overlap compute.
        cache_hits: Lookahead-cache hits of the step's embedding lookups
            (zero for executors without a cached pipeline).
        cache_misses: Lookups whose row needed a fresh cache fill.
        cache_fill_rows: Unique rows filled into the cache this step.
        stale_rows: Deferred row updates flushed by the staleness bound.
        prefetch_time_s: Priced cache fill/write-back traffic of the step,
            hidden or not.
        replica_times_s: Measured (host) wall-clock seconds each replica
            spent in this step's forward/backward work, by replica index
            (``0.0`` for a replica whose shard was empty).  Empty for
            single-replica executors.
        dense_time_s: Measured (host) wall-clock seconds the step's fused
            dense section (MLPs + interaction/attention + loss) took,
            summed over replicas — the directly-measured MLP share of the
            step (``0.0`` for executors without a fused dense pass).
        interaction_time_s: The feature-interaction share of
            ``dense_time_s`` (dot-interaction for DLRM, attention for
            TBSM), summed over replicas — always ≤ ``dense_time_s``.
        pending_bytes: High-water mark of the lookahead pipeline's
            deferred write-back store up to and including this step
            (window-bounded: proportional to the cached row set, never
            the table size).  Monotone within a run, so the result-level
            max equals the run's true peak — intra-step peaks included.
        tier_hits: Lookups the hot/cold embedding tier served from
            resident rows this step (tiered executors only).
        tier_misses: Lookups fetched from the cold host tier this step.
        tier_evictions: Resident rows evicted for capacity this step.
    """

    loss: float
    popular_fraction: float | None = None
    compute_time_s: float = 0.0
    communication_time_s: float = 0.0
    comm_lanes_s: tuple[tuple[str, float], ...] = ()
    bucket_times_s: tuple[float, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    cache_fill_rows: int = 0
    stale_rows: int = 0
    prefetch_time_s: float = 0.0
    replica_times_s: tuple[float, ...] = ()
    dense_time_s: float = 0.0
    interaction_time_s: float = 0.0
    pending_bytes: int = 0
    tier_hits: int = 0
    tier_misses: int = 0
    tier_evictions: int = 0

    @property
    def step_time_s(self) -> float:
        """Total simulated time of the step."""
        return self.compute_time_s + self.communication_time_s


class StepExecutor(abc.ABC):
    """Per-step strategy plugged into the :class:`TrainingEngine` loop.

    Subclasses must expose a ``model`` attribute (used by the engine for
    evaluation) and implement :meth:`run_step`.  ``bind`` and
    ``recalibrate`` default to no-ops for executors without a learning
    phase (the baseline).

    Executors may additionally define a ``prepare_batch(batch) -> batch``
    hook: when present, the engine threads it through the loader as the
    epoch's ``transform``, so with prefetching enabled the hook runs **on
    the loader's worker thread** — ahead-of-the-critical-path work such as
    classifying batch N+1's µ-batches overlaps batch N's optimizer update.
    The hook must be thread-safe with respect to the executor's own step
    (annotate the batch, never mutate executor state) and its result must
    be discardable: a step must produce bit-identical output whether or
    not the hook ran.
    """

    model = None

    def bind(self, loader: MiniBatchLoader) -> None:  # noqa: B027 - optional hook
        """One-time preparation before the loop (e.g. the learning phase)."""

    @abc.abstractmethod
    def run_step(self, batch: MiniBatch) -> StepOutcome:
        """Execute one training step and report its observations."""

    def recalibrate(self, loader: MiniBatchLoader, seed: int = 0) -> None:  # noqa: B027
        """React to a recalibration point of the schedule (default: no-op)."""

    def finalize(self) -> StepOutcome | None:
        """Drain in-flight pipeline state when the training loop ends.

        Executors that pipeline their synchronisation — the stale-k dense
        deque, the lookahead cache's deferred sparse write-backs — override
        this to apply everything still in flight, so the model the engine
        evaluates reflects *all* computed gradients rather than silently
        dropping the last k of them (which made a staleness sweep's final
        metrics fold a dropped-tail effect into the staleness effect).
        Returns a :class:`StepOutcome` describing the drain's traffic
        (its ``loss`` is ignored), or ``None`` when nothing was in flight.
        """
        return None

    # ------------------------------------------------------------------ #
    # Shared timing helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def timed_outcome(
        perf_model,
        batch_size: int,
        loss: float,
        popular_fraction: float | None = None,
    ) -> StepOutcome:
        """Build a :class:`StepOutcome` split into compute vs collective time.

        Uses the :meth:`~repro.baselines.base.ExecutionModel.collective_time`
        hook to carve the dense-gradient synchronisation out of the perf
        model's step time, so every executor reports a comparable
        compute/communication split.
        """
        if perf_model is None:
            return StepOutcome(loss=loss, popular_fraction=popular_fraction)
        step_time = perf_model.step_time(batch_size)
        collective = getattr(perf_model, "collective_time", None)
        comm = min(step_time, collective()) if collective is not None else 0.0
        return StepOutcome(
            loss=loss,
            popular_fraction=popular_fraction,
            compute_time_s=step_time - comm,
            communication_time_s=comm,
        )


def recalibration_points(steps_per_epoch: int, recalibrations_per_epoch: int) -> set[int]:
    """Evenly spaced in-epoch steps at which to re-enter the learning phase."""
    if recalibrations_per_epoch <= 0 or steps_per_epoch <= recalibrations_per_epoch:
        return set()
    stride = steps_per_epoch // (recalibrations_per_epoch + 1)
    return {stride * (i + 1) for i in range(recalibrations_per_epoch)}


class TrainingEngine:
    """The single training loop shared by all functional trainers.

    Args:
        executor: The per-step strategy to drive.
        prefetch: Loader prefetch depth (batches assembled by a background
            thread while the current step trains).  The default of ``None``
            defers to the loader: a loader with no stated preference
            (``prefetch=None``) gets double-buffering (depth 1), one built
            with an explicit depth — including ``prefetch=0`` as a
            synchronous opt-out — keeps it.  Pass an explicit depth here to
            override the loader either way; the trainers' ``train()``
            methods use the default, so wrap the trainer in your own
            ``TrainingEngine`` to control the knob.
        parallel_workers: Convenience override of the executor's
            ``parallel_workers`` knob (thread-pooled replica stepping in
            :class:`~repro.core.distributed.ShardedHotlineTrainer`).
            ``None`` leaves the executor's own setting; setting it on an
            executor without the knob raises.
    """

    def __init__(
        self,
        executor: StepExecutor,
        *,
        prefetch: int | None = None,
        parallel_workers: int | None = None,
    ):
        self.executor = executor
        self.prefetch = prefetch
        if parallel_workers is not None:
            if not hasattr(executor, "parallel_workers"):
                raise ValueError(
                    f"{type(executor).__name__} has no parallel_workers knob"
                )
            if parallel_workers < 1:
                raise ValueError("parallel_workers must be >= 1")
            executor.parallel_workers = parallel_workers

    def _epoch_batches(self, loader: MiniBatchLoader):
        """One epoch's batch iterator, prefetched when the loader supports it.

        An executor exposing ``prepare_batch`` gets it threaded through the
        loader's ``transform`` hook, so the preparation (e.g. next-batch
        µ-batch classification) runs on the prefetch worker thread, under
        the current step.  Loaders without the hook (or without ``epoch``)
        simply skip it — the step recomputes, numerics unchanged.
        """
        epoch = getattr(loader, "epoch", None)
        if epoch is None:
            return iter(loader)
        depth = self.prefetch
        if depth is None:
            loader_depth = getattr(loader, "prefetch", None)
            depth = 1 if loader_depth is None else loader_depth
        transform = getattr(self.executor, "prepare_batch", None)
        if transform is not None:
            # Probe the signature rather than catching TypeError from the
            # call: epoch() draws the shuffle order eagerly, so a failed
            # call-and-retry would consume the RNG twice.
            try:
                accepts = "transform" in inspect.signature(epoch).parameters
            except (TypeError, ValueError):
                accepts = False
            if accepts:
                return epoch(prefetch=depth, transform=transform)
        return epoch(prefetch=depth)

    def train(
        self,
        loader: MiniBatchLoader,
        *,
        epochs: int = 1,
        eval_batch: MiniBatch | None = None,
        eval_every: int = 0,
        recalibrations_per_epoch: int = 0,
    ) -> TrainingResult:
        """Run the full training loop and record a :class:`TrainingResult`."""
        self.executor.bind(loader)
        result = TrainingResult()
        iteration = 0
        for _epoch in range(epochs):
            recal_points = recalibration_points(len(loader), recalibrations_per_epoch)
            for step_in_epoch, batch in enumerate(self._epoch_batches(loader)):
                if step_in_epoch in recal_points:
                    self.executor.recalibrate(loader, seed=iteration)
                outcome = self.executor.run_step(batch)
                result.losses.append(outcome.loss)
                if outcome.popular_fraction is not None:
                    result.popular_fractions.append(outcome.popular_fraction)
                result.compute_time_s += outcome.compute_time_s
                result.communication_time_s += outcome.communication_time_s
                for label, lane_s in outcome.comm_lanes_s:
                    result.comm_lane_s[label] = result.comm_lane_s.get(label, 0.0) + lane_s
                result.simulated_time_s += outcome.step_time_s
                result.cache_hits += outcome.cache_hits
                result.cache_misses += outcome.cache_misses
                result.cache_fill_rows += outcome.cache_fill_rows
                result.stale_rows += outcome.stale_rows
                result.prefetch_time_s += outcome.prefetch_time_s
                result.dense_time_s += outcome.dense_time_s
                result.interaction_time_s += outcome.interaction_time_s
                result.pending_peak_bytes = max(
                    result.pending_peak_bytes, outcome.pending_bytes
                )
                result.tier_hits += outcome.tier_hits
                result.tier_misses += outcome.tier_misses
                result.tier_evictions += outcome.tier_evictions
                if outcome.replica_times_s:
                    if len(result.replica_time_s) < len(outcome.replica_times_s):
                        result.replica_time_s.extend(
                            [0.0]
                            * (len(outcome.replica_times_s) - len(result.replica_time_s))
                        )
                    for i, replica_time in enumerate(outcome.replica_times_s):
                        result.replica_time_s[i] += replica_time
                if outcome.bucket_times_s:
                    if len(result.bucket_comm_s) < len(outcome.bucket_times_s):
                        result.bucket_comm_s.extend(
                            [0.0] * (len(outcome.bucket_times_s) - len(result.bucket_comm_s))
                        )
                    for i, bucket_time in enumerate(outcome.bucket_times_s):
                        result.bucket_comm_s[i] += bucket_time
                iteration += 1
                if eval_batch is not None and eval_every and iteration % eval_every == 0:
                    result.auc_history.append(
                        (iteration, evaluate(self.executor.model, eval_batch)["auc"])
                    )
        # Drain pipelined executors (stale-k deque, deferred sparse
        # write-backs) *before* the final evaluation, so staleness sweeps
        # compare fully-applied models rather than dropped tails.
        drained = self.executor.finalize()
        if drained is not None:
            result.compute_time_s += drained.compute_time_s
            result.communication_time_s += drained.communication_time_s
            for label, lane_s in drained.comm_lanes_s:
                result.comm_lane_s[label] = result.comm_lane_s.get(label, 0.0) + lane_s
            result.simulated_time_s += drained.step_time_s
            result.cache_hits += drained.cache_hits
            result.cache_misses += drained.cache_misses
            result.cache_fill_rows += drained.cache_fill_rows
            result.stale_rows += drained.stale_rows
            result.prefetch_time_s += drained.prefetch_time_s
            result.pending_peak_bytes = max(
                result.pending_peak_bytes, drained.pending_bytes
            )
            result.tier_hits += drained.tier_hits
            result.tier_misses += drained.tier_misses
            result.tier_evictions += drained.tier_evictions
        if eval_batch is not None:
            result.final_metrics = evaluate(self.executor.model, eval_batch)
            result.auc_history.append((iteration, result.final_metrics["auc"]))
        return result
