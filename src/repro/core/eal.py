"""Embedding Access Logger (EAL) — Section V-B of the paper.

The EAL is a cache-like structure that tracks *which* embedding indices are
frequently accessed, not their contents.  Key design points reproduced here:

* a 4 MB multi-banked SRAM holding ~2 million entries, each entry being a
  valid bit, a 2-bit access counter used as the SRRIP re-reference
  prediction value (RRPV), and a 14-bit identifier tag (Figure 14);
* SRRIP replacement: hits reset the RRPV to 0, misses insert at RRPV 1
  ("insertions at RRPV-1"), and victims are entries at the maximum RRPV —
  a cheap approximation of LFU that captures >99 % of the frequently
  accessed embeddings because their access skew exceeds 100x (Figure 15);
* a Feistel-network randomizer scatters (table, index) keys across banks
  and sets to avoid thrashing (Section V-C);
* a multi-banked organisation with an input queue that allows ~60 parallel
  lookups per iteration at 64 banks x 512-entry queue (Figure 16).

An :class:`OracleLFUTracker` (exact least-frequently-used with unbounded
counters) is provided as the comparison point of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lookup_engine import FeistelRandomizer
from repro.hwsim.units import MIB


@dataclass(frozen=True)
class EALConfig:
    """Configuration of the Embedding Access Logger.

    Attributes:
        size_bytes: SRAM capacity (paper default 4 MB).
        bytes_per_entry: Storage per tracked index (valid + RRPV + tag = 17
            bits, rounded to 2 bytes as in the paper's 2M-entry sizing).
        ways: Set associativity used by the model.
        num_banks: Number of SRAM banks for parallel lookups.
        queue_size: Input-queue depth feeding the banks.
        max_rrpv: Maximum RRPV value (2-bit counter -> 3).
        insertion_rrpv: RRPV assigned to newly inserted entries.  Inserting
            with a *distant* re-reference prediction (max_rrpv - 1) lets
            one-off tail accesses churn through without displacing the
            frequently re-referenced hot entries.
    """

    size_bytes: int = 4 * MIB
    bytes_per_entry: int = 2
    ways: int = 16
    num_banks: int = 64
    queue_size: int = 512
    max_rrpv: int = 3
    insertion_rrpv: int = 2

    @property
    def num_entries(self) -> int:
        """Total number of trackable indices."""
        return max(self.ways, self.size_bytes // self.bytes_per_entry)

    @property
    def num_sets(self) -> int:
        """Number of sets in the set-associative organisation."""
        return max(1, self.num_entries // self.ways)


class EmbeddingAccessLogger:
    """SRRIP-based tracker of frequently-accessed embedding indices."""

    def __init__(self, config: EALConfig | None = None, seed: int = 0):
        self.config = config or EALConfig()
        self._randomizer = FeistelRandomizer(seed=seed)
        sets = self.config.num_sets
        ways = self.config.ways
        self._valid = np.zeros((sets, ways), dtype=bool)
        self._rrpv = np.full((sets, ways), self.config.max_rrpv, dtype=np.int8)
        self._keys = np.zeros((sets, ways), dtype=np.uint64)
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Key handling
    # ------------------------------------------------------------------ #
    def _key(self, table: int, index: int) -> int:
        """Pack (table, index) into one 64-bit key."""
        return (int(table) << 40) | int(index)

    def _set_for(self, key: int) -> int:
        """Set index chosen by the Feistel randomizer (avoids thrashing).

        The 64-bit key is folded to 32 bits *including* the table field
        before hashing, so the same row id in different tables lands in
        different sets — otherwise the hot rows of every table would contend
        for the same few sets.
        """
        table = key >> 40
        index = key & ((1 << 40) - 1)
        folded = ((table + 1) * 0x9E3779B1 + index * 0x85EBCA77) & 0xFFFFFFFF
        return self._randomizer.hash(folded) % self.config.num_sets

    # ------------------------------------------------------------------ #
    # Learning-phase access path
    # ------------------------------------------------------------------ #
    def access(self, table: int, index: int) -> bool:
        """Record one access; returns True on a hit (already tracked)."""
        key = self._key(table, index)
        set_idx = self._set_for(key)
        ways = self.config.ways
        valid = self._valid[set_idx]
        keys = self._keys[set_idx]

        for way in range(ways):
            if valid[way] and keys[way] == key:
                self._rrpv[set_idx, way] = 0
                self.hits += 1
                return True

        self.misses += 1
        self._insert(set_idx, key)
        return False

    def access_batch(self, sparse: np.ndarray) -> int:
        """Record every lookup of a (batch, tables, pooling) index array.

        Returns the number of hits.
        """
        hits = 0
        batch, num_tables, pooling = sparse.shape
        for table in range(num_tables):
            for value in sparse[:, table, :].reshape(-1):
                if self.access(table, int(value)):
                    hits += 1
        return hits

    def _insert(self, set_idx: int, key: int) -> None:
        """SRRIP insertion with victim selection at max RRPV."""
        ways = self.config.ways
        valid = self._valid[set_idx]
        rrpv = self._rrpv[set_idx]

        for way in range(ways):
            if not valid[way]:
                self._fill(set_idx, way, key)
                return

        # Age entries until at least one reaches max RRPV, then evict it.
        while True:
            candidates = np.nonzero(rrpv >= self.config.max_rrpv)[0]
            if candidates.size:
                victim = int(candidates[0])
                break
            rrpv += 1
        self.evictions += 1
        self._fill(set_idx, victim, key)

    def _fill(self, set_idx: int, way: int, key: int) -> None:
        self._valid[set_idx, way] = True
        self._keys[set_idx, way] = key
        self._rrpv[set_idx, way] = self.config.insertion_rrpv
        self.insertions += 1

    # ------------------------------------------------------------------ #
    # Acceleration-phase query path
    # ------------------------------------------------------------------ #
    def contains(self, table: int, index: int) -> bool:
        """Whether (table, index) is currently tracked as frequently accessed."""
        key = self._key(table, index)
        set_idx = self._set_for(key)
        valid = self._valid[set_idx]
        keys = self._keys[set_idx]
        for way in range(self.config.ways):
            if valid[way] and keys[way] == key:
                return True
        return False

    def hot_indices(self, num_tables: int) -> list[np.ndarray]:
        """Currently tracked indices, grouped per table and sorted."""
        result: list[list[int]] = [[] for _ in range(num_tables)]
        flat_keys = self._keys[self._valid]
        for key in flat_keys:
            table = int(key) >> 40
            index = int(key) & ((1 << 40) - 1)
            if table < num_tables:
                result[table].append(index)
        return [np.array(sorted(rows), dtype=np.int64) for rows in result]

    @property
    def occupancy(self) -> float:
        """Fraction of entries currently valid."""
        return float(self._valid.mean())

    @property
    def hit_rate(self) -> float:
        """Hit rate over all accesses so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_statistics(self) -> None:
        """Zero the hit/miss/insertion counters (keeps the tracked set)."""
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def clear(self) -> None:
        """Forget everything — used when re-entering the learning phase."""
        self._valid[:] = False
        self._rrpv[:] = self.config.max_rrpv
        self._keys[:] = 0
        self.reset_statistics()


class OracleLFUTracker:
    """Exact least-frequently-used tracker (Figure 15's Oracle baseline).

    Keeps an unbounded per-index counter and reports the top-``capacity``
    indices as frequently accessed.  This is what the EAL approximates; a
    hardware implementation would need 24-bit counters per entry, which the
    paper rejects for area reasons.
    """

    def __init__(self, capacity_entries: int):
        if capacity_entries <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_entries = capacity_entries
        self._counts: dict[tuple[int, int], int] = {}

    def access(self, table: int, index: int) -> None:
        """Record one access."""
        key = (int(table), int(index))
        self._counts[key] = self._counts.get(key, 0) + 1

    def access_batch(self, sparse: np.ndarray) -> None:
        """Record every lookup of a (batch, tables, pooling) index array."""
        batch, num_tables, pooling = sparse.shape
        for table in range(num_tables):
            values, counts = np.unique(sparse[:, table, :].reshape(-1), return_counts=True)
            for value, count in zip(values, counts, strict=True):
                key = (table, int(value))
                self._counts[key] = self._counts.get(key, 0) + int(count)

    def hot_indices(self, num_tables: int) -> list[np.ndarray]:
        """Top-capacity indices by access count, grouped per table."""
        ranked = sorted(self._counts.items(), key=lambda item: item[1], reverse=True)
        top = ranked[: self.capacity_entries]
        result: list[list[int]] = [[] for _ in range(num_tables)]
        for (table, index), _count in top:
            if table < num_tables:
                result[table].append(index)
        return [np.array(sorted(rows), dtype=np.int64) for rows in result]

    def contains(self, table: int, index: int) -> bool:
        """Whether (table, index) is in the current top-capacity set.

        A scalar query against the O(capacity) hot list; batch callers
        should build a :class:`~repro.core.hotset.HotSetIndex` from
        :meth:`hot_indices` instead of probing one id at a time.
        """
        hot = self.hot_indices(table + 1)
        if table >= len(hot):
            return False
        return bool(np.any(hot[table] == int(index)))


# ---------------------------------------------------------------------- #
# Bank-parallelism design space (Figure 16)
# ---------------------------------------------------------------------- #
def expected_parallel_requests(queue_size: int, num_banks: int) -> float:
    """Expected requests issued per iteration for a given queue and bank count.

    With a queue of ``queue_size`` pending lookups mapped uniformly onto
    ``num_banks`` banks, at most one request per bank issues per iteration,
    so the expectation is the expected number of distinct banks hit:
    ``n * (1 - (1 - 1/n)^m)``.
    """
    if queue_size <= 0 or num_banks <= 0:
        raise ValueError("queue_size and num_banks must be positive")
    n = float(num_banks)
    m = float(queue_size)
    return n * (1.0 - (1.0 - 1.0 / n) ** m)


def simulate_parallel_requests(
    queue_size: int, num_banks: int, trials: int = 200, seed: int = 0
) -> float:
    """Monte-Carlo estimate of requests issued per iteration.

    Accounts for the slight loss relative to the analytic expectation caused
    by hashed (rather than perfectly uniform) bank mappings, which is why the
    paper reports ~60 requests for 64 banks x 512 queue rather than ~64.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = np.random.default_rng(seed)
    randomizer = FeistelRandomizer(seed=seed)
    issued_total = 0
    for _ in range(trials):
        keys = rng.integers(0, 2**32, size=queue_size, dtype=np.uint64)
        banks = np.array([randomizer.hash(int(k)) % num_banks for k in keys])
        issued_total += len(np.unique(banks))
    return issued_total / trials
