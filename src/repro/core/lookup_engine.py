"""The Lookup Engine — Section V-C and Figure 17 of the paper.

The Lookup Engine is a parallel 2-D lookup network: one dimension
parallelises across the embedding tables touched by a single input (up to
26 distinct tables in the Criteo models), the other across the inputs of a
mini-batch.  During the learning phase it feeds accessed indices to the
EAL; during the acceleration phase it classifies each input as popular
(every index tracked by the EAL) or non-popular.

Each engine contains registers for the table number and index, and a
*randomizer* — a low-latency Feistel network (Luby-Rackoff construction) —
that hashes the (table, index) tuple to scatter values across the EAL and
prevent thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hotset import HotSetIndex, as_hot_set_index


class FeistelRandomizer:
    """A small balanced Feistel network over 32-bit values.

    Four rounds of a keyed round function give a cheap pseudo-random
    permutation, which is all the EAL needs to spread keys across banks.
    """

    def __init__(self, seed: int = 0, rounds: int = 4):
        if rounds < 1:
            raise ValueError("at least one Feistel round is required")
        rng = np.random.default_rng(seed)
        self.rounds = rounds
        self._round_keys = [int(k) for k in rng.integers(0, 2**16, size=rounds)]

    @staticmethod
    def _round_function(value: int, key: int) -> int:
        mixed = (value * 0x9E37 + key) & 0xFFFF
        mixed ^= mixed >> 7
        mixed = (mixed * 0x85EB) & 0xFFFF
        return mixed ^ (mixed >> 9)

    def hash(self, value: int) -> int:
        """Permute a value (used modulo the bank/set count by callers)."""
        value = int(value) & 0xFFFFFFFF
        left = (value >> 16) & 0xFFFF
        right = value & 0xFFFF
        for key in self._round_keys:
            left, right = right, left ^ self._round_function(right, key)
        return (left << 16) | right

    def inverse(self, value: int) -> int:
        """Invert the permutation (Feistel networks are bijective)."""
        value = int(value) & 0xFFFFFFFF
        left = (value >> 16) & 0xFFFF
        right = value & 0xFFFF
        for key in reversed(self._round_keys):
            left, right = right ^ self._round_function(left, key), left
        return (left << 16) | right


@dataclass(frozen=True)
class LookupEngine:
    """One lane of the lookup network.

    Attributes:
        engine_id: Position of the engine in the array.
        lookups_per_cycle: Index comparisons the engine performs per cycle.
    """

    engine_id: int
    lookups_per_cycle: int = 1

    def cycles_for(self, num_lookups: int) -> int:
        """Cycles to test ``num_lookups`` indices against the EAL."""
        if num_lookups <= 0:
            return 0
        return -(-num_lookups // self.lookups_per_cycle)  # ceil division


class LookupEngineArray:
    """The array of (by default 64) lookup engines.

    The array provides two services:

    * **classification** — given a mini-batch's sparse indices and an EAL
      (or any object with a ``contains(table, index)`` method), produce the
      popular/non-popular input mask;
    * **cycle accounting** — how many accelerator cycles the classification
      takes, given the 2-D parallelism (tables within an input x inputs
      within the mini-batch) and the engine-count limit.
    """

    def __init__(self, num_engines: int = 64):
        if num_engines <= 0:
            raise ValueError("the array needs at least one engine")
        self.num_engines = num_engines
        self.engines = [LookupEngine(i) for i in range(num_engines)]

    def classify(self, sparse: np.ndarray, tracker) -> np.ndarray:
        """Popular-input mask for a (batch, tables, pooling) index array.

        An input is popular only if *every* one of its lookups is tracked.
        """
        batch, num_tables, pooling = sparse.shape
        mask = np.ones(batch, dtype=bool)
        for i in range(batch):
            popular = True
            for table in range(num_tables):
                for index in sparse[i, table, :]:
                    if not tracker.contains(table, int(index)):
                        popular = False
                        break
                if not popular:
                    break
            mask[i] = popular
        return mask

    def classify_with_hot_sets(
        self, sparse: np.ndarray, hot_sets: list[np.ndarray] | HotSetIndex
    ) -> np.ndarray:
        """Vectorised classification against explicit per-table hot sets.

        Functionally identical to :meth:`classify` when the hot sets are the
        EAL's resident indices; used on large batches where the per-index
        query path would be slow in Python.  ``hot_sets`` may be per-table
        arrays or a prebuilt :class:`~repro.core.hotset.HotSetIndex`.
        """
        _batch, num_tables, _pooling = sparse.shape
        index = as_hot_set_index(hot_sets)
        if index.num_tables != num_tables:
            raise ValueError("one hot set per table is required")
        return index.classify(sparse)

    def segregation_cycles(self, batch_size: int, lookups_per_input: int) -> int:
        """Accelerator cycles to classify one mini-batch.

        The 2-D network processes up to ``num_engines`` lookups per cycle;
        every lookup of every input must be checked once.
        """
        total_lookups = batch_size * lookups_per_input
        if total_lookups <= 0:
            return 0
        return -(-total_lookups // self.num_engines)  # ceil division

    def throughput_per_input(self, distinct_tables: int) -> int:
        """Parallel lookups achieved for one input touching ``distinct_tables``.

        Matches the paper's claim of 26x throughput per input when an input
        requires 26 distinct embedding tables (bounded by the engine count).
        """
        return min(distinct_tables, self.num_engines)
