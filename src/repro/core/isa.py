"""The Hotline accelerator's instruction set — Table I of the paper.

| Instruction    | Operand 1      | Operand 2     | Description                       |
|----------------|----------------|---------------|-----------------------------------|
| dmard(op1,op2) | mem start idx  | # bytes       | DMA read request                  |
| dmawr(op1,op2) | mem start idx  | # bytes       | DMA write request                 |
| v_add(op1,op2) | input vector   | emb vec buff  | element-wise addition             |
| v_mul(op1,op2) | input vector   | emb vec buff  | element-wise dot product          |
| s_wr(op1,op2)  | reg idx        | base addr     | write embedding base address      |
| gpu_rd(op1,op2)| gpu device id  | sparse idx    | read embedding idx from GPU device|

The :class:`InstructionDriver` builds instruction streams for a µ-batch and
the :class:`AcceleratorInterpreter` executes them functionally against
in-memory embedding stores, which is how the unit tests validate that the
gather/reduce path produces exactly the vectors the model expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.hotset import HotSetIndex


class Opcode(Enum):
    """The six operations the accelerator driver can issue."""

    DMA_READ = "dmard"
    DMA_WRITE = "dmawr"
    VECTOR_ADD = "v_add"
    VECTOR_MUL = "v_mul"
    SCALAR_WRITE = "s_wr"
    GPU_READ = "gpu_rd"


@dataclass(frozen=True)
class Instruction:
    """One accelerator instruction.

    Attributes:
        opcode: Operation.
        operand1: First operand (memory start index, register id, or GPU id).
        operand2: Second operand (#bytes, buffer id, base address, or row).
        table: Optional embedding-table annotation used by the functional
            interpreter (hardware encodes this in the address).
    """

    opcode: Opcode
    operand1: int
    operand2: int
    table: int = -1


class InstructionDriver:
    """Builds instruction streams for embedding gather + reduce operations."""

    def __init__(self, row_bytes: int):
        if row_bytes <= 0:
            raise ValueError("row_bytes must be positive")
        self.row_bytes = row_bytes

    def set_base_address(self, register: int, base_address: int) -> Instruction:
        """``s_wr``: record a table's base address in an address register."""
        return Instruction(Opcode.SCALAR_WRITE, operand1=register, operand2=base_address)

    def gather_row_from_cpu(self, table: int, row: int, base_address: int = 0) -> Instruction:
        """``dmard``: fetch one embedding row from CPU DRAM."""
        return Instruction(
            Opcode.DMA_READ,
            operand1=base_address + row * self.row_bytes,
            operand2=self.row_bytes,
            table=table,
        )

    def gather_row_from_gpu(self, gpu_id: int, table: int, row: int) -> Instruction:
        """``gpu_rd``: fetch one popular embedding row from a GPU replica."""
        return Instruction(Opcode.GPU_READ, operand1=gpu_id, operand2=row, table=table)

    def reduce_add(self, input_vector: int, buffer_slot: int) -> Instruction:
        """``v_add``: accumulate a fetched row into the embedding vector buffer."""
        return Instruction(Opcode.VECTOR_ADD, operand1=input_vector, operand2=buffer_slot)

    def writeback_row_to_cpu(self, table: int, row: int, base_address: int = 0) -> Instruction:
        """``dmawr``: write an updated non-popular row back to CPU DRAM."""
        return Instruction(
            Opcode.DMA_WRITE,
            operand1=base_address + row * self.row_bytes,
            operand2=self.row_bytes,
            table=table,
        )

    def pooled_gather_program(
        self,
        sample_indices: list[np.ndarray],
        table: int,
        hot_rows: np.ndarray,
        gpu_id: int = 0,
    ) -> list[Instruction]:
        """Instruction stream that pools one table's rows for each sample.

        For each sample the program gathers every looked-up row (from the
        GPU if popular, from CPU DRAM otherwise) and accumulates it into the
        sample's slot of the embedding vector buffer.
        """
        index = HotSetIndex.from_hot_sets([hot_rows])
        program: list[Instruction] = []
        for slot, rows in enumerate(sample_indices):
            hot_mask = index.contains(0, np.asarray(rows, dtype=np.int64))
            for row, is_hot in zip(rows, hot_mask, strict=True):
                row = int(row)
                if is_hot:
                    program.append(self.gather_row_from_gpu(gpu_id, table, row))
                else:
                    program.append(self.gather_row_from_cpu(table, row))
                program.append(self.reduce_add(input_vector=row, buffer_slot=slot))
        return program


class AcceleratorInterpreter:
    """Functional executor of instruction streams against embedding stores.

    ``cpu_tables`` and ``gpu_tables`` map table id -> weight matrix.  The GPU
    store may contain only the popular rows (a replica); reads of rows not
    present there raise, which is exactly the invariant the dispatcher must
    maintain.
    """

    def __init__(
        self,
        cpu_tables: dict[int, np.ndarray],
        gpu_tables: dict[int, np.ndarray] | None = None,
        row_bytes: int | None = None,
    ):
        self.cpu_tables = cpu_tables
        self.gpu_tables = gpu_tables or {}
        first = next(iter(cpu_tables.values()))
        self.dim = first.shape[1]
        self.row_bytes = row_bytes or self.dim * first.itemsize
        self.base_registers: dict[int, int] = {}
        self.last_fetched: np.ndarray | None = None

    def execute(self, program: list[Instruction], num_buffer_slots: int) -> np.ndarray:
        """Run a program and return the embedding vector buffer contents."""
        buffer = np.zeros((num_buffer_slots, self.dim), dtype=np.float64)
        for instruction in program:
            self._execute_one(instruction, buffer)
        return buffer

    def _execute_one(self, instruction: Instruction, buffer: np.ndarray) -> None:
        opcode = instruction.opcode
        if opcode == Opcode.SCALAR_WRITE:
            self.base_registers[instruction.operand1] = instruction.operand2
        elif opcode == Opcode.DMA_READ:
            row = instruction.operand1 // self.row_bytes
            table = instruction.table
            self.last_fetched = self.cpu_tables[table][row].astype(np.float64)
        elif opcode == Opcode.GPU_READ:
            table = instruction.table
            row = instruction.operand2
            gpu_table = self.gpu_tables.get(table)
            if gpu_table is None or row >= gpu_table.shape[0]:
                raise KeyError(
                    f"gpu_rd of table {table} row {row}: row is not replicated on the GPU"
                )
            self.last_fetched = gpu_table[row].astype(np.float64)
        elif opcode == Opcode.VECTOR_ADD:
            if self.last_fetched is None:
                raise RuntimeError("v_add issued before any row was fetched")
            buffer[instruction.operand2] += self.last_fetched
        elif opcode == Opcode.VECTOR_MUL:
            if self.last_fetched is None:
                raise RuntimeError("v_mul issued before any row was fetched")
            buffer[instruction.operand2] *= self.last_fetched
        elif opcode == Opcode.DMA_WRITE:
            row = instruction.operand1 // self.row_bytes
            table = instruction.table
            if self.last_fetched is None:
                raise RuntimeError("dmawr issued before any row was fetched")
            self.cpu_tables[table][row] = self.last_fetched
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unknown opcode {opcode}")
