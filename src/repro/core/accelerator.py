"""The assembled Hotline accelerator device model.

Combines the EAL, Lookup Engine array, Data Dispatcher, Reducer, and ISA
driver into a single device with the specification of Table IV:

    Frequency 350 MHz, EAL 4 MB, 64 lookup engines, 16 reducer ALUs,
    2.5 MB input eDRAM, 0.5 kB embedding vector buffer,
    7.01 mm^2 total area, 132 mJ average energy.

The timing methods answer the two questions the pipeline scheduler needs:

* how long does it take to *segregate* a mini-batch into µ-batches?
  (cycle-counted on the lookup-engine array — this is what replaces the slow
  CPU-based segregation of Figures 7/8);
* how long does it take to *gather* the working parameters of the
  non-popular µ-batch from CPU DRAM + GPU HBM over PCIe/DMA?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dispatcher import AddressRegisters, DataDispatcher, InputEDRAM
from repro.core.eal import EALConfig, EmbeddingAccessLogger
from repro.core.lookup_engine import LookupEngineArray
from repro.core.reducer import Reducer
from repro.hwsim.dma import DMAEngine
from repro.hwsim.energy import HOTLINE_ENERGY_MODEL, AcceleratorEnergyModel
from repro.hwsim.interconnect import PCIE_GEN3_X16, Link
from repro.hwsim.units import MIB


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static accelerator parameters (Table IV)."""

    frequency_hz: float = 350e6
    eal_size_bytes: int = 4 * MIB
    num_lookup_engines: int = 64
    num_reducer_alus: int = 16
    input_edram_bytes: int = int(2.5 * MIB)
    embedding_vector_buffer_bytes: int = 512
    total_area_mm2: float = 7.01
    average_energy_joules: float = 0.132

    @property
    def cycle_time_s(self) -> float:
        """Duration of one accelerator cycle."""
        return 1.0 / self.frequency_hz


HOTLINE_ACCELERATOR_SPEC = AcceleratorSpec()


class HotlineAccelerator:
    """Behavioural + timing model of the Hotline accelerator."""

    def __init__(
        self,
        spec: AcceleratorSpec | None = None,
        *,
        row_bytes: int = 64,
        pcie: Link = PCIE_GEN3_X16,
        eal_config: EALConfig | None = None,
        energy_model: AcceleratorEnergyModel = HOTLINE_ENERGY_MODEL,
        seed: int = 0,
    ):
        self.spec = spec or HOTLINE_ACCELERATOR_SPEC
        self.row_bytes = row_bytes
        self.eal = EmbeddingAccessLogger(
            eal_config or EALConfig(size_bytes=self.spec.eal_size_bytes), seed=seed
        )
        self.lookup_engines = LookupEngineArray(self.spec.num_lookup_engines)
        self.reducer = Reducer(self.spec.num_reducer_alus)
        self.address_registers = AddressRegisters()
        self.edram = InputEDRAM(size_bytes=self.spec.input_edram_bytes)
        self.dispatcher = DataDispatcher(self.address_registers, self.edram, row_bytes=row_bytes)
        self.dma = DMAEngine(link=pcie)
        self.energy_model = energy_model
        self.pcie = pcie

    # ------------------------------------------------------------------ #
    # Learning phase
    # ------------------------------------------------------------------ #
    def learn_from_batch(self, sparse: np.ndarray) -> int:
        """Feed one sampled mini-batch's accesses into the EAL.

        Returns the number of EAL hits (used to monitor convergence of the
        hot set during the learning phase).
        """
        return self.eal.access_batch(sparse)

    def hot_sets(self, num_tables: int) -> list[np.ndarray]:
        """The currently tracked frequently-accessed rows per table."""
        return self.eal.hot_indices(num_tables)

    def recalibrate(self) -> None:
        """Drop the tracked set before re-entering the learning phase.

        The paper re-enters the learning phase periodically (twice per epoch
        in the evaluation) to follow evolving access skews (Figure 9).
        """
        self.eal.clear()

    # ------------------------------------------------------------------ #
    # Acceleration phase timing
    # ------------------------------------------------------------------ #
    def segregation_time(self, batch_size: int, lookups_per_input: int) -> float:
        """Seconds to classify a mini-batch into popular/non-popular µ-batches."""
        cycles = self.lookup_engines.segregation_cycles(batch_size, lookups_per_input)
        return cycles * self.spec.cycle_time_s

    def gather_time(
        self,
        num_cold_rows: int,
        num_hot_rows: int,
        *,
        pooling: int = 1,
        dim: int | None = None,
    ) -> float:
        """Seconds to gather a non-popular µ-batch's working parameters.

        Cold rows come from CPU DRAM over DMA/PCIe; hot rows are read from a
        GPU replica over PCIe (round-robin across GPUs to balance HBM load).
        The reducer pools rows as they arrive, and its cycles overlap with
        the transfers, so the reduce cost only shows up if it exceeds the
        transfer time.
        """
        if num_cold_rows <= 0 and num_hot_rows <= 0:
            return 0.0
        dim = dim or (self.row_bytes // 4)
        cold_bytes = num_cold_rows * self.row_bytes
        hot_bytes = num_hot_rows * self.row_bytes
        dma_time = self.dma.read_time(cold_bytes, scattered=True)
        gpu_read_time = self.pcie.transfer_time(hot_bytes)
        reduce_cycles = self.reducer.cycles_for(num_cold_rows + num_hot_rows, dim)
        reduce_time = reduce_cycles * self.spec.cycle_time_s
        transfer_time = dma_time + gpu_read_time
        return max(transfer_time, reduce_time)

    def scatter_time(self, num_rows: int, num_gpus: int) -> float:
        """Seconds to push the reduced embedding vectors to the GPUs."""
        total_bytes = num_rows * self.row_bytes
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        return self.pcie.transfer_time(total_bytes / num_gpus) * num_gpus

    def writeback_time(self, num_cold_rows: int) -> float:
        """Seconds to DMA updated non-popular rows back to CPU DRAM."""
        return self.dma.write_time(num_cold_rows * self.row_bytes, scattered=True)

    # ------------------------------------------------------------------ #
    # Physical characteristics
    # ------------------------------------------------------------------ #
    @property
    def area_mm2(self) -> float:
        """Total accelerator silicon area."""
        return self.energy_model.total_area_mm2

    @property
    def power_w(self) -> float:
        """Average accelerator power."""
        return self.energy_model.total_power_w

    def energy_joules(self, runtime_s: float) -> float:
        """Energy consumed over a period of activity."""
        return self.energy_model.energy_joules(runtime_s)
