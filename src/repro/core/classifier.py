"""Mini-batch fragmentation into popular and non-popular µ-batches.

This is the data-level operation at the heart of Hotline (Section III,
Challenge 1): a mini-batch M is split into a popular µ-batch O (inputs whose
every lookup hits a frequently-accessed embedding) and a non-popular
µ-batch X (everything else), with O ∪ X = M and O ∩ X = ∅ (Eq. 3).
Because the BCE loss is a sum over inputs, training on O and X separately
and accumulating the gradients is numerically identical to training on M
(Eq. 5) — a property the test-suite verifies bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.hotset import HotSetIndex, as_hot_set_index
from repro.data.batch import MiniBatch


class MicroBatches:
    """The two µ-batches produced from one mini-batch.

    Built either *eagerly* (both µ-batches materialised up front — the
    historical behaviour) or *lazily* from the source batch and the mask
    (``split_minibatch(..., materialize=False)``).  The lazy form is what
    the fused execution path uses: it trains through the original batch
    plus :meth:`segment_indices`, so the µ-batch copies (dense, sparse,
    and label selections, twice per step) are never built unless a caller
    actually reads :attr:`popular`/:attr:`non_popular` — at which point
    they materialise on demand, identical to the eager ones.

    Attributes:
        popular_mask: Boolean mask over the original mini-batch.
    """

    def __init__(
        self,
        popular: MiniBatch | None = None,
        non_popular: MiniBatch | None = None,
        popular_mask: np.ndarray | None = None,
        *,
        source: MiniBatch | None = None,
    ):
        if popular_mask is None:
            raise ValueError("popular_mask is required")
        self.popular_mask = np.asarray(popular_mask, dtype=bool)
        if source is None and (popular is None or non_popular is None):
            raise ValueError("provide both µ-batches or a source batch")
        self._popular = popular
        self._non_popular = non_popular
        self._source = source

    @property
    def popular(self) -> MiniBatch:
        """Inputs touching only frequently-accessed rows."""
        if self._popular is None:
            self._popular = self._source.select(np.nonzero(self.popular_mask)[0])
        return self._popular

    @property
    def non_popular(self) -> MiniBatch:
        """Inputs touching at least one non-frequently-accessed row."""
        if self._non_popular is None:
            self._non_popular = self._source.select(np.nonzero(~self.popular_mask)[0])
        return self._non_popular

    @property
    def popular_count(self) -> int:
        """Number of popular inputs (mask popcount — never materialises)."""
        return int(np.count_nonzero(self.popular_mask))

    @property
    def popular_fraction(self) -> float:
        """Fraction of inputs classified popular."""
        total = self.popular_mask.size
        return self.popular_count / total if total else 0.0

    @property
    def sizes(self) -> tuple[int, int]:
        """(popular size, non-popular size)."""
        popular = self.popular_count
        return popular, int(self.popular_mask.size) - popular

    def segments(self) -> tuple[MiniBatch, ...]:
        """The non-empty µ-batches in accumulation order (popular first)."""
        return tuple(
            micro for micro in (self.popular, self.non_popular) if micro.size
        )

    def segment_indices(self) -> tuple[np.ndarray, ...]:
        """Sample-index arrays of the non-empty µ-batches (popular first).

        The ascending index arrays partition the original mini-batch
        (Eq. 3) and are what the fused execution path trains through one
        embedding gather/scatter pass
        (:meth:`~repro.models.dlrm.DLRM.fused_loss_and_gradients`); their
        order matches :meth:`segments`, which is what keeps the fused
        update bit-identical to the sequential loop.
        """
        mask = np.asarray(self.popular_mask, dtype=bool)
        candidates = (np.nonzero(mask)[0], np.nonzero(~mask)[0])
        return tuple(idx for idx in candidates if idx.size)


def split_minibatch(
    batch: MiniBatch,
    hot_sets: list[np.ndarray] | HotSetIndex,
    *,
    materialize: bool = True,
    mask: np.ndarray | None = None,
) -> MicroBatches:
    """Fragment ``batch`` into popular / non-popular µ-batches.

    Args:
        batch: The mini-batch to fragment.
        hot_sets: Per-table arrays of frequently-accessed row ids (from the
            EAL or an offline profiler), or a prebuilt
            :class:`~repro.core.hotset.HotSetIndex` over them.  The hot path
            passes the prebuilt index so each step performs one fancy-index
            per table instead of an ``np.isin`` set scan.
        materialize: Build the two µ-batch copies eagerly (default).  The
            fused execution path passes ``False`` — it trains through the
            original batch and the classification mask, so the copies are
            only built if something actually reads them.
        mask: Precomputed popular-input mask for ``batch``.  The prefetch
            overlap path classifies batch N+1 on the loader thread while
            batch N's optimizer update runs, then passes the mask here to
            skip the bitmap pass entirely; ``classify`` is pure, so a valid
            precomputed mask is bit-identical to computing it in place.
            The caller is responsible for discarding masks computed against
            since-mutated hot sets (see
            :attr:`~repro.core.hotset.HotSetIndex.version`).

    Returns:
        A :class:`MicroBatches` whose two µ-batches partition the input.
    """
    index = as_hot_set_index(hot_sets)
    if index.num_tables != batch.num_tables:
        raise ValueError(
            f"expected {batch.num_tables} hot sets (one per table), got {index.num_tables}"
        )
    if mask is None:
        mask = index.classify(batch.sparse)
    else:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (batch.size,):
            raise ValueError(
                f"precomputed mask has shape {mask.shape}, expected ({batch.size},)"
            )
    if not materialize:
        return MicroBatches(popular_mask=mask, source=batch)
    popular, non_popular = batch.split(mask)
    return MicroBatches(popular=popular, non_popular=non_popular, popular_mask=mask)
