"""Mini-batch fragmentation into popular and non-popular µ-batches.

This is the data-level operation at the heart of Hotline (Section III,
Challenge 1): a mini-batch M is split into a popular µ-batch O (inputs whose
every lookup hits a frequently-accessed embedding) and a non-popular
µ-batch X (everything else), with O ∪ X = M and O ∩ X = ∅ (Eq. 3).
Because the BCE loss is a sum over inputs, training on O and X separately
and accumulating the gradients is numerically identical to training on M
(Eq. 5) — a property the test-suite verifies bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hotset import HotSetIndex, as_hot_set_index
from repro.data.batch import MiniBatch


@dataclass
class MicroBatches:
    """The two µ-batches produced from one mini-batch.

    Attributes:
        popular: Inputs touching only frequently-accessed rows.
        non_popular: Inputs touching at least one non-frequently-accessed row.
        popular_mask: Boolean mask over the original mini-batch.
    """

    popular: MiniBatch
    non_popular: MiniBatch
    popular_mask: np.ndarray

    @property
    def popular_fraction(self) -> float:
        """Fraction of inputs classified popular."""
        total = self.popular.size + self.non_popular.size
        return self.popular.size / total if total else 0.0

    @property
    def sizes(self) -> tuple[int, int]:
        """(popular size, non-popular size)."""
        return self.popular.size, self.non_popular.size


def split_minibatch(
    batch: MiniBatch, hot_sets: list[np.ndarray] | HotSetIndex
) -> MicroBatches:
    """Fragment ``batch`` into popular / non-popular µ-batches.

    Args:
        batch: The mini-batch to fragment.
        hot_sets: Per-table arrays of frequently-accessed row ids (from the
            EAL or an offline profiler), or a prebuilt
            :class:`~repro.core.hotset.HotSetIndex` over them.  The hot path
            passes the prebuilt index so each step performs one fancy-index
            per table instead of an ``np.isin`` set scan.

    Returns:
        A :class:`MicroBatches` whose two µ-batches partition the input.
    """
    index = as_hot_set_index(hot_sets)
    if index.num_tables != batch.num_tables:
        raise ValueError(
            f"expected {batch.num_tables} hot sets (one per table), got {index.num_tables}"
        )
    mask = index.classify(batch.sparse)
    popular, non_popular = batch.split(mask)
    return MicroBatches(popular=popular, non_popular=non_popular, popular_mask=mask)
