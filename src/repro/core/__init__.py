"""Hotline core: the accelerator and the heterogeneous training pipeline.

This package implements the paper's contribution:

* :mod:`repro.core.eal` — the Embedding Access Logger, a 4 MB multi-banked
  SRAM cache with SRRIP replacement that tracks frequently-accessed
  embedding indices online (Section V-B, Figures 14-16).
* :mod:`repro.core.lookup_engine` — the parallel 2-D lookup network with a
  Feistel-network randomizer that classifies inputs as popular or
  non-popular (Section V-C, Figure 17).
* :mod:`repro.core.dispatcher` — the Data Dispatcher: address registers,
  memory controller, input classifier, and input eDRAM (Section V-A).
* :mod:`repro.core.reducer` — sparse-length-sum pooling ALU array
  (Section V-D).
* :mod:`repro.core.isa` — the accelerator's six-instruction ISA and driver
  (Section V-E, Table I).
* :mod:`repro.core.classifier` / :mod:`repro.core.placement` — µ-batch
  fragmentation and the access-aware embedding layout.
* :mod:`repro.core.accelerator` — the assembled Hotline accelerator device
  model with Table IV specs, segregation-cycle and area/energy models.
* :mod:`repro.core.scheduler` — the layout-aware pipeline scheduler that
  overlaps non-popular parameter gathering with popular µ-batch execution
  (Figure 12).
* :mod:`repro.core.pipeline` — the end-to-end Hotline trainer (learning
  phase + acceleration phase) producing both functional training results
  and simulated wall-clock time.
"""

from repro.core.hotset import HotSetIndex, as_hot_set_index
from repro.core.eal import (
    EALConfig,
    EmbeddingAccessLogger,
    OracleLFUTracker,
    expected_parallel_requests,
    simulate_parallel_requests,
)
from repro.core.lookup_engine import FeistelRandomizer, LookupEngine, LookupEngineArray
from repro.core.dispatcher import AddressRegisters, DataDispatcher, InputEDRAM
from repro.core.reducer import Reducer
from repro.core.isa import Opcode, Instruction, InstructionDriver, AcceleratorInterpreter
from repro.core.classifier import MicroBatches, split_minibatch
from repro.core.placement import EmbeddingPlacement
from repro.core.accelerator import AcceleratorSpec, HotlineAccelerator, HOTLINE_ACCELERATOR_SPEC
from repro.core.scheduler import HotlineStepPlan, HotlineScheduler
from repro.core.pipeline import HotlineTrainer, TrainingResult

__all__ = [
    "HotSetIndex",
    "as_hot_set_index",
    "EALConfig",
    "EmbeddingAccessLogger",
    "OracleLFUTracker",
    "expected_parallel_requests",
    "simulate_parallel_requests",
    "FeistelRandomizer",
    "LookupEngine",
    "LookupEngineArray",
    "AddressRegisters",
    "DataDispatcher",
    "InputEDRAM",
    "Reducer",
    "Opcode",
    "Instruction",
    "InstructionDriver",
    "AcceleratorInterpreter",
    "MicroBatches",
    "split_minibatch",
    "EmbeddingPlacement",
    "AcceleratorSpec",
    "HotlineAccelerator",
    "HOTLINE_ACCELERATOR_SPEC",
    "HotlineStepPlan",
    "HotlineScheduler",
    "HotlineTrainer",
    "TrainingResult",
]
