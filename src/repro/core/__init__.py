"""Hotline core: the accelerator and the heterogeneous training pipeline.

This package implements the paper's contribution:

* :mod:`repro.core.eal` — the Embedding Access Logger, a 4 MB multi-banked
  SRAM cache with SRRIP replacement that tracks frequently-accessed
  embedding indices online (Section V-B, Figures 14-16).
* :mod:`repro.core.lookup_engine` — the parallel 2-D lookup network with a
  Feistel-network randomizer that classifies inputs as popular or
  non-popular (Section V-C, Figure 17).
* :mod:`repro.core.dispatcher` — the Data Dispatcher: address registers,
  memory controller, input classifier, and input eDRAM (Section V-A).
* :mod:`repro.core.reducer` — sparse-length-sum pooling ALU array
  (Section V-D).
* :mod:`repro.core.isa` — the accelerator's six-instruction ISA and driver
  (Section V-E, Table I).
* :mod:`repro.core.classifier` / :mod:`repro.core.placement` — µ-batch
  fragmentation and the access-aware embedding layout.
* :mod:`repro.core.accelerator` — the assembled Hotline accelerator device
  model with Table IV specs, segregation-cycle and area/energy models.
* :mod:`repro.core.scheduler` — the layout-aware pipeline scheduler that
  overlaps non-popular parameter gathering with popular µ-batch execution
  (Figure 12).
* :mod:`repro.core.engine` — the pluggable training engine: one train loop
  (epochs, eval cadence, recalibration schedule, prefetching, result
  recording) shared by every functional trainer via step executors.
* :mod:`repro.core.pipeline` — the single-replica executors: the baseline
  :class:`~repro.core.pipeline.ReferenceTrainer` and the Hotline
  :class:`~repro.core.pipeline.HotlineTrainer` (learning phase +
  acceleration phase).
* :mod:`repro.core.distributed` — true multi-replica data/model-parallel
  training: :class:`~repro.core.distributed.ShardedHotlineTrainer` trains
  K genuinely separate replicas synchronised through a bucketed dense
  all-reduce (:class:`~repro.core.reducer.GradientBucketReducer`, with
  ``sync``/``overlap``/``stale-<k>`` modes) and a deterministic sparse
  exchange, optionally with row-partitioned embedding tables
  (:class:`~repro.core.placement.PartitionedEmbeddingPlacement`).  The
  PR 2 shared-replica path survives as
  :class:`~repro.core.distributed.MergedGradientShardedTrainer`, the
  bit-parity reference of the replica test harness.
* :mod:`repro.core.lookahead` — the BagPipe-style bounded-staleness
  embedding pipeline: :class:`~repro.core.lookahead.CachedEmbeddingPipeline`
  walks the loader's eager epoch order a window ahead, prefetches upcoming
  rows into a coherent per-replica cache (HotSetIndex bitmaps), and defers
  sparse write-backs until a row leaves the window or hits the staleness
  bound.
"""

from repro.core.accelerator import (
    HOTLINE_ACCELERATOR_SPEC,
    AcceleratorSpec,
    HotlineAccelerator,
)
from repro.core.classifier import MicroBatches, split_minibatch
from repro.core.dispatcher import AddressRegisters, DataDispatcher, InputEDRAM
from repro.core.distributed import (
    MergedGradientShardedTrainer,
    ShardedHotlineTrainer,
    ShardReplica,
)
from repro.core.eal import (
    EALConfig,
    EmbeddingAccessLogger,
    OracleLFUTracker,
    expected_parallel_requests,
    simulate_parallel_requests,
)
from repro.core.engine import (
    StepExecutor,
    StepOutcome,
    TrainingEngine,
    TrainingResult,
    evaluate,
    recalibration_points,
)
from repro.core.hotset import HotSetIndex, as_hot_set_index
from repro.core.isa import AcceleratorInterpreter, Instruction, InstructionDriver, Opcode
from repro.core.lookahead import (
    CachedEmbeddingPipeline,
    LookaheadStats,
    epoch_row_stream,
)
from repro.core.lookup_engine import FeistelRandomizer, LookupEngine, LookupEngineArray
from repro.core.pipeline import HotlineTrainer, ReferenceTrainer
from repro.core.placement import EmbeddingPlacement, PartitionedEmbeddingPlacement
from repro.core.reducer import (
    BucketSchedule,
    GradientBucketReducer,
    Reducer,
    SparseGradientExchange,
)
from repro.core.scheduler import HotlineScheduler, HotlineStepPlan

__all__ = [
    "HotSetIndex",
    "as_hot_set_index",
    "EALConfig",
    "EmbeddingAccessLogger",
    "OracleLFUTracker",
    "expected_parallel_requests",
    "simulate_parallel_requests",
    "FeistelRandomizer",
    "LookupEngine",
    "LookupEngineArray",
    "AddressRegisters",
    "DataDispatcher",
    "InputEDRAM",
    "Reducer",
    "Opcode",
    "Instruction",
    "InstructionDriver",
    "AcceleratorInterpreter",
    "MicroBatches",
    "split_minibatch",
    "EmbeddingPlacement",
    "PartitionedEmbeddingPlacement",
    "BucketSchedule",
    "GradientBucketReducer",
    "SparseGradientExchange",
    "AcceleratorSpec",
    "HotlineAccelerator",
    "HOTLINE_ACCELERATOR_SPEC",
    "HotlineStepPlan",
    "HotlineScheduler",
    "StepExecutor",
    "StepOutcome",
    "TrainingEngine",
    "TrainingResult",
    "evaluate",
    "recalibration_points",
    "ReferenceTrainer",
    "HotlineTrainer",
    "ShardedHotlineTrainer",
    "MergedGradientShardedTrainer",
    "ShardReplica",
    "CachedEmbeddingPipeline",
    "LookaheadStats",
    "epoch_row_stream",
]
