"""The layout-aware Hotline pipeline scheduler (Figure 12 of the paper).

Given the access-aware placement (popular rows replicated on GPU HBM, the
long tail in CPU DRAM), the scheduler turns every mini-batch into the
following steady-state pipeline:

1. The accelerator segregates the *next* mini-batch into popular and
   non-popular µ-batches while the GPUs train on the current one, so the
   segregation latency is hidden (unlike CPU-based segregation, Figure 7).
2. The popular µ-batch is dispatched to the GPUs immediately: its entire
   working set is already in HBM.
3. Concurrently, the accelerator gathers the non-popular µ-batch's working
   parameters — cold rows from CPU DRAM over DMA, hot rows from a GPU
   replica in round-robin — reduces them, and scatters the vectors to the
   GPUs.  This gather is exposed only if it takes longer than the popular
   µ-batch's execution (Figure 25 shows it stays hidden down to a 3:7
   popular ratio).
4. The non-popular µ-batch executes on the GPUs using the staged vectors.
5. Dense gradients are all-reduced; popular rows are updated in HBM,
   non-popular rows are written back to CPU DRAM by DMA (off the critical
   path).  No coherence traffic is ever needed because each row has exactly
   one home.

The scheduler is a *performance model*: it produces per-iteration timelines
and times.  The functional (accuracy) counterpart is
:class:`repro.core.pipeline.HotlineTrainer`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import ExecutionModel
from repro.core.accelerator import HotlineAccelerator
from repro.hwsim.trace import Timeline
from repro.perf.costs import TrainingCostModel


@dataclass(frozen=True)
class HotlineStepPlan:
    """Derived quantities of one Hotline iteration.

    Attributes:
        batch_size: Mini-batch size.
        popular_size: Inputs in the popular µ-batch.
        non_popular_size: Inputs in the non-popular µ-batch.
        cold_rows: Non-popular rows gathered from CPU DRAM.
        hot_rows: Rows of the non-popular µ-batch read from a GPU replica.
        popular_exec_time: GPU time of the popular µ-batch.
        gather_time: Accelerator time to gather + reduce + scatter the
            non-popular working parameters.
        exposed_gather_time: Portion of the gather not hidden under the
            popular µ-batch's execution.
        non_popular_exec_time: GPU time of the non-popular µ-batch.
        sync_time: All-reduce + optimizer time.
        step_time: Total iteration time.
    """

    batch_size: int
    popular_size: int
    non_popular_size: int
    cold_rows: int
    hot_rows: int
    popular_exec_time: float
    gather_time: float
    exposed_gather_time: float
    non_popular_exec_time: float
    sync_time: float
    step_time: float

    @property
    def popular_fraction(self) -> float:
        """Fraction of the mini-batch executed directly from HBM."""
        return self.popular_size / self.batch_size if self.batch_size else 0.0

    @property
    def gather_hidden(self) -> bool:
        """Whether the non-popular gather is fully hidden."""
        return self.exposed_gather_time <= 1e-12


class HotlineScheduler(ExecutionModel):
    """Hotline's data- and model-aware pipeline schedule."""

    name = "Hotline"

    def __init__(
        self,
        costs: TrainingCostModel,
        accelerator: HotlineAccelerator | None = None,
        *,
        online_profiling_overhead: float = 0.02,
    ):
        super().__init__(costs)
        self.accelerator = accelerator or HotlineAccelerator(
            row_bytes=costs.model.bytes_per_lookup()
        )
        self.online_profiling_overhead = online_profiling_overhead

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan_step(
        self, batch_size: int, hot_fraction: float | None = None
    ) -> HotlineStepPlan:
        """Compute the phase durations of one steady-state iteration."""
        costs = self.costs
        hot_fraction = costs.hot_fraction if hot_fraction is None else hot_fraction
        num_gpus = costs.num_gpus
        popular_size = int(round(batch_size * hot_fraction))
        non_popular_size = batch_size - popular_size

        samples_per_gpu = max(1, batch_size // num_gpus)
        non_popular_per_gpu = max(1, non_popular_size // num_gpus) if non_popular_size else 0

        # The GPUs execute the same total MLP work as the baseline — the two
        # µ-batches are just two segments of it — so the MLP cost is priced
        # once for the full per-GPU share and apportioned by µ-batch size.
        mlp_total = costs.mlp_forward_time(samples_per_gpu) + costs.mlp_backward_time(
            samples_per_gpu
        )
        popular_share = popular_size / batch_size if batch_size else 0.0

        # Popular µ-batch: everything from HBM.
        popular_exec = 0.0
        if popular_size:
            popular_exec = (
                costs.gpu_embedding_lookup_time(max(1, popular_size // num_gpus))
                + mlp_total * popular_share
            )

        # Non-popular µ-batch working-set gather by the accelerator.
        cold_rows = 0
        hot_rows = 0
        gather = 0.0
        exposed_gather = 0.0
        non_popular_exec = 0.0
        if non_popular_size:
            lookups = costs.lookups(non_popular_size)
            cold_rows = int(round(lookups * (1.0 - costs.hot_lookup_fraction)))
            hot_rows = lookups - cold_rows
            # Only the CPU-resident (cold) rows travel through the
            # accelerator; hot rows of the non-popular µ-batch are read by
            # the GPUs directly from their local replica.  In a multi-node
            # cluster every node's accelerator gathers its own share of the
            # mini-batch concurrently.
            num_nodes = costs.cluster.num_nodes
            cold_rows_per_node = max(1, cold_rows // num_nodes)
            gpus_per_node = costs.cluster.node.num_gpus
            gather = self.accelerator.gather_time(
                cold_rows_per_node, 0, dim=costs.model.embedding_dim
            ) + self.accelerator.scatter_time(cold_rows_per_node, gpus_per_node)
            exposed_gather = max(0.0, gather - popular_exec)
            non_popular_exec = (
                mlp_total * (1.0 - popular_share)
                + costs.gpu_embedding_lookup_time(non_popular_per_gpu) * costs.hot_lookup_fraction
            )

        # Synchronisation + optimizer.  Popular rows update in HBM; cold-row
        # write-back happens by DMA off the critical path.
        sync = (
            costs.dense_allreduce_time()
            + costs.dense_optimizer_time()
            + costs.gpu_embedding_update_time(samples_per_gpu)
        )

        # The accelerator takes over segregation and parameter gathering but
        # the host still pays its per-iteration data-loading overhead.
        overhead = costs.overheads.gpu_iteration_overhead_s

        step_time = overhead + popular_exec + exposed_gather + non_popular_exec + sync
        return HotlineStepPlan(
            batch_size=batch_size,
            popular_size=popular_size,
            non_popular_size=non_popular_size,
            cold_rows=cold_rows,
            hot_rows=hot_rows,
            popular_exec_time=popular_exec,
            gather_time=gather,
            exposed_gather_time=exposed_gather,
            non_popular_exec_time=non_popular_exec,
            sync_time=sync,
            step_time=step_time,
        )

    # ------------------------------------------------------------------ #
    # ExecutionModel interface
    # ------------------------------------------------------------------ #
    def step_timeline(self, batch_size: int) -> Timeline:
        """Event timeline of one steady-state Hotline iteration."""
        costs = self.costs
        plan = self.plan_step(batch_size)
        timeline = Timeline()
        now = 0.0

        overhead = costs.overheads.gpu_iteration_overhead_s
        timeline.add("cpu", "overhead", now, overhead, "read mini-batch")
        now += overhead

        # Segregation of the *next* mini-batch runs on the accelerator lane,
        # concurrent with GPU execution (it never extends the makespan
        # because it is far shorter than the popular µ-batch's execution).
        segregation = self.accelerator.segregation_time(
            batch_size, costs.model.dataset.lookups_per_sample()
        )
        timeline.add("accel", "overhead", now, segregation, "segregate next mini-batch")

        timeline.add("gpu", "mlp", now, plan.popular_exec_time, "popular µ-batch fwd+bwd")
        timeline.add(
            "accel", "embedding", now, plan.gather_time, "gather non-popular parameters"
        )
        now += plan.popular_exec_time + plan.exposed_gather_time

        timeline.add("gpu", "mlp", now, plan.non_popular_exec_time, "non-popular µ-batch fwd+bwd")
        now += plan.non_popular_exec_time

        allreduce = costs.dense_allreduce_time()
        timeline.add("gpu", "comm", now, allreduce, "dense all-reduce")
        now += allreduce

        optimizer = plan.sync_time - allreduce
        timeline.add("gpu", "optimizer", now, optimizer, "HBM embedding + dense update")
        # Cold-row write-back happens on the accelerator/PCIe lane and is off
        # the critical path.
        writeback = self.accelerator.writeback_time(plan.cold_rows)
        timeline.add("accel", "optimizer", now, writeback, "DMA write-back of cold rows")
        now += optimizer
        return timeline

    def epoch_time(self, batch_size: int) -> float:
        """Epoch time including the (mostly hidden) online-profiling overhead."""
        base = super().epoch_time(batch_size)
        return base * (1.0 + self.online_profiling_overhead)
