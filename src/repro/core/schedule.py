"""Composable communication schedules: one pricing layer for every consumer.

Before this module, wire/communication timing was priced bespoke in four
places — ``GradientBucketReducer.exposed_time``, the sparse lookup
all-to-all, the lookahead cache's fill/write-back pricing, and the
trainer's cached wire-time schedules.  Each caller reimplemented the same
three questions:

1. *What moves?*  — answered here by :class:`CommOp`, a declarative
   primitive (all-reduce / all-to-all / broadcast / fill / write-back)
   over a **named link tier** (``"gpu"``, ``"nic"``, ``"node"``,
   ``"spine"``, ``"pcie"``) instead of a concrete :class:`Link`.  The tier
   is resolved at pricing time against a topology (a flat
   :class:`~repro.hwsim.cluster.Cluster`, a
   :class:`~repro.hwsim.cluster.HierarchicalTopology`, or the single-link
   :class:`FlatLinks` adapter), so the same op prices differently on a
   4-GPU box and a 1,536-device oversubscribed fat-tree.

2. *How does it overlap compute?* — answered by :class:`StepSchedule`,
   an ordered sequence of wire-time segments plus a composition mode:

   * ``sequential`` — fully exposed after compute (the reducer's
     ``sync`` mode, and the lookup all-to-all);
   * ``overlap`` — segment *i* becomes ready a fraction ``(i+1)/B`` into
     the compute window and the link serialises segments; only the tail
     that outlives the window is exposed (the reducer's ``overlap``
     mode);
   * ``staged(k)`` — the whole transfer pipelines behind the next ``k``
     compute windows and only ``max(0, total - k * window)`` is exposed
     (the reducer's ``stale-k`` family, and — with ``k = 1`` — the
     lookahead prefetch that hides under the current step's compute).

   ``exposed_time()`` reproduces the retired bespoke arithmetic bit for
   bit; the golden parity suite pins that.

3. *How do independent transfers add up?* — answered by
   :class:`ComposedSchedule`: independent lanes (dense all-reduce, sparse
   lookup, prefetch) each expose against the same compute window and the
   step pays their left-to-right sum, exactly the trainer's historical
   ``exposed + lookup_alltoall + exposed_prefetch`` composition.

:func:`pipeline_makespan` rounds out the layer with the classic
``(items + stages - 1) * stage_time`` fill-drain makespan used by the
``fig30n`` nested-pipelining sweep (µ-batch pipelining inside stage
pipelining, NestPipe-style).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.hwsim.collectives import comm_op_time
from repro.hwsim.interconnect import Link

#: Transfer primitives a CommOp can describe.
COMM_OP_KINDS = (
    "allreduce",
    "tree_allreduce",
    "alltoall",
    "broadcast",
    "embedding_alltoall",
    "fill",
    "writeback",
)

#: Composition modes a StepSchedule supports.
SCHEDULE_MODES = ("sequential", "overlap", "staged")


@dataclass(frozen=True)
class CommOp:
    """One declarative communication primitive over a named link tier.

    Attributes:
        kind: One of :data:`COMM_OP_KINDS`.  Collective kinds
            (``allreduce``/``tree_allreduce``/``alltoall``/``broadcast``)
            price ``num_bytes`` across ``participants``; the embedding
            kinds (``embedding_alltoall``/``fill``/``writeback``) price
            ``rows * row_bytes`` instead.
        tier: Named link tier, resolved by the topology at pricing time
            (``"gpu"``, ``"nic"``, ``"node"``, ``"spine"``, ``"pcie"``).
        num_bytes: Payload for the collective kinds (per-device payload
            for ``alltoall``).
        participants: Devices taking part.  ``<= 1`` prices to zero for
            every kind that moves data between peers.
        rows: Embedding rows for the row-based kinds.
        row_bytes: Bytes per embedding row for the row-based kinds.
    """

    kind: str
    tier: str = "gpu"
    num_bytes: float = 0.0
    participants: int = 1
    rows: float = 0.0
    row_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in COMM_OP_KINDS:
            raise ValueError(
                f"kind must be one of {COMM_OP_KINDS}, got {self.kind!r}"
            )


@dataclass(frozen=True)
class FlatLinks:
    """Single-link topology adapter: every tier resolves to one link.

    The lookahead pipeline owns a single ``link`` attribute rather than a
    cluster; wrapping it in a ``FlatLinks`` lets it price :class:`CommOp`
    objects through the same tiered interface as a real topology.
    """

    flat: Link | None = None

    def link(self, tier: str) -> Link | None:
        """Resolve any tier to the wrapped link."""
        return self.flat


@dataclass(frozen=True)
class StepSchedule:
    """An ordered sequence of wire-time segments plus a composition mode.

    ``segments_s`` are the per-transfer wire times in schedule order (the
    reducer's per-bucket times, or a tiered decomposition's per-tier
    times).  ``mode`` decides how the segments overlap a compute window
    when :meth:`exposed_time` is asked what the step actually pays.
    """

    segments_s: tuple[float, ...]
    mode: str = "sequential"
    stages: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.mode not in SCHEDULE_MODES:
            raise ValueError(
                f"mode must be one of {SCHEDULE_MODES}, got {self.mode!r}"
            )
        if self.mode == "staged" and self.stages < 1:
            raise ValueError("staged schedules need at least one stage to hide in")

    # -------------------------------------------------------------- #
    # Constructors
    # -------------------------------------------------------------- #
    @classmethod
    def sequential(cls, times: Iterable[float], label: str = "") -> StepSchedule:
        """Fully-exposed schedule (the reducer's ``sync`` composition)."""
        return cls(segments_s=tuple(times), mode="sequential", label=label)

    @classmethod
    def overlap(cls, times: Iterable[float], label: str = "") -> StepSchedule:
        """Segments pipeline behind the compute window as they become ready."""
        return cls(segments_s=tuple(times), mode="overlap", label=label)

    @classmethod
    def staged(cls, times: Iterable[float], stages: int, label: str = "") -> StepSchedule:
        """The transfer hides under the next ``stages`` compute windows."""
        return cls(segments_s=tuple(times), mode="staged", stages=int(stages), label=label)

    @classmethod
    def price(
        cls,
        ops: Iterable[CommOp],
        links,
        *,
        mode: str = "sequential",
        stages: int = 1,
        dma=None,
        label: str = "",
    ) -> StepSchedule:
        """Price each op against a tiered topology into one schedule.

        ``links`` is anything with a ``link(tier)`` method (a
        :class:`~repro.hwsim.cluster.Cluster`, a
        :class:`~repro.hwsim.cluster.HierarchicalTopology`, or a
        :class:`FlatLinks`); ``dma`` threads a live DMA engine through to
        the fill/write-back kinds so their traffic counters accumulate.
        """
        return cls(
            segments_s=tuple(comm_op_time(op, links, dma=dma) for op in ops),
            mode=mode,
            stages=int(stages),
            label=label,
        )

    # -------------------------------------------------------------- #
    # Timing
    # -------------------------------------------------------------- #
    @property
    def total_s(self) -> float:
        """Total wire time across segments, hidden or not."""
        return float(sum(self.segments_s))

    def exposed_time(self, compute_window_s: float) -> float:
        """Communication time the step *pays* for, given a compute window.

        Reproduces the retired ``GradientBucketReducer.exposed_time``
        arithmetic exactly (the golden parity suite asserts bit
        equality): an empty schedule exposes ``0.0`` in every mode, a
        zero window exposes the full wire time, and a negative window is
        rejected.
        """
        if compute_window_s < 0:
            raise ValueError("compute_window_s must be >= 0")
        if not self.segments_s:
            return 0.0
        total = float(sum(self.segments_s))
        if self.mode == "overlap":
            count = len(self.segments_s)
            finish = 0.0
            for i, wire_time in enumerate(self.segments_s):
                ready = compute_window_s * (i + 1) / count
                finish = max(ready, finish) + wire_time
            return max(0.0, finish - compute_window_s)
        if self.mode == "staged":
            return max(0.0, total - self.stages * compute_window_s)
        return total  # sequential — everything is exposed


@dataclass(frozen=True)
class ComposedSchedule:
    """Independent communication lanes exposing against one compute window.

    The step pays the left-to-right sum of each lane's exposure — exactly
    the trainer's historical ``exposed + lookup_alltoall +
    exposed_prefetch`` composition (the fold starts at ``0.0``, and
    ``0.0 + x == x`` bitwise for the non-negative exposures involved).
    """

    lanes: tuple[StepSchedule, ...] = field(default_factory=tuple)

    @property
    def total_s(self) -> float:
        """Total wire time across all lanes."""
        return float(sum(lane.total_s for lane in self.lanes))

    def exposed_time(self, compute_window_s: float) -> float:
        """Sum of per-lane exposures, in lane order."""
        exposed = 0.0
        for lane in self.lanes:
            exposed += lane.exposed_time(compute_window_s)
        return exposed

    def lane_exposures(self, compute_window_s: float) -> tuple[tuple[str, float], ...]:
        """Per-lane ``(label, exposed_s)`` pairs for step accounting."""
        return tuple(
            (lane.label, lane.exposed_time(compute_window_s)) for lane in self.lanes
        )


def allreduce_ops(
    topology,
    num_bytes: float,
    participants: int,
    *,
    kind: str = "allreduce",
) -> tuple[CommOp, ...]:
    """Tier decomposition of one all-reduce on a topology.

    * ``None`` topology or a single participant: nothing moves.
    * Single node: one op across all participants on the ``gpu`` tier.
    * Flat multi-node :class:`~repro.hwsim.cluster.Cluster`: intra-node op
      over ``node.num_gpus`` then inter-node op over ``num_nodes`` — the
      exact two-ring decomposition of
      :func:`~repro.hwsim.collectives.hierarchical_allreduce_time`, so
      summing the priced ops is bit-identical to the retired call.
    * :class:`~repro.hwsim.cluster.HierarchicalTopology`: three levels —
      ``gpu`` (per NIC group), ``nic`` (across a node's NIC groups, when
      there are several), ``spine`` (across nodes, paying the
      oversubscription derate).
    """
    if topology is None or participants <= 1:
        return ()
    num_nodes = topology.num_nodes
    if num_nodes == 1:
        return (
            CommOp(kind, tier="gpu", num_bytes=num_bytes, participants=participants),
        )
    node = getattr(topology, "node", None)
    if node is not None:  # flat Cluster — preserve the two-level decomposition
        return (
            CommOp(kind, tier="gpu", num_bytes=num_bytes, participants=node.num_gpus),
            CommOp(kind, tier="node", num_bytes=num_bytes, participants=num_nodes),
        )
    ops = [
        CommOp(kind, tier="gpu", num_bytes=num_bytes, participants=topology.gpus_per_nic)
    ]
    if topology.nics_per_node > 1:
        ops.append(
            CommOp(kind, tier="nic", num_bytes=num_bytes, participants=topology.nics_per_node)
        )
    ops.append(CommOp(kind, tier="spine", num_bytes=num_bytes, participants=num_nodes))
    return tuple(ops)


def pipeline_makespan(stage_time_s: float, num_stages: int, num_items: int) -> float:
    """Fill-drain makespan of ``num_items`` through ``num_stages`` stages.

    The classic ``(items + stages - 1) * stage_time`` of a balanced
    pipeline: the first item pays the full depth, every further item one
    more stage beat.  Zero items (or stages) take no time.
    """
    if stage_time_s < 0:
        raise ValueError("stage_time_s must be >= 0")
    if num_stages <= 0 or num_items <= 0:
        return 0.0
    return (num_items + num_stages - 1) * stage_time_s


__all__ = [
    "COMM_OP_KINDS",
    "SCHEDULE_MODES",
    "CommOp",
    "ComposedSchedule",
    "FlatLinks",
    "StepSchedule",
    "allreduce_ops",
    "pipeline_makespan",
]
