"""BagPipe-style cached-embedding lookahead with bounded staleness.

Hotline hides the *dense* synchronisation by overlapping the accelerator
lane with CPU-side work; BagPipe (Agarwal et al.) shows the bigger win on
the *sparse* side: a **lookahead window** over the next ``W`` mini-batches
tells the trainer exactly which embedding rows the near future needs, so a
prefetcher can pull them into a per-replica cache ahead of time and the
optimizer can defer row write-backs while a row is still hot in the window.
:class:`CachedEmbeddingPipeline` maps that design onto this repo's
functional trainers:

* **Window** — the loader draws each epoch's sample order eagerly
  (``MiniBatchLoader.last_epoch_order``), so the pipeline can walk the
  *exact* upcoming batches of the in-flight epoch without touching the
  shuffling RNG.  At training step ``i`` the window holds batches
  ``[i, i + W]``: batch ``i + W`` *enters* (is examined and prefetched)
  while batch ``i`` trains, and batch ``i`` *retires* when its step ends —
  the same in-flight set BagPipe's lookahead process maintains.
* **Cache coherence** — cache membership is a per-table
  :class:`~repro.core.hotset.HotSetIndex` bitmap plus a per-row reference
  count of the window batches using the row.  A row is *filled* (DMA'd in)
  when the first window batch referencing it enters, and *evicted* when the
  last one retires.  Every replica fills the identical rows and applies the
  identical merged gradients, so the K per-replica caches stay coherent
  without any extra traffic — the same argument that lets
  :class:`~repro.core.placement.PartitionedEmbeddingPlacement` change
  accounting but never numerics; the pipeline therefore models one logical
  cache instance.
* **Flush rule (bounded staleness)** — merged sparse gradients of cached
  rows are *deferred*: they accumulate in the cache and only write back
  when the row leaves the window (eviction) or when the oldest deferred
  contribution reaches the staleness bound ``k`` — whichever comes first.
  Reads in between see the row at most ``k`` steps stale, the bounded
  staleness BagPipe proves convergence-safe.  ``k = 0`` flushes everything
  immediately, making the pipeline pure accounting: training is
  bit-identical to the non-cached run (the parity harness asserts it).
* **Pricing** — fill traffic is priced per step with
  :func:`~repro.hwsim.collectives.cache_fill_time`: the all-to-all
  round-trip with each row's owner plus the cache-fill DMA gather from host
  DRAM; evictions add the write-back DMA term.  Like the bucketed reducer,
  a pipeline built without a link prices everything at zero (numeric /
  accounting-only use).
* **Window-bounded flat pending store** — deferred write-backs live in a
  :class:`FlatPendingStore`: per table, a *compact* sorted array of the
  pending row ids, a parallel slot array indirecting into a
  geometrically-grown ``(capacity, dim)`` gradient slab, and a matching
  birth-step slab.  ``defer`` is two binary searches plus one scatter;
  the age/eviction flush is boolean-mask arithmetic over birth buckets;
  ``take`` is one gather + zero-fill — so the lookahead machinery itself
  is constant-overhead (no O(nnz) interpreter loop).  The original
  dict-of-rows implementation survives as :class:`ReferencePendingStore`
  (``pending_store="reference"``), the ground truth of the bit-parity
  suite and the speedup benchmark.

**The window-bound invariant.**  Only rows inside the ``W``-batch
lookahead window can ever be pending: a row defers while it is cached and
flushes no later than its eviction, so the pending set is a subset of the
cached row set (plus, transiently, the retiring batch's rows).  The store
exploits that: every structure it allocates — row ids, slot indirection,
value slab, birth slab — is sized to the *deferred* row set and grown
geometrically, never to the table.  ``rows_per_table`` only bounds id
validity; a store over a 10M-row Criteo-Terabyte table with a 4-batch
window allocates a few thousand rows, not 10 GB.  Slab capacity stays
under 2x the peak pending row count (capacity only doubles when
exceeded), :attr:`FlatPendingStore.pending_bytes` /
:attr:`FlatPendingStore.peak_pending_bytes` expose the live and
high-water footprint, and ``clear()`` / an emptying ``take_all()``
**free** the slabs rather than zeroing them, so reset and epoch-carry
paths release the memory they no longer need.

**Invariants** (asserted by the parity/regression suites):

1. Flushed gradients are bit-identical between the two stores: rows flush
   in sorted order and each row's value accumulates in arrival order.
2. A row's birth step is set exactly when it first defers and cleared
   exactly when it flushes; row array, slot array, value slab, and birth
   slab always move together (``reset``/``clear`` included), so no state
   survives a flush or a trainer re-bind.
3. Every deferred unit of gradient is applied exactly once — on eviction,
   at the staleness bound, at an epoch-boundary carry, or through the
   end-of-run :meth:`CachedEmbeddingPipeline.drain`.
4. Peak allocated pending-store bytes are proportional to the cached row
   set, never the table size (the footprint regression test drives a
   10M-row table through a small window and pins it).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.core.hotset import HotSetIndex
from repro.core.schedule import CommOp, FlatLinks
from repro.hwsim.collectives import comm_op_time
from repro.hwsim.dma import DMAEngine
from repro.hwsim.interconnect import Link
from repro.nn.embedding import SparseGradient, merge_sparse_gradients


@dataclass
class LookaheadStats:
    """Observations of one training step of the cached pipeline.

    Attributes:
        cache_hits: Lookups of the trained batch whose row was already
            cached when the batch entered the window (prefetched for free
            by an earlier in-flight batch).
        cache_misses: Lookups whose row had to be freshly filled when the
            batch entered the window.
        fill_rows: Unique rows DMA'd into the cache while this step trained
            (the fills of every window entry pulled during the step).
        evicted_rows: Cached rows written back because they left the window.
        stale_rows: Deferred rows flushed because their oldest contribution
            reached the staleness bound — including a schedule's backlog
            written back when its epoch ends or the bound drops to zero.
        prefetch_time_s: Priced fill + write-back traffic of the step
            (all-to-all and DMA terms); hidden behind compute unless it
            outlives the step's compute window.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    fill_rows: int = 0
    evicted_rows: int = 0
    stale_rows: int = 0
    prefetch_time_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of the step's lookups served without a fresh fill."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class _WindowEntry:
    """One in-flight batch of the lookahead window."""

    __slots__ = ("fresh", "rows")

    def __init__(self, rows: list[np.ndarray], fresh: list[np.ndarray]):
        self.rows = rows  # per-table sorted unique rows the batch touches
        self.fresh = fresh  # per-table subset filled by this entry


def _in_sorted(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Vectorised membership of ``needles`` in a sorted unique ``haystack``."""
    if haystack.size == 0 or needles.size == 0:
        return np.zeros(needles.shape, dtype=bool)
    slots = np.searchsorted(haystack, needles)
    mask = slots < haystack.size
    mask[mask] = haystack[slots[mask]] == needles[mask]
    return mask


class ReferencePendingStore:
    """Dict-of-rows deferred write-back store — the bit-parity reference.

    The original (pre-flat-store) implementation: one ``dict[int,
    np.ndarray]`` of accumulated gradient rows plus one ``dict[int, int]``
    of birth steps per table.  Every ``defer``/``take`` walks the step's
    rows in the Python interpreter — O(nnz) dict churn per training step —
    which is exactly the overhead :class:`FlatPendingStore` removes.  It is
    retained as the ground truth the parity suite and the pending-store
    benchmark compare against (the same role the loop-based
    ``reference_forward``/``reference_backward`` play for the embedding hot
    path); select it with ``CachedEmbeddingPipeline(pending_store=
    "reference")``.
    """

    def __init__(self, rows_per_table: tuple[int, ...]):
        self.rows_per_table = tuple(int(rows) for rows in rows_per_table)
        self._pending: list[dict[int, np.ndarray]] = [{} for _ in self.rows_per_table]
        self._births: list[dict[int, int]] = [{} for _ in self.rows_per_table]

    @property
    def num_tables(self) -> int:
        """Number of tables the store covers."""
        return len(self.rows_per_table)

    @property
    def total_pending(self) -> int:
        """Deferred (not yet written back) rows across tables."""
        return sum(len(pending) for pending in self._pending)

    def pending_count(self, table: int) -> int:
        """Deferred rows of one table."""
        return len(self._pending[table])

    @property
    def pending_bytes(self) -> int:
        """Bytes held by the dict store (value rows + per-row id/birth ints).

        API symmetry with :attr:`FlatPendingStore.pending_bytes`; the dict
        store is inherently window-bounded (it only ever holds deferred
        rows), it just pays the interpreter for it.
        """
        total = 0
        for pending in self._pending:
            for value in pending.values():
                total += value.nbytes + 16
        return total

    def defer(self, table: int, grad: SparseGradient, step: int) -> None:
        """Accumulate one merged gradient; new rows are born at ``step``."""
        pending = self._pending[table]
        births = self._births[table]
        for row, value in zip(grad.indices.tolist(), grad.values, strict=True):
            if row in pending:
                pending[row] = pending[row] + value
            else:
                pending[row] = value.copy()
                births[row] = step

    def pending_mask(self, table: int, rows: np.ndarray) -> np.ndarray:
        """Boolean mask over ``rows``: True where the row is deferred."""
        pending = self._pending[table]
        return np.fromiter(
            (int(row) in pending for row in rows), dtype=bool, count=rows.size
        )

    def aged_rows(self, table: int, step: int, staleness: int) -> np.ndarray:
        """Sorted rows whose oldest contribution is ``staleness`` steps old."""
        births = self._births[table]
        aged = sorted(row for row, birth in births.items() if step - birth >= staleness)
        return np.asarray(aged, dtype=np.int64)

    def birth_steps(self, table: int) -> dict[int, int]:
        """``{row: birth step}`` of one table's deferred rows (tests)."""
        return dict(self._births[table])

    def take(self, table: int, rows: np.ndarray) -> SparseGradient:
        """Remove the deferred subset of ``rows`` as one sparse gradient.

        ``rows`` must be sorted; rows with nothing pending are skipped, so
        the result's indices are the sorted deferred subset.
        """
        pending = self._pending[table]
        births = self._births[table]
        taken = [int(row) for row in rows if int(row) in pending]
        if not taken:
            return SparseGradient(np.empty(0, dtype=np.int64), np.empty((0, 0)))
        values = np.stack([pending.pop(row) for row in taken], axis=0)
        for row in taken:
            births.pop(row, None)
        return SparseGradient(np.asarray(taken, dtype=np.int64), values)

    def take_all(self, table: int) -> SparseGradient:
        """Remove and return everything deferred for one table."""
        return self.take(table, np.asarray(sorted(self._pending[table]), dtype=np.int64))

    def clear(self) -> None:
        """Drop all deferred gradients and their birth steps."""
        for pending, births in zip(self._pending, self._births, strict=True):
            pending.clear()
            births.clear()


class FlatPendingStore:
    """Window-bounded flat-array deferred write-back store.

    Layout, per table — everything sized to the *deferred* row set, never
    the table (the window-bound invariant of the module docstring):

    * a **sorted row array** of the pending row ids (membership is one
      binary search — no table-sized bitmap),
    * a parallel **slot array** mapping each pending row to its slot in
    * a ``(capacity, dim)`` **gradient value slab** plus a matching
      **birth-step slab**, grown geometrically (capacity < 2x the peak
      pending row count) with a free-slot list recycling flushed slots.

    ``defer`` is two binary searches, one ``np.insert`` of the fresh rows,
    and one scatter through the slot indirection; ``take`` is one gather +
    zero-fill of the freed slots.  The age-based flush never scans
    anything: each ``defer`` appends its freshly-born rows to a per-table
    **birth-bucket deque** (buckets are in birth order because steps are),
    and ``aged_rows`` walks only the buckets past the staleness cutoff,
    validating their rows with one membership + birth-step mask pass (a
    row evicted or re-deferred since simply fails the check).  Fully
    invalidated aged buckets are pruned as they are seen, so the amortised
    cost is O(rows flushed), independent of the table size.

    The ``SparseGradient`` sorted-unique-indices contract is checked once
    at the ``defer`` boundary: gradients that violate it (hand-built
    duplicates) are routed through a duplicate-safe ``np.add.at`` scatter
    whose element order matches the dict reference's per-occurrence
    accumulation, so results stay bit-identical to
    :class:`ReferencePendingStore` either way (rows flush in sorted order;
    per-row values accumulate in arrival order), which the parity suite
    asserts.  ``clear()`` and an emptying ``take_all()`` **free** the
    slabs (reset / epoch-carry paths release memory, not just zero it),
    and :attr:`pending_bytes` / :attr:`peak_pending_bytes` expose the
    footprint the regression suite and benchmark artifact pin.
    """

    def __init__(self, rows_per_table: tuple[int, ...]):
        self.rows_per_table = tuple(int(rows) for rows in rows_per_table)
        num_tables = len(self.rows_per_table)
        #: Sorted pending row ids per table (compact, window-bounded).
        self._rows: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(num_tables)
        ]
        #: Slab slot of each pending row, aligned with ``_rows``.
        self._slots: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(num_tables)
        ]
        # Value/birth slabs are allocated lazily at the first deferred
        # gradient (matching its dtype/width) and grown geometrically, so
        # a store that never defers (the stale-0 fast path) costs nothing
        # and one that does stays proportional to its pending set.
        self._values: list[np.ndarray | None] = [None] * num_tables
        self._births: list[np.ndarray | None] = [None] * num_tables
        #: Recycled slab slots (flushed rows' slots, already zeroed).
        self._free: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(num_tables)
        ]
        #: Per-table ``(birth step, rows born then)`` buckets, birth order.
        self._buckets: list[deque[tuple[int, np.ndarray]]] = [
            deque() for _ in range(num_tables)
        ]
        self._peak_bytes = 0

    @property
    def num_tables(self) -> int:
        """Number of tables the store covers."""
        return len(self.rows_per_table)

    @property
    def total_pending(self) -> int:
        """Deferred (not yet written back) rows across tables."""
        return sum(rows.size for rows in self._rows)

    def pending_count(self, table: int) -> int:
        """Deferred rows of one table."""
        return int(self._rows[table].size)

    @property
    def pending_bytes(self) -> int:
        """Bytes currently allocated by the store, across all tables.

        Counts the compact row/slot/free arrays and the value/birth slabs
        — by construction proportional to the pending row set (the
        window-bound invariant), never to ``rows_per_table``.
        """
        total = 0
        for table in range(self.num_tables):
            total += (
                self._rows[table].nbytes
                + self._slots[table].nbytes
                + self._free[table].nbytes
            )
            if self._values[table] is not None:
                total += self._values[table].nbytes + self._births[table].nbytes
        return total

    @property
    def peak_pending_bytes(self) -> int:
        """High-water mark of :attr:`pending_bytes` (reset by ``clear``)."""
        return self._peak_bytes

    def _allocate_slots(self, table: int, count: int, dim: int, dtype) -> np.ndarray:
        """Hand out ``count`` zeroed slab slots, growing the slabs if needed."""
        free = self._free[table]
        if free.size >= count:
            self._free[table] = free[count:]
            return free[:count]
        values = self._values[table]
        capacity = 0 if values is None else values.shape[0]
        need = count - free.size
        # Doubling keeps amortised growth O(1) and caps the slab at <2x
        # the peak pending row count — the bound the footprint test and
        # the bench-gate artifact assert against.
        new_capacity = max(2 * capacity, capacity + need)
        grown_values = np.zeros((new_capacity, dim), dtype=dtype)
        grown_births = np.zeros(new_capacity, dtype=np.int64)
        if values is not None:
            grown_values[:capacity] = values
            grown_births[:capacity] = self._births[table]
        self._values[table] = grown_values
        self._births[table] = grown_births
        taken = np.concatenate(
            [free, np.arange(capacity, capacity + need, dtype=np.int64)]
        )
        self._free[table] = np.arange(capacity + need, new_capacity, dtype=np.int64)
        return taken

    def defer(self, table: int, grad: SparseGradient, step: int) -> None:
        """Accumulate one merged gradient; new rows are born at ``step``."""
        if grad.nnz == 0:
            return
        indices = grad.indices
        # The SparseGradient contract (sorted unique indices) is checked
        # once here, at the boundary; violating gradients take the
        # duplicate-safe scatter below instead of silently corrupting the
        # fast path's one-write-per-row assumption.
        sorted_unique = indices.size <= 1 or not np.any(np.diff(indices) <= 0)
        unique_indices = indices if sorted_unique else np.unique(indices)
        rows = self._rows[table]
        pos = np.searchsorted(rows, unique_indices)
        present = pos < rows.size
        present[present] = rows[pos[present]] == unique_indices[present]
        fresh = unique_indices[~present]
        if fresh.size:
            slots_new = self._allocate_slots(
                table, fresh.size, grad.values.shape[1], grad.values.dtype
            )
            self._births[table][slots_new] = step
            insert_at = pos[~present]
            self._rows[table] = np.insert(rows, insert_at, fresh)
            self._slots[table] = np.insert(self._slots[table], insert_at, slots_new)
            self._buckets[table].append((step, fresh))
            rows = self._rows[table]
        slots_all = self._slots[table][np.searchsorted(rows, indices)]
        if sorted_unique:
            # Sorted unique indices hit every slot exactly once — the
            # fancy-index add equals the np.add.at scatter at a fraction
            # of its cost.  Freed/fresh slots read zero, so accumulating
            # into them matches the reference's arrival-order sums.
            self._values[table][slots_all] += grad.values
        else:
            # Duplicate (or unsorted) row ids: the duplicate-safe scatter
            # accumulates per-occurrence contributions exactly as the dict
            # reference accumulates them.
            np.add.at(self._values[table], slots_all, grad.values)
        live = self.pending_bytes
        if live > self._peak_bytes:
            self._peak_bytes = live

    def pending_mask(self, table: int, rows: np.ndarray) -> np.ndarray:
        """Boolean mask over ``rows``: True where the row is deferred."""
        return _in_sorted(self._rows[table], np.asarray(rows, dtype=np.int64))

    def aged_rows(self, table: int, step: int, staleness: int) -> np.ndarray:
        """Sorted rows whose oldest contribution is ``staleness`` steps old.

        Walks only the birth buckets past the cutoff: a bucket row is
        still aged-and-pending iff it is in the pending row array with its
        original birth step (eviction flushes and re-deferrals invalidate
        it).  Buckets that turn out fully invalid are dropped; partially
        valid ones are compacted and kept until their rows flush, so
        repeated queries stay cheap and nothing ever rescans the table.
        """
        buckets = self._buckets[table]
        rows = self._rows[table]
        if rows.size == 0 or not buckets:
            return np.empty(0, dtype=np.int64)
        cutoff = step - staleness
        slots = self._slots[table]
        births = self._births[table]
        collected: list[np.ndarray] = []
        still_valid: list[tuple[int, np.ndarray]] = []
        while buckets and buckets[0][0] <= cutoff:
            birth, bucket_rows = buckets.popleft()
            candidates = bucket_rows[_in_sorted(rows, bucket_rows)]
            if candidates.size:
                positions = np.searchsorted(rows, candidates)
                valid = candidates[births[slots[positions]] == birth]
            else:
                valid = candidates
            if valid.size:
                collected.append(valid)
                still_valid.append((birth, valid))
        # Aged-but-unflushed rows stay queued (compacted) in birth order.
        for bucket in reversed(still_valid):
            buckets.appendleft(bucket)
        if not collected:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(collected))

    def birth_steps(self, table: int) -> dict[int, int]:
        """``{row: birth step}`` of one table's deferred rows (tests)."""
        rows = self._rows[table]
        if rows.size == 0:
            return {}
        births = self._births[table][self._slots[table]]
        return {int(row): int(birth) for row, birth in zip(rows, births, strict=True)}

    def take(self, table: int, rows: np.ndarray) -> SparseGradient:
        """Remove the deferred subset of ``rows`` as one sparse gradient.

        ``rows`` must be sorted.  One membership pass selects the deferred
        subset, one slab gather copies it out, and the freed slots are
        zeroed and recycled — row array, slot array, value slab, and birth
        slab always move together (a reused trainer can never observe a
        row whose gradient was cleared but whose birth survived, or vice
        versa).
        """
        rows = np.asarray(rows, dtype=np.int64)
        pending = self._rows[table]
        if rows.size:
            rows = rows[_in_sorted(pending, rows)]
        slab = self._values[table]
        if rows.size == 0 or slab is None:
            return SparseGradient(np.empty(0, dtype=np.int64), np.empty((0, 0)))
        positions = np.searchsorted(pending, rows)
        slots = self._slots[table][positions]
        values = slab[slots].copy()
        slab[slots] = 0.0  # recycled slots must read zero for the next +=
        keep = np.ones(pending.size, dtype=bool)
        keep[positions] = False
        self._rows[table] = pending[keep]
        self._slots[table] = self._slots[table][keep]
        self._free[table] = np.concatenate([self._free[table], slots])
        return SparseGradient(rows, values)

    def take_all(self, table: int) -> SparseGradient:
        """Remove and return everything deferred for one table.

        Emptying a table releases its slabs entirely: the full-flush paths
        (epoch carry, end-of-run drain, stale-0 backlog) free the memory
        instead of keeping zeroed capacity alive across epochs.
        """
        taken = self.take(table, self._rows[table])
        if self._rows[table].size == 0:
            self._release_table(table)
        return taken

    def _release_table(self, table: int) -> None:
        """Free one table's slabs and bookkeeping (drops, never zeroes)."""
        self._rows[table] = np.empty(0, dtype=np.int64)
        self._slots[table] = np.empty(0, dtype=np.int64)
        self._values[table] = None
        self._births[table] = None
        self._free[table] = np.empty(0, dtype=np.int64)
        self._buckets[table].clear()

    def clear(self) -> None:
        """Free all deferred gradients and their birth steps, atomically.

        Row arrays, slot arrays, value slabs, and birth slabs are released
        together (freed, not zeroed — a reset store holds no window's
        worth of capacity), and the footprint high-water mark restarts:
        the regression suite pins that a reused trainer starts from a
        state indistinguishable from a fresh store.
        """
        for table in range(self.num_tables):
            self._release_table(table)
        self._peak_bytes = 0


def make_pending_store(
    kind: str, rows_per_table: tuple[int, ...]
) -> FlatPendingStore | ReferencePendingStore:
    """Build a deferred write-back store by name (``"flat"``/``"reference"``)."""
    if kind == "flat":
        return FlatPendingStore(rows_per_table)
    if kind == "reference":
        return ReferencePendingStore(rows_per_table)
    raise ValueError(f"unknown pending store {kind!r} (expected 'flat' or 'reference')")


def epoch_row_stream(loader) -> Iterator[list[np.ndarray]]:
    """Per-batch, per-table unique-row arrays of the loader's current epoch.

    Mirrors the batches of the epoch the loader most recently started
    (``loader.last_epoch_order``, drawn eagerly before iteration begins)
    by slicing the click log directly — the loader's shuffling RNG is never
    touched, so walking ahead here cannot perturb the training stream.

    The per-epoch ``np.unique`` passes are memoised on the loader, keyed on
    the *identity* of ``loader.last_epoch_order`` (plus the log's sparse
    block and the batch bounds): replayed epochs — every epoch of an
    unshuffled loader, and any second walk over the same drawn order —
    yield the cached arrays and pay nothing.  A shuffled loader draws a
    fresh order array each epoch, so its identity changes and the stream is
    recomputed.  The cache holds references to its key objects, so ``id``
    reuse after garbage collection can never cause a false hit, and it is
    only installed once a walk completes (a partial walk never poisons it).
    Treat the yielded arrays as read-only — they are shared across walks.
    """
    order = getattr(loader, "last_epoch_order", None)
    log = loader.log
    bounds = list(loader.batch_bounds())
    cached = getattr(loader, "_row_stream_cache", None)
    if (
        cached is not None
        and cached[0] is order
        and cached[1] is log.sparse
        and cached[2] == bounds
    ):
        yield from cached[3]
        return
    rows_per_batch: list[list[np.ndarray]] = []
    for start, stop in bounds:
        block = log.sparse[start:stop] if order is None else log.sparse[order[start:stop]]
        rows = [np.unique(block[:, table, :]) for table in range(block.shape[1])]
        rows_per_batch.append(rows)
        yield rows
    # Reached only when the walk completed (generators abandoned mid-epoch
    # never install a partial stream).
    try:
        loader._row_stream_cache = (order, log.sparse, bounds, rows_per_batch)
    except AttributeError:  # loaders that forbid ad-hoc attributes
        pass


def shard_epoch_row_stream(
    loader, shard: int, num_shards: int
) -> Iterator[list[np.ndarray]]:
    """Per-batch unique-row arrays of one shard's slice of each batch.

    The per-shard counterpart of :func:`epoch_row_stream`: each yielded
    list holds the unique rows that *shard ``shard``'s* contiguous slice
    of the batch touches, using the same balanced-split arithmetic as
    :meth:`~repro.data.batch.MiniBatch.shards` (``bounds[k] = (k * size)
    // num_shards``), so the stream matches exactly the shard batches the
    trainer hands each replica.  Used by the per-shard accounting
    lookahead caches, whose windows (and therefore fill traffic and
    capacity) differentiate by shard; the walk is read-only with respect
    to the loader's RNG, like the global stream.
    """
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard {shard} out of range for {num_shards} shards")
    order = getattr(loader, "last_epoch_order", None)
    log = loader.log
    for start, stop in loader.batch_bounds():
        block = (
            log.sparse[start:stop] if order is None else log.sparse[order[start:stop]]
        )
        size = block.shape[0]
        lo = (shard * size) // num_shards
        hi = ((shard + 1) * size) // num_shards
        sub = block[lo:hi]
        yield [np.unique(sub[:, table, :]) for table in range(block.shape[1])]


class WindowRefcounts:
    """Compact per-table reference counts of the window's cached rows.

    The lookahead window needs, per cached row, how many in-flight window
    batches reference it (fill on first reference, evict on last).  A
    table-sized int32 array answers that in O(1) per row but costs
    40 MB per 10M-row Criteo-Terabyte table — the same O(table) footprint
    :class:`FlatPendingStore` was built to avoid.  This class mirrors the
    store's compact layout instead: per table, a sorted int64 array of
    the rows currently referenced and a parallel int32 count array, both
    sized to the *window's* row set and empty when nothing is cached.

    Like the pending store (and the ``_in_sorted`` helper both lean on),
    it relies on the window invariant that every entry's per-table row
    array is **sorted and unique** — the ``np.unique`` output of the
    epoch row streams and the self-feed path — so membership is one
    ``searchsorted`` per batch.
    """

    def __init__(self, rows_per_table: tuple[int, ...]):
        self.num_tables = len(rows_per_table)
        self._rows: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(self.num_tables)
        ]
        self._counts: list[np.ndarray] = [
            np.empty(0, dtype=np.int32) for _ in range(self.num_tables)
        ]

    def clear(self) -> None:
        """Drop every reference (a window reset): all counts become zero."""
        for table in range(self.num_tables):
            self._rows[table] = np.empty(0, dtype=np.int64)
            self._counts[table] = np.empty(0, dtype=np.int32)

    @property
    def nbytes(self) -> int:
        """Bookkeeping bytes — O(referenced rows), never O(table)."""
        return int(
            sum(rows.nbytes for rows in self._rows)
            + sum(counts.nbytes for counts in self._counts)
        )

    def tracked_rows(self, table: int) -> int:
        """Rows of one table currently holding a non-zero reference count."""
        return int(self._rows[table].size)

    def enter(self, table: int, rows: np.ndarray) -> None:
        """A batch enters the window: count its (sorted-unique) rows."""
        if rows.size == 0:
            return
        held = self._rows[table]
        counts = self._counts[table]
        slots = np.searchsorted(held, rows)
        in_bounds = slots < held.size
        present = np.zeros(rows.size, dtype=bool)
        present[in_bounds] = held[slots[in_bounds]] == rows[in_bounds]
        counts[slots[present]] += 1
        fresh = rows[~present]
        if fresh.size:
            insert_at = slots[~present]
            self._rows[table] = np.insert(held, insert_at, fresh)
            self._counts[table] = np.insert(counts, insert_at, np.int32(1))

    def release(self, table: int, rows: np.ndarray) -> np.ndarray:
        """A batch retires: drop one reference per row.

        Returns the rows whose count reached zero (in input order — the
        rows the cache must evict), and removes them from the layout so
        the footprint tracks the live window.  Every released row must
        currently be referenced (the window pairs each ``release`` with
        an earlier ``enter`` of the same rows).
        """
        if rows.size == 0:
            return rows
        held = self._rows[table]
        counts = self._counts[table]
        slots = np.searchsorted(held, rows)
        counts[slots] -= 1
        zeroed = counts[slots] == 0
        gone = rows[zeroed]
        if gone.size:
            keep = np.ones(held.size, dtype=bool)
            keep[slots[zeroed]] = False
            self._rows[table] = held[keep]
            self._counts[table] = counts[keep]
        return gone


class CachedEmbeddingPipeline:
    """Lookahead-window embedding cache with bounded-staleness write-back.

    Drive it once per training step, in order:

    1. :meth:`observe` with the step's ``(batch, tables, pooling)`` index
       block *before* the forward pass — advances the window (prefetching
       the batch entering it) and accounts the step's cache hits.
    2. :meth:`defer` with the step's merged per-table sparse gradients
       *after* the backward pass — accumulates them into the cache, retires
       the trained batch, and returns the per-table gradients that must be
       applied **now** (evicted rows + rows at the staleness bound).

    :meth:`begin_epoch` resets the window onto a fresh batch stream
    (normally :func:`epoch_row_stream`) and returns any still-deferred
    gradient from the previous epoch for the caller to apply first.  With
    no stream the pipeline self-feeds from the observed batches — the
    window degenerates to the current batch (no lookahead), but every
    guarantee still holds.

    Args:
        rows_per_table: Embedding-table sizes (bounds the cache bitmaps).
        window: Lookahead depth ``W`` — how many batches beyond the current
            one are prefetched and kept cached.
        staleness: Bound ``k`` on how many steps a deferred row update may
            wait before it must write back.  ``0`` = immediate application
            (numerics identical to an uncached run).
        row_bytes: Wire/DMA bytes per embedding row.
        num_replicas: Data-parallel replicas filling their (coherent) caches.
        link: Interconnect pricing the fill all-to-all; ``None`` prices all
            traffic at zero (accounting-only use).
        dma: DMA engine whose counters track fill/write-back bytes; a
            private engine is created when omitted.
        pending_store: Deferred write-back store implementation — ``"flat"``
            (default) for the vectorised :class:`FlatPendingStore`,
            ``"reference"`` for the dict-based
            :class:`ReferencePendingStore` parity ground truth.
        price_fills: Whether :meth:`observe` prices fill traffic.  Leave
            on for the pipeline that owns the deferral numerics; turn off
            when per-shard accounting pipelines price the fills instead
            (the per-shard lookahead of
            :class:`~repro.core.distributed.ShardedHotlineTrainer`), so
            the same fill is never charged twice.
    """

    def __init__(
        self,
        rows_per_table: tuple[int, ...],
        *,
        window: int,
        staleness: int = 0,
        row_bytes: int = 4,
        num_replicas: int = 1,
        link: Link | None = None,
        dma: DMAEngine | None = None,
        pending_store: str = "flat",
        price_fills: bool = True,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        if row_bytes <= 0 or num_replicas <= 0:
            raise ValueError("row_bytes and num_replicas must be positive")
        self.rows_per_table = tuple(int(rows) for rows in rows_per_table)
        self.window = int(window)
        self.staleness = int(staleness)
        self.row_bytes = int(row_bytes)
        self.num_replicas = int(num_replicas)
        self.link = link
        self.dma = dma or DMAEngine()
        self.price_fills = bool(price_fills)
        num_tables = len(self.rows_per_table)
        #: Cache membership: one HotSetIndex bitmap per table.
        self.cache = HotSetIndex(
            [np.empty(0, dtype=np.int64) for _ in range(num_tables)],
            self.rows_per_table,
        )
        self._refcounts = WindowRefcounts(self.rows_per_table)
        self._entries: deque[_WindowEntry] = deque()
        self._stream: Iterator[list[np.ndarray]] | None = None
        #: Deferred write-back store (flat arrays by default).
        self.pending = make_pending_store(pending_store, self.rows_per_table)
        self._step = 0
        #: Epoch-carry write-back charge folded into the next step's stats.
        self._carry_rows = 0
        self._carry_time_s = 0.0
        #: Stats of the most recent observe/defer cycle.
        self.last_stats = LookaheadStats()

    @property
    def num_tables(self) -> int:
        """Number of cached embedding tables."""
        return len(self.rows_per_table)

    @property
    def cached_rows_total(self) -> int:
        """Current cache occupancy across tables (bitmap popcount)."""
        return sum(self.cache.hot_count(table) for table in range(self.num_tables))

    @property
    def pending_rows_total(self) -> int:
        """Deferred (not yet written back) rows across tables."""
        return self.pending.total_pending

    @property
    def pending_bytes(self) -> int:
        """Bytes currently allocated by the deferred write-back store."""
        return int(getattr(self.pending, "pending_bytes", 0))

    @property
    def peak_pending_bytes(self) -> int:
        """High-water mark of the store's allocation (0 if untracked)."""
        return int(getattr(self.pending, "peak_pending_bytes", 0))

    @property
    def refcount_bytes(self) -> int:
        """Bytes of the window's compact refcount layout — O(cached rows)."""
        return self._refcounts.nbytes

    # ------------------------------------------------------------------ #
    # Traffic pricing (one CommOp per charge)
    # ------------------------------------------------------------------ #
    def _fill_time(self, fills: int) -> float:
        """Price one step's cache fills as a tiered ``fill`` op.

        Resolves — through :func:`~repro.hwsim.collectives.comm_op_time`
        — to exactly one :func:`~repro.hwsim.collectives.cache_fill_time`
        call on the pipeline's link and DMA engine, so the engine's
        traffic counters see one charge per priced fill batch, as before
        the schedule-layer migration.
        """
        op = CommOp(
            "fill",
            tier="node",
            rows=fills,
            row_bytes=self.row_bytes,
            participants=self.num_replicas,
        )
        return comm_op_time(op, FlatLinks(self.link), dma=self.dma)

    def _writeback_time(self, rows: int) -> float:
        """Price a write-back flush of ``rows`` as one ``writeback`` op.

        One DMA write charge per flush — the counter-lifetime contract of
        :class:`~repro.hwsim.dma.DMAEngine` requires exactly one pricing
        call per charge, which is why every flush path funnels through
        here.
        """
        op = CommOp("writeback", tier="pcie", rows=rows, row_bytes=self.row_bytes)
        return comm_op_time(op, FlatLinks(self.link), dma=self.dma)

    # ------------------------------------------------------------------ #
    # Epoch lifecycle
    # ------------------------------------------------------------------ #
    def begin_epoch(
        self, stream: Iterator[list[np.ndarray]] | None
    ) -> list[SparseGradient] | None:
        """Reset the window onto a new epoch's batch stream.

        Returns the per-table gradient of everything still deferred from
        the previous epoch (the caller applies it before the next forward
        pass), or ``None`` when nothing was pending.  The cache itself is
        cleared: a shuffled epoch invalidates the old window.  The carry
        writes back like any other flush, so its rows and DMA traffic are
        charged — folded into the *next* step's stats, since the boundary
        itself has no step of its own.
        """
        carry, rows, time_s = self._priced_flush_all()
        self._carry_rows += rows
        self._carry_time_s += time_s
        self._reset_window(stream)
        return carry

    def reset(self) -> None:
        """Discard all in-flight state: window, cache, deferred write-backs.

        For a trainer re-bound to start a fresh run: the deferred gradients
        belong to the previous run's schedule and are *dropped*, not
        carried (mirroring the dense stale-k deque, whose in-flight reduces
        die with their run) — applying them would contaminate the new run
        with the old run's data.  The store clears its gradient buffers and
        birth arrays in one atomic pass, so a reused trainer cannot inherit
        a stale birth step for a fresh deferral (the PR 5 regression suite
        pins this alongside the PR 4 ``bind()`` fix).  The DMA engine's
        traffic counters reset too: a reused trainer's reported fill/
        write-back bytes describe *its* run, not the previous one's (the
        rebind counter-lifetime regression pins this).
        """
        self.pending.clear()
        self.dma.reset_counters()
        self._reset_window(None)
        self._step = 0
        self._carry_rows = 0
        self._carry_time_s = 0.0
        self.last_stats = LookaheadStats()

    def _reset_window(self, stream: Iterator[list[np.ndarray]] | None) -> None:
        self._stream = iter(stream) if stream is not None else None
        self._entries.clear()
        self._refcounts.clear()
        for table in range(self.num_tables):
            self.cache.replace_table(table, np.empty(0, dtype=np.int64))

    def _flush_all(self) -> list[SparseGradient] | None:
        # Always walk ``take_all`` (even when nothing is pending): it is
        # what frees the store's compact slabs, so an epoch boundary or
        # drain leaves no capacity behind — the window-bound invariant's
        # "free, don't zero" half.
        flushed = [self.pending.take_all(table) for table in range(self.num_tables)]
        if all(grad.nnz == 0 for grad in flushed):
            return None
        return flushed

    def _priced_flush_all(self) -> tuple[list[SparseGradient] | None, int, float]:
        """Flush every deferred write-back and price its DMA traffic.

        The single pricing point for all three full-flush paths (epoch
        carry, end-of-run drain, and the stale-0 backlog), so a change to
        the write-back cost model cannot make their accounting diverge.

        Returns:
            ``(flushed gradients or None, flushed rows, priced seconds)``.
        """
        flushed = self._flush_all()
        if flushed is None:
            return None, 0, 0.0
        rows = sum(grad.nnz for grad in flushed)
        time_s = 0.0
        if self.link is not None and rows:
            time_s = self._writeback_time(rows)
        return flushed, rows, time_s

    def drain(self) -> list[SparseGradient] | None:
        """End-of-run flush: everything still deferred writes back *now*.

        The executor ``finalize()`` hook calls this so a run's last
        in-flight sparse updates are applied before the final evaluation
        instead of dying with the run (which made a stale-k sweep's final
        metrics fold a dropped-tail effect into the staleness effect).
        The write-back is priced like any other flush and reported through
        :attr:`last_stats`; the window is left untouched — a drained
        pipeline can keep training, it just holds no deferred gradient.

        Returns:
            Per-table gradients to apply, or ``None`` if nothing was
            deferred.
        """
        flushed, rows, time_s = self._priced_flush_all()
        if flushed is None:
            return None
        self.last_stats = LookaheadStats(stale_rows=rows, prefetch_time_s=time_s)
        return flushed

    # ------------------------------------------------------------------ #
    # Step lifecycle: observe (pre-forward) + defer (post-backward)
    # ------------------------------------------------------------------ #
    def observe(self, sparse: np.ndarray) -> LookaheadStats:
        """Advance the window for one training step and account its hits.

        Args:
            sparse: The trained batch's ``(batch, tables, pooling)`` index
                block.

        Returns:
            The step's :class:`LookaheadStats` (also kept as
            :attr:`last_stats`; :meth:`defer` adds the flush counters).
        """
        sparse = np.asarray(sparse)
        if sparse.ndim != 3 or sparse.shape[1] != self.num_tables:
            raise ValueError("sparse must be 3-D (batch, num_tables, pooling)")
        stats = LookaheadStats()
        # Pull window entries until the batch `window` steps ahead of the
        # trained one has entered (the prefetcher runs W batches ahead).
        fills = 0
        while len(self._entries) <= self.window:
            if not self._pull_entry():
                break
            fills += sum(entry_fresh.size for entry_fresh in self._entries[-1].fresh)
        if not self._entries:
            # Self-feed: no stream — the observed batch is its own entry.
            self._enter(
                [np.unique(sparse[:, table, :]) for table in range(self.num_tables)]
            )
            fills += sum(entry_fresh.size for entry_fresh in self._entries[-1].fresh)
        entry = self._entries[0]
        for table in range(self.num_tables):
            lookups = sparse[:, table, :].ravel()
            misses = int(_in_sorted(entry.fresh[table], lookups).sum())
            stats.cache_misses += misses
            stats.cache_hits += lookups.size - misses
        stats.fill_rows = fills
        if self.link is not None and fills and self.price_fills:
            stats.prefetch_time_s = self._fill_time(fills)
        if self._carry_rows:
            # The previous epoch's backlog wrote back at the boundary.
            stats.stale_rows += self._carry_rows
            stats.prefetch_time_s += self._carry_time_s
            self._carry_rows = 0
            self._carry_time_s = 0.0
        self.last_stats = stats
        return stats

    def _pull_entry(self) -> bool:
        if self._stream is None:
            return False
        try:
            rows = next(self._stream)
        except StopIteration:
            self._stream = None
            return False
        self._enter([np.asarray(table_rows, dtype=np.int64) for table_rows in rows])
        return True

    def _enter(self, rows: list[np.ndarray]) -> None:
        """A batch enters the window: fill its uncached rows, take refs."""
        fresh: list[np.ndarray] = []
        for table, table_rows in enumerate(rows):
            cached = self.cache.contains(table, table_rows)
            new_rows = table_rows[~cached]
            if new_rows.size:
                self.cache.set_rows(table, new_rows)
            self._refcounts.enter(table, table_rows)
            fresh.append(new_rows)
        self._entries.append(_WindowEntry(rows, fresh))

    def defer(self, merged: list[SparseGradient]) -> list[SparseGradient]:
        """Absorb one step's merged gradients; return what must apply now.

        With ``staleness == 0`` the input is returned untouched (the
        bit-parity fast path; anything still deferred from a higher
        earlier bound is flushed alongside it, never stranded).  Otherwise
        the gradients accumulate in the cache and the returned per-table
        gradients contain exactly the flushed rows: those evicted as the
        trained batch retires plus those whose oldest deferred
        contribution is ``staleness`` steps old.
        """
        if len(merged) != self.num_tables:
            raise ValueError(
                f"expected gradients for {self.num_tables} tables, got {len(merged)}"
            )
        stats = self.last_stats
        step = self._step
        self._step += 1
        evicted = self._retire()
        stats.evicted_rows = sum(table_rows.size for table_rows in evicted)
        if self.staleness == 0:
            if self.pending_rows_total == 0:
                return list(merged)
            # The backlog writes back like any other flush — price it, so
            # a bound lowered to 0 mid-run does not make the same traffic
            # momentarily free.
            backlog, backlog_rows, backlog_time_s = self._priced_flush_all()
            stats.stale_rows += backlog_rows
            stats.prefetch_time_s += backlog_time_s
            return [
                merge_sparse_gradients([carried, grad]) if carried.nnz else grad
                for carried, grad in zip(backlog, merged, strict=True)
            ]
        writeback_rows = 0
        flushed: list[SparseGradient] = []
        for table, grad in enumerate(merged):
            self.pending.defer(table, grad, step)
            # Flush rule: a deferred row writes back when it leaves the
            # window or its oldest contribution reaches the bound.  Both
            # sets come out of the store as sorted arrays, so the union
            # (and therefore the flushed gradient's row order) matches the
            # reference store's sorted-dict walk bit for bit.
            evicted_pending = evicted[table][
                self.pending.pending_mask(table, evicted[table])
            ]
            aged = self.pending.aged_rows(table, step, self.staleness)
            stats.stale_rows += int(aged.size - _in_sorted(evicted_pending, aged).sum())
            grad_out = self.pending.take(table, np.union1d(evicted_pending, aged))
            writeback_rows += grad_out.nnz
            flushed.append(grad_out)
        if self.link is not None and writeback_rows:
            stats.prefetch_time_s += self._writeback_time(writeback_rows)
        return flushed

    def _retire(self) -> list[np.ndarray]:
        """The trained batch leaves the window; evict rows it last used."""
        if not self._entries:
            return [np.empty(0, dtype=np.int64) for _ in range(self.num_tables)]
        entry = self._entries.popleft()
        evicted: list[np.ndarray] = []
        for table, table_rows in enumerate(entry.rows):
            gone = self._refcounts.release(table, table_rows)
            if gone.size:
                self.cache.clear_rows(table, gone)
            evicted.append(gone)
        return evicted
