"""The Data Dispatcher — Section V-A and Figure 13 of the paper.

The dispatcher contains:

* **Address Registers** holding the base address of every embedding table
  in both CPU DRAM and GPU HBM;
* the **Input Classifier**, which consults the EAL (via the Lookup Engine)
  to tag incoming inputs as popular or non-popular;
* the **Memory Controller**, which turns the non-popular µ-batch's lookups
  into DMA read requests (for CPU-resident rows) and ``gpu_rd`` requests
  (for GPU-resident rows);
* a 2.5 MB **input eDRAM** buffering the non-popular µ-batch (enough for
  mini-batches of up to 16 K inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hotset import HotSetIndex, as_hot_set_index
from repro.core.isa import Instruction, Opcode
from repro.hwsim.units import MIB


@dataclass
class AddressRegisters:
    """Base addresses of every embedding table in CPU and GPU memory."""

    cpu_base: dict[int, int] = field(default_factory=dict)
    gpu_base: dict[int, int] = field(default_factory=dict)

    def register_table(self, table: int, cpu_address: int, gpu_address: int) -> None:
        """Record the CPU and GPU base address of one table."""
        if table < 0:
            raise ValueError("table id must be non-negative")
        self.cpu_base[table] = int(cpu_address)
        self.gpu_base[table] = int(gpu_address)

    def cpu_address(self, table: int, row: int, row_bytes: int) -> int:
        """Physical CPU DRAM address of one embedding row."""
        return self.cpu_base[table] + row * row_bytes

    def gpu_address(self, table: int, row: int, row_bytes: int) -> int:
        """GPU HBM address of one (replicated popular) embedding row."""
        return self.gpu_base[table] + row * row_bytes

    @property
    def num_tables(self) -> int:
        """Number of registered tables."""
        return len(self.cpu_base)


@dataclass(frozen=True)
class InputEDRAM:
    """The accelerator's input buffer for the non-popular µ-batch.

    The paper provisions 2.5 MB, sized to hold mini-batches of up to 16 K
    inputs (each input stores its sparse indices and a small header).
    """

    size_bytes: int = int(2.5 * MIB)
    bytes_per_lookup: int = 4
    header_bytes_per_input: int = 8

    def bytes_for(self, num_inputs: int, lookups_per_input: int) -> int:
        """Buffer bytes needed by ``num_inputs`` non-popular inputs."""
        return num_inputs * (
            self.header_bytes_per_input + lookups_per_input * self.bytes_per_lookup
        )

    def fits(self, num_inputs: int, lookups_per_input: int) -> bool:
        """Whether the µ-batch fits in the eDRAM."""
        return self.bytes_for(num_inputs, lookups_per_input) <= self.size_bytes

    def max_inputs(self, lookups_per_input: int) -> int:
        """Largest µ-batch that fits for a given lookups-per-input."""
        per_input = self.header_bytes_per_input + lookups_per_input * self.bytes_per_lookup
        return self.size_bytes // per_input


class DataDispatcher:
    """Generates the memory-request stream for a non-popular µ-batch."""

    def __init__(
        self,
        address_registers: AddressRegisters,
        edram: InputEDRAM | None = None,
        row_bytes: int = 64,
    ):
        self.address_registers = address_registers
        self.edram = edram or InputEDRAM()
        self.row_bytes = row_bytes

    def build_requests(
        self,
        sparse: np.ndarray,
        hot_sets: list[np.ndarray] | HotSetIndex,
    ) -> list[Instruction]:
        """Instruction stream gathering the working set of a µ-batch.

        Rows tracked as popular are read from the GPU replica with
        ``gpu_rd``; all other rows are fetched from CPU DRAM with ``dmard``.
        Duplicate rows within the µ-batch are fetched only once.
        """
        batch, num_tables, pooling = sparse.shape
        index = as_hot_set_index(hot_sets)
        if index.num_tables != num_tables:
            raise ValueError("one hot set per table is required")
        if not self.edram.fits(batch, num_tables * pooling):
            raise ValueError(
                f"µ-batch of {batch} inputs does not fit in the "
                f"{self.edram.size_bytes}-byte input eDRAM"
            )
        instructions: list[Instruction] = []
        for table in range(num_tables):
            rows = np.unique(sparse[:, table, :].reshape(-1))
            hot_rows, cold_rows = index.split_rows(table, rows)
            for row in cold_rows:
                address = self.address_registers.cpu_address(table, int(row), self.row_bytes)
                instructions.append(
                    Instruction(Opcode.DMA_READ, operand1=address, operand2=self.row_bytes)
                )
            for row in hot_rows:
                instructions.append(
                    Instruction(Opcode.GPU_READ, operand1=0, operand2=int(row), table=table)
                )
        return instructions

    def traffic_summary(self, instructions: list[Instruction]) -> dict[str, int]:
        """Bytes requested from CPU DRAM vs GPU HBM for an instruction stream."""
        cpu_bytes = sum(
            instr.operand2 for instr in instructions if instr.opcode == Opcode.DMA_READ
        )
        gpu_rows = sum(1 for instr in instructions if instr.opcode == Opcode.GPU_READ)
        return {
            "cpu_bytes": int(cpu_bytes),
            "gpu_bytes": int(gpu_rows * self.row_bytes),
            "cpu_requests": sum(1 for i in instructions if i.opcode == Opcode.DMA_READ),
            "gpu_requests": gpu_rows,
        }
