"""Single-replica trainers: the baseline and the Hotline µ-batch schedule.

Historically this module owned the whole trainer stack — two hand-rolled
train loops plus result recording.  The loop now lives in
:class:`~repro.core.engine.TrainingEngine`; what remains here are the two
single-replica *step executors*:

* :class:`ReferenceTrainer` — the baseline: one full mini-batch per step
  (conventional DLRM/TBSM training).
* :class:`HotlineTrainer` — the Hotline schedule.  A **learning phase**
  streams a small sampled fraction of mini-batches (~5 %) through the
  accelerator's Embedding Access Logger to identify frequently-accessed
  rows, which become the GPU-resident hot replica of the
  :class:`~repro.core.placement.EmbeddingPlacement`.  In the
  **acceleration phase** every mini-batch is fragmented into a popular and
  a non-popular µ-batch; both are trained, their gradients accumulate, and
  the parameter update is applied once per mini-batch — numerically
  equivalent to the baseline update on the whole mini-batch (Eq. 5;
  verified by the test-suite).  Recalibration points re-enter the learning
  phase and delta-update the placement's hot-set bitmaps in place.

**Fused µ-batch execution (default).**  Since PR 5 the acceleration phase
trains the two µ-batches through one embedding gather and one scatter per
table per step: the forward pools the mini-batch's *original contiguous*
index block once (per-µ-batch views of the pooled output feed the two MLP
passes), and the backward produces both µ-batches' sparse gradients with a
single :func:`~repro.nn.embedding.segmented_scatter`.  The fusion
invariants are (1) the µ-batch index arrays are ascending and partition
the batch, so per-row gradient contributions accumulate in exactly the
per-µ-batch order of the sequential two-pass schedule, (2) the MLP and
interaction passes still run once per µ-batch, in order, so dense
gradients accumulate identically, and (3) the µ-batch copies themselves
are built lazily (the fused path trains through the batch + mask).
Together these make the fused update **bit-identical** to ``fused=False``
— the retained sequential path the parity suite compares against — while
halving the sparse path's kernel launches.

The multi-replica counterpart,
:class:`~repro.core.distributed.ShardedHotlineTrainer`, lives in
:mod:`repro.core.distributed` and plugs into the same engine loop, so the
baseline, Hotline, and K-shard Hotline results are produced by one code
path and differ only in their step executors.

Both executors accept an :class:`~repro.baselines.base.ExecutionModel`
whose simulated step time is split into compute vs collective time through
the :meth:`~repro.baselines.base.ExecutionModel.collective_time` hook, so
accuracy-vs-time curves (Figure 18) and throughput comparisons (Figure 21)
come from a single functional run.
"""

from __future__ import annotations

from repro.baselines.base import ExecutionModel
from repro.core.accelerator import HotlineAccelerator
from repro.core.classifier import MicroBatches, split_minibatch
from repro.core.engine import (
    StepExecutor,
    StepOutcome,
    TrainingEngine,
    TrainingResult,
    evaluate,
)
from repro.core.placement import EmbeddingPlacement
from repro.data.batch import MiniBatch
from repro.data.loader import MiniBatchLoader
from repro.nn.embedding import SparseGradient, merge_sparse_gradients

__all__ = [
    "ReferenceTrainer",
    "HotlineTrainer",
    "TrainingResult",
    "evaluate",
]


class ReferenceTrainer(StepExecutor):
    """Baseline trainer: one full mini-batch per step (DLRM/TBSM default)."""

    def __init__(self, model, lr: float = 0.05, perf_model: ExecutionModel | None = None):
        self.model = model
        self.lr = lr
        self.perf_model = perf_model

    def run_step(self, batch: MiniBatch) -> StepOutcome:
        """One baseline step: forward, backward, update on the whole batch."""
        loss = self.model.train_step(batch, lr=self.lr)
        return self.timed_outcome(self.perf_model, batch.size, loss)

    def train(
        self,
        loader: MiniBatchLoader,
        *,
        epochs: int = 1,
        eval_batch: MiniBatch | None = None,
        eval_every: int = 0,
    ) -> TrainingResult:
        """Train for ``epochs`` epochs, recording losses and AUC."""
        return TrainingEngine(self).train(
            loader, epochs=epochs, eval_batch=eval_batch, eval_every=eval_every
        )


class HotlineTrainer(StepExecutor):
    """Trains a model with the Hotline µ-batch schedule."""

    def __init__(
        self,
        model,
        accelerator: HotlineAccelerator | None = None,
        *,
        lr: float = 0.05,
        sample_fraction: float = 0.05,
        hbm_budget_bytes: float = 512 * 1024 * 1024,
        perf_model: ExecutionModel | None = None,
        fused: bool = True,
    ):
        self.model = model
        self.accelerator = accelerator or HotlineAccelerator(
            row_bytes=model.config.embedding_dim * model.config.dtype_bytes
        )
        self.lr = lr
        self.sample_fraction = sample_fraction
        self.hbm_budget_bytes = hbm_budget_bytes
        self.perf_model = perf_model
        #: Fused µ-batch execution: one embedding gather + one scatter per
        #: table per step (bit-identical to the sequential two-pass path,
        #: which ``fused=False`` keeps selectable for the parity suite).
        self.fused = fused
        self.placement: EmbeddingPlacement | None = None

    # ------------------------------------------------------------------ #
    # Learning phase
    # ------------------------------------------------------------------ #
    def learning_phase(self, loader: MiniBatchLoader, seed: int = 0) -> EmbeddingPlacement:
        """Sample mini-batches, populate the EAL, and build the placement.

        When a placement already exists (recalibration), the freshly tracked
        hot sets are applied as in-place bitmap deltas instead of rebuilding
        the :class:`~repro.core.hotset.HotSetIndex` from scratch.
        """
        sampled = loader.sample_batches(self.sample_fraction, seed=seed)
        for batch in sampled:
            self.accelerator.learn_from_batch(batch.sparse)
        num_tables = self.model.config.num_sparse_features
        hot_sets = self.accelerator.hot_sets(num_tables)
        if self.placement is None:
            self.placement = EmbeddingPlacement(
                hot_sets=hot_sets,
                rows_per_table=self.model.config.dataset.rows_per_table,
                embedding_dim=self.model.config.embedding_dim,
                dtype_bytes=self.model.config.dtype_bytes,
                hbm_budget_bytes=self.hbm_budget_bytes,
            )
        else:
            self.placement.update_hot_sets(hot_sets)
        return self.placement

    def recalibrate(self, loader: MiniBatchLoader, seed: int = 0) -> EmbeddingPlacement:
        """Re-enter the learning phase to follow evolving access skews."""
        self.accelerator.recalibrate()
        return self.learning_phase(loader, seed=seed)

    # ------------------------------------------------------------------ #
    # Acceleration phase
    # ------------------------------------------------------------------ #
    def train_step(self, batch: MiniBatch) -> tuple[float, MicroBatches]:
        """One Hotline training step on a single mini-batch.

        The mini-batch is fragmented into its µ-batches; both are trained
        with gradient accumulation and a single parameter update, which
        keeps the update identical to the baseline's (Eq. 5).  With
        ``fused=True`` (the default) the µ-batches share one embedding
        gather and one scatter per table
        (:meth:`~repro.models.dlrm.DLRM.fused_loss_and_gradients`), which
        is bit-identical to the sequential two-pass loop kept under
        ``fused=False``.
        """
        if self.placement is None:
            raise RuntimeError("learning_phase must run before training")
        # The placement's HotSetIndex was built once when the learning phase
        # (or a recalibration) ran, so each step's classification is one
        # fancy-index per table rather than an np.isin set scan.
        # The fused path trains through the original batch + mask, so the
        # µ-batch copies are built lazily (only if a caller reads them).
        # A mask pre-classified on the loader thread (prepare_batch) is
        # used as-is while its placement fingerprint still matches.
        micro = split_minibatch(
            batch,
            self.placement.index,
            materialize=not self.fused,
            mask=self._take_mask(batch),
        )
        self.model.zero_grad()
        total_loss = 0.0
        if self.fused and batch.size:
            # Normalising by the *full* mini-batch size keeps the accumulated
            # update identical to the baseline's single-step update (Eq. 5).
            losses, table_grads = self.model.fused_loss_and_gradients(
                batch, micro.segment_indices(), normalizer=batch.size
            )
            total_loss = sum(losses)
            merged = [merge_sparse_gradients(grads) for grads in table_grads]
        else:
            partial_sparse: list[list[SparseGradient]] = [
                [] for _ in range(self.model.config.num_sparse_features)
            ]
            for micro_batch in micro.segments():
                loss, sparse_grads = self.model.loss_and_gradients(
                    micro_batch, normalizer=batch.size
                )
                total_loss += loss
                for table, grad in enumerate(sparse_grads):
                    partial_sparse[table].append(grad)
            merged = [merge_sparse_gradients(grads) for grads in partial_sparse]
        self.model.apply_dense_update(self.lr)
        self.model.apply_sparse_updates(merged, self.lr)
        return total_loss, micro

    # ------------------------------------------------------------------ #
    # StepExecutor interface
    # ------------------------------------------------------------------ #
    def bind(self, loader: MiniBatchLoader) -> None:
        """Run the learning phase if no placement exists yet."""
        if self.placement is None:
            self.learning_phase(loader)

    def prepare_batch(self, batch: MiniBatch) -> MiniBatch:
        """Classify a future batch's µ-batches off the critical path.

        Threaded through the loader's ``transform`` hook by the engine:
        with prefetching enabled, batch N+1's popular/non-popular bitmap
        pass runs on the loader's worker thread under batch N's step.  The
        mask is annotated with the placement's identity + version
        fingerprint and discarded by :meth:`train_step` if a recalibration
        mutated the hot sets in between — classification is pure, so the
        precomputed and inline masks are bit-identical whenever the
        fingerprint matches.
        """
        if self.placement is None:
            return batch
        index = self.placement.index
        token = (id(index), index.version)
        batch._hotline_masks = (token, index.classify(batch.sparse))
        return batch

    def _take_mask(self, batch: MiniBatch):
        """The batch's precomputed popular mask, if still valid."""
        annotation = getattr(batch, "_hotline_masks", None)
        if annotation is None:
            return None
        token, mask = annotation
        index = self.placement.index
        if token != (id(index), index.version):
            return None
        return mask

    def run_step(self, batch: MiniBatch) -> StepOutcome:
        """One Hotline step reported to the engine."""
        loss, micro = self.train_step(batch)
        outcome = self.timed_outcome(
            self.perf_model, batch.size, loss, popular_fraction=micro.popular_fraction
        )
        if self.fused:
            # Measured (not inferred) MLP/interaction share of the step.
            outcome.dense_time_s = getattr(self.model, "last_dense_time_s", 0.0)
            outcome.interaction_time_s = getattr(
                self.model, "last_interaction_time_s", 0.0
            )
        return outcome

    def train(
        self,
        loader: MiniBatchLoader,
        *,
        epochs: int = 1,
        eval_batch: MiniBatch | None = None,
        eval_every: int = 0,
        recalibrations_per_epoch: int = 0,
    ) -> TrainingResult:
        """Train for ``epochs`` epochs with the Hotline schedule."""
        return TrainingEngine(self).train(
            loader,
            epochs=epochs,
            eval_batch=eval_batch,
            eval_every=eval_every,
            recalibrations_per_epoch=recalibrations_per_epoch,
        )
