"""The end-to-end Hotline trainer: learning phase + acceleration phase.

This is the *functional* counterpart of :class:`~repro.core.scheduler.
HotlineScheduler`.  It trains an actual numpy DLRM/TBSM model with the
Hotline schedule:

* **learning phase** — a small sampled fraction of mini-batches (~5 %) is
  streamed through the accelerator's Embedding Access Logger to identify
  the frequently-accessed rows; those rows become the GPU-resident hot
  replica of the :class:`~repro.core.placement.EmbeddingPlacement`.
* **acceleration phase** — every mini-batch is fragmented into a popular
  and a non-popular µ-batch; both are trained, their gradients accumulate,
  and the parameter update is applied once per mini-batch — which makes the
  resulting model *numerically equivalent* to the baseline that trains on
  the whole mini-batch at once (Eq. 5; verified by the test-suite).

The trainer also accumulates the simulated wall-clock time of the schedule
through an :class:`~repro.baselines.base.ExecutionModel`, so accuracy-vs-
time curves (Figure 18) and throughput comparisons (Figure 21) come from a
single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import ExecutionModel
from repro.core.accelerator import HotlineAccelerator
from repro.core.classifier import MicroBatches, split_minibatch
from repro.core.placement import EmbeddingPlacement
from repro.data.batch import MiniBatch
from repro.data.loader import MiniBatchLoader
from repro.nn.embedding import SparseGradient, merge_sparse_gradients
from repro.nn.metrics import binary_accuracy, log_loss, roc_auc


@dataclass
class TrainingResult:
    """Outcome of one training run (baseline or Hotline).

    Attributes:
        losses: Per-iteration training loss (sum-reduced BCE).
        auc_history: (iteration, validation AUC) pairs.
        popular_fractions: Per-iteration popular µ-batch fraction (Hotline
            runs only; empty for the baseline).
        simulated_time_s: Simulated wall-clock time of the schedule.
        final_metrics: Final validation accuracy / AUC / log-loss.
    """

    losses: list[float] = field(default_factory=list)
    auc_history: list[tuple[int, float]] = field(default_factory=list)
    popular_fractions: list[float] = field(default_factory=list)
    simulated_time_s: float = 0.0
    final_metrics: dict[str, float] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Number of training iterations performed."""
        return len(self.losses)

    @property
    def mean_popular_fraction(self) -> float:
        """Average popular-input fraction across the run."""
        if not self.popular_fractions:
            return 0.0
        return float(np.mean(self.popular_fractions))


def evaluate(model, batch: MiniBatch) -> dict[str, float]:
    """Validation accuracy, AUC, and log-loss of ``model`` on ``batch``."""
    probabilities = model.predict(batch)
    return {
        "accuracy": binary_accuracy(batch.labels, probabilities),
        "auc": roc_auc(batch.labels, probabilities),
        "logloss": log_loss(batch.labels, probabilities),
    }


class ReferenceTrainer:
    """Baseline trainer: one full mini-batch per step (DLRM/TBSM default)."""

    def __init__(self, model, lr: float = 0.05, perf_model: ExecutionModel | None = None):
        self.model = model
        self.lr = lr
        self.perf_model = perf_model

    def train(
        self,
        loader: MiniBatchLoader,
        *,
        epochs: int = 1,
        eval_batch: MiniBatch | None = None,
        eval_every: int = 0,
    ) -> TrainingResult:
        """Train for ``epochs`` epochs, recording losses and AUC."""
        result = TrainingResult()
        iteration = 0
        for _epoch in range(epochs):
            for batch in loader:
                loss = self.model.train_step(batch, lr=self.lr)
                result.losses.append(loss)
                if self.perf_model is not None:
                    result.simulated_time_s += self.perf_model.step_time(batch.size)
                iteration += 1
                if eval_batch is not None and eval_every and iteration % eval_every == 0:
                    result.auc_history.append((iteration, evaluate(self.model, eval_batch)["auc"]))
        if eval_batch is not None:
            result.final_metrics = evaluate(self.model, eval_batch)
            result.auc_history.append((iteration, result.final_metrics["auc"]))
        return result


class HotlineTrainer:
    """Trains a model with the Hotline µ-batch schedule."""

    def __init__(
        self,
        model,
        accelerator: HotlineAccelerator | None = None,
        *,
        lr: float = 0.05,
        sample_fraction: float = 0.05,
        hbm_budget_bytes: float = 512 * 1024 * 1024,
        perf_model: ExecutionModel | None = None,
    ):
        self.model = model
        self.accelerator = accelerator or HotlineAccelerator(
            row_bytes=model.config.embedding_dim * model.config.dtype_bytes
        )
        self.lr = lr
        self.sample_fraction = sample_fraction
        self.hbm_budget_bytes = hbm_budget_bytes
        self.perf_model = perf_model
        self.placement: EmbeddingPlacement | None = None

    # ------------------------------------------------------------------ #
    # Learning phase
    # ------------------------------------------------------------------ #
    def learning_phase(self, loader: MiniBatchLoader, seed: int = 0) -> EmbeddingPlacement:
        """Sample mini-batches, populate the EAL, and build the placement."""
        sampled = loader.sample_batches(self.sample_fraction, seed=seed)
        for batch in sampled:
            self.accelerator.learn_from_batch(batch.sparse)
        num_tables = self.model.config.num_sparse_features
        hot_sets = self.accelerator.hot_sets(num_tables)
        self.placement = EmbeddingPlacement(
            hot_sets=hot_sets,
            rows_per_table=self.model.config.dataset.rows_per_table,
            embedding_dim=self.model.config.embedding_dim,
            dtype_bytes=self.model.config.dtype_bytes,
            hbm_budget_bytes=self.hbm_budget_bytes,
        )
        return self.placement

    def recalibrate(self, loader: MiniBatchLoader, seed: int = 0) -> EmbeddingPlacement:
        """Re-enter the learning phase to follow evolving access skews."""
        self.accelerator.recalibrate()
        return self.learning_phase(loader, seed=seed)

    # ------------------------------------------------------------------ #
    # Acceleration phase
    # ------------------------------------------------------------------ #
    def train_step(self, batch: MiniBatch) -> tuple[float, MicroBatches]:
        """One Hotline training step on a single mini-batch.

        The mini-batch is fragmented into its µ-batches; both are trained
        with gradient accumulation and a single parameter update, which
        keeps the update identical to the baseline's (Eq. 5).
        """
        if self.placement is None:
            raise RuntimeError("learning_phase must run before training")
        # The placement's HotSetIndex was built once when the learning phase
        # (or a recalibration) ran, so each step's classification is one
        # fancy-index per table rather than an np.isin set scan.
        micro = split_minibatch(batch, self.placement.index)
        self.model.zero_grad()
        total_loss = 0.0
        partial_sparse: list[list[SparseGradient]] = [
            [] for _ in range(self.model.config.num_sparse_features)
        ]
        for micro_batch in (micro.popular, micro.non_popular):
            if micro_batch.size == 0:
                continue
            # Normalising by the *full* mini-batch size keeps the accumulated
            # update identical to the baseline's single-step update (Eq. 5).
            loss, sparse_grads = self.model.loss_and_gradients(
                micro_batch, normalizer=batch.size
            )
            total_loss += loss
            for table, grad in enumerate(sparse_grads):
                partial_sparse[table].append(grad)
        merged = [merge_sparse_gradients(grads) for grads in partial_sparse]
        self.model.apply_dense_update(self.lr)
        self.model.apply_sparse_updates(merged, self.lr)
        return total_loss, micro

    def train(
        self,
        loader: MiniBatchLoader,
        *,
        epochs: int = 1,
        eval_batch: MiniBatch | None = None,
        eval_every: int = 0,
        recalibrations_per_epoch: int = 0,
    ) -> TrainingResult:
        """Train for ``epochs`` epochs with the Hotline schedule."""
        if self.placement is None:
            self.learning_phase(loader)
        result = TrainingResult()
        iteration = 0
        for _epoch in range(epochs):
            steps_per_epoch = len(loader)
            recal_points = set()
            if recalibrations_per_epoch > 0 and steps_per_epoch > recalibrations_per_epoch:
                stride = steps_per_epoch // (recalibrations_per_epoch + 1)
                recal_points = {stride * (i + 1) for i in range(recalibrations_per_epoch)}
            for step_in_epoch, batch in enumerate(loader):
                if step_in_epoch in recal_points:
                    self.recalibrate(loader, seed=iteration)
                loss, micro = self.train_step(batch)
                result.losses.append(loss)
                result.popular_fractions.append(micro.popular_fraction)
                if self.perf_model is not None:
                    result.simulated_time_s += self.perf_model.step_time(batch.size)
                iteration += 1
                if eval_batch is not None and eval_every and iteration % eval_every == 0:
                    result.auc_history.append((iteration, evaluate(self.model, eval_batch)["auc"]))
        if eval_batch is not None:
            result.final_metrics = evaluate(self.model, eval_batch)
            result.auc_history.append((iteration, result.final_metrics["auc"]))
        return result
