"""The Reducer — Section V-D of the paper.

The Reducer is a simple array of arithmetic units (16 in the paper's
configuration, Table IV) that performs the sparse-length element-wise sum:
it pools multiple fetched embedding rows into a single per-sample vector and
stores the result in the Embedding Vector Buffer.  Functionally this is the
EmbeddingBag sum; the class also provides a cycle model used by the
accelerator's timing estimates.
"""

from __future__ import annotations

import numpy as np


class Reducer:
    """Sparse-length-sum pooling unit."""

    def __init__(self, num_alus: int = 16, lanes_per_alu: int = 16):
        if num_alus <= 0 or lanes_per_alu <= 0:
            raise ValueError("ALU count and lane width must be positive")
        self.num_alus = num_alus
        self.lanes_per_alu = lanes_per_alu

    def reduce(self, rows: np.ndarray) -> np.ndarray:
        """Element-wise sum of a (num_rows, dim) stack of embedding rows."""
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D (num_rows, dim) array")
        if rows.shape[0] == 0:
            return np.zeros(rows.shape[1], dtype=rows.dtype)
        return rows.sum(axis=0)

    def reduce_batch(self, rows_per_sample: list[np.ndarray]) -> np.ndarray:
        """Pool each sample's rows; returns a (batch, dim) matrix."""
        if not rows_per_sample:
            raise ValueError("at least one sample is required")
        dim = rows_per_sample[0].shape[1] if rows_per_sample[0].ndim == 2 else rows_per_sample[0].shape[0]
        output = np.zeros((len(rows_per_sample), dim), dtype=np.float64)
        for i, rows in enumerate(rows_per_sample):
            output[i] = self.reduce(np.atleast_2d(rows))
        return output

    def cycles_for(self, num_rows: int, dim: int) -> int:
        """Accelerator cycles to pool ``num_rows`` rows of width ``dim``.

        Each ALU adds ``lanes_per_alu`` elements per cycle; the ALUs work on
        independent rows/segments in parallel.
        """
        if num_rows <= 0 or dim <= 0:
            return 0
        element_ops = num_rows * dim
        ops_per_cycle = self.num_alus * self.lanes_per_alu
        return -(-element_ops // ops_per_cycle)  # ceil division
