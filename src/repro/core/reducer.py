"""Reduction machinery: the accelerator Reducer and the gradient collectives.

Two kinds of reduction live here:

* :class:`Reducer` — Section V-D of the paper: a simple array of arithmetic
  units (16 in the paper's configuration, Table IV) that performs the
  sparse-length element-wise sum, pooling multiple fetched embedding rows
  into a single per-sample vector stored in the Embedding Vector Buffer.
  Functionally this is the EmbeddingBag sum; the class also provides a cycle
  model used by the accelerator's timing estimates.

* The **gradient collectives** used by the multi-replica trainer
  (:mod:`repro.core.distributed`):

  - :class:`GradientBucketReducer` all-reduces the flattened dense gradient
    across K replicas in **fixed-size byte buckets**.  The element-wise sum
    uses one *fixed, deterministic association order* over replica ranks
    (``ring`` = sequential chain, ``tree`` = pairwise recursive halving), so
    the reduced value is bit-identical regardless of how elements are
    packed into buckets — which is what makes sync-mode K-replica training
    bit-identical to the merged-gradient reference and what the
    permutation/bucket-size invariance property suite asserts.  Bucketing
    governs the *communication model*: each bucket is priced with
    :mod:`repro.hwsim.collectives` and the ``mode`` knob decides how much
    of that time is exposed (``sync`` = serial after backward, ``overlap``
    = buckets pipeline behind backward as they become ready, ``stale-k``
    = a k-deep pipeline of in-flight reduces: each reduce has k compute
    windows to hide in and the update lands k steps late; ``stale-0`` ≡
    ``sync``, ``stale-1`` is the PR 3 one-step-late mode).

  - :class:`SparseGradientExchange` merges the per-µ-batch sparse-gradient
    partials of every replica in a single deterministic ``(replica,
    µ-batch)`` order — the accumulation a parameter-less embedding
    all-reduce performs — and, when a
    :class:`~repro.core.placement.PartitionedEmbeddingPlacement` is
    attached, routes each table's merged rows to their owner shards.

  Both collectives preserve the gradient dtype end-to-end (float32 stays
  float32); mixed-dtype partials are rejected rather than silently upcast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import CommOp, StepSchedule, allreduce_ops
from repro.hwsim.cluster import Cluster
from repro.hwsim.collectives import comm_op_time
from repro.nn.embedding import SparseGradient, merge_sparse_gradients


class Reducer:
    """Sparse-length-sum pooling unit."""

    def __init__(self, num_alus: int = 16, lanes_per_alu: int = 16):
        if num_alus <= 0 or lanes_per_alu <= 0:
            raise ValueError("ALU count and lane width must be positive")
        self.num_alus = num_alus
        self.lanes_per_alu = lanes_per_alu

    def reduce(self, rows: np.ndarray) -> np.ndarray:
        """Element-wise sum of a (num_rows, dim) stack of embedding rows."""
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D (num_rows, dim) array")
        if rows.shape[0] == 0:
            return np.zeros(rows.shape[1], dtype=rows.dtype)
        return rows.sum(axis=0)

    def reduce_batch(self, rows_per_sample: list[np.ndarray]) -> np.ndarray:
        """Pool each sample's rows; returns a (batch, dim) matrix."""
        if not rows_per_sample:
            raise ValueError("at least one sample is required")
        first = rows_per_sample[0]
        dim = first.shape[1] if first.ndim == 2 else first.shape[0]
        output = np.zeros((len(rows_per_sample), dim), dtype=np.float64)
        for i, rows in enumerate(rows_per_sample):
            output[i] = self.reduce(np.atleast_2d(rows))
        return output

    def cycles_for(self, num_rows: int, dim: int) -> int:
        """Accelerator cycles to pool ``num_rows`` rows of width ``dim``.

        Each ALU adds ``lanes_per_alu`` elements per cycle; the ALUs work on
        independent rows/segments in parallel.
        """
        if num_rows <= 0 or dim <= 0:
            return 0
        element_ops = num_rows * dim
        ops_per_cycle = self.num_alus * self.lanes_per_alu
        return -(-element_ops // ops_per_cycle)  # ceil division


# ---------------------------------------------------------------------- #
# Gradient collectives (multi-replica training)
# ---------------------------------------------------------------------- #

def parse_staleness(mode: str) -> int:
    """Bounded-staleness depth ``k`` encoded by a reducer mode string.

    ``"sync"`` and ``"overlap"`` carry no staleness (``0``); ``"stale-<k>"``
    carries ``k``.  Raises :class:`ValueError` for anything else, making
    this the single mode validator of the reducer family.
    """
    if mode in ("sync", "overlap"):
        return 0
    if mode.startswith("stale-"):
        suffix = mode[len("stale-") :]
        if suffix.isdigit():
            return int(suffix)
    raise ValueError(
        f"mode must be 'sync', 'overlap', or 'stale-<k>' with integer k >= 0, got {mode!r}"
    )

#: Deterministic reduction orders (association trees over replica ranks).
REDUCE_ALGORITHMS = ("ring", "tree")

#: Bytes each gradient element occupies on the simulated wire (fp32, the
#: convention of ``TrainingCostModel.dense_allreduce_time`` — the functional
#: arrays may be float64, but real systems synchronise fp32 gradients).
WIRE_BYTES_PER_ELEMENT = 4


def _chain_sum(chunks: list[np.ndarray]) -> np.ndarray:
    """Sequential rank-order sum: ``((g0 + g1) + g2) + ...`` (ring order)."""
    total = chunks[0].copy()
    for chunk in chunks[1:]:
        total += chunk
    return total


def _tree_sum(chunks: list[np.ndarray]) -> np.ndarray:
    """Pairwise recursive-halving sum: ``(g0 + g1) + (g2 + g3)`` and so on."""
    level = [chunk.copy() for chunk in chunks]
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            level[i] += level[i + 1]
            merged.append(level[i])
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


@dataclass(frozen=True)
class BucketSchedule:
    """Simulated communication schedule of one bucketed all-reduce.

    Attributes:
        per_bucket_s: Wire time of each bucket's all-reduce, in bucket order.
        exposed_s: The portion of that time that extends the training step
            (not hidden under backward compute) given the reducer's mode.
    """

    per_bucket_s: tuple[float, ...]
    exposed_s: float

    @property
    def total_s(self) -> float:
        """Total wire time across buckets, hidden or not."""
        return float(sum(self.per_bucket_s))


class GradientBucketReducer:
    """Deterministic bucketed all-reduce of flattened dense gradients.

    Args:
        num_replicas: Number of participating data-parallel replicas.
        bucket_bytes: Fixed bucket size in *wire* bytes (fp32 convention, 4
            bytes per gradient element).  The default of 4 MiB matches
            PyTorch DDP's gradient-bucketing default; gradients smaller than
            one bucket degenerate to a single all-reduce.
        mode: ``"sync"`` (communication fully exposed after backward),
            ``"overlap"`` (buckets pipeline behind backward as they become
            ready, only the un-hidden tail is exposed), or ``"stale-<k>"``
            (a k-deep pipeline of in-flight reduces: each step's reduce may
            hide under the next ``k`` compute windows and the trainer
            applies the reduced gradient ``k`` steps late; ``stale-0`` is
            exactly ``sync``, ``stale-1`` the original one-step-late mode).
        algorithm: Association order of the element-wise sum — ``"ring"``
            (sequential chain over ranks, the order a ring reduce-scatter
            accumulates in) or ``"tree"`` (pairwise recursive halving).
            Either way the order is *fixed per element* and independent of
            the bucket layout, so reduced values are bit-stable under
            re-bucketing.
        cluster: Hardware topology pricing the per-bucket wire time.  When
            ``None``, all timing queries report zero (numeric-only use).
    """

    def __init__(
        self,
        num_replicas: int,
        *,
        bucket_bytes: int = 4 * 1024 * 1024,
        mode: str = "sync",
        algorithm: str = "ring",
        cluster: Cluster | None = None,
    ):
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if bucket_bytes < WIRE_BYTES_PER_ELEMENT:
            raise ValueError("bucket_bytes must hold at least one gradient element")
        if algorithm not in REDUCE_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {REDUCE_ALGORITHMS}, got {algorithm!r}"
            )
        self.num_replicas = num_replicas
        self.bucket_bytes = int(bucket_bytes)
        self.mode = mode  # property setter validates and derives staleness
        self.algorithm = algorithm
        self.cluster = cluster

    @property
    def mode(self) -> str:
        """Synchronisation mode string (``sync`` / ``overlap`` / ``stale-<k>``)."""
        return self._mode

    @mode.setter
    def mode(self, value: str) -> None:
        self._staleness = parse_staleness(value)  # validates, incl. mid-run changes
        self._mode = value

    @property
    def staleness(self) -> int:
        """Bounded-staleness depth ``k`` of the mode (0 for sync/overlap)."""
        return self._staleness

    @property
    def signature(self) -> tuple:
        """Value view of everything that determines the timing model.

        Trainers key their cached wire-time schedules on this, so a reducer
        reconfigured mid-run (bucket size, mode, replica count, cluster)
        invalidates the cache instead of reporting stale times.  The
        cluster participates *by value* (it is a frozen dataclass): keying
        on object identity would let a freed-and-reallocated cluster at the
        same address masquerade as the old one.
        """
        return (
            self.num_replicas,
            self.bucket_bytes,
            self.mode,
            self.algorithm,
            self.cluster,
        )

    # ------------------------------------------------------------------ #
    # Bucket layout
    # ------------------------------------------------------------------ #
    @property
    def elements_per_bucket(self) -> int:
        """Gradient elements per bucket at the fp32 wire convention."""
        return max(1, self.bucket_bytes // WIRE_BYTES_PER_ELEMENT)

    def bucket_slices(self, num_elements: int) -> list[slice]:
        """Contiguous element ranges of each bucket for a flat gradient."""
        if num_elements <= 0:
            return []
        step = self.elements_per_bucket
        return [
            slice(start, min(start + step, num_elements))
            for start in range(0, num_elements, step)
        ]

    def num_buckets(self, num_elements: int) -> int:
        """Number of buckets a flat gradient of ``num_elements`` fills."""
        return len(self.bucket_slices(num_elements))

    # ------------------------------------------------------------------ #
    # Numeric reduction
    # ------------------------------------------------------------------ #
    def reduce(self, partials: list[np.ndarray]) -> np.ndarray:
        """Element-wise sum of flat gradient partials, bucket by bucket.

        ``partials`` are the flat dense gradients to combine, in a fixed
        rank-major order.  Replicas may contribute more than one partial
        each: the sync-parity trainer passes one partial per *(replica,
        µ-batch)* pair, so the ring chain reproduces, addition for
        addition, the in-layer accumulation of the merged-gradient
        reference — that is what makes sync-mode K-replica training
        bit-identical to it.  ``num_replicas`` only drives the timing
        model, never the numeric combination.

        The per-element association order is fixed by ``algorithm`` and the
        partial's position — never by the bucket layout — so the result is
        bit-identical for any ``bucket_bytes`` and any permutation of the
        element packing (the property suite asserts both).  The input dtype
        is preserved end-to-end; mixed dtypes are rejected rather than
        silently promoted (the ``merge_sparse_gradients`` dtype-drift class
        of bug).
        """
        if not partials:
            raise ValueError("at least one partial gradient is required")
        arrays = [np.asarray(partial) for partial in partials]
        first = arrays[0]
        if any(a.shape != first.shape for a in arrays):
            raise ValueError("all partial gradients must share one shape")
        if any(a.dtype != first.dtype for a in arrays):
            raise ValueError(
                "all partial gradients must share one dtype; mixed dtypes drift "
                f"precision silently (got {sorted({str(a.dtype) for a in arrays})})"
            )
        combine = _chain_sum if self.algorithm == "ring" else _tree_sum
        reduced = np.empty_like(first)
        for bucket in self.bucket_slices(first.shape[0]):
            reduced[bucket] = combine([a[bucket] for a in arrays])
        if reduced.dtype != first.dtype:  # pragma: no cover - defensive
            raise AssertionError("bucketed reduction must preserve the gradient dtype")
        return reduced

    # ------------------------------------------------------------------ #
    # Simulated timing
    # ------------------------------------------------------------------ #
    def bucket_comm_ops(self, num_bytes: float) -> tuple[CommOp, ...]:
        """Tiered :class:`~repro.core.schedule.CommOp` decomposition of one
        bucket's all-reduce on the attached cluster.

        With no cluster (numeric-only use) or a single replica, nothing
        moves.  Otherwise the decomposition follows the topology — one op
        on a single node, intra+inter on a flat multi-node cluster, three
        levels on a :class:`~repro.hwsim.cluster.HierarchicalTopology` —
        with the ``tree`` algorithm swapping every level's ring for a
        binary tree.
        """
        if self.cluster is None or self.num_replicas <= 1:
            return ()
        kind = "tree_allreduce" if self.algorithm == "tree" else "allreduce"
        return allreduce_ops(self.cluster, num_bytes, self.num_replicas, kind=kind)

    def _bucket_wire_time(self, num_bytes: float) -> float:
        """Wire time of one bucket's all-reduce on the attached cluster."""
        total = 0.0
        for op in self.bucket_comm_ops(num_bytes):
            total += comm_op_time(op, self.cluster)
        return total

    def bucket_times(self, num_elements: int) -> list[float]:
        """Per-bucket all-reduce wire times for a flat gradient.

        A zero-element (or negative) gradient has no buckets and therefore
        an empty — but well-defined — schedule; callers summing it get the
        correct ``0.0`` rather than an error.
        """
        return [
            self._bucket_wire_time((chunk.stop - chunk.start) * WIRE_BYTES_PER_ELEMENT)
            for chunk in self.bucket_slices(num_elements)
        ]

    def exposed_time(self, bucket_times: list[float], compute_window_s: float) -> float:
        """Communication time the step *pays* for, given a compute window.

        * ``sync`` — every bucket is exposed (reduce starts after compute).
        * ``overlap`` — bucket ``i`` becomes ready a fraction ``(i+1)/B``
          into ``compute_window_s`` (gradients materialise as the window
          proceeds) and the link serialises buckets; only the tail that
          outlives the window is exposed.  ``compute_window_s`` is the span
          during which gradients materialise: the trainer passes its whole
          per-step compute time, an *optimistic* simplification (buckets
          cannot really be reduced before backward begins).  Callers with a
          backward-time split should pass that narrower window instead.
        * ``stale-k`` — the reduce of step *t* pipelines behind the next
          ``k`` steps, so it has ``k`` full compute windows to hide in and
          only the remainder, ``max(0, total - k * compute_window_s)``, is
          exposed.  ``stale-0`` degenerates to ``sync`` (nothing to hide
          behind), and ``stale-1`` with a compute window at least as long
          as the wire time reproduces the fully-hidden PR 3 behaviour.

        Edge cases are well-defined zeros rather than schedule surprises:
        an empty ``bucket_times`` (zero-element gradient) exposes ``0.0``
        in every mode, and ``compute_window_s == 0`` exposes the full wire
        time in every mode (there is no window to hide in).  A negative
        compute window is rejected — these paths go live under ``stale-k``.

        The arithmetic itself lives in
        :meth:`~repro.core.schedule.StepSchedule.exposed_time`; this
        method maps the reducer's mode onto the matching schedule
        composition (the golden parity suite pins bit equality with the
        retired inline implementation).
        """
        return self.comm_schedule(bucket_times).exposed_time(compute_window_s)

    def comm_schedule(self, bucket_times: list[float]) -> StepSchedule:
        """Wrap per-bucket wire times in the mode's schedule composition.

        ``sync`` (and its ``stale-0`` alias) maps to ``sequential``,
        ``overlap`` to ``overlap``, and ``stale-k`` with ``k > 0`` to
        ``staged(k)``.
        """
        if self.mode == "overlap":
            return StepSchedule.overlap(bucket_times, label="dense-allreduce")
        if self.staleness > 0:
            return StepSchedule.staged(
                bucket_times, self.staleness, label="dense-allreduce"
            )
        return StepSchedule.sequential(bucket_times, label="dense-allreduce")

    def step_schedule(self, num_elements: int) -> StepSchedule:
        """The priced :class:`~repro.core.schedule.StepSchedule` of one
        step's dense all-reduce over a flat gradient."""
        return self.comm_schedule(self.bucket_times(num_elements))

    def schedule(self, num_elements: int, compute_window_s: float) -> BucketSchedule:
        """The full communication schedule of one step's dense all-reduce."""
        per_bucket = self.bucket_times(num_elements)
        return BucketSchedule(
            per_bucket_s=tuple(per_bucket),
            exposed_s=self.exposed_time(per_bucket, compute_window_s),
        )


class SparseGradientExchange:
    """Deterministic cross-replica merge (and routing) of sparse gradients.

    Embedding tables have no dense all-reduce: every replica contributes the
    per-µ-batch :class:`~repro.nn.embedding.SparseGradient` partials of its
    shard, and the exchange concatenates them in one fixed ``(replica,
    µ-batch)`` order before a single
    :func:`~repro.nn.embedding.merge_sparse_gradients` per table — exactly
    the accumulation the merged-gradient reference performs, which keeps the
    multi-replica sparse update bit-identical to it.

    With a :class:`~repro.core.placement.PartitionedEmbeddingPlacement`
    attached, each table's merged gradient is additionally routed row-wise
    to its owner shards (:meth:`route`), modelling the sparse-gradient
    all-to-all of hybrid data+model parallelism.

    Args:
        num_tables: Number of embedding tables.
        partition: Optional row-wise table partition for routing.
    """

    def __init__(self, num_tables: int, partition=None):
        if num_tables <= 0:
            raise ValueError("num_tables must be positive")
        self.num_tables = num_tables
        self.partition = partition
        #: Total merged gradient rows of the most recent exchange.
        self.last_exchanged_rows: int = 0

    def exchange(self, per_table_partials: list[list[SparseGradient]]) -> list[SparseGradient]:
        """Merge each table's partials (already in deterministic order).

        The merge preserves the partials' value dtype (float32 gradients
        stay float32); a table whose partials disagree on dtype is rejected.
        """
        if len(per_table_partials) != self.num_tables:
            raise ValueError(
                f"expected partial lists for {self.num_tables} tables, "
                f"got {len(per_table_partials)}"
            )
        merged: list[SparseGradient] = []
        rows = 0
        for table, partials in enumerate(per_table_partials):
            dtypes = {partial.values.dtype for partial in partials}
            if len(dtypes) > 1:
                raise ValueError(
                    f"table {table} sparse partials mix dtypes {sorted(map(str, dtypes))}"
                )
            combined = merge_sparse_gradients(partials)
            if partials and combined.values.dtype != partials[0].values.dtype:
                raise AssertionError(
                    "sparse-gradient merge must preserve the partials' dtype"
                )
            merged.append(combined)
            rows += combined.nnz
        self.last_exchanged_rows = rows
        return merged

    def route(self, table: int, grad: SparseGradient) -> list[SparseGradient]:
        """Split one table's merged gradient by owner shard (partitioned runs)."""
        if self.partition is None:
            raise RuntimeError("routing requires a PartitionedEmbeddingPlacement")
        return self.partition.route_gradient(table, grad)
