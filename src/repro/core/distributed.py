"""True multi-replica data/model-parallel Hotline training.

PR 2 made Figure 30 *functional* with a shortcut: one shared numeric
replica stood in for all K data-parallel shards (every shard's update is
identical, so training one model and accumulating gradients in its layers
is numerically the same).  That shortcut cannot express staleness, overlap,
or hybrid data+model parallelism, because there is nothing to desynchronise
and no per-shard parameter state.  This module removes it:

* :class:`ShardedHotlineTrainer` now trains **K genuinely separate model
  replicas** — each :class:`ShardReplica` owns its own dense parameters and
  optimizer state (a deep copy of the template model) plus its own
  accelerator/EAL and EAL-derived placement.
* **Dense gradients** flow through an explicit
  :class:`~repro.core.reducer.GradientBucketReducer`: each replica's
  per-µ-batch flat gradient is a partial, the reducer chain-sums the
  partials bucket by bucket in one fixed rank-major order, and every
  replica applies the same reduced gradient.  The reducer's ``mode`` knob
  selects ``sync`` (communication exposed after backward), ``overlap``
  (buckets pipeline behind backward; numerics unchanged), or ``stale-<k>``
  (a k-deep deque of in-flight reduces: each step's reduce may hide under
  the next k compute windows and the reduced dense gradient lands k steps
  late — ``stale-0`` is exactly ``sync`` and keeps the bit-parity
  guarantee; any ``k > 0`` changes numerics but stays deterministic and
  drift-free).
* **Bounded-staleness embedding pipeline** — with ``lookahead_window=W``
  a :class:`~repro.core.lookahead.CachedEmbeddingPipeline` walks the
  loader's eagerly-drawn epoch order W batches ahead of training
  (BagPipe-style), prefetches the rows upcoming batches touch into a
  coherent per-replica cache (priced via
  :func:`~repro.hwsim.collectives.cache_fill_time`), and defers merged
  sparse-gradient write-backs until a row leaves the window or the
  reducer's staleness bound ``k`` is hit.  With ``k = 0`` the pipeline is
  pure accounting (bit-identical numerics); cache hit/staleness counters
  surface through :class:`~repro.core.engine.StepOutcome`.
* **Sparse gradients** go through
  :class:`~repro.core.reducer.SparseGradientExchange` — per-table merge in
  deterministic ``(replica, µ-batch)`` order, exactly the accumulation a
  parameter-less embedding all-reduce performs.
* With ``partition_embeddings=True`` a
  :class:`~repro.core.placement.PartitionedEmbeddingPlacement` splits every
  table row-wise across the shards (model parallelism).  Ownership drives
  per-shard memory accounting, the priced all-to-all of remotely-owned
  lookups (:func:`~repro.hwsim.collectives.embedding_alltoall_time`), and
  the routing of merged sparse gradients back to their owner shards; each
  replica keeps a coherent full copy, so partitioning changes
  *communication accounting*, never numerics.

**The parity guarantee.**  In ``sync`` (and ``overlap``) mode the K-replica
run is **bit-identical** to the PR 2 merged-gradient trainer, which is kept
here as :class:`MergedGradientShardedTrainer` — the numerical reference the
``tests/core/test_replica_parity.py`` harness compares against for
K ∈ {1, 2, 4} on DLRM and TBSM.  The guarantee holds because every
floating-point addition happens in the same order: each replica's
per-µ-batch gradient partials are chain-summed by the reducer in the same
rank-major sequence the shared model accumulated them in its layers, and
``merge_sparse_gradients`` sees the identical ordered partial list.  All
replicas apply identical updates, so they stay bit-identical to each other
(:meth:`ShardedHotlineTrainer.replica_drift` is exactly zero) — a property
the test harness also asserts.

Simulated time: per-shard compute comes from the perf model; the dense
synchronisation term is the reducer's per-bucket schedule (ring or tree,
hierarchical across nodes), reported per bucket in
:class:`~repro.core.engine.TrainingResult.bucket_comm_s`; partitioned runs
add the embedding all-to-all term Figure 1b attributes to model-parallel
lookups.
"""

from __future__ import annotations

import copy
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Any

import numpy as np

from repro.baselines.base import ExecutionModel
from repro.core.accelerator import HotlineAccelerator
from repro.core.classifier import split_minibatch
from repro.core.engine import StepExecutor, StepOutcome, TrainingEngine, TrainingResult
from repro.core.lookahead import (
    CachedEmbeddingPipeline,
    epoch_row_stream,
    shard_epoch_row_stream,
)
from repro.core.placement import EmbeddingPlacement, PartitionedEmbeddingPlacement
from repro.core.reducer import GradientBucketReducer, SparseGradientExchange
from repro.core.schedule import CommOp, ComposedSchedule, FlatLinks, StepSchedule
from repro.data.batch import MiniBatch
from repro.data.loader import MiniBatchLoader
from repro.hwsim.cluster import Cluster, single_node
from repro.hwsim.collectives import comm_op_time
from repro.nn.embedding import (
    SparseGradient,
    TieredEmbeddingStore,
    merge_sparse_gradients,
)


@dataclass
class ShardReplica:
    """One logical data-parallel replica.

    Attributes:
        accelerator: The shard's Hotline accelerator (its own EAL).
        placement: The shard's EAL-derived embedding placement, built by the
            learning phase.
        model: The replica's own model instance (dense parameters, embedding
            tables, and gradient state).  ``None`` in the merged-gradient
            reference trainer, where one shared instance stands in for all.
    """

    accelerator: HotlineAccelerator
    placement: EmbeddingPlacement | None = None
    model: Any = None


class _ShardedTrainerBase(StepExecutor):
    """Shared scaffolding of the K-shard trainers (learning phase, timing).

    Subclasses provide the synchronisation strategy: the merged-gradient
    reference accumulates into one shared model, the true multi-replica
    trainer reduces explicit per-replica gradients.
    """

    def __init__(
        self,
        model,
        num_shards: int,
        *,
        cluster: Cluster | None = None,
        lr: float = 0.05,
        sample_fraction: float = 0.05,
        hbm_budget_bytes: float = 512 * 1024 * 1024,
        perf_model: ExecutionModel | None = None,
        seed: int = 0,
    ):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.model = model
        self.num_shards = num_shards
        self.cluster = cluster or single_node(num_shards)
        if self.cluster.total_gpus != num_shards:
            raise ValueError(
                f"cluster has {self.cluster.total_gpus} GPUs but {num_shards} shards "
                "were requested (one shard per GPU)"
            )
        self.lr = lr
        self.sample_fraction = sample_fraction
        self.hbm_budget_bytes = hbm_budget_bytes
        self.perf_model = perf_model
        row_bytes = model.config.embedding_dim * model.config.dtype_bytes
        self.replicas: list[ShardReplica] = [
            ShardReplica(accelerator=HotlineAccelerator(row_bytes=row_bytes, seed=seed + k))
            for k in range(num_shards)
        ]

    # ------------------------------------------------------------------ #
    # Learning phase (per shard)
    # ------------------------------------------------------------------ #
    def learning_phase(self, loader: MiniBatchLoader, seed: int = 0) -> list[EmbeddingPlacement]:
        """Profile each shard's slice of the sampled batches into its EAL.

        Every shard sees only its own contiguous slice of each sampled
        mini-batch — the same data it will train on — so its placement
        tracks the skew of *its* partition, exactly as a per-node EAL would.
        """
        sampled = loader.sample_batches(self.sample_fraction, seed=seed)
        for batch in sampled:
            shards = batch.shards(self.num_shards)
            for shard_batch, replica in zip(shards, self.replicas, strict=True):
                if shard_batch.size:
                    replica.accelerator.learn_from_batch(shard_batch.sparse)
        config = self.model.config
        num_tables = config.num_sparse_features
        for replica in self.replicas:
            hot_sets = replica.accelerator.hot_sets(num_tables)
            if replica.placement is None:
                replica.placement = EmbeddingPlacement(
                    hot_sets=hot_sets,
                    rows_per_table=config.dataset.rows_per_table,
                    embedding_dim=config.embedding_dim,
                    dtype_bytes=config.dtype_bytes,
                    hbm_budget_bytes=self.hbm_budget_bytes,
                )
            else:
                replica.placement.update_hot_sets(hot_sets)
        return [replica.placement for replica in self.replicas]

    def recalibrate(self, loader: MiniBatchLoader, seed: int = 0) -> None:
        """Re-enter the learning phase on every shard's EAL."""
        for replica in self.replicas:
            replica.accelerator.recalibrate()
        self.learning_phase(loader, seed=seed)

    # ------------------------------------------------------------------ #
    # Simulated timing
    # ------------------------------------------------------------------ #
    def shard_compute_time(self, batch_size: int) -> float:
        """Simulated compute time of one data-parallel step, sans collective.

        The perf model's cost layer already apportions a *global* batch
        across the cluster's GPUs (one shard each here), so it receives the
        full mini-batch size; dividing by ``num_shards`` first would charge
        each GPU for ``batch/K²`` samples.  The collective term is carved
        out because it is accounted separately (``dense_sync_time`` /
        the reducer's bucket schedule).
        """
        if self.perf_model is None:
            return 0.0
        # Same arithmetic as StepExecutor.timed_outcome's split
        # (step - min(step, collective) == max(0, step - collective)).
        step_time = self.perf_model.step_time(batch_size)
        return max(0.0, step_time - self.perf_model.collective_time())

    # ------------------------------------------------------------------ #
    # StepExecutor interface
    # ------------------------------------------------------------------ #
    def bind(self, loader: MiniBatchLoader) -> None:
        """Run the per-shard learning phase if any shard lacks a placement."""
        if any(replica.placement is None for replica in self.replicas):
            self.learning_phase(loader)

    def train(
        self,
        loader: MiniBatchLoader,
        *,
        epochs: int = 1,
        eval_batch: MiniBatch | None = None,
        eval_every: int = 0,
        recalibrations_per_epoch: int = 0,
    ) -> TrainingResult:
        """Train for ``epochs`` epochs with the sharded Hotline schedule."""
        return TrainingEngine(self).train(
            loader,
            epochs=epochs,
            eval_batch=eval_batch,
            eval_every=eval_every,
            recalibrations_per_epoch=recalibrations_per_epoch,
        )


class MergedGradientShardedTrainer(_ShardedTrainerBase):
    """The PR 2 shared-replica K-shard trainer, kept as the parity reference.

    One shared model instance stands in for all K replicas: every shard's
    µ-batch gradients accumulate in the shared layers (the functional
    equivalent of a dense all-reduce when all updates are identical) and
    per-table sparse gradients merge once across shards.  Because every
    µ-batch is normalised by the *global* mini-batch size, the accumulated
    K-shard update is numerically equivalent to the single-replica update
    (Eq. 5 extended across shards).

    :class:`ShardedHotlineTrainer` must produce **bit-identical** results to
    this trainer in ``sync``/``overlap`` mode — the headline guarantee of
    the replica-parity test harness.  Keep this implementation as-is; it
    plays the same ground-truth role the loop-based ``reference_forward`` /
    ``reference_backward`` play for the vectorised embedding hot path.
    """

    def train_step(self, batch: MiniBatch) -> tuple[float, float]:
        """One merged-gradient step over the K shards of ``batch``.

        Returns:
            ``(loss, popular_fraction)`` summed / averaged over the batch.
        """
        if any(replica.placement is None for replica in self.replicas):
            raise RuntimeError("learning_phase must run before training")
        self.model.zero_grad()
        total_loss = 0.0
        popular_size = 0
        partial_sparse: list[list[SparseGradient]] = [
            [] for _ in range(self.model.config.num_sparse_features)
        ]
        for shard_batch, replica in zip(batch.shards(self.num_shards), self.replicas, strict=True):
            if shard_batch.size == 0:
                continue
            micro = split_minibatch(shard_batch, replica.placement.index)
            popular_size += micro.popular.size
            for micro_batch in (micro.popular, micro.non_popular):
                if micro_batch.size == 0:
                    continue
                # Global-batch normalisation keeps the accumulated K-shard
                # update identical to the single-replica one (Eq. 5).
                loss, sparse_grads = self.model.loss_and_gradients(
                    micro_batch, normalizer=batch.size
                )
                total_loss += loss
                for table, grad in enumerate(sparse_grads):
                    partial_sparse[table].append(grad)
        merged = [merge_sparse_gradients(grads) for grads in partial_sparse]
        self.model.apply_dense_update(self.lr)
        self.model.apply_sparse_updates(merged, self.lr)
        popular_fraction = popular_size / batch.size if batch.size else 0.0
        return total_loss, popular_fraction

    #: ``(config key, wire time)`` of the most recent pricing, or ``None``.
    _dense_sync_time_cache: tuple[tuple, float] | None = None

    def dense_sync_time(self) -> float:
        """Simulated dense all-reduce, priced as one unbucketed collective.

        The wire time is constant while the gradient size, shard count, and
        cluster stay fixed, so it is cached — but the cache is *keyed* on
        that configuration: a trainer reconfigured mid-run (e.g. a swapped
        cluster) re-prices instead of reporting the stale time.
        """
        key = (self.num_shards, self.model.num_dense_parameters, self.cluster)
        if self._dense_sync_time_cache is None or self._dense_sync_time_cache[0] != key:
            reducer = GradientBucketReducer(
                self.num_shards,
                bucket_bytes=max(4, self.model.num_dense_parameters * 4),
                cluster=self.cluster,
            )
            self._dense_sync_time_cache = (
                key,
                reducer.step_schedule(self.model.num_dense_parameters).total_s,
            )
        return self._dense_sync_time_cache[1]

    def run_step(self, batch: MiniBatch) -> StepOutcome:
        """One merged step reported to the engine with its comm term."""
        loss, popular_fraction = self.train_step(batch)
        dense_sync = self.dense_sync_time()
        return StepOutcome(
            loss=loss,
            popular_fraction=popular_fraction,
            compute_time_s=self.shard_compute_time(batch.size),
            communication_time_s=dense_sync,
            comm_lanes_s=(("dense-allreduce", dense_sync),),
        )


class ShardedHotlineTrainer(_ShardedTrainerBase):
    """Hotline training over K genuinely separate model replicas.

    Each replica owns its own dense parameters, optimizer state, embedding
    tables, accelerator, and placement.  Dense gradients synchronise through
    an explicit :class:`~repro.core.reducer.GradientBucketReducer`; sparse
    gradients through a :class:`~repro.core.reducer.SparseGradientExchange`;
    optional row-wise table partitioning adds the model-parallel dimension.

    Args:
        model: Template model.  Replica 0 adopts this exact instance (so the
            caller's reference observes training); replicas 1..K-1 are deep
            copies, bit-identical at start.
        num_shards: Number of data-parallel replicas (one per logical GPU).
        cluster: Hardware topology the shards map onto, one shard per GPU;
            defaults to a single node with ``num_shards`` GPUs.
        lr: SGD learning rate.
        sample_fraction: Learning-phase sampling fraction per shard.
        hbm_budget_bytes: Per-GPU budget for each shard's hot replica.
        perf_model: Optional execution model pricing per-shard compute.
        seed: Base seed; shard k's accelerator is seeded ``seed + k`` so
            the per-shard EALs track their own access streams.
        bucket_bytes: Fixed wire-byte bucket size of the dense all-reduce.
        mode: ``"sync"`` / ``"overlap"`` / ``"stale-<k>"`` — see
            :class:`~repro.core.reducer.GradientBucketReducer`.  ``sync``,
            ``overlap``, and ``stale-0`` are bit-identical to the
            merged-gradient reference; ``stale-k`` (k > 0) applies the
            reduced dense gradient k steps late through a k-deep deque of
            in-flight reduces (deterministic and drift-free, but a
            different trajectory).
        algorithm: ``"ring"`` or ``"tree"`` association order.  Only
            ``"ring"`` carries the bit-parity guarantee (it reproduces the
            reference's sequential accumulation); ``"tree"`` is a
            deterministic alternative that changes the association.
        partition_embeddings: Row-partition every embedding table across the
            K shards (hybrid data+model parallelism).  Affects memory and
            communication accounting only — never numerics.
        lookahead_window: Enable the BagPipe-style
            :class:`~repro.core.lookahead.CachedEmbeddingPipeline` with a
            window of this many batches (0 disables it).  The pipeline
            shares the reducer's staleness bound: sparse write-backs defer
            until a row leaves the window or is k steps stale, so with
            ``sync``/``stale-0`` it is pure accounting (numerics
            untouched).
        reducer: Optional pre-built reducer (overrides ``bucket_bytes`` /
            ``mode`` / ``algorithm``).  The trainer's cluster is
            authoritative for pricing: the reducer is re-pointed at it on
            the first priced step, so a mid-run ``trainer.cluster`` swap
            re-prices every communication term consistently.
        fused: Fused µ-batch execution (default on): each replica trains its
            popular and non-popular µ-batches through one embedding gather
            and one scatter per table
            (:meth:`~repro.models.dlrm.DLRM.fused_loss_and_gradients`),
            while per-µ-batch dense partials and sparse-gradient ordering
            are preserved — bit-identical to the sequential two-pass path
            kept under ``fused=False`` for the parity suite.
        pending_store: Deferred write-back store of the lookahead pipeline
            (``"flat"`` = vectorised flat arrays, ``"reference"`` = the
            dict-based parity reference); forwarded to
            :class:`~repro.core.lookahead.CachedEmbeddingPipeline`.
        parallel_workers: Size of the shared thread pool the K replicas'
            forward/backward passes run on (numpy's BLAS kernels release
            the GIL, so replicas genuinely overlap).  Results are collected
            **by replica index** and assembled in the same replica-major
            order the sequential loop produces, so the reducer and sparse
            exchange see identical ordered partial lists — bit-identical
            numerics for any worker count (the parity suite sweeps K ×
            workers).  ``1`` (default) keeps the sequential in-thread loop.
        per_shard_lookahead: Give each replica its own *accounting*
            lookahead cache keyed to its contiguous shard slice of every
            batch (:func:`~repro.core.lookahead.shard_epoch_row_stream`),
            so per-GPU cache capacity and fill traffic differentiate by
            shard — skewed shards fill more.  The per-shard pipelines
            price the fills (each shard fills its own cache in parallel,
            so the step charges the slowest shard); the global pipeline
            keeps owning the deferral *numerics* but stops pricing fills
            (``price_fills=False``) so no fill is charged twice.
            Requires ``lookahead_window > 0``.
        tiered_hot_bytes: Front every replica's embedding tables with one
            shared :class:`~repro.nn.embedding.TieredEmbeddingStore` of
            this byte capacity (``None`` disables tiering).  The tier is
            built at :meth:`bind`: the learning-phase placement's hot rows
            are pinned resident (they replicate on every device), every
            lookup resolves through the tier (bit-identical numerics —
            pricing and hit/miss/eviction counters only), and LFU
            eviction keeps the resident set within capacity.  Tier
            counters surface through
            :class:`~repro.core.engine.StepOutcome`.  Note the tier hooks
            :meth:`~repro.nn.embedding.EmbeddingBag.forward`; models
            driving a stacked store's fused gather directly bypass it.
    """

    def __init__(
        self,
        model,
        num_shards: int,
        *,
        cluster: Cluster | None = None,
        lr: float = 0.05,
        sample_fraction: float = 0.05,
        hbm_budget_bytes: float = 512 * 1024 * 1024,
        perf_model: ExecutionModel | None = None,
        seed: int = 0,
        bucket_bytes: int = 4 * 1024 * 1024,
        mode: str = "sync",
        algorithm: str = "ring",
        partition_embeddings: bool = False,
        lookahead_window: int = 0,
        reducer: GradientBucketReducer | None = None,
        fused: bool = True,
        pending_store: str = "flat",
        parallel_workers: int = 1,
        dense_batching: str = "replica",
        per_shard_lookahead: bool = False,
        tiered_hot_bytes: float | None = None,
    ):
        super().__init__(
            model,
            num_shards,
            cluster=cluster,
            lr=lr,
            sample_fraction=sample_fraction,
            hbm_budget_bytes=hbm_budget_bytes,
            perf_model=perf_model,
            seed=seed,
        )
        # Replica 0 adopts the caller's instance; the rest start as exact
        # deep copies and stay bit-identical through identical updates.
        self.replicas[0].model = model
        for replica in self.replicas[1:]:
            replica.model = copy.deepcopy(model)
        self.reducer = reducer or GradientBucketReducer(
            num_shards,
            bucket_bytes=bucket_bytes,
            mode=mode,
            algorithm=algorithm,
            cluster=self.cluster,
        )
        config = model.config
        self.partition: PartitionedEmbeddingPlacement | None = None
        if partition_embeddings:
            self.partition = PartitionedEmbeddingPlacement(
                rows_per_table=tuple(config.dataset.rows_per_table),
                num_shards=num_shards,
                embedding_dim=config.embedding_dim,
                dtype_bytes=config.dtype_bytes,
            )
        self.exchange = SparseGradientExchange(
            config.num_sparse_features, partition=self.partition
        )
        if lookahead_window < 0:
            raise ValueError("lookahead_window must be >= 0")
        if per_shard_lookahead and lookahead_window <= 0:
            raise ValueError("per_shard_lookahead requires lookahead_window > 0")
        self.fused = fused
        #: Optional BagPipe-style cached-embedding lookahead pipeline.
        self.lookahead: CachedEmbeddingPipeline | None = None
        #: Per-shard accounting pipelines (empty unless per_shard_lookahead).
        self.shard_lookaheads: list[CachedEmbeddingPipeline] = []
        if lookahead_window > 0:
            self.lookahead = CachedEmbeddingPipeline(
                tuple(config.dataset.rows_per_table),
                window=lookahead_window,
                staleness=self.reducer.staleness,
                row_bytes=config.embedding_dim * config.dtype_bytes,
                # Fills cross the owner all-to-all only when tables are
                # actually partitioned; with fully-replicated tables every
                # shard fills straight from its host DRAM (DMA term only),
                # so a non-partitioned run never pays a remote owner that
                # does not exist.
                num_replicas=num_shards if partition_embeddings else 1,
                link=self._fill_link(),
                pending_store=pending_store,
                # With per-shard caches the fills are priced per shard
                # slice below; the global pipeline keeps the deferral
                # numerics but must not charge the same fill again.
                price_fills=not per_shard_lookahead,
            )
            if per_shard_lookahead:
                self.shard_lookaheads = [
                    CachedEmbeddingPipeline(
                        tuple(config.dataset.rows_per_table),
                        window=lookahead_window,
                        staleness=0,  # accounting-only: never defers
                        row_bytes=config.embedding_dim * config.dtype_bytes,
                        num_replicas=num_shards if partition_embeddings else 1,
                        link=self._fill_link(),
                        pending_store=pending_store,
                    )
                    for _ in range(num_shards)
                ]
        if tiered_hot_bytes is not None and tiered_hot_bytes < 0:
            raise ValueError("tiered_hot_bytes must be >= 0 (or None to disable)")
        #: Byte capacity of the hot embedding tier (None = no tiering).
        self.tiered_hot_bytes = tiered_hot_bytes
        #: The shared hot/cold tier, built at bind() from the placements.
        self.tier: TieredEmbeddingStore | None = None
        #: Tier counters at the end of the previous step (delta tracking).
        self._tier_seen = (0, 0, 0)
        #: Reduced dense gradients in flight (``stale-k``: a k-deep deque —
        #: the gradient of step t is applied at step t + k).
        self._pending_dense: deque[np.ndarray | None] = deque()
        #: Cached per-bucket wire times, keyed on the reducer configuration
        #: and gradient size so a mid-run reconfiguration re-prices.
        self._bucket_times: list[float] | None = None
        self._bucket_times_key: tuple | None = None
        #: Loader bound by the engine (drives the lookahead epoch stream).
        self._bound_loader: MiniBatchLoader | None = None
        self._epoch_step = 0
        #: Remote (non-owned) lookups of the most recent step, all shards.
        self.last_remote_lookups: int = 0
        #: Merged sparse-gradient rows routed to owners in the last step.
        self.last_routed_rows: int = 0
        if parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1")
        #: Thread-pool width for the per-replica forward/backward fan-out.
        self.parallel_workers = parallel_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_width = 0
        #: Per-replica wall time of the most recent step (by replica index).
        self.last_replica_times: tuple[float, ...] = ()
        if dense_batching not in ("replica", "per-replica"):
            raise ValueError(
                "dense_batching must be 'replica' or 'per-replica', "
                f"got {dense_batching!r}"
            )
        #: ``"replica"`` stacks the K sync-mode shards' dense passes into
        #: one model-0 forward/backward over the *global* batch (replicas
        #: hold bit-identical weights in sync mode, so K small GEMMs per
        #: layer become one); falls back per-replica whenever the
        #: preconditions don't hold (stale-k, thread pool, unfused).
        self.dense_batching = dense_batching
        #: Measured dense-section wall seconds of the most recent step,
        #: summed over replicas.
        self.last_dense_time_s = 0.0
        #: Interaction/attention share of ``last_dense_time_s``.
        self.last_interaction_time_s = 0.0

    # ------------------------------------------------------------------ #
    # Dense-gradient plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _flat_dense_gradient(model) -> np.ndarray:
        """The model's accumulated dense gradient as one flat vector."""
        return np.concatenate(
            [grad.ravel() for _param, grad in model.dense_parameters()]
        )

    def _apply_dense_gradient(self, model, flat: np.ndarray) -> None:
        """SGD-update a replica's dense parameters from a reduced flat gradient.

        Applies ``param -= lr * segment`` per parameter — the same arithmetic
        as ``model.apply_dense_update`` on in-layer gradients, which is what
        keeps the replica path bit-identical to the merged reference.
        """
        pairs = model.dense_parameters()
        expected = sum(param.size for param, _grad in pairs)
        if flat.shape[0] != expected:
            raise ValueError(
                f"reduced gradient has {flat.shape[0]} elements, model exposes {expected}"
            )
        offset = 0
        for param, _grad in pairs:
            segment = flat[offset : offset + param.size]
            param -= self.lr * segment.reshape(param.shape)
            offset += param.size

    # ------------------------------------------------------------------ #
    # Lookahead plumbing
    # ------------------------------------------------------------------ #
    def _fill_link(self):
        """The link cache fills travel over (follows the live cluster)."""
        return (
            self.cluster.inter_link
            if self.cluster.num_nodes > 1
            else self.cluster.node.gpu_link
        )

    def bind(self, loader: MiniBatchLoader) -> None:
        """Prepare placements; start the run from a clean staleness state.

        A reused trainer must not leak one run's in-flight synchronisation
        into the next: the dense stale-k deque still holds the last k
        reduces of the previous run, and the lookahead still holds its
        deferred write-backs — both belong to the old schedule and are
        dropped here, so run B's first steps never apply run A's
        gradients.
        """
        super().bind(loader)
        self._bound_loader = loader
        self._epoch_step = 0
        self._pending_dense.clear()
        if self.lookahead is not None:
            self.lookahead.reset()
        for pipe in self.shard_lookaheads:
            pipe.reset()
        if self.tiered_hot_bytes is not None:
            self._build_tier()

    def _build_tier(self) -> None:
        """(Re)build the shared hot/cold tier from the current placements.

        Called at :meth:`bind` so the tier pins the hot rows the learning
        phase just placed; rebinding rebuilds from scratch — fresh
        counters, fresh residency — so a reused trainer never reports a
        previous run's tier traffic (the counter-lifetime contract the
        DMA regression suite pins for the lookahead path).  One tier is
        shared by every replica's tables: it models one device's HBM
        front (replicated hot rows are pinned once), and its lock keeps
        the thread-pooled replica step safe.
        """
        config = self.model.config
        self.tier = TieredEmbeddingStore(
            tuple(config.dataset.rows_per_table),
            config.embedding_dim,
            hot_bytes=float(self.tiered_hot_bytes),
            dtype_bytes=config.dtype_bytes,
        )
        placement = self.replicas[0].placement
        if placement is not None:
            for table, hot in enumerate(placement.hot_sets):
                self.tier.pin_rows(table, hot)
        for replica in self.replicas:
            for table, bag in enumerate(replica.model.tables):
                bag.attach_tier(self.tier, table)
        self._tier_seen = (0, 0, 0)

    def _advance_lookahead(self, batch: MiniBatch) -> None:
        """Drive the cached pipeline's epoch window for one step.

        At each epoch boundary the pipeline restarts on the loader's
        freshly (and eagerly) drawn epoch order; anything still deferred
        from the previous epoch is applied first, *before* this step's
        forward pass, so no gradient is ever lost across epochs.  Without a
        bound loader the pipeline self-feeds (no lookahead, same
        guarantees).
        """
        assert self.lookahead is not None
        # The pipeline shares the reducer's *live* staleness bound and the
        # *live* cluster link, so a mid-run reconfiguration (mode flip,
        # cluster swap) keeps sparse staleness and fill pricing in step
        # with the dense path (defer flushes any over-aged backlog on its
        # own).
        self.lookahead.staleness = self.reducer.staleness
        self.lookahead.link = self._fill_link()
        epoch_len = len(self._bound_loader) if self._bound_loader is not None else 0
        if self._epoch_step == 0 or (epoch_len and self._epoch_step >= epoch_len):
            stream = (
                epoch_row_stream(self._bound_loader)
                if self._bound_loader is not None
                else None
            )
            carry = self.lookahead.begin_epoch(stream)
            if carry is not None:
                for replica in self.replicas:
                    replica.model.apply_sparse_updates(carry, self.lr)
            for shard, pipe in enumerate(self.shard_lookaheads):
                # Accounting-only pipelines (staleness 0, nothing ever
                # deferred): the epoch carry is always None.
                pipe.begin_epoch(
                    shard_epoch_row_stream(self._bound_loader, shard, self.num_shards)
                    if self._bound_loader is not None
                    else None
                )
            self._epoch_step = 0
        self._epoch_step += 1
        self.lookahead.observe(batch.sparse)
        if self.shard_lookaheads:
            # Each shard's cache windows its own contiguous slice — the
            # same bounds arithmetic as MiniBatch.shards — so fill traffic
            # and capacity differentiate by shard.  Empty slices still
            # observe: every pipeline must advance its window every step.
            size = batch.size
            for shard, pipe in enumerate(self.shard_lookaheads):
                lo = (shard * size) // self.num_shards
                hi = ((shard + 1) * size) // self.num_shards
                pipe.observe(batch.sparse[lo:hi])

    # ------------------------------------------------------------------ #
    # Acceleration phase
    # ------------------------------------------------------------------ #
    def _placement_token(self) -> tuple:
        """Identity + version fingerprint of every replica's hot-set index.

        A classification mask computed ahead of time is only valid while
        the bitmaps it was computed against are unchanged; comparing this
        token at consume time catches both in-place recalibration deltas
        (the version counter) and wholesale index replacement (the id).
        """
        return tuple(
            (id(replica.placement.index), replica.placement.index.version)
            for replica in self.replicas
        )

    def prepare_batch(self, batch: MiniBatch) -> MiniBatch:
        """Classify a future batch's shards off the critical path.

        The engine threads this through the loader's ``transform`` hook, so
        with prefetching enabled batch N+1's popular/non-popular bitmap
        pass (the `split_minibatch` classification) runs on the loader's
        worker thread while batch N's backward/optimizer work runs on the
        main thread — the accelerator-lane overlap of the hwsim schedule,
        now on the functional path.  The masks are annotated onto the
        batch together with a placement fingerprint;
        :meth:`train_step` uses them only while the fingerprint still
        matches (a recalibration in the gap invalidates them, and the step
        re-classifies inline).  ``classify`` is pure, so a valid
        precomputed mask is bit-identical to the inline pass — prefetch
        depth can never change numerics.
        """
        if any(replica.placement is None for replica in self.replicas):
            return batch
        token = self._placement_token()
        masks = tuple(
            replica.placement.index.classify(shard_batch.sparse)
            if shard_batch.size
            else None
            for shard_batch, replica in zip(
                batch.shards(self.num_shards), self.replicas, strict=True
            )
        )
        batch._hotline_masks = (token, masks)
        return batch

    def _take_masks(self, batch: MiniBatch) -> tuple | None:
        """The batch's precomputed per-shard masks, if still valid."""
        annotation = getattr(batch, "_hotline_masks", None)
        if annotation is None:
            return None
        token, masks = annotation
        if token != self._placement_token():
            return None
        return masks

    def _replica_step(
        self,
        shard_id: int,
        shard_batch: MiniBatch,
        replica: ShardReplica,
        global_batch_size: int,
        mask: np.ndarray | None,
    ) -> tuple[
        list[float],
        list[np.ndarray],
        list[list[SparseGradient]],
        int,
        int,
        float,
        float,
        float,
    ]:
        """One replica's forward/backward over its shard, thread-safely.

        Touches only per-replica state (the replica's own model and
        placement) plus read-only shared state, so K calls can run
        concurrently on the thread pool.  Returns everything the caller
        needs to assemble the globally-ordered partials:
        ``(per-segment losses, per-segment flat dense partials, per-table
        per-segment sparse partials, popular count, remote lookups, wall
        seconds, dense-section wall seconds, interaction wall seconds)``.
        """
        start = perf_counter()
        remote = (
            self.partition.remote_lookup_count(shard_batch.sparse, shard_id)
            if self.partition is not None
            else 0
        )
        micro = split_minibatch(
            shard_batch,
            replica.placement.index,
            materialize=not self.fused,
            mask=mask,
        )
        losses: list[float] = []
        dense_partials: list[np.ndarray] = []
        if self.fused:
            # Fused µ-batch execution: one embedding gather + scatter per
            # table (or per step, with a stacked store) for the replica's
            # two µ-batches.  The after-segment hook snapshots each
            # µ-batch's flat dense partial and zeroes the layers, so the
            # partials come out in segment order — the caller concatenates
            # them replica-major, the exact order the merged reference
            # accumulates in.  Losses fold in segment order too.
            def after_segment(_s, seg_loss, model=replica.model):
                losses.append(seg_loss)
                dense_partials.append(self._flat_dense_gradient(model))
                model.zero_grad()

            replica.model.zero_grad()
            # Global-batch normalisation keeps the reduced K-replica
            # update identical to the single-replica one (Eq. 5).
            _losses, sparse_partials = replica.model.fused_loss_and_gradients(
                shard_batch,
                micro.segment_indices(),
                normalizer=global_batch_size,
                after_segment=after_segment,
            )
            sparse_partials = [list(grads) for grads in sparse_partials]
        else:
            sparse_partials = [[] for _ in range(shard_batch.num_tables)]
            for micro_batch in micro.segments():
                replica.model.zero_grad()
                loss, sparse_grads = replica.model.loss_and_gradients(
                    micro_batch, normalizer=global_batch_size
                )
                losses.append(loss)
                dense_partials.append(self._flat_dense_gradient(replica.model))
                for table, grad in enumerate(sparse_grads):
                    sparse_partials[table].append(grad)
        return (
            losses,
            dense_partials,
            sparse_partials,
            micro.popular_count,
            remote,
            perf_counter() - start,
            replica.model.last_dense_time_s if self.fused else 0.0,
            replica.model.last_interaction_time_s if self.fused else 0.0,
        )

    def _stacked_replica_step(self, work, batch: MiniBatch) -> list[tuple]:
        """All K shards' dense passes as ONE model-0 pass over the batch.

        In sync (stale-0) mode every replica holds bit-identical weights,
        so instead of K per-shard ``fused_loss_and_gradients`` calls the
        whole mini-batch runs through **replica 0's** model once, with the
        K shards' µ-batch segments offset into global-batch coordinates
        and concatenated in shard order.  With the segment-packed dense
        path this turns K·S small GEMMs per layer into one (K·shard, d)
        GEMM.  Everything observable is bit-identical to the per-replica
        loop: per-(shard, segment) losses, flat dense partials (the
        ``after_segment`` hook yields them in exactly the replica-major
        order the reducer consumes), and per-segment sparse partials (the
        segmented scatters accumulate each segment's lookups in the same
        within-segment flat order as the per-shard scatters).
        Classification still runs per shard against each replica's own
        placement, so the µ-batch split matches the per-replica path.

        Returns per-shard result tuples shaped exactly like
        :meth:`_replica_step`'s, so the caller's replica-major assembly is
        shared.  The single measured wall time is attributed to shards
        proportionally to their row counts (one stacked pass has no
        per-shard walls to measure).
        """
        start = perf_counter()
        bounds = [
            (k * batch.size) // self.num_shards for k in range(self.num_shards + 1)
        ]
        model = self.replicas[0].model
        all_segments: list[np.ndarray] = []
        seg_counts: list[int] = []
        populars: list[int] = []
        remotes: list[int] = []
        for shard_id, shard_batch, replica, _gbs, mask in work:
            remotes.append(
                self.partition.remote_lookup_count(shard_batch.sparse, shard_id)
                if self.partition is not None
                else 0
            )
            micro = split_minibatch(
                shard_batch,
                replica.placement.index,
                materialize=False,
                mask=mask,
            )
            segments = micro.segment_indices()
            all_segments.extend(seg + bounds[shard_id] for seg in segments)
            seg_counts.append(len(segments))
            populars.append(micro.popular_count)
        losses_all: list[float] = []
        dense_all: list[np.ndarray] = []

        def after_segment(_s, seg_loss):
            losses_all.append(seg_loss)
            dense_all.append(self._flat_dense_gradient(model))
            model.zero_grad()

        model.zero_grad()
        _losses, sparse_all = model.fused_loss_and_gradients(
            batch,
            all_segments,
            normalizer=batch.size,
            after_segment=after_segment,
        )
        wall = perf_counter() - start
        dense_s = model.last_dense_time_s
        interaction_s = model.last_interaction_time_s
        results = []
        pos = 0
        for i, (_sid, shard_batch, _replica, _gbs, _mask) in enumerate(work):
            count = seg_counts[i]
            share = shard_batch.size / batch.size if batch.size else 0.0
            results.append(
                (
                    losses_all[pos : pos + count],
                    dense_all[pos : pos + count],
                    [list(grads[pos : pos + count]) for grads in sparse_all],
                    populars[i],
                    remotes[i],
                    wall * share,
                    dense_s * share,
                    interaction_s * share,
                )
            )
            pos += count
        return results

    def _replica_pool(self, width: int) -> ThreadPoolExecutor:
        """The shared replica-stepping pool, (re)built at ``width`` workers."""
        if self._pool is not None and self._pool_width != width:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="replica-step"
            )
            self._pool_width = width
        return self._pool

    def train_step(self, batch: MiniBatch) -> tuple[float, float]:
        """One data-parallel step across the K replicas of ``batch``.

        Each replica classifies its own shard against its own placement and
        contributes one flat dense-gradient partial per µ-batch; the bucket
        reducer chain-sums the partials in rank-major order (bit-identical
        to the merged reference's in-layer accumulation), the sparse
        exchange merges per-table partials in the same order, and every
        replica applies the identical update — so replicas never drift.
        With ``parallel_workers > 1`` the K forward/backward passes run
        concurrently on the shared thread pool; each replica's partials are
        collected into its own slot and assembled in replica-index order
        afterwards, so the reducer/exchange inputs — and therefore the
        numerics — are identical to the sequential loop for any worker
        count.  In ``stale-k`` mode (k > 0) the reduced dense gradient is
        applied ``k`` steps late through a k-deep deque (the first k steps
        apply none), modelling a pipeline of in-flight reduces at the cost
        of staleness; with a lookahead pipeline attached, merged sparse
        gradients defer under the same bound (flush on window exit or at
        age k).  Staleness is uniform across replicas either way, so they
        still never drift.

        Returns:
            ``(loss, popular_fraction)`` summed / averaged over the batch.
        """
        if any(replica.placement is None for replica in self.replicas):
            raise RuntimeError("learning_phase must run before training")
        if self.lookahead is not None:
            self._advance_lookahead(batch)
        precomputed = self._take_masks(batch)
        work: list[tuple[int, MiniBatch, ShardReplica, int, np.ndarray | None]] = []
        for shard_id, (shard_batch, replica) in enumerate(
            zip(batch.shards(self.num_shards), self.replicas, strict=True)
        ):
            if shard_batch.size == 0:
                continue
            mask = precomputed[shard_id] if precomputed is not None else None
            work.append((shard_id, shard_batch, replica, batch.size, mask))
        if (
            self.dense_batching == "replica"
            and self.fused
            and self.reducer.staleness == 0
            and self.parallel_workers == 1
            and len(work) > 1
        ):
            # Sync-mode replicas are bit-identical, so the K shards' dense
            # passes stack into one global-batch pass on replica 0.
            results = self._stacked_replica_step(work, batch)
        elif self.parallel_workers > 1 and len(work) > 1:
            pool = self._replica_pool(min(self.parallel_workers, self.num_shards))
            futures = [pool.submit(self._replica_step, *args) for args in work]
            results = [future.result() for future in futures]
        else:
            results = [self._replica_step(*args) for args in work]

        # Deterministic replica-major assembly: results are walked in
        # replica-index order regardless of thread completion order, and
        # each replica's per-segment losses fold sequentially — the exact
        # addition sequence of the sequential loop.
        total_loss = 0.0
        popular_size = 0
        remote_lookups = 0
        dense_partials: list[np.ndarray] = []
        partial_sparse: list[list[SparseGradient]] = [
            [] for _ in range(self.model.config.num_sparse_features)
        ]
        replica_times = [0.0] * self.num_shards
        dense_time = 0.0
        interaction_time = 0.0
        for (shard_id, _, _, _, _), (
            losses,
            replica_dense,
            replica_sparse,
            popular,
            remote,
            wall_s,
            dense_s,
            interaction_s,
        ) in zip(work, results, strict=True):
            for loss in losses:
                total_loss += loss
            dense_partials.extend(replica_dense)
            for table, grads in enumerate(replica_sparse):
                partial_sparse[table].extend(grads)
            popular_size += popular
            remote_lookups += remote
            replica_times[shard_id] = wall_s
            dense_time += dense_s
            interaction_time += interaction_s
        self.last_replica_times = tuple(replica_times)
        self.last_dense_time_s = dense_time
        self.last_interaction_time_s = interaction_time
        self.last_remote_lookups = remote_lookups

        reduced = self.reducer.reduce(dense_partials) if dense_partials else None
        merged = self.exchange.exchange(partial_sparse)
        if self.partition is not None:
            # The modeled sparse-gradient all-to-all of hybrid parallelism:
            # actually route every table's merged rows to their owner shards
            # and count what arrived, so the reported stat reflects the
            # routing that ran (a partition of the merged rows — the
            # property suite proves the pieces reassemble exactly).
            self.last_routed_rows = sum(
                piece.nnz
                for table, grad in enumerate(merged)
                for piece in self.exchange.route(table, grad)
            )

        # The k-deep staleness pipeline: this step's reduce joins the queue
        # and everything deeper than the *current* bound drains out.  One
        # pop per step in steady state; if the bound shrank mid-run (a
        # reconfigured reducer), the whole backlog drains this step rather
        # than being stranded in the deque — no gradient is ever dropped.
        staleness = self.reducer.staleness
        self._pending_dense.append(reduced)
        dense_updates: list[np.ndarray] = []
        while len(self._pending_dense) > staleness:
            popped = self._pending_dense.popleft()
            if popped is not None:
                dense_updates.append(popped)
        if self.lookahead is not None:
            # Staleness was synced from the reducer in _advance_lookahead;
            # defer flushes any over-aged backlog on its own.
            sparse_updates = self.lookahead.defer(merged)
        else:
            sparse_updates = merged
        for replica in self.replicas:
            for flat in dense_updates:
                self._apply_dense_gradient(replica.model, flat)
            replica.model.apply_sparse_updates(sparse_updates, self.lr)
        popular_fraction = popular_size / batch.size if batch.size else 0.0
        return total_loss, popular_fraction

    # ------------------------------------------------------------------ #
    # End-of-run drain
    # ------------------------------------------------------------------ #
    def finalize(self) -> StepOutcome | None:
        """Apply every in-flight gradient before the final evaluation.

        Drains the stale-k deque of reduced dense gradients (in flight
        order) and the lookahead pipeline's still-deferred sparse
        write-backs (:meth:`~repro.core.lookahead.CachedEmbeddingPipeline.
        drain`), applying both to every replica.  Without this, the last k
        dense reduces and the deferred rows died with the run — so a
        stale-k sweep's final metrics compared models trained on different
        numbers of gradients.  Sync-mode runs have nothing in flight and
        return ``None``.
        """
        # The replica-stepping pool is idle between runs; release its
        # threads here (it is rebuilt lazily if the trainer steps again).
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        dense_updates = [flat for flat in self._pending_dense if flat is not None]
        self._pending_dense.clear()
        sparse_updates = None
        stale_rows = 0
        prefetch = 0.0
        if self.lookahead is not None:
            sparse_updates = self.lookahead.drain()
            if sparse_updates is not None:
                stats = self.lookahead.last_stats
                stale_rows = stats.stale_rows
                prefetch = stats.prefetch_time_s
        if not dense_updates and sparse_updates is None:
            return None
        for replica in self.replicas:
            for flat in dense_updates:
                self._apply_dense_gradient(replica.model, flat)
            if sparse_updates is not None:
                replica.model.apply_sparse_updates(sparse_updates, self.lr)
        # The drain's write-back traffic has no step to hide under, so it
        # is exposed communication in full.
        return StepOutcome(
            loss=0.0,
            communication_time_s=prefetch,
            comm_lanes_s=(("prefetch", prefetch),),
            stale_rows=stale_rows,
            prefetch_time_s=prefetch,
            pending_bytes=(
                self.lookahead.peak_pending_bytes if self.lookahead is not None else 0
            ),
        )

    # ------------------------------------------------------------------ #
    # Replica invariants
    # ------------------------------------------------------------------ #
    def replica_drift(self) -> float:
        """Maximum absolute parameter deviation of any replica from replica 0.

        Identical updates keep replicas bit-identical, so this is exactly
        ``0.0`` in every mode (even ``stale-1`` — staleness is uniform);
        the test harness asserts it.
        """
        reference = self.replicas[0].model
        drift = 0.0
        for replica in self.replicas[1:]:
            for (param, _), (other, _) in zip(
                reference.dense_parameters(), replica.model.dense_parameters(), strict=True
            ):
                drift = max(drift, float(np.max(np.abs(param - other), initial=0.0)))
            for table, other_table in zip(
                reference.tables, replica.model.tables, strict=True
            ):
                drift = max(
                    drift, float(np.max(np.abs(table.weight - other_table.weight), initial=0.0))
                )
        return drift

    # ------------------------------------------------------------------ #
    # Simulated timing
    # ------------------------------------------------------------------ #
    def _step_bucket_times(self) -> list[float]:
        """Per-bucket wire times of one step's dense all-reduce.

        Cached, but keyed on the reducer's configuration signature and the
        gradient size: a reducer reconfigured (or swapped) mid-run — bucket
        bytes, mode, replica count, cluster — re-prices the schedule
        instead of reporting stale wire times.
        """
        # The trainer's cluster is authoritative for *all* of its pricing
        # (dense wire, lookups all-to-all, cache fills): a mid-run
        # ``trainer.cluster`` swap re-prices the bucket schedule too, not
        # just the sparse paths.
        if self.reducer.cluster is not self.cluster:
            self.reducer.cluster = self.cluster
        key = (self.reducer.signature, self.model.num_dense_parameters)
        if self._bucket_times is None or self._bucket_times_key != key:
            self._bucket_times = self.reducer.bucket_times(self.model.num_dense_parameters)
            self._bucket_times_key = key
        return self._bucket_times

    def dense_schedule(self) -> StepSchedule:
        """One step's dense all-reduce as a mode-composed schedule object."""
        return self.reducer.comm_schedule(self._step_bucket_times())

    def dense_sync_time(self) -> float:
        """Total wire time of one step's bucketed dense all-reduce."""
        return self.dense_schedule().total_s

    def alltoall_time(self, remote_lookups: int) -> float:
        """Priced all-to-all of remotely-owned lookups (partitioned runs)."""
        if self.partition is None or remote_lookups <= 0:
            return 0.0
        op = CommOp(
            "embedding_alltoall",
            tier="node",
            rows=float(remote_lookups),
            row_bytes=self.partition.row_bytes,
            participants=self.num_shards,
        )
        return comm_op_time(op, FlatLinks(self._fill_link()))

    # ------------------------------------------------------------------ #
    # StepExecutor interface
    # ------------------------------------------------------------------ #
    def run_step(self, batch: MiniBatch) -> StepOutcome:
        """One replicated step with its per-bucket communication schedule.

        The exposed communication term combines the reducer's bucket
        schedule, the partitioned-lookup all-to-all, and the lookahead
        prefetch tail (fill traffic runs W steps ahead, so only the part
        that outlives one compute window is exposed); the cache and
        staleness counters come straight from the pipeline's step stats.

        With the lookahead attached, the per-lookup all-to-all of
        partitioned runs is *not* charged: every looked-up row sits in the
        window cache, whose fills already paid the owner round-trip
        (:func:`~repro.hwsim.collectives.cache_fill_time`) — the BagPipe
        trade of per-lookup exchange for per-fill prefetch traffic.
        ``last_remote_lookups`` keeps reporting the avoided volume.
        """
        loss, popular_fraction = self.train_step(batch)
        compute = self.shard_compute_time(batch.size)
        bucket_times = self._step_bucket_times()
        dense = self.reducer.comm_schedule(bucket_times)
        stats = self.lookahead.last_stats if self.lookahead is not None else None
        prefetch = stats.prefetch_time_s if stats is not None else 0.0
        if self.shard_lookaheads:
            # K shards fill their caches in parallel: the step waits for
            # the slowest shard's fills, on top of the global pipeline's
            # (fill-unpriced) write-back traffic.
            prefetch += max(
                pipe.last_stats.prefetch_time_s for pipe in self.shard_lookaheads
            )
        lookup_alltoall = (
            0.0 if self.lookahead is not None
            else self.alltoall_time(self.last_remote_lookups)
        )
        # Three independent lanes expose against the same compute window:
        # the mode-composed dense all-reduce, the (fully exposed) lookup
        # all-to-all, and the prefetch traffic that runs one step ahead —
        # a staged(1) schedule, so only the tail outliving one compute
        # window is paid.
        comm = ComposedSchedule(
            (
                dense,
                StepSchedule.sequential((lookup_alltoall,), label="lookup-alltoall"),
                StepSchedule.staged((prefetch,), 1, label="prefetch"),
            )
        )
        tier_hits = tier_misses = tier_evictions = 0
        if self.tier is not None:
            seen = self._tier_seen
            now = (self.tier.hits, self.tier.misses, self.tier.evictions)
            tier_hits, tier_misses, tier_evictions = (
                now[0] - seen[0],
                now[1] - seen[1],
                now[2] - seen[2],
            )
            self._tier_seen = now
        return StepOutcome(
            loss=loss,
            popular_fraction=popular_fraction,
            compute_time_s=compute,
            communication_time_s=comm.exposed_time(compute),
            comm_lanes_s=comm.lane_exposures(compute),
            bucket_times_s=tuple(bucket_times),
            cache_hits=stats.cache_hits if stats is not None else 0,
            cache_misses=stats.cache_misses if stats is not None else 0,
            cache_fill_rows=stats.fill_rows if stats is not None else 0,
            stale_rows=stats.stale_rows if stats is not None else 0,
            prefetch_time_s=prefetch,
            replica_times_s=self.last_replica_times,
            dense_time_s=self.last_dense_time_s,
            interaction_time_s=self.last_interaction_time_s,
            pending_bytes=(
                self.lookahead.peak_pending_bytes if self.lookahead is not None else 0
            ),
            tier_hits=tier_hits,
            tier_misses=tier_misses,
            tier_evictions=tier_evictions,
        )
