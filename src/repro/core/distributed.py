"""Functional data-parallel (K-shard) Hotline training.

The paper's multi-node results (Figure 30) were originally backed only by
the :mod:`repro.hwsim.cluster` timing model — a single replica trained the
model while the cluster math predicted scaling.  This module makes the
scaling *functional*: :class:`ShardedHotlineTrainer` splits every
mini-batch into K contiguous shards (one per logical GPU), runs the full
Hotline schedule per shard — µ-batch classification against that shard's
own EAL-derived :class:`~repro.core.placement.EmbeddingPlacement`, then
``loss_and_gradients`` per µ-batch — and synchronises exactly the way a
data-parallel cluster would:

* **dense gradients** are all-reduced (functionally: summed into the shared
  replica, since every replica applies the same update);
* **sparse gradients** are merged per table with
  :func:`~repro.nn.embedding.merge_sparse_gradients`, the same accumulation
  a parameter-less embedding all-reduce performs.

Because every µ-batch of every shard is normalised by the *global*
mini-batch size, the accumulated K-shard update is numerically equivalent
to the single-replica update (Eq. 5 extended across shards; verified by the
test-suite for K ∈ {1, 2, 4} on DLRM and TBSM).

Simulated time is wired through :mod:`repro.hwsim.collectives`: per-shard
compute comes from the perf model evaluated at the shard's batch size, and
the dense synchronisation term uses
:func:`~repro.hwsim.collectives.allreduce_time` (single node) or
:func:`~repro.hwsim.collectives.hierarchical_allreduce_time` (multi-node),
so Figure 30's scaling curve can be regenerated from a run that actually
trains the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import ExecutionModel
from repro.core.accelerator import HotlineAccelerator
from repro.core.classifier import split_minibatch
from repro.core.engine import StepExecutor, StepOutcome, TrainingEngine, TrainingResult
from repro.core.placement import EmbeddingPlacement
from repro.data.batch import MiniBatch
from repro.data.loader import MiniBatchLoader
from repro.hwsim.cluster import Cluster, single_node
from repro.hwsim.collectives import allreduce_time, hierarchical_allreduce_time
from repro.nn.embedding import SparseGradient, merge_sparse_gradients


@dataclass
class ShardReplica:
    """One logical data-parallel replica: its accelerator and placement.

    Attributes:
        accelerator: The shard's Hotline accelerator (its own EAL).
        placement: The shard's EAL-derived embedding placement, built by the
            learning phase.
    """

    accelerator: HotlineAccelerator
    placement: EmbeddingPlacement | None = None


class ShardedHotlineTrainer(StepExecutor):
    """Hotline training data-parallelised over K logical shards.

    Args:
        model: The shared model replica (functionally, all K replicas —
            identical updates keep them bit-identical, so one instance
            stands in for all).
        num_shards: Number of data-parallel shards (one per logical GPU).
        cluster: Hardware topology the shards map onto, one shard per GPU;
            defaults to a single node with ``num_shards`` GPUs.  Drives the
            simulated all-reduce term.
        lr: SGD learning rate.
        sample_fraction: Learning-phase sampling fraction per shard.
        hbm_budget_bytes: Per-GPU budget for each shard's hot replica.
        perf_model: Optional execution model pricing per-shard compute.
        seed: Base seed; shard k's accelerator is seeded ``seed + k`` so
            the per-shard EALs track their own access streams.
    """

    def __init__(
        self,
        model,
        num_shards: int,
        *,
        cluster: Cluster | None = None,
        lr: float = 0.05,
        sample_fraction: float = 0.05,
        hbm_budget_bytes: float = 512 * 1024 * 1024,
        perf_model: ExecutionModel | None = None,
        seed: int = 0,
    ):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.model = model
        self.num_shards = num_shards
        self.cluster = cluster or single_node(num_shards)
        if self.cluster.total_gpus != num_shards:
            raise ValueError(
                f"cluster has {self.cluster.total_gpus} GPUs but {num_shards} shards "
                "were requested (one shard per GPU)"
            )
        self.lr = lr
        self.sample_fraction = sample_fraction
        self.hbm_budget_bytes = hbm_budget_bytes
        self.perf_model = perf_model
        row_bytes = model.config.embedding_dim * model.config.dtype_bytes
        self.replicas: list[ShardReplica] = [
            ShardReplica(accelerator=HotlineAccelerator(row_bytes=row_bytes, seed=seed + k))
            for k in range(num_shards)
        ]

    # ------------------------------------------------------------------ #
    # Learning phase (per shard)
    # ------------------------------------------------------------------ #
    def learning_phase(self, loader: MiniBatchLoader, seed: int = 0) -> list[EmbeddingPlacement]:
        """Profile each shard's slice of the sampled batches into its EAL.

        Every shard sees only its own contiguous slice of each sampled
        mini-batch — the same data it will train on — so its placement
        tracks the skew of *its* partition, exactly as a per-node EAL would.
        """
        sampled = loader.sample_batches(self.sample_fraction, seed=seed)
        for batch in sampled:
            for shard_batch, replica in zip(batch.shards(self.num_shards), self.replicas):
                if shard_batch.size:
                    replica.accelerator.learn_from_batch(shard_batch.sparse)
        config = self.model.config
        num_tables = config.num_sparse_features
        for replica in self.replicas:
            hot_sets = replica.accelerator.hot_sets(num_tables)
            if replica.placement is None:
                replica.placement = EmbeddingPlacement(
                    hot_sets=hot_sets,
                    rows_per_table=config.dataset.rows_per_table,
                    embedding_dim=config.embedding_dim,
                    dtype_bytes=config.dtype_bytes,
                    hbm_budget_bytes=self.hbm_budget_bytes,
                )
            else:
                replica.placement.update_hot_sets(hot_sets)
        return [replica.placement for replica in self.replicas]

    def recalibrate(self, loader: MiniBatchLoader, seed: int = 0) -> None:
        """Re-enter the learning phase on every shard's EAL."""
        for replica in self.replicas:
            replica.accelerator.recalibrate()
        self.learning_phase(loader, seed=seed)

    # ------------------------------------------------------------------ #
    # Acceleration phase
    # ------------------------------------------------------------------ #
    def train_step(self, batch: MiniBatch) -> tuple[float, float]:
        """One data-parallel step over the K shards of ``batch``.

        Each shard classifies its slice against its own placement and
        accumulates gradients from its µ-batches; dense gradients all-reduce
        by accumulation in the shared replica, per-table sparse gradients
        merge across shards, and the update applies once — numerically
        equivalent to the single-replica step (Eq. 5 across shards).

        Returns:
            ``(loss, popular_fraction)`` summed / averaged over the batch.
        """
        if any(replica.placement is None for replica in self.replicas):
            raise RuntimeError("learning_phase must run before training")
        self.model.zero_grad()
        total_loss = 0.0
        popular_size = 0
        partial_sparse: list[list[SparseGradient]] = [
            [] for _ in range(self.model.config.num_sparse_features)
        ]
        for shard_batch, replica in zip(batch.shards(self.num_shards), self.replicas):
            if shard_batch.size == 0:
                continue
            micro = split_minibatch(shard_batch, replica.placement.index)
            popular_size += micro.popular.size
            for micro_batch in (micro.popular, micro.non_popular):
                if micro_batch.size == 0:
                    continue
                # Global-batch normalisation keeps the accumulated K-shard
                # update identical to the single-replica one (Eq. 5).
                loss, sparse_grads = self.model.loss_and_gradients(
                    micro_batch, normalizer=batch.size
                )
                total_loss += loss
                for table, grad in enumerate(sparse_grads):
                    partial_sparse[table].append(grad)
        merged = [merge_sparse_gradients(grads) for grads in partial_sparse]
        self.model.apply_dense_update(self.lr)
        self.model.apply_sparse_updates(merged, self.lr)
        popular_fraction = popular_size / batch.size if batch.size else 0.0
        return total_loss, popular_fraction

    # ------------------------------------------------------------------ #
    # Simulated timing
    # ------------------------------------------------------------------ #
    def dense_sync_time(self) -> float:
        """Simulated dense-gradient all-reduce across the K shards.

        Ring all-reduce over the intra-node GPU link for a single node;
        hierarchical (intra-ring then inter-ring) when the cluster spans
        nodes — the :mod:`repro.hwsim.collectives` terms Figure 30's scaling
        shape comes from.
        """
        if self.num_shards <= 1:
            return 0.0
        # fp32 dense gradients, matching the 4-byte convention of
        # TrainingCostModel.dense_allreduce_time (dtype_bytes describes the
        # embedding rows, not the synchronised dense gradients).
        grad_bytes = self.model.num_dense_parameters * 4.0
        node = self.cluster.node
        if self.cluster.num_nodes == 1:
            return allreduce_time(grad_bytes, self.num_shards, node.gpu_link)
        return hierarchical_allreduce_time(
            grad_bytes,
            node.num_gpus,
            self.cluster.num_nodes,
            node.gpu_link,
            self.cluster.inter_link,
        )

    def shard_compute_time(self, batch_size: int) -> float:
        """Simulated compute time of one data-parallel step, sans collective.

        The perf model's cost layer already apportions a *global* batch
        across the cluster's GPUs (one shard each here), so it receives the
        full mini-batch size; dividing by ``num_shards`` first would charge
        each GPU for ``batch/K²`` samples.  The collective term is carved
        out because the engine accounts it separately via
        :meth:`dense_sync_time`.
        """
        if self.perf_model is None:
            return 0.0
        # Same arithmetic as StepExecutor.timed_outcome's split
        # (step - min(step, collective) == max(0, step - collective)); the
        # comm term reported alongside comes from dense_sync_time, which
        # prices this trainer's own cluster topology.
        step_time = self.perf_model.step_time(batch_size)
        return max(0.0, step_time - self.perf_model.collective_time())

    # ------------------------------------------------------------------ #
    # StepExecutor interface
    # ------------------------------------------------------------------ #
    def bind(self, loader: MiniBatchLoader) -> None:
        """Run the per-shard learning phase if any shard lacks a placement."""
        if any(replica.placement is None for replica in self.replicas):
            self.learning_phase(loader)

    def run_step(self, batch: MiniBatch) -> StepOutcome:
        """One sharded step reported to the engine with its comm term."""
        loss, popular_fraction = self.train_step(batch)
        return StepOutcome(
            loss=loss,
            popular_fraction=popular_fraction,
            compute_time_s=self.shard_compute_time(batch.size),
            communication_time_s=self.dense_sync_time(),
        )

    def train(
        self,
        loader: MiniBatchLoader,
        *,
        epochs: int = 1,
        eval_batch: MiniBatch | None = None,
        eval_every: int = 0,
        recalibrations_per_epoch: int = 0,
    ) -> TrainingResult:
        """Train for ``epochs`` epochs with the sharded Hotline schedule."""
        return TrainingEngine(self).train(
            loader,
            epochs=epochs,
            eval_batch=eval_batch,
            eval_every=eval_every,
            recalibrations_per_epoch=recalibrations_per_epoch,
        )
