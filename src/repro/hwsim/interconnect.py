"""Interconnect (link) models: PCIe, NVLink, InfiniBand.

The paper's system (Section VI-D) connects GPUs and the Hotline accelerator
over PCIe Gen3 x16, GPUs to each other over NVLink-2.0 (quoted at
2400 Gbit/s aggregate for V100) and nodes over 100 Gbit/s InfiniBand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.units import GB, US, gbit_per_s


@dataclass(frozen=True)
class Link:
    """A point-to-point or switched link.

    Attributes:
        name: Link name.
        bandwidth: Effective unidirectional bandwidth in bytes/second.
        latency_s: Per-message latency in seconds.
        duplex: Whether transfers in both directions proceed at full rate.
    """

    name: str
    bandwidth: float
    latency_s: float
    duplex: bool = True

    def transfer_time(self, num_bytes: float, messages: int = 1) -> float:
        """Time to move ``num_bytes`` split over ``messages`` messages."""
        if num_bytes <= 0:
            return messages * self.latency_s if messages else 0.0
        return messages * self.latency_s + num_bytes / self.bandwidth

    def effective_bandwidth(self, num_bytes: float) -> float:
        """Achieved bandwidth for a transfer of ``num_bytes``."""
        elapsed = self.transfer_time(num_bytes)
        if elapsed <= 0:
            return float("inf")
        return num_bytes / elapsed


PCIE_GEN3_X16 = Link(
    name="PCIe Gen3 x16",
    bandwidth=12.0 * GB,  # ~15.75 GB/s raw, ~12 GB/s achievable
    latency_s=5 * US,
)

NVLINK2 = Link(
    name="NVLink 2.0 (V100)",
    bandwidth=gbit_per_s(2400) * 0.8,  # paper quotes 2400 Gbit/s; 80% achievable
    latency_s=2 * US,
)

INFINIBAND_100G = Link(
    name="InfiniBand EDR 100 Gbit/s",
    bandwidth=gbit_per_s(100) * 0.9,
    latency_s=3 * US,
)
