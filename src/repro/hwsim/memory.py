"""Memory-technology timing models (DDR4, HBM2, eDRAM, SRAM).

Each technology is described by a sustained sequential bandwidth, an
achievable random-access bandwidth (gathers of small rows), and an access
latency.  The numbers follow Table III of the paper (76.8 GB/s DDR4,
900 GB/s HBM2) and typical published figures for on-chip eDRAM/SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.units import GB, NS


@dataclass(frozen=True)
class MemorySpec:
    """Timing model for one memory technology.

    Attributes:
        name: Technology name.
        stream_bandwidth: Sequential bandwidth in bytes/second.
        gather_bandwidth: Achievable bandwidth for random row gathers.
        access_latency_s: Latency of a single access.
    """

    name: str
    stream_bandwidth: float
    gather_bandwidth: float
    access_latency_s: float

    def stream_time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` sequentially."""
        if num_bytes <= 0:
            return 0.0
        return self.access_latency_s + num_bytes / self.stream_bandwidth

    def gather_time(self, num_bytes: float) -> float:
        """Time to gather ``num_bytes`` of scattered small rows."""
        if num_bytes <= 0:
            return 0.0
        return self.access_latency_s + num_bytes / self.gather_bandwidth

    def random_access_time(self, bytes_per_access: int) -> float:
        """Amortised time of one random access of ``bytes_per_access``."""
        return max(self.access_latency_s / 16.0, bytes_per_access / self.gather_bandwidth)


DDR4_SERVER = MemorySpec(
    name="DDR4-2400 (6 channels)",
    stream_bandwidth=76.8 * GB,
    gather_bandwidth=18.0 * GB,
    access_latency_s=90 * NS,
)

HBM2 = MemorySpec(
    name="HBM2",
    stream_bandwidth=900 * GB,
    gather_bandwidth=400 * GB,
    access_latency_s=120 * NS,
)

EDRAM = MemorySpec(
    name="on-accelerator eDRAM",
    stream_bandwidth=100 * GB,
    gather_bandwidth=50 * GB,
    access_latency_s=3 * NS,
)

SRAM_ON_CHIP = MemorySpec(
    name="on-accelerator SRAM",
    stream_bandwidth=400 * GB,
    gather_bandwidth=200 * GB,
    access_latency_s=1 * NS,
)
