"""Cluster topology: nodes of CPU + GPUs, connected by InfiniBand.

Reproduces the paper's system (Section IV / VI-D): each node is a Dell EMC
C4140-class server with one Xeon CPU, four V100 GPUs on NVLink, one Hotline
accelerator on a spare low-profile PCIe slot, and a 100 Gbit/s InfiniBand
NIC for inter-node traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hwsim.device import TESLA_V100, XEON_SILVER_4116, CPUSpec, GPUSpec
from repro.hwsim.interconnect import (
    INFINIBAND_100G,
    NVLINK2,
    PCIE_GEN3_X16,
    Link,
)


@dataclass(frozen=True)
class Node:
    """One server: a CPU, ``num_gpus`` GPUs, and intra-node links.

    Attributes:
        cpu: CPU specification.
        gpu: GPU specification (all GPUs in a node are identical).
        num_gpus: Number of GPUs installed.
        gpu_link: GPU-to-GPU link (NVLink).
        pcie: CPU-to-GPU / accelerator link.
        has_accelerator: Whether a Hotline accelerator occupies a PCIe slot.
    """

    cpu: CPUSpec = XEON_SILVER_4116
    gpu: GPUSpec = TESLA_V100
    num_gpus: int = 4
    gpu_link: Link = NVLINK2
    pcie: Link = PCIE_GEN3_X16
    has_accelerator: bool = True

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError(
                f"a node needs at least one GPU, got num_gpus={self.num_gpus}"
            )

    @property
    def total_hbm_bytes(self) -> float:
        """Aggregate HBM capacity across the node's GPUs."""
        return self.num_gpus * self.gpu.memory_capacity_bytes

    @property
    def total_dram_bytes(self) -> float:
        """CPU DRAM capacity of the node."""
        return self.cpu.memory_capacity_bytes


@dataclass(frozen=True)
class Cluster:
    """A collection of identical nodes connected by an inter-node link."""

    node: Node = field(default_factory=Node)
    num_nodes: int = 1
    inter_link: Link = INFINIBAND_100G

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(
                f"a cluster needs at least one node, got num_nodes={self.num_nodes}"
            )

    def link(self, tier: str) -> Link:
        """Resolve a named link tier for :class:`~repro.core.schedule.CommOp`
        pricing.

        A flat cluster has only two fabrics, so the hierarchical tier
        names collapse onto them: ``"gpu"`` is the intra-node GPU link,
        ``"nic"``/``"node"``/``"spine"`` all resolve to the single
        inter-node link, and ``"pcie"`` is the node's host link.
        """
        if tier == "gpu":
            return self.node.gpu_link
        if tier in ("nic", "node", "spine"):
            return self.inter_link
        if tier == "pcie":
            return self.node.pcie
        raise ValueError(f"unknown link tier {tier!r}")

    @property
    def total_gpus(self) -> int:
        """Total number of GPUs in the cluster."""
        return self.num_nodes * self.node.num_gpus

    @property
    def total_hbm_bytes(self) -> float:
        """Aggregate HBM capacity of the cluster."""
        return self.num_nodes * self.node.total_hbm_bytes

    @property
    def total_dram_bytes(self) -> float:
        """Aggregate CPU DRAM capacity of the cluster."""
        return self.num_nodes * self.node.total_dram_bytes

    def fits_in_hbm(self, num_bytes: float) -> bool:
        """Whether a model of ``num_bytes`` fits in aggregate HBM."""
        return num_bytes <= self.total_hbm_bytes

    def fits_in_dram(self, num_bytes: float) -> bool:
        """Whether a model of ``num_bytes`` fits in aggregate CPU DRAM."""
        return num_bytes <= self.total_dram_bytes


@dataclass(frozen=True)
class HierarchicalTopology:
    """A three-tier fat-tree topology for 1,000+-device sweeps.

    The flat :class:`Cluster` models the paper's testbed: one GPU fabric
    per node, one inter-node link, no contention.  Scaling the fig30
    family past single-digit node counts needs the structure real
    clusters have — GPUs grouped under NICs, several NICs per node, and a
    spine whose aggregate bandwidth is *oversubscribed* relative to the
    sum of the leaf NICs (a 4:1 fat-tree taper is typical).  This class
    names those three levels and resolves the schedule layer's link tiers
    against them:

    * ``"gpu"`` — the NVLink island under one NIC (``gpus_per_nic``
      devices);
    * ``"nic"`` — the intra-node hop between a node's NIC groups
      (``nics_per_node`` participants);
    * ``"spine"`` — the inter-node fabric, priced on a *derated* copy of
      ``nic_link`` whose bandwidth is divided by ``oversubscription``
      (latency is unchanged: the taper removes capacity, not hops).

    A :class:`~repro.core.schedule.CommOp` priced per tier therefore
    costs what it would on the corresponding level of a real fat-tree,
    and :func:`~repro.core.schedule.allreduce_ops` decomposes one logical
    all-reduce into the three-level ring NCCL would run.

    Attributes:
        gpus_per_nic: Devices sharing one NIC (an NVLink island).
        nics_per_node: NIC groups per node.
        num_nodes: Nodes under the spine.
        gpu_link: Intra-island link.
        nic_link: Leaf link between NIC groups and into the spine.
        pcie: Host link of each island.
        oversubscription: Spine taper ratio (``>= 1``); ``1.0`` is a
            non-blocking fabric.
    """

    gpus_per_nic: int = 4
    nics_per_node: int = 1
    num_nodes: int = 1
    gpu_link: Link = NVLINK2
    nic_link: Link = INFINIBAND_100G
    pcie: Link = PCIE_GEN3_X16
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.gpus_per_nic <= 0:
            raise ValueError(
                f"gpus_per_nic must be positive, got {self.gpus_per_nic}"
            )
        if self.nics_per_node <= 0:
            raise ValueError(
                f"nics_per_node must be positive, got {self.nics_per_node}"
            )
        if self.num_nodes <= 0:
            raise ValueError(
                f"a topology needs at least one node, got num_nodes={self.num_nodes}"
            )
        if self.oversubscription <= 0:
            raise ValueError(
                "oversubscription must be a positive taper ratio, got "
                f"{self.oversubscription}"
            )

    @property
    def gpus_per_node(self) -> int:
        """Devices per node across all of its NIC groups."""
        return self.gpus_per_nic * self.nics_per_node

    @property
    def total_gpus(self) -> int:
        """Total devices under the spine."""
        return self.gpus_per_node * self.num_nodes

    @property
    def total_nics(self) -> int:
        """Total leaf NICs feeding the spine."""
        return self.nics_per_node * self.num_nodes

    @property
    def spine_link(self) -> Link:
        """The leaf link derated by the spine's oversubscription ratio."""
        if self.oversubscription == 1.0:
            return self.nic_link
        return Link(
            name=f"{self.nic_link.name} ({self.oversubscription:g}:1 spine)",
            bandwidth=self.nic_link.bandwidth / self.oversubscription,
            latency_s=self.nic_link.latency_s,
            duplex=self.nic_link.duplex,
        )

    def link(self, tier: str) -> Link:
        """Resolve a named link tier for :class:`~repro.core.schedule.CommOp`
        pricing."""
        if tier == "gpu":
            return self.gpu_link
        if tier in ("nic", "node"):
            return self.nic_link
        if tier == "spine":
            return self.spine_link
        if tier == "pcie":
            return self.pcie
        raise ValueError(f"unknown link tier {tier!r}")


def single_node(num_gpus: int = 4, *, has_accelerator: bool = True) -> Cluster:
    """Build the paper's single-node testbed with ``num_gpus`` V100s."""
    return Cluster(node=Node(num_gpus=num_gpus, has_accelerator=has_accelerator), num_nodes=1)


def multi_node(num_nodes: int, gpus_per_node: int = 4, *, has_accelerator: bool = True) -> Cluster:
    """Build the paper's multi-node testbed (4 GPUs/node, InfiniBand)."""
    return Cluster(
        node=Node(num_gpus=gpus_per_node, has_accelerator=has_accelerator),
        num_nodes=num_nodes,
    )
