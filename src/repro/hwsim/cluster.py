"""Cluster topology: nodes of CPU + GPUs, connected by InfiniBand.

Reproduces the paper's system (Section IV / VI-D): each node is a Dell EMC
C4140-class server with one Xeon CPU, four V100 GPUs on NVLink, one Hotline
accelerator on a spare low-profile PCIe slot, and a 100 Gbit/s InfiniBand
NIC for inter-node traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hwsim.device import TESLA_V100, XEON_SILVER_4116, CPUSpec, GPUSpec
from repro.hwsim.interconnect import (
    INFINIBAND_100G,
    NVLINK2,
    PCIE_GEN3_X16,
    Link,
)


@dataclass(frozen=True)
class Node:
    """One server: a CPU, ``num_gpus`` GPUs, and intra-node links.

    Attributes:
        cpu: CPU specification.
        gpu: GPU specification (all GPUs in a node are identical).
        num_gpus: Number of GPUs installed.
        gpu_link: GPU-to-GPU link (NVLink).
        pcie: CPU-to-GPU / accelerator link.
        has_accelerator: Whether a Hotline accelerator occupies a PCIe slot.
    """

    cpu: CPUSpec = XEON_SILVER_4116
    gpu: GPUSpec = TESLA_V100
    num_gpus: int = 4
    gpu_link: Link = NVLINK2
    pcie: Link = PCIE_GEN3_X16
    has_accelerator: bool = True

    @property
    def total_hbm_bytes(self) -> float:
        """Aggregate HBM capacity across the node's GPUs."""
        return self.num_gpus * self.gpu.memory_capacity_bytes

    @property
    def total_dram_bytes(self) -> float:
        """CPU DRAM capacity of the node."""
        return self.cpu.memory_capacity_bytes


@dataclass(frozen=True)
class Cluster:
    """A collection of identical nodes connected by an inter-node link."""

    node: Node = field(default_factory=Node)
    num_nodes: int = 1
    inter_link: Link = INFINIBAND_100G

    @property
    def total_gpus(self) -> int:
        """Total number of GPUs in the cluster."""
        return self.num_nodes * self.node.num_gpus

    @property
    def total_hbm_bytes(self) -> float:
        """Aggregate HBM capacity of the cluster."""
        return self.num_nodes * self.node.total_hbm_bytes

    @property
    def total_dram_bytes(self) -> float:
        """Aggregate CPU DRAM capacity of the cluster."""
        return self.num_nodes * self.node.total_dram_bytes

    def fits_in_hbm(self, num_bytes: float) -> bool:
        """Whether a model of ``num_bytes`` fits in aggregate HBM."""
        return num_bytes <= self.total_hbm_bytes

    def fits_in_dram(self, num_bytes: float) -> bool:
        """Whether a model of ``num_bytes`` fits in aggregate CPU DRAM."""
        return num_bytes <= self.total_dram_bytes


def single_node(num_gpus: int = 4, *, has_accelerator: bool = True) -> Cluster:
    """Build the paper's single-node testbed with ``num_gpus`` V100s."""
    return Cluster(node=Node(num_gpus=num_gpus, has_accelerator=has_accelerator), num_nodes=1)


def multi_node(num_nodes: int, gpus_per_node: int = 4, *, has_accelerator: bool = True) -> Cluster:
    """Build the paper's multi-node testbed (4 GPUs/node, InfiniBand)."""
    return Cluster(
        node=Node(num_gpus=gpus_per_node, has_accelerator=has_accelerator),
        num_nodes=num_nodes,
    )
