"""Cost models for collective communication (all-reduce, all-to-all, ...).

The hybrid and GPU-only baselines rely heavily on collectives:

* data-parallel dense layers synchronise gradients with an **all-reduce**
  (ring algorithm over NVLink within a node, over InfiniBand across nodes);
* model-parallel embeddings in the GPU-only mode exchange looked-up rows
  with an **all-to-all** every iteration (Figure 1b), which the paper shows
  grows to >50 % of multi-node training time (Figure 5).

Hotline eliminates the embedding all-to-all entirely.
"""

from __future__ import annotations

import math

from repro.hwsim.dma import DMAEngine
from repro.hwsim.interconnect import Link


def allreduce_time(num_bytes: float, participants: int, link: Link) -> float:
    """Ring all-reduce time for ``num_bytes`` across ``participants`` devices.

    Uses the standard 2*(p-1)/p bandwidth term plus 2*(p-1) latency hops.
    """
    if participants <= 1 or num_bytes <= 0:
        return 0.0
    p = participants
    bandwidth_term = 2.0 * (p - 1) / p * num_bytes / link.bandwidth
    latency_term = 2.0 * (p - 1) * link.latency_s
    return bandwidth_term + latency_term


def alltoall_time(num_bytes_per_device: float, participants: int, link: Link) -> float:
    """All-to-all exchange where every device sends ``num_bytes_per_device``.

    Each device sends (p-1)/p of its payload to peers; with p-1 concurrent
    flows per device the bottleneck is each device's injection bandwidth.
    """
    if participants <= 1 or num_bytes_per_device <= 0:
        return 0.0
    p = participants
    bandwidth_term = (p - 1) / p * num_bytes_per_device / link.bandwidth
    latency_term = (p - 1) * link.latency_s
    return bandwidth_term + latency_term


def broadcast_time(num_bytes: float, participants: int, link: Link) -> float:
    """Tree broadcast of ``num_bytes`` from one device to all others."""
    if participants <= 1 or num_bytes <= 0:
        return 0.0
    hops = max(1, math.ceil(math.log2(participants)))
    return hops * (link.latency_s + num_bytes / link.bandwidth)


def tree_allreduce_time(num_bytes: float, participants: int, link: Link) -> float:
    """Binary-tree all-reduce: reduce up the tree, then broadcast back down.

    Latency-optimal for small payloads (NCCL switches to trees for small
    buffers and large rings for bandwidth-bound ones), which is why the
    bucketed gradient reducer offers it as an alternative to the ring.
    """
    return 2.0 * broadcast_time(num_bytes, participants, link)


def embedding_alltoall_time(
    num_remote_rows: float, row_bytes: float, participants: int, link: Link
) -> float:
    """Per-step all-to-all cost of remotely-owned embedding lookups.

    With row-wise partitioned tables (model parallelism), every lookup of a
    row owned by another shard is exchanged twice per iteration: the row
    travels to the consumer in the forward pass and its gradient travels
    back to the owner in the backward pass (Figure 1b — the traffic Hotline
    eliminates, priced here so hybrid-parallel runs can report it).  Remote
    rows are assumed evenly spread, so each device injects its ``1/p`` share.
    """
    if participants <= 1 or num_remote_rows <= 0 or row_bytes <= 0:
        return 0.0
    per_device_bytes = num_remote_rows * row_bytes / participants
    return 2.0 * alltoall_time(per_device_bytes, participants, link)


def cache_fill_time(
    num_rows: float,
    row_bytes: float,
    participants: int,
    link: Link,
    dma: DMAEngine | None = None,
) -> float:
    """Per-step cost of prefetching ``num_rows`` rows into a lookahead cache.

    BagPipe-style bounded-staleness training prefetches the embedding rows
    of upcoming batches into a per-replica cache.  Each filled row pays two
    terms:

    * the round-trip exchange with the row's owner — priced with
      :func:`embedding_alltoall_time` (the row travels in at fill time and
      its accumulated gradient travels back at write-back, the same 2x a
      remotely-owned lookup pays);
    * the **cache-fill DMA term** — the host-DRAM gather that materialises
      the scattered rows through the DMA engine before they can be pushed
      to the replicas.  Pass a live :class:`~repro.hwsim.dma.DMAEngine` to
      have its traffic counters track the fills; with ``None`` a transient
      engine prices the transfer without recording it.

    Single-replica runs pay no all-to-all but still pay the DMA gather.
    """
    if num_rows <= 0 or row_bytes <= 0:
        return 0.0
    engine = dma if dma is not None else DMAEngine()
    alltoall = embedding_alltoall_time(num_rows, row_bytes, participants, link)
    return alltoall + engine.read_time(num_rows * row_bytes, scattered=True)


def gather_time(num_bytes_per_device: float, participants: int, link: Link) -> float:
    """Gather of ``num_bytes_per_device`` from each device onto one root."""
    if participants <= 1 or num_bytes_per_device <= 0:
        return 0.0
    total = num_bytes_per_device * (participants - 1)
    return link.latency_s * (participants - 1) + total / link.bandwidth


def hierarchical_allreduce_time(
    num_bytes: float,
    gpus_per_node: int,
    nodes: int,
    intra_link: Link,
    inter_link: Link,
) -> float:
    """Two-level all-reduce: intra-node ring, then inter-node ring, then bcast.

    This matches how NCCL executes multi-node all-reduce on NVLink +
    InfiniBand systems and is what drives the Fig. 5 breakdown shape.
    """
    if num_bytes <= 0:
        return 0.0
    intra = allreduce_time(num_bytes, gpus_per_node, intra_link)
    inter = allreduce_time(num_bytes, nodes, inter_link)
    return intra + inter


def comm_op_time(op, links, dma: DMAEngine | None = None) -> float:
    """Price one :class:`~repro.core.schedule.CommOp` on a tiered topology.

    ``links`` is anything with a ``link(tier)`` method resolving a named
    tier to a :class:`Link` — a :class:`~repro.hwsim.cluster.Cluster`, a
    :class:`~repro.hwsim.cluster.HierarchicalTopology`, or the
    single-link :class:`~repro.core.schedule.FlatLinks` adapter.  Each
    kind dispatches to exactly one of this module's ``*_time`` primitives
    (or, for ``writeback``, one DMA write), so schedule-object pricing is
    bit-identical to calling the primitive directly.  ``dma`` threads a
    live engine through to the fill/write-back kinds so their traffic
    counters keep accumulating; with ``None`` a transient engine prices
    without recording.
    """
    kind = op.kind
    link = links.link(op.tier)
    if kind == "allreduce":
        return allreduce_time(op.num_bytes, op.participants, link)
    if kind == "tree_allreduce":
        return tree_allreduce_time(op.num_bytes, op.participants, link)
    if kind == "alltoall":
        return alltoall_time(op.num_bytes, op.participants, link)
    if kind == "broadcast":
        return broadcast_time(op.num_bytes, op.participants, link)
    if kind == "embedding_alltoall":
        return embedding_alltoall_time(op.rows, op.row_bytes, op.participants, link)
    if kind == "fill":
        return cache_fill_time(op.rows, op.row_bytes, op.participants, link, dma=dma)
    if kind == "writeback":
        num_bytes = op.rows * op.row_bytes
        if num_bytes <= 0:
            return 0.0
        engine = dma if dma is not None else DMAEngine()
        return engine.write_time(num_bytes, scattered=True)
    raise ValueError(f"unknown CommOp kind {kind!r}")
