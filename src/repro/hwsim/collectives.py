"""Cost models for collective communication (all-reduce, all-to-all, ...).

The hybrid and GPU-only baselines rely heavily on collectives:

* data-parallel dense layers synchronise gradients with an **all-reduce**
  (ring algorithm over NVLink within a node, over InfiniBand across nodes);
* model-parallel embeddings in the GPU-only mode exchange looked-up rows
  with an **all-to-all** every iteration (Figure 1b), which the paper shows
  grows to >50 % of multi-node training time (Figure 5).

Hotline eliminates the embedding all-to-all entirely.
"""

from __future__ import annotations

from repro.hwsim.interconnect import Link


def allreduce_time(num_bytes: float, participants: int, link: Link) -> float:
    """Ring all-reduce time for ``num_bytes`` across ``participants`` devices.

    Uses the standard 2*(p-1)/p bandwidth term plus 2*(p-1) latency hops.
    """
    if participants <= 1 or num_bytes <= 0:
        return 0.0
    p = participants
    bandwidth_term = 2.0 * (p - 1) / p * num_bytes / link.bandwidth
    latency_term = 2.0 * (p - 1) * link.latency_s
    return bandwidth_term + latency_term


def alltoall_time(num_bytes_per_device: float, participants: int, link: Link) -> float:
    """All-to-all exchange where every device sends ``num_bytes_per_device``.

    Each device sends (p-1)/p of its payload to peers; with p-1 concurrent
    flows per device the bottleneck is each device's injection bandwidth.
    """
    if participants <= 1 or num_bytes_per_device <= 0:
        return 0.0
    p = participants
    bandwidth_term = (p - 1) / p * num_bytes_per_device / link.bandwidth
    latency_term = (p - 1) * link.latency_s
    return bandwidth_term + latency_term


def broadcast_time(num_bytes: float, participants: int, link: Link) -> float:
    """Tree broadcast of ``num_bytes`` from one device to all others."""
    if participants <= 1 or num_bytes <= 0:
        return 0.0
    import math

    hops = max(1, math.ceil(math.log2(participants)))
    return hops * (link.latency_s + num_bytes / link.bandwidth)


def gather_time(num_bytes_per_device: float, participants: int, link: Link) -> float:
    """Gather of ``num_bytes_per_device`` from each device onto one root."""
    if participants <= 1 or num_bytes_per_device <= 0:
        return 0.0
    total = num_bytes_per_device * (participants - 1)
    return link.latency_s * (participants - 1) + total / link.bandwidth


def hierarchical_allreduce_time(
    num_bytes: float,
    gpus_per_node: int,
    nodes: int,
    intra_link: Link,
    inter_link: Link,
) -> float:
    """Two-level all-reduce: intra-node ring, then inter-node ring, then bcast.

    This matches how NCCL executes multi-node all-reduce on NVLink +
    InfiniBand systems and is what drives the Fig. 5 breakdown shape.
    """
    if num_bytes <= 0:
        return 0.0
    intra = allreduce_time(num_bytes, gpus_per_node, intra_link)
    inter = allreduce_time(num_bytes, nodes, inter_link)
    return intra + inter
