"""Compute-device models: server CPU and data-centre GPU.

Specs follow Table III of the paper (Intel Xeon Silver 4116, NVIDIA Tesla
V100 16 GB).  The efficiency factors capture that dense training kernels do
not reach peak FLOPS and memory-bound kernels do not reach peak bandwidth;
they are calibrated so the baseline step-time breakdown matches the shape of
Figures 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.memory import DDR4_SERVER, HBM2, MemorySpec
from repro.hwsim.units import GIB


@dataclass(frozen=True)
class CPUSpec:
    """A multi-core server CPU with attached DRAM.

    Attributes:
        name: Human-readable part name.
        cores: Number of physical cores.
        frequency_hz: Nominal core clock.
        flops_per_core_per_cycle: Sustained FP32 FLOPs per core per cycle
            (vector units included, calibrated for GEMM-like kernels).
        memory: Attached main-memory specification.
        memory_capacity_bytes: Installed DRAM capacity.
        memory_parallelism: Effective number of concurrent memory streams;
            random-gather workloads (embedding lookups) plateau once this
            many cores issue requests (paper Fig. 8 observation).
        compute_efficiency: Fraction of peak FLOPS achieved by dense kernels.
    """

    name: str
    cores: int
    frequency_hz: float
    flops_per_core_per_cycle: float
    memory: MemorySpec
    memory_capacity_bytes: float
    memory_parallelism: int = 24
    compute_efficiency: float = 0.60

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s across all cores."""
        return self.cores * self.frequency_hz * self.flops_per_core_per_cycle

    def dense_compute_time(self, flops: float, cores: int | None = None) -> float:
        """Time to execute ``flops`` of dense compute on ``cores`` cores."""
        active = self.cores if cores is None else max(1, min(cores, self.cores))
        peak = active * self.frequency_hz * self.flops_per_core_per_cycle
        return flops / (peak * self.compute_efficiency)

    def random_gather_time(
        self, num_accesses: int, bytes_per_access: int, cores: int | None = None
    ) -> float:
        """Time for ``num_accesses`` random DRAM reads of ``bytes_per_access``.

        Random gathers are limited by memory-level parallelism rather than
        core count: beyond ``memory_parallelism`` cores the time plateaus,
        which reproduces the paper's Fig. 8 observation that CPU-based
        segregation stops scaling past ~24 cores.
        """
        active = self.cores if cores is None else max(1, min(cores, self.cores))
        effective_streams = min(active, self.memory_parallelism)
        per_access = self.memory.random_access_time(bytes_per_access)
        return num_accesses * per_access / effective_streams

    def stream_time(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` sequentially through DRAM."""
        return self.memory.stream_time(num_bytes)


@dataclass(frozen=True)
class GPUSpec:
    """A data-parallel accelerator with high-bandwidth memory.

    Attributes:
        name: Human-readable part name.
        peak_flops: Peak FP32 throughput (FLOP/s).
        memory: HBM specification.
        memory_capacity_bytes: HBM capacity.
        compute_efficiency: Fraction of peak reached by the MLP kernels of a
            recommendation model (small GEMMs, so well below peak).
        kernel_launch_overhead_s: Fixed per-kernel launch latency.
    """

    name: str
    peak_flops: float
    memory: MemorySpec
    memory_capacity_bytes: float
    compute_efficiency: float = 0.12
    kernel_launch_overhead_s: float = 20e-6

    def dense_compute_time(self, flops: float, kernels: int = 1) -> float:
        """Time to execute ``flops`` of dense compute as ``kernels`` launches."""
        return flops / (self.peak_flops * self.compute_efficiency) + (
            kernels * self.kernel_launch_overhead_s
        )

    def hbm_gather_time(self, num_bytes: float) -> float:
        """Time to gather ``num_bytes`` of embedding rows from HBM."""
        return self.memory.gather_time(num_bytes)

    def hbm_stream_time(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` through HBM sequentially."""
        return self.memory.stream_time(num_bytes)

    def fits(self, num_bytes: float) -> bool:
        """Whether a tensor of ``num_bytes`` fits in this GPU's memory."""
        return num_bytes <= self.memory_capacity_bytes


XEON_SILVER_4116 = CPUSpec(
    name="Intel Xeon Silver 4116",
    cores=24,
    frequency_hz=2.1e9,
    flops_per_core_per_cycle=16.0,
    memory=DDR4_SERVER,
    memory_capacity_bytes=192 * GIB,
    memory_parallelism=24,
)

TESLA_V100 = GPUSpec(
    name="NVIDIA Tesla V100 16GB",
    peak_flops=14e12,
    memory=HBM2,
    memory_capacity_bytes=16 * GIB,
)

TESLA_V100_32GB = GPUSpec(
    name="NVIDIA Tesla V100 32GB",
    peak_flops=14e12,
    memory=HBM2,
    memory_capacity_bytes=32 * GIB,
)
