"""Unit helpers used throughout the hardware model.

All internal times are seconds, sizes are bytes, bandwidths are bytes/second,
and rates are hertz.  These helpers keep call sites readable.
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

KB = 1_000
MB = 1_000 * KB
GB = 1_000 * MB
TB = 1_000 * GB

US = 1e-6
MS = 1e-3
NS = 1e-9

GHZ = 1e9
MHZ = 1e6

GBPS = GB  # bytes/second when used for bandwidth given in GB/s


def gbit_per_s(gbits: float) -> float:
    """Convert a link speed quoted in Gbit/s into bytes/second."""
    return gbits * 1e9 / 8.0


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return seconds * 1e3


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms * 1e-3
