"""Hardware timing and energy simulation substrate.

The paper evaluates Hotline on a real server (Intel Xeon Silver 4116,
4x NVIDIA V100, PCIe Gen3 x16, NVLink-2.0, 100 Gbps InfiniBand).  This
package provides an analytic/discrete-event model of that hardware so the
performance experiments (Figs. 3-5, 7-8, 19-26, 28-30) can be reproduced
without the physical testbed.

The model is intentionally simple and calibrated to first-order effects:
bandwidth-bound transfers, compute-bound dense layers, and collective
communication costs.  All figures in the paper are ratio/shape claims, which
this level of modelling preserves.
"""

from repro.hwsim.cluster import (
    Cluster,
    HierarchicalTopology,
    Node,
    multi_node,
    single_node,
)
from repro.hwsim.collectives import (
    allreduce_time,
    alltoall_time,
    broadcast_time,
    comm_op_time,
    embedding_alltoall_time,
    gather_time,
    hierarchical_allreduce_time,
    tree_allreduce_time,
)
from repro.hwsim.device import (
    TESLA_V100,
    TESLA_V100_32GB,
    XEON_SILVER_4116,
    CPUSpec,
    GPUSpec,
)
from repro.hwsim.dma import DMAEngine
from repro.hwsim.energy import (
    HOTLINE_ENERGY_MODEL,
    AcceleratorEnergyModel,
    ComponentEnergy,
)
from repro.hwsim.interconnect import (
    INFINIBAND_100G,
    NVLINK2,
    PCIE_GEN3_X16,
    Link,
)
from repro.hwsim.memory import DDR4_SERVER, EDRAM, HBM2, SRAM_ON_CHIP, MemorySpec
from repro.hwsim.trace import Event, Timeline

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "XEON_SILVER_4116",
    "TESLA_V100",
    "TESLA_V100_32GB",
    "MemorySpec",
    "DDR4_SERVER",
    "HBM2",
    "EDRAM",
    "SRAM_ON_CHIP",
    "Link",
    "PCIE_GEN3_X16",
    "NVLINK2",
    "INFINIBAND_100G",
    "DMAEngine",
    "allreduce_time",
    "alltoall_time",
    "broadcast_time",
    "comm_op_time",
    "embedding_alltoall_time",
    "gather_time",
    "hierarchical_allreduce_time",
    "tree_allreduce_time",
    "Node",
    "Cluster",
    "HierarchicalTopology",
    "single_node",
    "multi_node",
    "Event",
    "Timeline",
    "ComponentEnergy",
    "AcceleratorEnergyModel",
    "HOTLINE_ENERGY_MODEL",
]
