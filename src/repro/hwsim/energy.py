"""Area, power, and energy model for the Hotline accelerator.

The paper synthesises the accelerator RTL with Synopsys DC at 350 MHz in a
45 nm node and uses Cacti for the memory macros, reporting a total area of
7.01 mm^2 and an average energy of 132 mJ (Table IV), with the EAL SRAM
dominating both area and power (Figure 29).  This module encodes a
per-component breakdown consistent with those totals so Figure 29 can be
regenerated, plus the perf/Watt comparison helper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentEnergy:
    """Area and power of one accelerator component.

    Attributes:
        name: Component name.
        area_mm2: Silicon area in mm^2 (45 nm).
        power_w: Average power in watts at 350 MHz.
    """

    name: str
    area_mm2: float
    power_w: float


@dataclass(frozen=True)
class AcceleratorEnergyModel:
    """Breakdown of the Hotline accelerator's area and power."""

    components: tuple[ComponentEnergy, ...]
    frequency_hz: float = 350e6

    @property
    def total_area_mm2(self) -> float:
        """Total silicon area."""
        return sum(component.area_mm2 for component in self.components)

    @property
    def total_power_w(self) -> float:
        """Total average power."""
        return sum(component.power_w for component in self.components)

    def area_breakdown(self) -> dict[str, float]:
        """Area per component, as a fraction of the total."""
        total = self.total_area_mm2
        return {c.name: c.area_mm2 / total for c in self.components}

    def power_breakdown(self) -> dict[str, float]:
        """Power per component, as a fraction of the total."""
        total = self.total_power_w
        return {c.name: c.power_w / total for c in self.components}

    def energy_joules(self, runtime_s: float) -> float:
        """Energy consumed over ``runtime_s`` seconds of activity."""
        return self.total_power_w * runtime_s

    def dominant_component(self) -> str:
        """Name of the component with the largest area (the EAL SRAM)."""
        return max(self.components, key=lambda c: c.area_mm2).name


def perf_per_watt_gain(
    speedup: float,
    baseline_power_w: float,
    added_power_w: float,
) -> float:
    """Performance/Watt improvement of a system that adds an accelerator.

    ``speedup`` is throughput gain over the baseline; the accelerator adds
    ``added_power_w`` on top of ``baseline_power_w`` (CPU + GPUs).
    """
    if baseline_power_w <= 0:
        raise ValueError("baseline power must be positive")
    return speedup * baseline_power_w / (baseline_power_w + added_power_w)


# Component breakdown calibrated to Table IV totals (7.01 mm^2).  The EAL's
# 4 MB multi-banked SRAM dominates, followed by the 2.5 MB input eDRAM, the
# 64 lookup engines, the 16 reducer ALUs, and control/interface logic.
HOTLINE_ENERGY_MODEL = AcceleratorEnergyModel(
    components=(
        ComponentEnergy("Embedding Access Logger (4MB SRAM)", area_mm2=3.60, power_w=2.10),
        ComponentEnergy("Input eDRAM (2.5MB)", area_mm2=1.55, power_w=0.85),
        ComponentEnergy("Lookup Engine Array (64)", area_mm2=0.95, power_w=0.70),
        ComponentEnergy("Reducer ALUs (16)", area_mm2=0.36, power_w=0.30),
        ComponentEnergy("Embedding Vector Buffer (0.5kB)", area_mm2=0.05, power_w=0.05),
        ComponentEnergy("Dispatcher + control + PCIe interface", area_mm2=0.50, power_w=0.45),
    ),
)
