"""DMA engine model.

The Hotline accelerator sits on a low-profile PCIe slot and uses the host's
DMA engine (through the PCIe switch) to read not-frequently-accessed
embedding rows from CPU DRAM and push the reduced vectors to the GPUs
(Figure 10 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hwsim.interconnect import PCIE_GEN3_X16, Link
from repro.hwsim.memory import DDR4_SERVER, MemorySpec


@dataclass
class DMAEngine:
    """Models DMA transfers between CPU DRAM and a PCIe-attached device.

    A DMA read of embedding rows pays the DRAM gather cost (the rows are
    scattered) plus the PCIe transfer cost; the two stages are pipelined so
    the total is the max of the two plus one latency term.

    Attributes:
        link: The PCIe link used by the device.
        dram: The host DRAM the engine reads from / writes to.
        setup_latency_s: Fixed descriptor-setup cost per DMA request batch.

    **Counter lifetime.**  ``bytes_read`` / ``bytes_written`` /
    ``requests`` accumulate for the life of the engine — pricing calls
    never reset them.  An owner that reports per-run traffic (the
    lookahead pipeline, a rebindable trainer) must call
    :meth:`reset_counters` at the start of each run; forgetting to do so
    on rebind makes run B report run A's traffic (the regression the
    ``bind()`` counter-lifetime tests pin).
    """

    link: Link = PCIE_GEN3_X16
    dram: MemorySpec = DDR4_SERVER
    setup_latency_s: float = 2e-6
    bytes_read: float = field(default=0.0, init=False)
    bytes_written: float = field(default=0.0, init=False)
    requests: int = field(default=0, init=False)

    def read_time(self, num_bytes: float, *, scattered: bool = True) -> float:
        """Time to DMA ``num_bytes`` from host DRAM to the device."""
        if num_bytes <= 0:
            return 0.0
        self.bytes_read += num_bytes
        self.requests += 1
        dram_time = (
            self.dram.gather_time(num_bytes) if scattered else self.dram.stream_time(num_bytes)
        )
        pcie_time = self.link.transfer_time(num_bytes)
        return self.setup_latency_s + max(dram_time, pcie_time)

    def write_time(self, num_bytes: float, *, scattered: bool = True) -> float:
        """Time to DMA ``num_bytes`` from the device back to host DRAM."""
        if num_bytes <= 0:
            return 0.0
        self.bytes_written += num_bytes
        self.requests += 1
        dram_time = (
            self.dram.gather_time(num_bytes) if scattered else self.dram.stream_time(num_bytes)
        )
        pcie_time = self.link.transfer_time(num_bytes)
        return self.setup_latency_s + max(dram_time, pcie_time)

    def reset_counters(self) -> None:
        """Zero the traffic counters."""
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.requests = 0
