"""Event timeline used to build pipeline schedules and latency breakdowns.

Schedulers (Hotline and baselines) emit :class:`Event` records onto a
:class:`Timeline`.  The timeline knows how to compute the makespan, per-lane
utilisation, and per-category time breakdowns — those breakdowns are exactly
what Figures 3, 4, 5 and 20 of the paper plot.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """One scheduled activity on a hardware resource lane.

    Attributes:
        lane: Resource name, e.g. ``"gpu0"``, ``"cpu"``, ``"pcie"``, ``"accel"``.
        category: Breakdown category, e.g. ``"mlp"``, ``"embedding"``,
            ``"comm"``, ``"alltoall"``, ``"optimizer"``, ``"overhead"``.
        start: Start time in seconds.
        duration: Duration in seconds.
        label: Optional human-readable description.
    """

    lane: str
    category: str
    start: float
    duration: float
    label: str = ""

    @property
    def end(self) -> float:
        """End time of the event."""
        return self.start + self.duration


class Timeline:
    """An append-only collection of events with aggregate queries."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def add(
        self,
        lane: str,
        category: str,
        start: float,
        duration: float,
        label: str = "",
    ) -> Event:
        """Append an event and return it."""
        if duration < 0:
            raise ValueError(f"event duration must be non-negative, got {duration}")
        event = Event(lane=lane, category=category, start=start, duration=duration, label=label)
        self._events.append(event)
        return event

    def extend(self, events: Iterable[Event]) -> None:
        """Append many pre-built events."""
        for event in events:
            self._events.append(event)

    @property
    def events(self) -> tuple[Event, ...]:
        """All events in insertion order."""
        return tuple(self._events)

    def makespan(self) -> float:
        """End time of the last event (0 for an empty timeline)."""
        if not self._events:
            return 0.0
        return max(event.end for event in self._events)

    def lane_end(self, lane: str) -> float:
        """Latest end time on one lane (0 if the lane has no events)."""
        ends = [event.end for event in self._events if event.lane == lane]
        return max(ends) if ends else 0.0

    def lane_busy_time(self, lane: str) -> float:
        """Total busy time on one lane (events are assumed non-overlapping)."""
        return sum(event.duration for event in self._events if event.lane == lane)

    def category_breakdown(self) -> dict[str, float]:
        """Total duration per category across all lanes."""
        totals: dict[str, float] = defaultdict(float)
        for event in self._events:
            totals[event.category] += event.duration
        return dict(totals)

    def category_fractions(self) -> dict[str, float]:
        """Category totals normalised to sum to 1.0."""
        totals = self.category_breakdown()
        grand = sum(totals.values())
        if grand <= 0:
            return {key: 0.0 for key in totals}
        return {key: value / grand for key, value in totals.items()}

    def utilisation(self, lane: str) -> float:
        """Busy fraction of a lane relative to the overall makespan."""
        span = self.makespan()
        if span <= 0:
            return 0.0
        return self.lane_busy_time(lane) / span
