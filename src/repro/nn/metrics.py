"""Evaluation metrics: ROC AUC, binary accuracy, and log loss.

These are the metrics reported by the paper's Table V and Figure 18 (AUC is
the MLPerf-recommended metric for Criteo-style CTR tasks).
"""

from __future__ import annotations

import numpy as np


def roc_auc(targets: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney U) formula.

    Ties in the scores receive the average rank, matching the behaviour of
    scikit-learn's ``roc_auc_score``.
    """
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if targets.shape != scores.shape:
        raise ValueError("targets and scores must have the same shape")
    positives = targets > 0.5
    num_pos = int(positives.sum())
    num_neg = int(targets.shape[0] - num_pos)
    if num_pos == 0 or num_neg == 0:
        raise ValueError("AUC is undefined when only one class is present")

    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    ranks = np.empty_like(sorted_scores)
    i = 0
    n = sorted_scores.shape[0]
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[i : j + 1] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_of = np.empty(n, dtype=np.float64)
    rank_of[order] = ranks
    rank_sum_pos = rank_of[positives].sum()
    auc = (rank_sum_pos - num_pos * (num_pos + 1) / 2.0) / (num_pos * num_neg)
    return float(auc)


def binary_accuracy(targets: np.ndarray, scores: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of predictions on the correct side of ``threshold``."""
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    predictions = (scores >= threshold).astype(np.float64)
    return float((predictions == targets).mean())


def log_loss(targets: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross-entropy of predicted probabilities."""
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    probabilities = np.clip(np.asarray(probabilities, dtype=np.float64).reshape(-1), eps, 1 - eps)
    losses = -(targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities))
    return float(losses.mean())
