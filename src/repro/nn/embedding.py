"""Embedding tables with bag (sum-pooling) lookups and sparse gradients.

Each sparse categorical feature of a recommendation model has one
EmbeddingBag.  A lookup takes, for every sample in the batch, a (possibly
multi-hot) list of row indices and returns the pooled (summed) embedding
vector.  The backward pass produces a *sparse* gradient — one row of
gradient per unique accessed index — mirroring how DLRM updates embeddings
and how Hotline updates rows in place on either the CPU or the GPU copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import init


@dataclass
class SparseGradient:
    """Sparse gradient for one embedding table.

    Attributes:
        indices: Unique row indices that received gradient, shape (k,).
        values: Gradient rows aligned with ``indices``, shape (k, dim).
    """

    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.indices.shape[0] != self.values.shape[0]:
            raise ValueError("indices and values must have the same leading dimension")

    @property
    def nnz(self) -> int:
        """Number of rows carrying gradient."""
        return int(self.indices.shape[0])

    def restricted_to(self, allowed: np.ndarray) -> "SparseGradient":
        """Gradient restricted to rows contained in ``allowed``."""
        mask = np.isin(self.indices, allowed)
        return SparseGradient(self.indices[mask], self.values[mask])


def merge_sparse_gradients(grads: list[SparseGradient]) -> SparseGradient:
    """Sum several sparse gradients for the same table into one.

    Rows appearing in more than one gradient have their values added, which
    is exactly what happens when a mini-batch's gradient is accumulated from
    the gradients of its µ-batches (Eq. 5 of the paper).
    """
    non_empty = [grad for grad in grads if grad.nnz]
    if not non_empty:
        dim = grads[0].values.shape[1] if grads else 0
        return SparseGradient(np.empty(0, dtype=np.int64), np.empty((0, dim)))
    all_indices = np.concatenate([grad.indices for grad in non_empty])
    all_values = np.concatenate([grad.values for grad in non_empty], axis=0)
    unique, inverse = np.unique(all_indices, return_inverse=True)
    merged = np.zeros((unique.shape[0], all_values.shape[1]), dtype=all_values.dtype)
    np.add.at(merged, inverse, all_values)
    return SparseGradient(unique, merged)


class EmbeddingBag:
    """One embedding table with sum pooling over multi-hot lookups."""

    def __init__(self, num_rows: int, dim: int, rng: np.random.Generator, name: str = ""):
        if num_rows <= 0 or dim <= 0:
            raise ValueError("embedding table must have positive rows and dim")
        self.num_rows = num_rows
        self.dim = dim
        self.name = name or f"emb_{num_rows}x{dim}"
        self.weight = init.embedding_uniform(num_rows, dim, rng)
        self._last_indices: list[np.ndarray] | None = None

    def forward(self, indices_per_sample: list[np.ndarray]) -> np.ndarray:
        """Sum-pool the rows selected by each sample.

        Args:
            indices_per_sample: One integer array of row indices per sample.

        Returns:
            Array of shape (batch, dim) with the pooled embeddings.
        """
        batch = len(indices_per_sample)
        out = np.zeros((batch, self.dim), dtype=self.weight.dtype)
        for i, idx in enumerate(indices_per_sample):
            if len(idx) == 0:
                continue
            out[i] = self.weight[idx].sum(axis=0)
        self._last_indices = [np.asarray(idx, dtype=np.int64) for idx in indices_per_sample]
        return out

    def backward(self, grad_output: np.ndarray) -> SparseGradient:
        """Compute the sparse gradient for the last forward pass.

        With sum pooling, every row accessed by sample ``i`` receives
        ``grad_output[i]``; gradients of rows accessed by several samples
        accumulate.
        """
        if self._last_indices is None:
            raise RuntimeError("backward called before forward")
        if grad_output.shape[0] != len(self._last_indices):
            raise ValueError("grad_output batch size does not match the last forward batch")
        all_indices: list[np.ndarray] = []
        all_grads: list[np.ndarray] = []
        for i, idx in enumerate(self._last_indices):
            if len(idx) == 0:
                continue
            all_indices.append(idx)
            all_grads.append(np.repeat(grad_output[i : i + 1], len(idx), axis=0))
        if not all_indices:
            return SparseGradient(np.empty(0, dtype=np.int64), np.empty((0, self.dim)))
        flat_indices = np.concatenate(all_indices)
        flat_grads = np.concatenate(all_grads, axis=0)
        unique, inverse = np.unique(flat_indices, return_inverse=True)
        values = np.zeros((unique.shape[0], self.dim), dtype=grad_output.dtype)
        np.add.at(values, inverse, flat_grads)
        return SparseGradient(unique, values)

    def apply_sparse_update(self, grad: SparseGradient, lr: float) -> None:
        """SGD update of only the rows present in ``grad``."""
        if grad.nnz == 0:
            return
        self.weight[grad.indices] -= lr * grad.values

    def rows_bytes(self, num_rows: int | None = None, dtype_bytes: int = 4) -> float:
        """Memory footprint of ``num_rows`` rows (default: the whole table)."""
        rows = self.num_rows if num_rows is None else num_rows
        return float(rows) * self.dim * dtype_bytes

    @property
    def num_parameters(self) -> int:
        """Number of scalar parameters in the table."""
        return self.num_rows * self.dim
