"""Embedding tables with bag (sum-pooling) lookups and sparse gradients.

Each sparse categorical feature of a recommendation model has one
EmbeddingBag.  A lookup takes the whole mini-batch's ``(batch, pooling)``
block of row indices and returns the pooled (summed) embedding vector per
sample.  The backward pass produces a *sparse* gradient — one row of
gradient per unique accessed index — mirroring how DLRM updates embeddings
and how Hotline updates rows in place on either the CPU or the GPU copy.

The forward/backward hot path is fully vectorised: a single gather +
``sum(axis=1)`` forward and one flat ``np.add.at`` scatter backward, the
way HugeCTR and CacheEmbedding flatten multi-hot lookups into one
gather + segment-sum.  The loop-based originals are retained as
``reference_forward`` / ``reference_backward`` so the test-suite can assert
bit-for-bit parity and the benchmarks can measure the speedup.

**Fused µ-batch execution.**  Hotline trains every mini-batch as two
µ-batches (popular / non-popular), which naively costs two gathers and two
scatters per table per step — each over a fancy-indexed *copy* of the
batch's index block.  The fused path never materialises those copies: the
forward gathers the **original contiguous block once** (each sample's
pooled vector is independent, so per-µ-batch views of the output are
bit-identical to per-µ-batch gathers), and
:meth:`EmbeddingBag.backward_segments` / :func:`segmented_scatter` produce
every µ-batch's sparse gradient with **one** scatter: each lookup's row id
is keyed into its segment's private id space (``segment * num_rows +
row``), so the combined ``np.unique`` + ``np.add.at`` accumulates per-row
contributions in exactly the per-segment order the unfused scatter uses,
and the split results are bit-identical to calling
:meth:`EmbeddingBag.backward` once per µ-batch.

**Cross-table stacked fusion.**  Every table of a recommendation model
shares ``embedding_dim``, so the per-table fused path still pays one
gather + one scatter *per table* per step.  :class:`StackedEmbeddingStore`
concatenates all of a model's tables into one ``(sum_rows, dim)`` buffer
with per-table row offsets; shifting a whole ``(batch, tables, pooling)``
index block by those offsets turns the step's embedding traffic into **one
gather and one segmented scatter for all tables together**
(:func:`stacked_segmented_scatter` keys each lookup as ``segment *
total_rows + offset[table] + row``, so the per-table/per-segment blocks
come back out of one ``np.unique`` with binary searches).  Bit-parity with
the per-table path holds because within any (segment, table, row) bucket
the contributions still arrive in the per-table flat ``(batch, pooling)``
order, and ``np.add.at`` accumulates element-by-element in flat order.

The stacking is **deepcopy-safe by construction**: adopted
:class:`EmbeddingBag`\\ s hold a ``(store, slot)`` handle — never the row
view itself — and compute :attr:`EmbeddingBag.weight` lazily from the
handle.  ``copy.deepcopy`` of a model therefore copies the store's buffer
exactly once (deepcopy memoisation: the model and all its tables reference
the same store object) and every copied table re-derives its view from the
copied buffer, so mutating one replica's stacked store can never alias
another replica's weights.  Storing the view as an attribute would break
this (deepcopy materialises ndarray views into standalone arrays).

**The hot/cold tiering model.**  At Criteo-Terabyte scale the embedding
weights themselves do not fit device memory — only the frequently-accessed
rows do (the same observation Hotline's placement and the lookahead window
exploit).  :class:`TieredEmbeddingStore` models the software-managed cache
that CacheEmbedding's ``CachedEmbeddingBag`` implements for real: a
device-resident **hot tier** of bounded byte capacity in front of a host
**cold tier**, with every lookup resolved through the tier.  Crucially it
is an *accounting and pricing* layer: the weights stay in the one
(possibly stacked) buffer they already live in, so training numerics are
**bit-identical** with the tier attached or not — what changes is the
simulated cost (cold fetches and dirty evictions priced through
``hwsim.dma.DMAEngine``) and the hit/miss/eviction counters.  Residency
is tracked with compact sorted row arrays and aligned access-frequency
counts (window-bounded bookkeeping — never a table-sized side array), so
eviction is frequency-aware (LFU) and can be *fed by the classifier's
access counts* via :meth:`TieredEmbeddingStore.record_counts`; rows the
hot/cold placement replicates on every device are pinned and never evict.
:meth:`EmbeddingBag.attach_tier` makes a table resolve lookups through a
tier transparently — ``forward`` touches the tier, nothing else changes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.nn import init

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.hotset import HotSetIndex


@dataclass
class SparseGradient:
    """Sparse gradient for one embedding table.

    Attributes:
        indices: Unique row indices that received gradient, shape (k,).
        values: Gradient rows aligned with ``indices``, shape (k, dim).
    """

    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.indices.shape[0] != self.values.shape[0]:
            raise ValueError("indices and values must have the same leading dimension")

    @property
    def nnz(self) -> int:
        """Number of rows carrying gradient."""
        return int(self.indices.shape[0])

    def restricted_to(
        self, allowed: np.ndarray | HotSetIndex, table: int = 0
    ) -> SparseGradient:
        """Gradient restricted to rows contained in ``allowed``.

        ``allowed`` may be a plain array of row ids or a prebuilt
        :class:`~repro.core.hotset.HotSetIndex` (with ``table`` selecting the
        bitmap), which turns the membership test into one fancy-index
        instead of an ``np.isin`` scan.
        """
        from repro.core.hotset import HotSetIndex

        if isinstance(allowed, HotSetIndex):
            mask = allowed.contains(table, self.indices)
        else:
            allowed = np.asarray(allowed)
            if allowed.size == 0 or self.nnz == 0:
                mask = np.zeros(self.indices.shape[0], dtype=bool)
            else:
                mask = HotSetIndex.from_hot_sets([allowed]).contains(0, self.indices)
        return SparseGradient(self.indices[mask], self.values[mask])


def merge_sparse_gradients(grads: list[SparseGradient]) -> SparseGradient:
    """Sum several sparse gradients for the same table into one.

    Rows appearing in more than one gradient have their values added, which
    is exactly what happens when a mini-batch's gradient is accumulated from
    the gradients of its µ-batches (Eq. 5 of the paper).
    """
    non_empty = [grad for grad in grads if grad.nnz]
    if not non_empty:
        dim = grads[0].values.shape[1] if grads else 0
        dtype = grads[0].values.dtype if grads else np.float64
        return SparseGradient(np.empty(0, dtype=np.int64), np.empty((0, dim), dtype=dtype))
    all_indices = np.concatenate([grad.indices for grad in non_empty])
    all_values = np.concatenate([grad.values for grad in non_empty], axis=0)
    unique, inverse = np.unique(all_indices, return_inverse=True)
    merged = np.zeros((unique.shape[0], all_values.shape[1]), dtype=all_values.dtype)
    np.add.at(merged, inverse, all_values)
    return SparseGradient(unique, merged)


def segment_ids_for(segments: list[np.ndarray], batch: int) -> np.ndarray:
    """Per-sample segment ids of a partition of ``range(batch)``.

    ``segments[s]`` must be an ascending index array; together the segments
    must cover every sample exactly once (the popular/non-popular µ-batches
    of one mini-batch partition it by construction, Eq. 3).  Raises when
    they do not, since a silent gap would scatter garbage gradient.
    """
    seg_ids = np.full(batch, -1, dtype=np.int64)
    total = 0
    for s, idx in enumerate(segments):
        seg_ids[idx] = s
        total += len(idx)
    if total != batch or (seg_ids < 0).any():
        raise ValueError("segments must partition the batch exactly")
    return seg_ids


def segmented_scatter(
    flat_indices: np.ndarray,
    flat_grads: np.ndarray,
    flat_segment_ids: np.ndarray,
    num_segments: int,
    num_rows: int,
    dim: int,
) -> list[SparseGradient]:
    """One scatter producing every segment's sparse gradient of one table.

    ``flat_indices``/``flat_grads``/``flat_segment_ids`` are the table's
    per-lookup row ids, gradient rows, and µ-batch (segment) ids, all in
    the **original batch order** — no per-segment copies are ever built.
    Each lookup is keyed into its segment's private id space (``segment *
    num_rows + row``) so a single ``np.unique`` + ``np.add.at`` pass
    accumulates every (segment, row) bucket separately; within a bucket,
    contributions arrive in batch order restricted to that segment's
    samples — exactly the order the unfused per-µ-batch scatter uses
    (segment index arrays are ascending), so the split results are
    **bit-identical** to running :meth:`EmbeddingBag.backward` once per
    µ-batch.  The private id spaces are disjoint and sorted, so each
    segment's block is recovered with one binary search (views, no copy).

    Returns:
        One :class:`SparseGradient` per segment (sorted unique row ids).
    """
    if flat_indices.size == 0:
        return [
            SparseGradient(
                np.empty(0, dtype=np.int64), np.empty((0, dim), dtype=flat_grads.dtype)
            )
            for _ in range(num_segments)
        ]
    keys = flat_segment_ids * num_rows + flat_indices
    unique, inverse = np.unique(keys, return_inverse=True)
    values = np.zeros((unique.shape[0], dim), dtype=flat_grads.dtype)
    np.add.at(values, inverse, flat_grads)
    bounds = np.searchsorted(unique, np.arange(num_segments + 1) * num_rows)
    return [
        SparseGradient(
            unique[bounds[s] : bounds[s + 1]] - s * num_rows,
            values[bounds[s] : bounds[s + 1]],
        )
        for s in range(num_segments)
    ]


def stacked_segmented_scatter(
    flat_stacked_indices: np.ndarray,
    flat_grads: np.ndarray,
    flat_segment_ids: np.ndarray,
    num_segments: int,
    offsets: np.ndarray,
    dim: int,
) -> list[list[SparseGradient]]:
    """One scatter producing every (table, segment) sparse gradient.

    The cross-table generalisation of :func:`segmented_scatter`:
    ``flat_stacked_indices`` are per-lookup row ids already shifted into
    the stacked row space (``offset[table] + row``), ``flat_grads`` /
    ``flat_segment_ids`` are aligned gradient rows and µ-batch ids, all in
    ``(batch, table, pooling)`` ravel order.  Each lookup is keyed as
    ``segment * total_rows + stacked_row``; one ``np.unique`` +
    ``np.add.at`` pass accumulates every bucket, and the per-segment,
    per-table blocks are recovered with one vectorised binary search
    (views, no copies).

    Bit-parity with per-table :func:`segmented_scatter` calls holds
    because, for a fixed table, the ravel order restricted to that table's
    lookups is exactly the per-table flat ``(batch, pooling)`` order — so
    each bucket's contributions are added in the identical sequence
    (``np.add.at`` is unbuffered and element-ordered; other tables'
    additions interleave but never touch the bucket).

    Args:
        offsets: ``(num_tables + 1,)`` cumulative row offsets of the
            stacked buffer (:attr:`StackedEmbeddingStore.offsets`).

    Returns:
        ``grads[table][segment]`` sparse gradients in *table-local* row
        ids, bit-identical to the per-table scatter's output.
    """
    num_tables = len(offsets) - 1
    total_rows = int(offsets[-1])
    if flat_stacked_indices.size == 0:
        return [
            [
                SparseGradient(
                    np.empty(0, dtype=np.int64),
                    np.empty((0, dim), dtype=flat_grads.dtype),
                )
                for _ in range(num_segments)
            ]
            for _ in range(num_tables)
        ]
    keys = flat_segment_ids * total_rows + flat_stacked_indices
    unique, inverse = np.unique(keys, return_inverse=True)
    values = np.zeros((unique.shape[0], dim), dtype=flat_grads.dtype)
    np.add.at(values, inverse, flat_grads)
    # (segment, table) block starts in the sorted key space, plus the end
    # sentinel: bases[s * T + t] = s * total_rows + offsets[t].
    bases = (
        np.arange(num_segments, dtype=np.int64)[:, None] * total_rows
        + np.asarray(offsets[:-1], dtype=np.int64)[None, :]
    ).reshape(-1)
    bounds = np.searchsorted(unique, np.append(bases, num_segments * total_rows))
    out: list[list[SparseGradient]] = [[] for _ in range(num_tables)]
    for s in range(num_segments):
        for t in range(num_tables):
            k = s * num_tables + t
            lo, hi = bounds[k], bounds[k + 1]
            out[t].append(
                SparseGradient(unique[lo:hi] - int(bases[k]), values[lo:hi])
            )
    return out


class StackedEmbeddingStore:
    """All of a model's embedding tables stacked into one weight buffer.

    Owns the ``(sum_rows, dim)`` buffer and the per-table row offsets;
    adopted :class:`EmbeddingBag`\\ s keep only a ``(store, slot)`` handle
    and expose their rows as views computed on access.  That indirection is
    what makes the scheme deepcopy-safe (see the module docstring): a
    deep-copied model gets exactly one copied buffer shared by its copied
    tables, never an aliased or materialised view.

    Attributes:
        buffer: The stacked ``(sum_rows, dim)`` weight array.  Table
            ``t``'s rows live at ``buffer[offsets[t]:offsets[t + 1]]``.
        offsets: ``(num_tables + 1,)`` int64 cumulative row offsets.
    """

    def __init__(self, tables: list[EmbeddingBag]):
        if not tables:
            raise ValueError("cannot stack zero tables")
        dims = {table.dim for table in tables}
        if len(dims) != 1:
            raise ValueError(f"stacked tables must share one dim, got {sorted(dims)}")
        self.dim = dims.pop()
        self.offsets = np.concatenate(
            [[0], np.cumsum([table.num_rows for table in tables])]
        ).astype(np.int64)
        # Concatenation copies each table's rows into the stacked buffer;
        # the originals are released by _adopt_into below.
        self.buffer = np.concatenate([table.weight for table in tables], axis=0)
        self.num_tables = len(tables)
        for slot, table in enumerate(tables):
            table._adopt_into(self, slot)

    @property
    def total_rows(self) -> int:
        """Row count of the stacked buffer (sum over tables)."""
        return int(self.offsets[-1])

    def table_view(self, slot: int) -> np.ndarray:
        """Table ``slot``'s rows as a writable view into the buffer."""
        return self.buffer[int(self.offsets[slot]) : int(self.offsets[slot + 1])]

    def stacked_indices(self, sparse_block: np.ndarray) -> np.ndarray:
        """Shift a ``(batch, tables, pooling)`` index block into stacked rows."""
        return sparse_block + self.offsets[:-1][None, :, None]

    def gather(self, stacked_block: np.ndarray) -> np.ndarray:
        """One gather of the whole block: ``(batch, tables, pooling, dim)``.

        Per-table ``[:, t].sum(axis=1)`` views of the result are
        bit-identical to per-table :meth:`EmbeddingBag.forward` pooling —
        same elements, same reduction axis and length, so numpy's pairwise
        summation performs the identical addition sequence.
        """
        return self.buffer[stacked_block]


class EmbeddingBag:
    """One embedding table with sum pooling over multi-hot lookups.

    The table's rows live either in a private ``(num_rows, dim)`` array or
    — after adoption by a :class:`StackedEmbeddingStore` — as a slice of
    the model-wide stacked buffer.  :attr:`weight` is computed on access
    from the ``(store, slot)`` handle, so the two storage modes are
    indistinguishable to every caller (in-place row updates included) and
    ``copy.deepcopy`` never materialises a view.
    """

    def __init__(self, num_rows: int, dim: int, rng: np.random.Generator, name: str = ""):
        if num_rows <= 0 or dim <= 0:
            raise ValueError("embedding table must have positive rows and dim")
        self.num_rows = num_rows
        self.dim = dim
        self.name = name or f"emb_{num_rows}x{dim}"
        self._weight: np.ndarray | None = init.embedding_uniform(num_rows, dim, rng)
        self._store: StackedEmbeddingStore | None = None
        self._slot: int = -1
        self._tier: TieredEmbeddingStore | None = None
        self._tier_table: int = -1
        self._last_indices: np.ndarray | None = None

    @property
    def weight(self) -> np.ndarray:
        """The table's ``(num_rows, dim)`` weight rows.

        A private array for standalone tables; a writable view into the
        owning :class:`StackedEmbeddingStore`'s buffer once adopted.
        """
        if self._store is not None:
            return self._store.table_view(self._slot)
        return self._weight

    def _adopt_into(self, store: StackedEmbeddingStore, slot: int) -> None:
        """Re-point this table's rows at slot ``slot`` of ``store``."""
        if store.table_view(slot).shape != (self.num_rows, self.dim):
            raise ValueError("store slot shape does not match the table")
        self._store = store
        self._slot = slot
        self._weight = None  # rows now live (only) in the stacked buffer

    def attach_tier(self, tier: TieredEmbeddingStore, table: int) -> None:
        """Resolve this table's lookups through a hot/cold tier.

        Every subsequent :meth:`forward` touches ``tier`` as table
        ``table`` — hits/misses/evictions and DMA pricing accumulate on
        the tier; the lookup numerics are untouched (the tier is an
        accounting layer, see :class:`TieredEmbeddingStore`).
        """
        if tier.rows_per_table[table] != self.num_rows or tier.dim != self.dim:
            raise ValueError("tier table shape does not match this EmbeddingBag")
        self._tier = tier
        self._tier_table = table

    def detach_tier(self) -> None:
        """Stop resolving lookups through the attached tier (if any)."""
        self._tier = None
        self._tier_table = -1

    def forward(self, indices: np.ndarray) -> np.ndarray:
        """Sum-pool the rows selected by each sample.

        Args:
            indices: Integer block of shape (batch, pooling) — one row of
                lookups per sample (``MiniBatch.sparse[:, table, :]``).
                Pooling may be 0, in which case every pooled vector is zero.

        Returns:
            Array of shape (batch, dim) with the pooled embeddings.
        """
        try:
            indices = np.asarray(indices, dtype=np.int64)
        except ValueError as exc:
            raise ValueError(
                "indices must be a rectangular (batch, pooling) integer block; "
                "ragged per-sample lookups are no longer supported"
            ) from exc
        if indices.ndim != 2:
            raise ValueError("indices must be 2-D (batch, pooling)")
        if indices.size == 0:
            out = np.zeros((indices.shape[0], self.dim), dtype=self.weight.dtype)
        else:
            out = self.weight[indices].sum(axis=1)
            if self._tier is not None:
                self._tier.touch(self._tier_table, indices)
        self._last_indices = indices
        return out

    def backward(self, grad_output: np.ndarray) -> SparseGradient:
        """Compute the sparse gradient for the last forward pass.

        With sum pooling, every row accessed by sample ``i`` receives
        ``grad_output[i]``; gradients of rows accessed by several samples
        accumulate via one flat scatter-add.
        """
        if self._last_indices is None:
            raise RuntimeError("backward called before forward")
        if grad_output.shape[0] != self._last_indices.shape[0]:
            raise ValueError("grad_output batch size does not match the last forward batch")
        pooling = self._last_indices.shape[1]
        flat_indices = self._last_indices.reshape(-1)
        if flat_indices.size == 0:
            return SparseGradient(
                np.empty(0, dtype=np.int64), np.empty((0, self.dim), dtype=grad_output.dtype)
            )
        flat_grads = np.repeat(grad_output, pooling, axis=0)
        unique, inverse = np.unique(flat_indices, return_inverse=True)
        values = np.zeros((unique.shape[0], self.dim), dtype=grad_output.dtype)
        np.add.at(values, inverse, flat_grads)
        return SparseGradient(unique, values)

    def backward_segments(
        self,
        grad_outputs: list[np.ndarray],
        segments: list[np.ndarray],
        segment_ids: np.ndarray | None = None,
        flat_segment_ids: np.ndarray | None = None,
    ) -> list[SparseGradient]:
        """Per-µ-batch sparse gradients of the last *full-batch* forward.

        The fused execution path runs :meth:`forward` once on the whole
        mini-batch's contiguous index block and trains the µ-batches on
        views of the pooled output; this is the matching backward:
        ``grad_outputs[s]`` holds the pooled-output gradient of the samples
        ``segments[s]`` (ascending index arrays partitioning the forward's
        batch), and one :func:`segmented_scatter` produces each µ-batch's
        gradient bit-identically to a per-µ-batch :meth:`backward` — so
        callers keep merging per-µ-batch partials in their established
        order.  ``segment_ids`` (per-sample segment) and
        ``flat_segment_ids`` (repeated over the pooling width) can be
        passed when precomputed once for many tables, keeping the per-table
        work to one assembly, one scatter, and one split.
        """
        if self._last_indices is None:
            raise RuntimeError("backward called before forward")
        batch, pooling = self._last_indices.shape
        if len(grad_outputs) != len(segments):
            raise ValueError("one gradient block per segment is required")
        if segment_ids is None:
            segment_ids = segment_ids_for(segments, batch)
        if flat_segment_ids is None:
            flat_segment_ids = (
                segment_ids if pooling == 1 else np.repeat(segment_ids, pooling)
            )
        dtype = grad_outputs[0].dtype if grad_outputs else np.float64
        grad_all = np.empty((batch, self.dim), dtype=dtype)
        for idx, grad_output in zip(segments, grad_outputs, strict=True):
            if grad_output.shape[0] != len(idx):
                raise ValueError("gradient block does not match its segment")
            grad_all[idx] = grad_output
        flat_grads = grad_all if pooling == 1 else np.repeat(grad_all, pooling, axis=0)
        return segmented_scatter(
            self._last_indices.reshape(-1),
            flat_grads,
            flat_segment_ids,
            len(segments),
            self.num_rows,
            self.dim,
        )

    def apply_sparse_update(self, grad: SparseGradient, lr: float) -> None:
        """SGD update of only the rows present in ``grad``."""
        if grad.nnz == 0:
            return
        self.weight[grad.indices] -= lr * grad.values

    def rows_bytes(self, num_rows: int | None = None, dtype_bytes: int = 4) -> float:
        """Memory footprint of ``num_rows`` rows (default: the whole table)."""
        rows = self.num_rows if num_rows is None else num_rows
        return float(rows) * self.dim * dtype_bytes

    @property
    def num_parameters(self) -> int:
        """Number of scalar parameters in the table."""
        return self.num_rows * self.dim


def _in_sorted(sorted_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Boolean membership of ``rows`` in an ascending unique ``sorted_rows``."""
    if sorted_rows.size == 0 or rows.size == 0:
        return np.zeros(rows.shape[0], dtype=bool)
    pos = np.searchsorted(sorted_rows, rows)
    present = pos < sorted_rows.size
    present[present] = sorted_rows[pos[present]] == rows[present]
    return present


class TieredEmbeddingStore:
    """Software-managed hot/cold tier in front of the embedding weights.

    Models a device-resident cache of ``hot_bytes`` capacity holding the
    frequently-accessed rows of every table, with the long tail in a host
    tier priced through a :class:`~repro.hwsim.dma.DMAEngine` — the
    CacheEmbedding ``CachedEmbeddingBag`` design.  Pure accounting: the
    weights stay wherever they already live (private arrays or a
    :class:`StackedEmbeddingStore` slab), so attaching a tier never
    changes training numerics — only the simulated fetch/eviction cost
    and the hit/miss counters (see the module docstring).

    Residency bookkeeping is **window-bounded**: per-table sorted row
    arrays with aligned access-frequency counts, sized to the resident
    set, never the table.  Eviction is LFU over the unpinned resident
    rows (globally, since ``hot_bytes`` models one device memory), with
    frequencies optionally seeded from the classifier's access counts via
    :meth:`record_counts`; :meth:`pin_rows` marks the placement's
    replicated hot rows un-evictable.  Evicted rows are dirty (training
    updates rows in place), so each eviction prices a scattered
    write-back in addition to the miss's scattered fetch.
    """

    def __init__(
        self,
        rows_per_table: tuple[int, ...] | list[int],
        dim: int,
        *,
        hot_bytes: float,
        dma: object | None = None,
        dtype_bytes: int = 4,
    ):
        if dim <= 0:
            raise ValueError("embedding dim must be positive")
        if hot_bytes < 0:
            raise ValueError("hot_bytes must be non-negative")
        if dma is None:
            from repro.hwsim.dma import DMAEngine

            dma = DMAEngine()
        # One tier is typically shared by every replica's tables (it models
        # one device memory), and replicas may step on a thread pool — all
        # mutation happens under this lock.
        self._lock = threading.Lock()
        self.rows_per_table = tuple(int(rows) for rows in rows_per_table)
        self.dim = int(dim)
        self.dtype_bytes = int(dtype_bytes)
        self.hot_bytes = float(hot_bytes)
        self.capacity_rows = int(self.hot_bytes // self.row_bytes)
        self.dma = dma
        num_tables = len(self.rows_per_table)
        self._rows = [np.empty(0, dtype=np.int64) for _ in range(num_tables)]
        self._counts = [np.empty(0, dtype=np.int64) for _ in range(num_tables)]
        self._pinned = [np.empty(0, dtype=np.int64) for _ in range(num_tables)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fetch_time_s = 0.0
        self.writeback_time_s = 0.0

    def __getstate__(self) -> dict:
        """Deepcopy/pickle support: the lock is recreated, not copied."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def num_tables(self) -> int:
        """Number of tables fronted by the tier."""
        return len(self.rows_per_table)

    @property
    def row_bytes(self) -> int:
        """Bytes per embedding row in the modelled device memory."""
        return self.dim * self.dtype_bytes

    @property
    def resident_rows(self) -> int:
        """Rows currently resident in the hot tier, across tables."""
        return int(sum(rows.size for rows in self._rows))

    @property
    def resident_bytes(self) -> float:
        """Modelled device bytes occupied by the resident rows."""
        return float(self.resident_rows) * self.row_bytes

    @property
    def nbytes(self) -> int:
        """Actual bookkeeping footprint (resident-set-sized, never O(table))."""
        return int(
            sum(
                rows.nbytes + counts.nbytes + pinned.nbytes
                for rows, counts, pinned in zip(
                    self._rows, self._counts, self._pinned, strict=True
                )
            )
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of touched rows resolved from the hot tier."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def tier_time_s(self) -> float:
        """Total simulated seconds spent on cold fetches and evictions."""
        return self.fetch_time_s + self.writeback_time_s

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters and priced times.

        Residency (and pinning) survives: a rebind reuses the warmed tier
        but must report only its own run's traffic — the same counter-
        lifetime contract as ``DMAEngine.reset_counters``.
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fetch_time_s = 0.0
        self.writeback_time_s = 0.0

    def is_resident(self, table: int, rows: np.ndarray) -> np.ndarray:
        """Boolean residency of ``rows`` (sorted-array probe, no bitmap)."""
        return _in_sorted(self._rows[table], np.asarray(rows, dtype=np.int64))

    def pin_rows(self, table: int, rows: np.ndarray, *, price: bool = True) -> None:
        """Make ``rows`` resident and un-evictable (the placement's hot set).

        Pinned rows model the replicated hot rows of an
        ``EmbeddingPlacement``: they are pre-loaded in one **contiguous**
        transfer (priced unless ``price=False``) and never considered for
        eviction, whatever their frequency.
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        if rows.size == 0:
            return
        if rows[0] < 0 or rows[-1] >= self.rows_per_table[table]:
            raise ValueError(f"pinned row out of range for table {table}")
        with self._lock:
            self._pinned[table] = np.union1d(self._pinned[table], rows)
            fresh = rows[~_in_sorted(self._rows[table], rows)]
            if fresh.size:
                self._insert(table, fresh, np.zeros(fresh.size, dtype=np.int64))
                if price:
                    self.fetch_time_s += self.dma.read_time(
                        fresh.size * self.row_bytes, scattered=False
                    )
            self._evict_to_capacity()

    def record_counts(self, table: int, rows: np.ndarray, counts: np.ndarray) -> None:
        """Fold classifier access counts into resident rows' frequencies.

        The µ-batch classifier (and the placement's learning phase) counts
        row accesses anyway; feeding them here makes LFU eviction agree
        with the classifier's popularity estimate instead of only the
        tier's own touch history.  Rows not resident are ignored — the
        bookkeeping stays resident-set-sized.
        """
        rows = np.asarray(rows, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if rows.shape != counts.shape:
            raise ValueError("rows and counts must align")
        with self._lock:
            present = _in_sorted(self._rows[table], rows)
            if not present.any():
                return
            positions = np.searchsorted(self._rows[table], rows[present])
            np.add.at(self._counts[table], positions, counts[present])

    def touch(self, table: int, indices: np.ndarray) -> float:
        """Resolve one lookup block through the tier; return priced seconds.

        ``indices`` is the table's ``(batch, pooling)`` block (any shape —
        it is flattened).  Resident rows count as hits and bump their
        frequency by their occurrence count; the rest are cold misses,
        fetched with one scattered DMA read and made resident, after which
        the tier evicts back down to capacity (LFU over unpinned rows,
        dirty write-back priced per eviction).
        """
        rows, occurrences = np.unique(
            np.asarray(indices, dtype=np.int64).reshape(-1), return_counts=True
        )
        if rows.size == 0:
            return 0.0
        if rows[0] < 0 or rows[-1] >= self.rows_per_table[table]:
            raise ValueError(f"lookup row out of range for table {table}")
        with self._lock:
            resident = self._rows[table]
            present = _in_sorted(resident, rows)
            hit_count = int(np.count_nonzero(present))
            self.hits += hit_count
            self.misses += rows.size - hit_count
            step_time = 0.0
            if hit_count:
                positions = np.searchsorted(resident, rows[present])
                self._counts[table][positions] += occurrences[present]
            cold = rows[~present]
            if cold.size:
                fetch = self.dma.read_time(cold.size * self.row_bytes, scattered=True)
                self.fetch_time_s += fetch
                step_time += fetch
                self._insert(table, cold, occurrences[~present])
                step_time += self._evict_to_capacity()
            return step_time

    def _insert(self, table: int, rows: np.ndarray, counts: np.ndarray) -> None:
        """Splice ``rows`` (sorted, disjoint from resident) into the table."""
        positions = np.searchsorted(self._rows[table], rows)
        self._rows[table] = np.insert(self._rows[table], positions, rows)
        self._counts[table] = np.insert(self._counts[table], positions, counts)

    def _evict_to_capacity(self) -> float:
        """Evict lowest-frequency unpinned rows until capacity holds.

        Returns the priced write-back seconds.  If pinned rows alone
        exceed capacity nothing unpinned is left to evict and the tier
        stays over budget — callers size pinning against ``hot_bytes``
        (``EmbeddingPlacement.fits_budget`` gates exactly this).
        """
        excess = self.resident_rows - self.capacity_rows
        if excess <= 0:
            return 0.0
        candidate_counts: list[np.ndarray] = []
        candidate_tables: list[np.ndarray] = []
        candidate_positions: list[np.ndarray] = []
        for table in range(self.num_tables):
            unpinned = ~_in_sorted(self._pinned[table], self._rows[table])
            positions = np.flatnonzero(unpinned)
            if positions.size == 0:
                continue
            candidate_counts.append(self._counts[table][positions])
            candidate_tables.append(np.full(positions.size, table, dtype=np.int64))
            candidate_positions.append(positions)
        if not candidate_counts:
            return 0.0
        counts = np.concatenate(candidate_counts)
        tables = np.concatenate(candidate_tables)
        positions = np.concatenate(candidate_positions)
        take = min(excess, counts.size)
        order = np.argpartition(counts, take - 1)[:take] if take < counts.size else (
            np.arange(counts.size)
        )
        evicted = 0
        for table in range(self.num_tables):
            victim_positions = positions[order][tables[order] == table]
            if victim_positions.size == 0:
                continue
            keep = np.ones(self._rows[table].size, dtype=bool)
            keep[victim_positions] = False
            self._rows[table] = self._rows[table][keep]
            self._counts[table] = self._counts[table][keep]
            evicted += victim_positions.size
        self.evictions += evicted
        writeback = self.dma.write_time(evicted * self.row_bytes, scattered=True)
        self.writeback_time_s += writeback
        return writeback


# ---------------------------------------------------------------------- #
# Reference (loop-based) implementations
# ---------------------------------------------------------------------- #
# The pre-vectorisation hot path, kept as the ground truth for the parity
# test-suite and as the baseline the speedup benchmarks measure against.


def reference_forward(weight: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Per-sample Python-loop forward: pool each sample's rows in turn."""
    indices = np.asarray(indices, dtype=np.int64)
    batch = indices.shape[0]
    dim = weight.shape[1]
    out = np.zeros((batch, dim), dtype=weight.dtype)
    for i in range(batch):
        idx = indices[i]
        if len(idx) == 0:
            continue
        out[i] = weight[idx].sum(axis=0)
    return out


def reference_backward(
    indices: np.ndarray, grad_output: np.ndarray, dim: int
) -> SparseGradient:
    """Per-sample Python-loop backward: repeat each sample's gradient row."""
    indices = np.asarray(indices, dtype=np.int64)
    all_indices: list[np.ndarray] = []
    all_grads: list[np.ndarray] = []
    for i in range(indices.shape[0]):
        idx = indices[i]
        if len(idx) == 0:
            continue
        all_indices.append(idx)
        all_grads.append(np.repeat(grad_output[i : i + 1], len(idx), axis=0))
    if not all_indices:
        return SparseGradient(
            np.empty(0, dtype=np.int64), np.empty((0, dim), dtype=grad_output.dtype)
        )
    flat_indices = np.concatenate(all_indices)
    flat_grads = np.concatenate(all_grads, axis=0)
    unique, inverse = np.unique(flat_indices, return_inverse=True)
    values = np.zeros((unique.shape[0], dim), dtype=grad_output.dtype)
    np.add.at(values, inverse, flat_grads)
    return SparseGradient(unique, values)
