"""Optimisers: dense SGD/Adagrad and their sparse (row-wise) counterparts.

Recommendation-model training treats dense parameters (MLP weights) and
sparse parameters (embedding rows) differently: dense parameters are updated
with a regular optimiser after a gradient all-reduce, whereas embedding rows
are updated sparsely, only for rows touched by the mini-batch.  Hotline
updates popular rows on the GPU copy and non-popular rows in CPU DRAM, but
the *values* applied are identical to the baseline — which these optimisers
make easy to verify.
"""

from __future__ import annotations

import numpy as np

from repro.nn.embedding import EmbeddingBag, SparseGradient


class SGD:
    """Plain stochastic gradient descent over (param, grad) pairs."""

    def __init__(self, lr: float = 0.01):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one in-place update to every (param, grad) pair."""
        for param, grad in parameters:
            param -= self.lr * grad


class Adagrad:
    """Adagrad for dense parameters (per-element adaptive learning rate)."""

    def __init__(self, lr: float = 0.01, eps: float = 1e-10):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.eps = eps
        self._state: dict[int, np.ndarray] = {}

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one Adagrad update to every (param, grad) pair."""
        for param, grad in parameters:
            key = id(param)
            if key not in self._state:
                self._state[key] = np.zeros_like(param)
            accum = self._state[key]
            accum += grad * grad
            param -= self.lr * grad / (np.sqrt(accum) + self.eps)


class SparseSGD:
    """Row-wise SGD for embedding tables."""

    def __init__(self, lr: float = 0.01):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def step(self, table: EmbeddingBag, grad: SparseGradient) -> None:
        """Update only the rows present in ``grad``."""
        table.apply_sparse_update(grad, self.lr)


class SparseAdagrad:
    """Row-wise Adagrad for embedding tables (DLRM's default sparse optimiser)."""

    def __init__(self, lr: float = 0.01, eps: float = 1e-10):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.eps = eps
        self._state: dict[int, np.ndarray] = {}

    def step(self, table: EmbeddingBag, grad: SparseGradient) -> None:
        """Adagrad update of only the rows present in ``grad``."""
        if grad.nnz == 0:
            return
        key = id(table)
        if key not in self._state:
            self._state[key] = np.zeros(table.num_rows, dtype=np.float64)
        accum = self._state[key]
        row_sq = (grad.values * grad.values).sum(axis=1)
        accum[grad.indices] += row_sq
        scale = self.lr / (np.sqrt(accum[grad.indices]) + self.eps)
        table.weight[grad.indices] -= scale[:, None] * grad.values
