"""Segment-packed GEMM execution for the fused µ-batch dense path.

The fused µ-batch schedule (:meth:`repro.models.dlrm.DLRM.
fused_loss_and_gradients`) historically ran the bottom MLP, interaction,
and top MLP once *per segment* on small row slices.  Since the segments
partition the mini-batch, the whole dense pass can instead run over one
contiguous ``(batch, d)`` block — one GEMM per layer per step instead of
one per layer per segment — with per-segment quantities (losses, logit
gradients, ``grad_weight`` partials) recovered by row slicing.  This
module is that execution layer: :class:`PackedMLP` wraps an existing
:class:`~repro.nn.mlp.MLP` and runs its forward/backward over a packed
block without touching the MLP's own (retained, sequential) code path.

Batched-execution contract — what is bit-identical, and why
-----------------------------------------------------------

Everything the packed path produces is **bit-identical** to the
sequential per-segment loop.  That claim needs care, because a BLAS GEMM
is *not* universally row-stable: ``(X @ W)[lo:hi]`` can differ in the
last ulp from ``X[lo:hi] @ W`` when the two shapes dispatch to different
kernels (OpenBLAS routes small ``M*N*K`` products to a small-matrix
kernel whose reduction order differs from the blocked main path once
``K`` exceeds one K-panel, and some ``K``/``N`` edge shapes never agree).
The packed path therefore never *assumes* row stability — it certifies
it, per GEMM shape, at runtime:

* :func:`packed_rows_threshold` probes each ``(K, N)`` operand shape once
  per process (full-block GEMM vs. row-sliced GEMMs over a battery of
  slice heights, including the kernel-dispatch boundary near
  ``M*N*K ~ 1e6``) and caches the smallest slice height from which every
  probe matched bit-for-bit.
* A layer whose GEMM is certified from ``m`` rows up runs as **one**
  packed GEMM whenever every segment has at least ``m`` rows; the
  per-segment results are then row slices of the packed result, equal by
  certification.
* A layer whose shape is *not* certified for the current segment sizes
  runs its GEMM **per segment on slices of the packed block** — the same
  operand values and the same ``M`` as the sequential loop, so the result
  is bit-identical *by construction* (no probe needed), at the cost of
  that one layer's batching.

The non-GEMM pieces are bit-stable by construction and need no probe:
bias add, ReLU mask/multiply, loss terms, and softmax/interaction einsums
are elementwise or per-row, so packed rows equal sequential rows exactly.
The fused bias+ReLU forward (``matmul(..., out=ws); ws += b; ws *= ws>0``)
is bitwise equal to the sequential ``x @ W + b`` → ``ReLU`` chain: the
``out=`` form of ``matmul`` and the in-place elementwise ops produce the
same values as their allocating counterparts.

Per-segment ``grad_weight`` / ``grad_bias`` partials are computed as
``X[lo:hi].T @ G[lo:hi]`` / ``G[lo:hi].sum(axis=0)`` and accumulated in
segment order — the exact addition sequence of the sequential loop, which
is what keeps the sharded trainer's ``after_segment`` per-µ-batch partial
snapshots bit-for-bit.

The only *perf*-motivated divergence from the sequential schedule is that
the first layer's input gradient GEMM is **skipped** when the caller does
not need it (``need_input_grad=False``): DLRM and TBSM discard the bottom
MLP's returned input gradient, so the packed path simply never computes
the dead value.  Skipping a discarded result changes no observable bit.

Operand layout matters: the input-gradient GEMM multiplies against the
``weight.T`` *view* (the exact operand of the sequential
``Linear.backward``) rather than a contiguous copy — BLAS consumes the
transpose natively, and the copy is not bit-equivalent (the trans-B
kernel's reduction differs from the no-trans kernel in the last ulp for
some shapes).  Certification therefore probes each GEMM with the same
operand layout the packed pass uses (``transposed=True`` for backward).

Workspaces
----------

Each packed layer owns preallocated output/gradient/mask workspaces keyed
on the packed row count, so a steady-state step performs no large
allocations.  The workspaces are shape-keyed only — weight updates never
invalidate them.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, ReLU

#: Sentinel threshold for shapes whose packed GEMM never matched the
#: sliced GEMM at any probed height (the layer always runs per-segment).
NEVER_PACKED = 1 << 30

#: Process-wide certification cache: (K, N, dtype str, transposed) ->
#: smallest slice height from which the packed GEMM is bit-identical to
#: sliced GEMMs.  ``transposed`` keys the second operand's memory layout
#: (contiguous for forward, a ``weight.T`` view for backward) — the two
#: dispatch to different BLAS kernels with different stability profiles.
_STABLE_FROM: dict[tuple[int, int, str, bool], int] = {}

#: Slice heights probed against the full-block GEMM.  Dense coverage at
#: small M (where the small-matrix kernel lives) plus spot checks up to
#: and past typical µ-batch sizes; :func:`packed_rows_threshold` adds the
#: kernel-dispatch boundary region ``M*N*K ~ 1e6`` for the probed shape.
_BATTERY = tuple(range(2, 49)) + (56, 63, 64, 65, 80, 96, 100, 128, 150, 192, 200, 255, 256, 300)

#: Row count of the probe's full block (larger than every battery entry).
_PROBE_ROWS = 311


def packed_rows_threshold(
    k: int, n: int, dtype: np.dtype = np.float64, *, transposed: bool = False
) -> int:
    """Smallest segment height from which a ``(M, k) @ (k, n)`` GEMM is
    certified row-stable — i.e. slicing a packed product reproduces the
    standalone per-segment product bit-for-bit.

    Probed empirically once per process and cached: the full-block product
    is compared against sliced products over :data:`_BATTERY` (plus the
    small-kernel dispatch boundary near ``M*n*k ~ 1e6``), and against a
    taller block's leading rows (so stability holds between *any* two
    packed heights, not just the probed one).  Returns
    :data:`NEVER_PACKED` when no probed height is safe.

    ``transposed`` selects the second operand's memory layout: ``False``
    probes a C-contiguous ``(k, n)`` operand (the forward ``weight``),
    ``True`` probes a ``(k, n)`` transpose *view* of a contiguous
    ``(n, k)`` array (the backward ``weight.T``) — BLAS routes the two
    layouts to different kernels, so they certify independently.
    """
    key = (int(k), int(n), np.dtype(dtype).str, bool(transposed))
    cached = _STABLE_FROM.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng((k * 1_000_003 + n) ^ 0x5EED)
    x = rng.standard_normal((_PROBE_ROWS * 2, k)).astype(dtype, copy=False)
    if transposed:
        w = rng.standard_normal((n, k)).astype(dtype, copy=False).T
    else:
        w = rng.standard_normal((k, n)).astype(dtype, copy=False)
    full = x[:_PROBE_ROWS] @ w
    if not np.array_equal((x @ w)[:_PROBE_ROWS], full):
        # The packed result itself depends on the block height — never safe.
        _STABLE_FROM[key] = NEVER_PACKED
        return NEVER_PACKED
    boundary = int(1e6 // max(1, k * n))
    heights = set(_BATTERY)
    heights.update(
        m for m in range(boundary - 2, boundary + 3) if 2 <= m < _PROBE_ROWS
    )
    worst_fail = 1  # height 1 (GEMV) is treated as always unsafe
    for m in sorted(heights):
        if not np.array_equal(full[:m], np.ascontiguousarray(x[:m]) @ w):
            worst_fail = m
    if worst_fail == 1:
        threshold = 2
    else:
        passed = sorted(m for m in heights if m > worst_fail)
        threshold = passed[0] if passed else NEVER_PACKED
    _STABLE_FROM[key] = threshold
    return threshold


class _PackedUnit:
    """One ``Linear`` (+ optional fused ``ReLU``) of a :class:`PackedMLP`."""

    def __init__(self, linear: Linear, relu: ReLU | None):
        self.linear = linear
        self.relu = relu
        self._fwd_from: int | None = None
        self._bwd_from: int | None = None
        self._bufs: dict[tuple[str, int], np.ndarray] = {}
        #: Per-segment ``X.T @ G`` partial workspace (one weight shape).
        self._gw_partial = np.empty_like(linear.grad_weight)
        #: Packed input / post-activation output gradient of the last
        #: backward, consumed by :meth:`accumulate_segment`.
        self._x: np.ndarray | None = None
        self._g: np.ndarray | None = None

    def _buf(self, name: str, rows: int, cols: int, dtype) -> np.ndarray:
        key = (name, rows)
        buf = self._bufs.get(key)
        if buf is None or buf.shape[1] != cols or buf.dtype != dtype:
            buf = np.empty((rows, cols), dtype=dtype)
            self._bufs[key] = buf
        return buf

    def forward(
        self,
        x: np.ndarray,
        bounds: list[tuple[int, int]],
        min_rows: int,
        *,
        add_bias: bool = True,
    ) -> np.ndarray:
        lin = self.linear
        if self._fwd_from is None:
            self._fwd_from = packed_rows_threshold(
                lin.in_features, lin.out_features, lin.weight.dtype
            )
        y = self._buf("y", x.shape[0], lin.out_features, x.dtype)
        if min_rows >= self._fwd_from:
            np.matmul(x, lin.weight, out=y)
        else:
            # Uncertified shape: per-segment GEMMs on slices of the packed
            # block — bit-identical to the sequential loop by construction.
            for lo, hi in bounds:
                np.matmul(x[lo:hi], lin.weight, out=y[lo:hi])
        if add_bias:
            y += lin.bias
        if self.relu is not None:
            mask = self._bufs.get(("mask", x.shape[0]))
            if mask is None or mask.shape[1] != lin.out_features:
                mask = np.empty((x.shape[0], lin.out_features), dtype=bool)
                self._bufs[("mask", x.shape[0])] = mask
            np.greater(y, 0, out=mask)
            y *= mask
        self._x = x
        return y

    def backward(
        self,
        grad: np.ndarray,
        bounds: list[tuple[int, int]],
        min_rows: int,
        *,
        need_input_grad: bool,
    ) -> np.ndarray | None:
        lin = self.linear
        if self.relu is not None:
            # ``grad`` is a workspace owned by the downstream unit; the
            # in-place mask multiply matches the sequential ReLU backward.
            grad *= self._bufs[("mask", grad.shape[0])]
        self._g = grad
        if not need_input_grad:
            return None
        if self._bwd_from is None:
            self._bwd_from = packed_rows_threshold(
                lin.out_features, lin.in_features, lin.weight.dtype, transposed=True
            )
        # The transpose *view* — the sequential ``Linear.backward`` operand.
        # A contiguous copy is NOT bit-equivalent (different BLAS kernel).
        wt = lin.weight.T
        gi = self._buf("gi", grad.shape[0], lin.in_features, grad.dtype)
        if min_rows >= self._bwd_from:
            np.matmul(grad, wt, out=gi)
        else:
            for lo, hi in bounds:
                np.matmul(grad[lo:hi], wt, out=gi[lo:hi])
        return gi

    def accumulate_segment(self, lo: int, hi: int) -> None:
        """Fold one segment's weight/bias gradient partial into the layer.

        ``X[lo:hi].T @ G[lo:hi]`` on contiguous row slices is bitwise the
        sequential per-segment ``grad_weight`` contribution; adding the
        partials in segment order preserves the sequential accumulation
        sequence (and the ``after_segment`` snapshot semantics).
        """
        lin = self.linear
        # ``matmul(..., out=)`` produces the same bits as the allocating
        # form; the preallocated partial only avoids a per-segment temp.
        np.matmul(self._x[lo:hi].T, self._g[lo:hi], out=self._gw_partial)
        lin.grad_weight += self._gw_partial
        lin.grad_bias += self._g[lo:hi].sum(axis=0)


class PackedMLP:
    """Packed-block executor over an existing :class:`~repro.nn.mlp.MLP`.

    Shares the MLP's ``Linear`` layers (weights, accumulated gradients) —
    it only replaces the *execution schedule*, so sequential and packed
    passes are interchangeable mid-run.  ``supported`` is ``False`` for
    layer stacks the packed path does not understand (e.g. a sigmoid
    output); callers must then keep the sequential path.
    """

    def __init__(self, mlp):
        self.mlp = mlp
        self.units: list[_PackedUnit] = []
        self.supported = True
        layers = list(mlp.layers)
        i = 0
        while i < len(layers):
            layer = layers[i]
            if not isinstance(layer, Linear):
                self.supported = False
                return
            relu = None
            if i + 1 < len(layers):
                if isinstance(layers[i + 1], ReLU):
                    relu = layers[i + 1]
                    i += 1
                else:
                    self.supported = False
                    return
            self.units.append(_PackedUnit(layer, relu))
            i += 1

    def forward(self, x: np.ndarray, bounds: list[tuple[int, int]]) -> np.ndarray:
        min_rows = min(hi - lo for lo, hi in bounds)
        out = x
        for unit in self.units:
            out = unit.forward(out, bounds, min_rows)
        return out

    @property
    def has_logit_epilogue(self) -> bool:
        """True when the final unit is a plain single-logit ``Linear``.

        Only such stacks can defer the output bias into the fused loss
        epilogue (:meth:`forward_prelogits`) — a trailing ReLU or a
        multi-column output keeps the standard :meth:`forward`.
        """
        if not self.supported or not self.units:
            return False
        last = self.units[-1]
        return last.relu is None and last.linear.out_features == 1

    @property
    def logit_bias(self) -> float:
        """The deferred output bias for :meth:`forward_prelogits` callers."""
        return float(self.units[-1].linear.bias[0])

    def forward_prelogits(self, x: np.ndarray, bounds: list[tuple[int, int]]) -> np.ndarray:
        """Packed forward with the final layer's bias add **deferred**.

        Returns the pre-bias logit column ``(x' @ W_last)[:, 0]``; the
        caller folds ``+ logit_bias`` into its fused loss epilogue so the
        logits never make a separate full-width pass.  Adding the scalar
        bias later is elementwise and therefore bit-identical to the
        broadcast ``y += bias`` the standard forward performs.  The
        backward/accumulate schedule is unchanged — the final unit's
        ``grad_bias`` still accumulates from the logit gradient.
        """
        min_rows = min(hi - lo for lo, hi in bounds)
        out = x
        for unit in self.units[:-1]:
            out = unit.forward(out, bounds, min_rows)
        out = self.units[-1].forward(out, bounds, min_rows, add_bias=False)
        return out[:, 0]

    def backward(
        self,
        grad: np.ndarray,
        bounds: list[tuple[int, int]],
        *,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        min_rows = min(hi - lo for lo, hi in bounds)
        for j, unit in enumerate(reversed(self.units)):
            last = j == len(self.units) - 1
            grad = unit.backward(
                grad, bounds, min_rows,
                need_input_grad=need_input_grad or not last,
            )
        return grad

    def accumulate_segment(self, lo: int, hi: int) -> None:
        """One segment's ``grad_weight``/``grad_bias`` partials, all layers."""
        for unit in reversed(self.units):
            unit.accumulate_segment(lo, hi)


def segment_bounds(segments: list[np.ndarray]) -> list[tuple[int, int]]:
    """Packed-block ``(lo, hi)`` row ranges of ``segments``, in order."""
    bounds: list[tuple[int, int]] = []
    lo = 0
    for idx in segments:
        bounds.append((lo, lo + idx.size))
        lo += idx.size
    return bounds
