"""Pure-numpy neural-network substrate for recommendation-model training.

The paper trains DLRM and TBSM with PyTorch-1.9; this package provides an
equivalent from-scratch implementation (forward + manual backward) so that
the functional claims — identical losses, gradients, and accuracy between the
baseline schedule and the Hotline µ-batch schedule — can be verified exactly
without a GPU framework.
"""

from repro.nn import init
from repro.nn.attention import DotProductAttention
from repro.nn.embedding import EmbeddingBag, SparseGradient
from repro.nn.interaction import (
    DotInteractionKernel,
    dot_interaction,
    dot_interaction_backward,
    reference_dot_interaction,
    reference_dot_interaction_backward,
)
from repro.nn.layers import Layer, Linear, ReLU, Sigmoid
from repro.nn.loss import (
    bce_with_logits,
    bce_with_logits_backward,
    bce_with_logits_per_sample,
    fused_bce_epilogue,
    reference_epilogue,
)
from repro.nn.metrics import binary_accuracy, log_loss, roc_auc
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adagrad, SparseAdagrad, SparseSGD

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "Sigmoid",
    "MLP",
    "EmbeddingBag",
    "SparseGradient",
    "dot_interaction",
    "dot_interaction_backward",
    "DotInteractionKernel",
    "reference_dot_interaction",
    "reference_dot_interaction_backward",
    "DotProductAttention",
    "bce_with_logits",
    "bce_with_logits_backward",
    "bce_with_logits_per_sample",
    "fused_bce_epilogue",
    "reference_epilogue",
    "SGD",
    "Adagrad",
    "SparseSGD",
    "SparseAdagrad",
    "roc_auc",
    "binary_accuracy",
    "log_loss",
    "init",
]
