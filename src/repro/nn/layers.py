"""Basic differentiable layers: Linear, ReLU, Sigmoid.

Each layer exposes ``forward`` and ``backward``.  ``backward`` receives the
gradient with respect to the layer output and returns the gradient with
respect to its input, accumulating parameter gradients in ``grads``.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.nn import init


class Layer(Protocol):
    """Protocol implemented by every layer in the substrate."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        ...

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the input gradient."""
        ...


class Linear:
    """Fully-connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform(in_features, out_features, rng)
        self.bias = init.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Affine transform of a (batch, in_features) input."""
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate weight/bias gradients and return the input gradient."""
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight += self._input.T @ grad_output
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients."""
        self.grad_weight.fill(0.0)
        self.grad_bias.fill(0.0)

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs for the optimiser."""
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]

    @property
    def num_parameters(self) -> int:
        """Number of scalar parameters in this layer."""
        return self.weight.size + self.bias.size


class ReLU:
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Element-wise max(x, 0)."""
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Pass gradient through where the input was positive."""
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask

    def zero_grad(self) -> None:
        """ReLU has no parameters; provided for interface uniformity."""

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """ReLU has no parameters."""
        return []

    @property
    def num_parameters(self) -> int:
        """ReLU has no parameters."""
        return 0


class Sigmoid:
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Numerically-stable sigmoid.

        One shared ``e = exp(-|x|)`` pass feeds both branches: for
        ``x >= 0``, ``exp(-x) == exp(-|x|)`` exactly, and for ``x < 0``,
        ``exp(x) == exp(-|x|)`` exactly — bit-identical to the former
        two-gather implementation with a single full-width exp.
        """
        e = np.exp(-np.abs(x))
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + e[positive])
        negative = ~positive
        out[negative] = e[negative] / (1.0 + e[negative])
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Gradient of the sigmoid given the cached output."""
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)

    def zero_grad(self) -> None:
        """Sigmoid has no parameters; provided for interface uniformity."""

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Sigmoid has no parameters."""
        return []

    @property
    def num_parameters(self) -> int:
        """Sigmoid has no parameters."""
        return 0
