"""Parameter initialisers.

DLRM's reference implementation initialises dense layers with Xavier/Glorot
uniform weights and embedding tables with uniform values scaled by the table
size; we follow the same conventions so learning curves are comparable.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(np.float64)


def embedding_uniform(
    num_rows: int, dim: int, rng: np.random.Generator
) -> np.ndarray:
    """DLRM-style uniform embedding initialisation in +-1/sqrt(num_rows)."""
    limit = 1.0 / np.sqrt(num_rows)
    return rng.uniform(-limit, limit, size=(num_rows, dim)).astype(np.float64)


def zeros(*shape: int) -> np.ndarray:
    """Zero-initialised array (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
