"""Dot-product attention used by the Time-Based Sequence Model (TBSM).

TBSM (RM1 in the paper) runs a DLRM-like block per time step and combines
the per-step context vectors with an attention layer before the final MLP.
This module implements a batched scaled dot-product attention with a full
manual backward pass.
"""

from __future__ import annotations

import numpy as np


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class DotProductAttention:
    """Scaled dot-product attention of a query over a sequence of vectors."""

    def __init__(self) -> None:
        self._cache: dict | None = None

    def forward(self, query: np.ndarray, sequence: np.ndarray) -> np.ndarray:
        """Attend ``query`` (batch, dim) over ``sequence`` (batch, steps, dim).

        Returns the context vector of shape (batch, dim).
        """
        if query.ndim != 2 or sequence.ndim != 3:
            raise ValueError("query must be (batch, dim) and sequence (batch, steps, dim)")
        dim = query.shape[1]
        scores = np.einsum("bd,btd->bt", query, sequence) / np.sqrt(dim)
        weights = _softmax(scores, axis=1)
        context = np.einsum("bt,btd->bd", weights, sequence)
        self._cache = {
            "query": query,
            "sequence": sequence,
            "weights": weights,
            "scale": 1.0 / np.sqrt(dim),
        }
        return context

    def backward(self, grad_context: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Backpropagate through the attention.

        Returns gradients w.r.t. the query and the sequence.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        query = self._cache["query"]
        sequence = self._cache["sequence"]
        weights = self._cache["weights"]
        scale = self._cache["scale"]

        grad_weights = np.einsum("bd,btd->bt", grad_context, sequence)
        grad_sequence = np.einsum("bt,bd->btd", weights, grad_context)

        # Softmax backward: dL/ds_t = w_t * (g_t - sum_k w_k g_k)
        weighted_sum = (grad_weights * weights).sum(axis=1, keepdims=True)
        grad_scores = weights * (grad_weights - weighted_sum)

        grad_query = np.einsum("bt,btd->bd", grad_scores, sequence) * scale
        grad_sequence += np.einsum("bt,bd->btd", grad_scores, query) * scale
        return grad_query, grad_sequence
