"""DLRM dot-product feature interaction — single-pass batched-GEMM kernels.

The interaction layer takes the bottom-MLP output and the pooled embedding
vectors (all of the same dimension), computes every pairwise dot product,
and concatenates the flattened lower triangle with the bottom-MLP output.
This is the ``dot`` interaction of the DLRM reference implementation.

Kernel contract — what is bit-identical, and why
------------------------------------------------

Two execution paths produce the interaction:

* The **reference** path (:func:`reference_dot_interaction` /
  :func:`reference_dot_interaction_backward`): the original three-pass
  einsum implementation.  ``np.einsum`` computes every output element by
  an independent per-element reduction loop, so it is row-stable by
  construction — it is the parity anchor, never removed.
* The **batched-GEMM** path: the forward Gram is one
  ``np.matmul(stacked, stacked.transpose(0, 2, 1))`` (dispatched to BLAS
  batched-GEMM), and the backward writes the pair gradients into *both*
  strict triangles of a zero-diagonal symmetric buffer and runs **one**
  batched GEMM against ``stacked`` — no ``(batch, f, f)`` zeroed
  temporary, no symmetrize copy + transpose + add, no second einsum.

The two paths are *not* bit-identical to each other (BLAS reduction order
differs from einsum's in the last ulp), so the batched path follows the
same runtime-certification pattern as :mod:`repro.nn.gemm`: what training
correctness actually needs is **row stability** — the per-sample result
must not depend on how many other samples share the batched call, because
the fused µ-batch schedule interleaves whole-block (packed) and
per-segment calls and the parity grids assert they agree bit-for-bit.
:func:`interaction_certified` probes that property once per
``(features, dim, dtype)`` shape per process (full-block batched GEMMs
vs. fresh per-slice GEMMs over a battery of slice heights, forward and
backward, with the same ``out=``/layout call forms the kernel uses) and
the batched path runs only where the probe passed bit-for-bit; failed
shapes fall back to the reference einsums.  The decision is global per
shape, so every model and every execution path in a process agrees.

Workspace-lifetime rules
------------------------

:class:`DotInteractionKernel` pools its buffers keyed on shape, mirroring
:mod:`repro.nn.gemm`'s workspace reuse, and is **single-threaded by
design**: each model owns one kernel (a ``deepcopy`` of a model gets a
fresh, empty kernel), so replica threads never share a buffer — sharing
one kernel across threads would race on the Gram workspace.

* The ``(batch, f, dim)`` *stack* buffer is checked out at ``forward``
  (it lives inside the returned cache) and returned to the pool when
  ``backward`` consumes the cache.  A cache is therefore **single-use**:
  after its backward, a later forward of the same shape may recycle the
  buffer.  Forwards that never reach a backward (evaluation) simply drop
  the buffer to the garbage collector.
* The ``(batch, f, f)`` *Gram* buffer is transient within one call: the
  forward extracts the pair columns immediately and the backward's
  symmetric fill overwrites every off-diagonal element it reads (the
  diagonal is zeroed on every backward), so one pooled buffer per shape
  serves both directions.
* The backward's ``grad_stacked`` output is a **fresh** allocation every
  call — the per-feature gradients the caller receives are views into
  it, and callers accumulate them across µ-batch segments, so that array
  must never be recycled by the kernel.

The module-level :func:`dot_interaction` / :func:`dot_interaction_backward`
functions run the same certified kernels without any pooling (fresh
allocations per call) and are therefore safe to call from any thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

#: ``np.tril_indices(f, k=-1)`` per feature count — the pair index arrays
#: are a function of the feature count alone, so every step reuses them
#: instead of rebuilding two index arrays per interaction call.  Guarded
#: by :data:`_CACHE_LOCK`: replica threads race on first use of a shape.
_TRIL_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}

#: Certification cache: (features, dim, dtype str) -> the batched-GEMM
#: path reproduced fresh per-slice GEMMs bit-for-bit at this shape.
_CERTIFIED: dict[tuple[int, int, str], bool] = {}

_CACHE_LOCK = threading.Lock()

#: Batch height of the certification probe's full block.
_PROBE_ROWS = 64

#: Row ranges sliced out of the probe block: single row, small/odd spans,
#: and the block tail — the segment shapes the fused µ-batch schedule
#: actually produces.
_PROBE_SLICES = ((0, 1), (0, 2), (1, 4), (3, 17), (20, 33), (40, 64))

#: When set (via :func:`force_reference`), every kernel dispatch takes the
#: reference einsum path regardless of certification — the pre-PR
#: baseline, used by the A/B epilogue benchmark.  Not thread-safe: flip it
#: only from single-threaded measurement code.
_FORCE_REFERENCE = False


@contextmanager
def force_reference():
    """Run every interaction call through the reference einsum path.

    Measurement-only escape hatch (the ``fig18_epilogue_e2e`` benchmark
    times the pre-PR kernels through it); not thread-safe.
    """
    global _FORCE_REFERENCE
    _FORCE_REFERENCE = True
    try:
        yield
    finally:
        _FORCE_REFERENCE = False


def _tril_pairs(num_features: int) -> tuple[np.ndarray, np.ndarray]:
    pairs = _TRIL_CACHE.get(num_features)
    if pairs is None:
        pairs = np.tril_indices(num_features, k=-1)
        with _CACHE_LOCK:
            # setdefault keeps the first thread's arrays authoritative so
            # concurrent first-use builds never swap index identities.
            pairs = _TRIL_CACHE.setdefault(num_features, pairs)
    return pairs


def interaction_certified(
    num_features: int, dim: int, dtype: np.dtype = np.float64
) -> bool:
    """Certify the batched-GEMM interaction path for one shape.

    Probes, once per process per ``(features, dim, dtype)``, that the
    batched forward Gram and the batched symmetric backward GEMM are
    **row-stable**: slicing a full-block result reproduces a fresh
    per-slice call bit-for-bit, over :data:`_PROBE_SLICES`.  Row stability
    is exactly what the fused µ-batch parity grids need — the packed
    whole-batch call and the sequential per-segment calls must agree on
    every row.  Shapes that fail keep the reference einsum path.
    """
    key = (int(num_features), int(dim), np.dtype(dtype).str)
    with _CACHE_LOCK:
        cached = _CERTIFIED.get(key)
    if cached is not None:
        return cached
    # Probe outside the lock: a duplicate concurrent probe computes the
    # same deterministic verdict, so the benign race costs only time.
    rng = np.random.default_rng((num_features * 1_000_003 + dim) ^ 0x1A7E)
    stacked = rng.standard_normal((_PROBE_ROWS, num_features, dim)).astype(
        dtype, copy=False
    )
    gram = np.empty((_PROBE_ROWS, num_features, num_features), dtype=dtype)
    np.matmul(stacked, stacked.transpose(0, 2, 1), out=gram)
    sym = np.zeros_like(gram)
    rows, cols = _tril_pairs(num_features)
    sym[:, rows, cols] = rng.standard_normal((_PROBE_ROWS, rows.size))
    sym[:, cols, rows] = sym[:, rows, cols]
    grad = np.matmul(sym, stacked)
    ok = True
    for lo, hi in _PROBE_SLICES:
        sub_stack = np.ascontiguousarray(stacked[lo:hi])
        sub_gram = np.empty((hi - lo, num_features, num_features), dtype=dtype)
        np.matmul(sub_stack, sub_stack.transpose(0, 2, 1), out=sub_gram)
        if not np.array_equal(gram[lo:hi], sub_gram):
            ok = False
            break
        sub_sym = np.ascontiguousarray(sym[lo:hi])
        if not np.array_equal(grad[lo:hi], np.matmul(sub_sym, sub_stack)):
            ok = False
            break
    with _CACHE_LOCK:
        _CERTIFIED[key] = ok
    return ok


# ---------------------------------------------------------------------- #
# Reference implementation (the original three-pass einsum path)
# ---------------------------------------------------------------------- #
def reference_dot_interaction(
    dense: np.ndarray, sparse: list[np.ndarray]
) -> tuple[np.ndarray, dict]:
    """The original einsum forward — retained as the bit-parity anchor."""
    features = [dense] + list(sparse)
    stacked = np.stack(features, axis=1)  # (batch, f, dim)
    gram = np.einsum("bfd,bgd->bfg", stacked, stacked)  # (batch, f, f)
    num_features = stacked.shape[1]
    rows, cols = _tril_pairs(num_features)
    interactions = gram[:, rows, cols]  # (batch, n_pairs)
    output = np.concatenate([dense, interactions], axis=1)
    cache = {
        "stacked": stacked,
        "rows": rows,
        "cols": cols,
        "dense_dim": dense.shape[1],
        "batched": False,
    }
    return output, cache


def reference_dot_interaction_backward(
    grad_output: np.ndarray, cache: dict
) -> tuple[np.ndarray, list[np.ndarray]]:
    """The original three-pass backward — retained as the parity anchor.

    Materializes a zeroed ``(batch, f, f)`` gradient, symmetrizes it with
    a copy + transpose + add, then contracts with a second full einsum.
    """
    stacked: np.ndarray = cache["stacked"]
    rows: np.ndarray = cache["rows"]
    cols: np.ndarray = cache["cols"]
    dense_dim: int = cache["dense_dim"]
    batch, num_features, _ = stacked.shape

    grad_dense_direct = grad_output[:, :dense_dim]
    grad_pairs = grad_output[:, dense_dim:]  # (batch, n_pairs)

    grad_gram = np.zeros((batch, num_features, num_features), dtype=grad_output.dtype)
    grad_gram[:, rows, cols] = grad_pairs
    # The gram matrix is symmetric in its construction: d(x_f . x_g) affects
    # both x_f and x_g, which is captured by symmetrising the gradient.
    grad_gram = grad_gram + grad_gram.transpose(0, 2, 1)
    grad_stacked = np.einsum("bfg,bgd->bfd", grad_gram, stacked)

    grad_dense = grad_dense_direct + grad_stacked[:, 0, :]
    grad_sparse = [grad_stacked[:, i, :] for i in range(1, num_features)]
    return grad_dense, grad_sparse


# ---------------------------------------------------------------------- #
# Batched-GEMM kernels (shape-certified)
# ---------------------------------------------------------------------- #
def _forward_impl(
    dense: np.ndarray,
    sparse: list[np.ndarray],
    stack_buf: np.ndarray | None = None,
    gram_buf: np.ndarray | None = None,
) -> tuple[np.ndarray, dict]:
    """Single-pass forward: one batched GEMM for the full pairwise Gram."""
    features = [dense] + list(sparse)
    num_features = len(features)
    dim = dense.shape[1]
    if _FORCE_REFERENCE or not interaction_certified(num_features, dim, dense.dtype):
        return reference_dot_interaction(dense, sparse)
    stacked = np.stack(features, axis=1, out=stack_buf)  # (batch, f, dim)
    if gram_buf is None:
        gram = np.matmul(stacked, stacked.transpose(0, 2, 1))
    else:
        gram = np.matmul(stacked, stacked.transpose(0, 2, 1), out=gram_buf)
    rows, cols = _tril_pairs(num_features)
    interactions = gram[:, rows, cols]  # (batch, n_pairs) — a fresh copy
    output = np.concatenate([dense, interactions], axis=1)
    cache = {
        "stacked": stacked,
        "rows": rows,
        "cols": cols,
        "dense_dim": dense.shape[1],
        "batched": True,
    }
    return output, cache


def _backward_impl(
    grad_output: np.ndarray,
    cache: dict,
    sym_buf: np.ndarray | None = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Single-GEMM backward through the symmetric Gram structure.

    The pair gradients land directly in **both** strict triangles of a
    zero-diagonal buffer (the exact values ``G + G^T`` holds, since the
    opposite triangle of each term is zero), and one batched GEMM against
    ``stacked`` produces the full input gradient — two fancy-index writes
    and one GEMM, no full-tensor temporaries.
    """
    if not cache.get("batched", False):
        return reference_dot_interaction_backward(grad_output, cache)
    stacked: np.ndarray = cache["stacked"]
    rows: np.ndarray = cache["rows"]
    cols: np.ndarray = cache["cols"]
    dense_dim: int = cache["dense_dim"]
    batch, num_features, _ = stacked.shape

    grad_dense_direct = grad_output[:, :dense_dim]
    grad_pairs = grad_output[:, dense_dim:]  # (batch, n_pairs)

    if sym_buf is None:
        sym = np.zeros((batch, num_features, num_features), dtype=grad_output.dtype)
    else:
        sym = sym_buf
        # A reused buffer held the forward Gram (nonzero diagonal); the
        # triangle writes cover every off-diagonal element, so only the
        # diagonal needs re-zeroing.
        diag = np.arange(num_features)
        sym[:, diag, diag] = 0.0
    sym[:, rows, cols] = grad_pairs
    sym[:, cols, rows] = grad_pairs
    # Fresh output on every call: the caller receives views into it and
    # accumulates them across µ-batch segments (see workspace rules).
    grad_stacked = np.matmul(sym, stacked)

    grad_dense = grad_dense_direct + grad_stacked[:, 0, :]
    grad_sparse = [grad_stacked[:, i, :] for i in range(1, num_features)]
    return grad_dense, grad_sparse


def dot_interaction(dense: np.ndarray, sparse: list[np.ndarray]) -> tuple[np.ndarray, dict]:
    """Pairwise dot-product interaction.

    Runs the certified batched-GEMM kernel with fresh (unpooled) buffers —
    thread-safe; models use :class:`DotInteractionKernel` for the pooled,
    allocation-free steady state.

    Args:
        dense: Bottom-MLP output of shape (batch, dim).
        sparse: List of pooled embedding outputs, each (batch, dim).

    Returns:
        A tuple of the interaction output of shape
        (batch, dim + n_pairs) and a cache used by the backward pass.
    """
    return _forward_impl(dense, sparse)


def dot_interaction_backward(
    grad_output: np.ndarray, cache: dict
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Backward pass of :func:`dot_interaction`.

    Args:
        grad_output: Gradient w.r.t. the interaction output,
            shape (batch, dim + n_pairs).
        cache: Cache returned by the forward pass.

    Returns:
        Gradient w.r.t. the dense input and a list of gradients w.r.t. each
        sparse input (views into one ``(batch, f, dim)`` array).
    """
    return _backward_impl(grad_output, cache)


class DotInteractionKernel:
    """Workspace-pooled interaction kernel owned by one model instance.

    Pools the ``(batch, f, dim)`` stack and ``(batch, f, f)`` Gram buffers
    keyed on shape, so a steady-state training step performs no large
    interaction allocations (the backward's ``grad_stacked`` output stays
    fresh by contract).  **Not thread-safe** — one kernel per model, one
    model per replica thread; ``deepcopy`` yields a fresh, empty kernel so
    replica copies never alias a buffer (see the module docstring for the
    full workspace-lifetime rules).
    """

    def __init__(self) -> None:
        #: Free (batch, f, dim) stack buffers by (shape, dtype) key —
        #: checked out by forward, returned when backward consumes the cache.
        self._stack_pool: dict[tuple, list[np.ndarray]] = {}
        #: (batch, f, f) Gram/symmetric buffer by (shape, dtype) key —
        #: transient within each call, shared by forward and backward.
        self._gram_pool: dict[tuple, np.ndarray] = {}

    def __deepcopy__(self, memo) -> DotInteractionKernel:
        fresh = DotInteractionKernel()
        memo[id(self)] = fresh
        return fresh

    def _stack_buf(self, batch: int, f: int, dim: int, dtype) -> np.ndarray:
        key = (batch, f, dim, np.dtype(dtype).str)
        free = self._stack_pool.get(key)
        if free:
            return free.pop()
        return np.empty((batch, f, dim), dtype=dtype)

    def _gram_buf(self, batch: int, f: int, dtype) -> np.ndarray:
        key = (batch, f, np.dtype(dtype).str)
        buf = self._gram_pool.get(key)
        if buf is None:
            buf = np.zeros((batch, f, f), dtype=dtype)
            self._gram_pool[key] = buf
        return buf

    def forward(
        self, dense: np.ndarray, sparse: list[np.ndarray]
    ) -> tuple[np.ndarray, dict]:
        """Pooled :func:`dot_interaction`; the cache owns a stack buffer."""
        num_features = len(sparse) + 1
        batch, dim = dense.shape
        if _FORCE_REFERENCE or not interaction_certified(
            num_features, dim, dense.dtype
        ):
            return reference_dot_interaction(dense, sparse)
        stack_buf = self._stack_buf(batch, num_features, dim, dense.dtype)
        gram_buf = self._gram_buf(batch, num_features, dense.dtype)
        return _forward_impl(dense, sparse, stack_buf=stack_buf, gram_buf=gram_buf)

    def backward(
        self, grad_output: np.ndarray, cache: dict
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Pooled backward; consumes the cache and recycles its stack buffer."""
        if not cache.get("batched", False):
            return reference_dot_interaction_backward(grad_output, cache)
        stacked: np.ndarray = cache["stacked"]
        batch, num_features, dim = stacked.shape
        sym = self._gram_buf(batch, num_features, grad_output.dtype)
        result = _backward_impl(grad_output, cache, sym_buf=sym)
        key = (batch, num_features, dim, stacked.dtype.str)
        self._stack_pool.setdefault(key, []).append(stacked)
        cache["stacked"] = None  # the cache is single-use once pooled
        return result


def interaction_output_dim(dense_dim: int, num_sparse: int) -> int:
    """Dimension of the interaction output for the top MLP's input size."""
    num_features = num_sparse + 1
    num_pairs = num_features * (num_features - 1) // 2
    return dense_dim + num_pairs
