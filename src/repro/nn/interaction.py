"""DLRM dot-product feature interaction.

The interaction layer takes the bottom-MLP output and the pooled embedding
vectors (all of the same dimension), computes every pairwise dot product,
and concatenates the flattened lower triangle with the bottom-MLP output.
This is the ``dot`` interaction of the DLRM reference implementation.
"""

from __future__ import annotations

import numpy as np

#: ``np.tril_indices(f, k=-1)`` per feature count — the pair index arrays
#: are a function of the feature count alone, so every step reuses them
#: instead of rebuilding two index arrays per interaction call.
_TRIL_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _tril_pairs(num_features: int) -> tuple[np.ndarray, np.ndarray]:
    pairs = _TRIL_CACHE.get(num_features)
    if pairs is None:
        pairs = np.tril_indices(num_features, k=-1)
        _TRIL_CACHE[num_features] = pairs
    return pairs


def dot_interaction(dense: np.ndarray, sparse: list[np.ndarray]) -> tuple[np.ndarray, dict]:
    """Pairwise dot-product interaction.

    Args:
        dense: Bottom-MLP output of shape (batch, dim).
        sparse: List of pooled embedding outputs, each (batch, dim).

    Returns:
        A tuple of the interaction output of shape
        (batch, dim + n_pairs) and a cache used by the backward pass.
    """
    features = [dense] + list(sparse)
    stacked = np.stack(features, axis=1)  # (batch, f, dim)
    gram = np.einsum("bfd,bgd->bfg", stacked, stacked)  # (batch, f, f)
    num_features = stacked.shape[1]
    rows, cols = _tril_pairs(num_features)
    interactions = gram[:, rows, cols]  # (batch, n_pairs)
    output = np.concatenate([dense, interactions], axis=1)
    cache = {"stacked": stacked, "rows": rows, "cols": cols, "dense_dim": dense.shape[1]}
    return output, cache


def dot_interaction_backward(
    grad_output: np.ndarray, cache: dict
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Backward pass of :func:`dot_interaction`.

    Args:
        grad_output: Gradient w.r.t. the interaction output,
            shape (batch, dim + n_pairs).
        cache: Cache returned by the forward pass.

    Returns:
        Gradient w.r.t. the dense input and a list of gradients w.r.t. each
        sparse input.
    """
    stacked: np.ndarray = cache["stacked"]
    rows: np.ndarray = cache["rows"]
    cols: np.ndarray = cache["cols"]
    dense_dim: int = cache["dense_dim"]
    batch, num_features, _ = stacked.shape

    grad_dense_direct = grad_output[:, :dense_dim]
    grad_pairs = grad_output[:, dense_dim:]  # (batch, n_pairs)

    grad_gram = np.zeros((batch, num_features, num_features), dtype=grad_output.dtype)
    grad_gram[:, rows, cols] = grad_pairs
    # The gram matrix is symmetric in its construction: d(x_f . x_g) affects
    # both x_f and x_g, which is captured by symmetrising the gradient.
    grad_gram = grad_gram + grad_gram.transpose(0, 2, 1)
    grad_stacked = np.einsum("bfg,bgd->bfd", grad_gram, stacked)

    grad_dense = grad_dense_direct + grad_stacked[:, 0, :]
    grad_sparse = [grad_stacked[:, i, :] for i in range(1, num_features)]
    return grad_dense, grad_sparse


def interaction_output_dim(dense_dim: int, num_sparse: int) -> int:
    """Dimension of the interaction output for the top MLP's input size."""
    num_features = num_sparse + 1
    num_pairs = num_features * (num_features - 1) // 2
    return dense_dim + num_pairs
