"""Binary cross-entropy loss (the CTR objective, Eq. 1-2 of the paper).

Implemented on logits for numerical stability.  The loss is a *sum* over the
mini-batch by default, matching Equation 2 of the paper: this is what makes
the Hotline µ-batch decomposition exactly loss-preserving
(L_popular + L_non_popular == L_baseline, Eq. 5).  A mean reduction is also
offered for conventional training loops.

Fused epilogue contract — bit-identity
--------------------------------------

:func:`fused_bce_epilogue` computes the summed loss and the logit gradient
in **one pass** over the batch: a single ``e = exp(-|z|)`` feeds both the
``log1p(e)`` loss term and the branch-split stable sigmoid.  For float64
inputs it is **bit-identical** to the retained two-pass pair
(:func:`reference_epilogue`, i.e. :func:`bce_with_logits` +
:func:`bce_with_logits_backward`), by construction rather than by runtime
certification:

* loss term: ``np.log1p(np.exp(-np.abs(z)))`` is literally the same
  expression the reference evaluates;
* sigmoid, ``z >= 0`` branch: ``exp(-z) == exp(-|z|)`` exactly, so
  ``1/(1+e)`` sees bit-identical inputs to the reference's
  ``1/(1+exp(-z))``;
* sigmoid, ``z < 0`` branch: ``exp(z) == exp(-|z|)`` exactly, so
  ``e/(1+e)`` matches the reference's ``exp(z)/(1+exp(z))``.

Unlike the reference (which always round-trips through float64), the fused
kernel computes in the logits' native floating dtype — float32 batches stay
float32, which is what "avoid the float64 round-trips where the float32
contract allows" means; the repo's float64 training path is unaffected.
All outputs are fresh allocations (no workspace pooling): the gradient is
handed to the caller, who scales and accumulates it across µ-batch
segments, so it must never be recycled.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

#: When set (via :func:`force_reference`), :func:`fused_bce_epilogue`
#: dispatches to the retained two-pass reference — the pre-PR baseline for
#: the A/B epilogue benchmark.  Not thread-safe: flip it only from
#: single-threaded measurement code.
_FORCE_REFERENCE = False


@contextmanager
def force_reference():
    """Route :func:`fused_bce_epilogue` through the two-pass reference.

    Measurement-only escape hatch; not thread-safe.
    """
    global _FORCE_REFERENCE
    _FORCE_REFERENCE = True
    try:
        yield
    finally:
        _FORCE_REFERENCE = False


def _stable_sigmoid(logits: np.ndarray) -> np.ndarray:
    out = np.empty_like(logits, dtype=np.float64)
    positive = logits >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-logits[positive]))
    exp_x = np.exp(logits[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def bce_with_logits(
    logits: np.ndarray, targets: np.ndarray, reduction: str = "sum"
) -> float:
    """Binary cross-entropy of ``logits`` against 0/1 ``targets``.

    Uses the log-sum-exp form ``max(z,0) - z*y + log(1+exp(-|z|))`` which is
    stable for large-magnitude logits.  Returns a scalar; use
    :func:`bce_with_logits_per_sample` for the unreduced vector.
    """
    per_sample = bce_with_logits_per_sample(logits, targets)
    if reduction == "sum":
        return float(per_sample.sum())
    if reduction == "mean":
        return float(per_sample.mean())
    raise ValueError(f"unknown reduction {reduction!r}")


def bce_with_logits_per_sample(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Unreduced binary cross-entropy: one loss value per sample."""
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if logits.shape != targets.shape:
        raise ValueError("logits and targets must have the same shape")
    return (
        np.maximum(logits, 0.0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
    )


def bce_with_logits_backward(
    logits: np.ndarray, targets: np.ndarray, reduction: str = "sum"
) -> np.ndarray:
    """Gradient of :func:`bce_with_logits` with respect to the logits."""
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    grad = _stable_sigmoid(logits) - targets
    if reduction == "mean":
        grad = grad / logits.shape[0]
    elif reduction not in ("sum", "none"):
        raise ValueError(f"unknown reduction {reduction!r}")
    return grad


def reference_epilogue(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """The original two-pass loss + gradient — the bit-parity anchor.

    Evaluates the stable-sigmoid/exp terms twice (once inside the loss,
    once inside the gradient) exactly as the pre-fusion call sites did.
    """
    loss = bce_with_logits(logits, targets, reduction="sum")
    grad = bce_with_logits_backward(logits, targets, reduction="sum")
    return loss, grad


def fused_bce_epilogue(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Summed BCE loss and logit gradient in one pass.

    Computes ``e = exp(-|z|)`` once and shares it between the loss's
    ``log1p`` term and the branch-split stable sigmoid (see the module
    docstring for the bit-identity argument).  Runs in the logits' native
    floating dtype; non-float inputs are promoted to float64.

    Returns:
        ``(loss_sum, grad_logits)`` where ``grad_logits = sigmoid(z) - y``
        (the ``reduction="sum"`` gradient), a fresh 1-D array.
    """
    if _FORCE_REFERENCE:
        return reference_epilogue(logits, targets)
    z = np.asarray(logits)
    if z.dtype not in (np.float32, np.float64):
        z = z.astype(np.float64)
    z = z.reshape(-1)
    y = np.asarray(targets, dtype=z.dtype).reshape(-1)
    if z.shape != y.shape:
        raise ValueError("logits and targets must have the same shape")
    e = np.exp(-np.abs(z))
    positive = z >= 0
    negative = ~positive
    sigmoid = np.empty_like(z)
    sigmoid[positive] = 1.0 / (1.0 + e[positive])
    sigmoid[negative] = e[negative] / (1.0 + e[negative])
    per_sample = np.maximum(z, 0.0) - z * y + np.log1p(e)
    grad = sigmoid
    grad -= y  # sigmoid buffer is ours — reuse it for the gradient
    return float(per_sample.sum()), grad


def predicted_probabilities(logits: np.ndarray) -> np.ndarray:
    """Convert logits to click probabilities."""
    return _stable_sigmoid(np.asarray(logits, dtype=np.float64).reshape(-1))
