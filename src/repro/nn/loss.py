"""Binary cross-entropy loss (the CTR objective, Eq. 1-2 of the paper).

Implemented on logits for numerical stability.  The loss is a *sum* over the
mini-batch by default, matching Equation 2 of the paper: this is what makes
the Hotline µ-batch decomposition exactly loss-preserving
(L_popular + L_non_popular == L_baseline, Eq. 5).  A mean reduction is also
offered for conventional training loops.
"""

from __future__ import annotations

import numpy as np


def _stable_sigmoid(logits: np.ndarray) -> np.ndarray:
    out = np.empty_like(logits, dtype=np.float64)
    positive = logits >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-logits[positive]))
    exp_x = np.exp(logits[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def bce_with_logits(
    logits: np.ndarray, targets: np.ndarray, reduction: str = "sum"
) -> float:
    """Binary cross-entropy of ``logits`` against 0/1 ``targets``.

    Uses the log-sum-exp form ``max(z,0) - z*y + log(1+exp(-|z|))`` which is
    stable for large-magnitude logits.
    """
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if logits.shape != targets.shape:
        raise ValueError("logits and targets must have the same shape")
    per_sample = (
        np.maximum(logits, 0.0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
    )
    if reduction == "sum":
        return float(per_sample.sum())
    if reduction == "mean":
        return float(per_sample.mean())
    if reduction == "none":
        return per_sample  # type: ignore[return-value]
    raise ValueError(f"unknown reduction {reduction!r}")


def bce_with_logits_backward(
    logits: np.ndarray, targets: np.ndarray, reduction: str = "sum"
) -> np.ndarray:
    """Gradient of :func:`bce_with_logits` with respect to the logits."""
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    grad = _stable_sigmoid(logits) - targets
    if reduction == "mean":
        grad = grad / logits.shape[0]
    elif reduction not in ("sum", "none"):
        raise ValueError(f"unknown reduction {reduction!r}")
    return grad


def predicted_probabilities(logits: np.ndarray) -> np.ndarray:
    """Convert logits to click probabilities."""
    return _stable_sigmoid(np.asarray(logits, dtype=np.float64).reshape(-1))
