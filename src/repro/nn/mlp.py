"""Multi-layer perceptron built from Linear + ReLU layers.

DLRM and TBSM describe their dense networks as layer-size strings such as
``"13-512-256-64-16"`` (bottom MLP) and ``"512-256-1"`` (top MLP).  The MLP
here accepts the equivalent list of sizes and mirrors the reference
behaviour: ReLU between hidden layers and an optional sigmoid on the final
layer (the top MLP's CTR output).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, ReLU, Sigmoid


class MLP:
    """A stack of fully-connected layers with ReLU activations."""

    def __init__(
        self,
        layer_sizes: list[int],
        rng: np.random.Generator,
        *,
        sigmoid_output: bool = False,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("an MLP needs at least an input and an output size")
        self.layer_sizes = list(layer_sizes)
        self.sigmoid_output = sigmoid_output
        self.layers: list = []
        for i, (fan_in, fan_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:], strict=True)):
            self.layers.append(Linear(fan_in, fan_out, rng))
            is_last = i == len(layer_sizes) - 2
            if not is_last:
                self.layers.append(ReLU())
            elif sigmoid_output:
                self.layers.append(Sigmoid())

    @classmethod
    def from_arch_string(
        cls, arch: str, rng: np.random.Generator, *, sigmoid_output: bool = False
    ) -> MLP:
        """Build an MLP from a DLRM-style ``"13-512-256-64"`` string."""
        sizes = [int(token) for token in arch.split("-")]
        return cls(sizes, rng, sigmoid_output=sigmoid_output)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the input through every layer."""
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through the stack, returning the input gradient."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        """Reset gradients in all layers."""
        for layer in self.layers:
            layer.zero_grad()

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs for all layers."""
        params: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(layer.num_parameters for layer in self.layers)

    @property
    def flops_per_sample(self) -> float:
        """FLOPs for one forward pass of one sample.

        Counts the multiply-accumulates of every ``Linear`` (``2*in*out``)
        *plus* its bias add (``out``) and the element-wise activation that
        follows it (``out`` per hidden ReLU, and per sigmoid output when
        present) — the bias/activation terms the perf model's dense times
        were silently missing when this counted MACs only.
        """
        flops = 0.0
        last = len(self.layer_sizes) - 2
        for i, (fan_in, fan_out) in enumerate(
            zip(self.layer_sizes[:-1], self.layer_sizes[1:], strict=True)
        ):
            flops += 2.0 * fan_in * fan_out + fan_out  # MACs + bias add
            if i != last or self.sigmoid_output:
                flops += fan_out  # activation
        return flops
