"""Programmatic regeneration of the paper's evaluation figures.

The benchmark harness under ``benchmarks/`` prints and asserts each figure;
this package exposes the same computations as a library API so downstream
users (or notebooks) can regenerate a figure's data directly::

    from repro.experiments import list_experiments, run_experiment

    for exp in list_experiments():
        print(exp.id, "-", exp.title)
    fig19 = run_experiment("fig19")     # -> dict of series/rows

Only the timing-model figures are exposed here (they run in milliseconds);
the functional experiments (AUC convergence, EAL tracking) live in the
benchmark modules because they train real models.
"""

from repro.experiments.registry import (
    Experiment,
    list_experiments,
    run_all,
    run_experiment,
)

__all__ = ["Experiment", "list_experiments", "run_experiment", "run_all"]
