"""Registry of timing-model experiments (the paper's performance figures).

Each experiment is a named, parameter-free callable returning plain Python
data (dicts / lists) ready for tabulation or plotting.  The heavy functional
experiments (full model training at paper scale) live in the benchmark
harness; the functional experiments registered here — ``fig30f`` (sharded
scaling), ``fig30r`` (reducer-mode sweep), and ``fig30s`` (stale-k ×
lookahead-window convergence-vs-exposure sweep) — are deliberately sized to
finish in seconds.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.breakdown import normalised_breakdown
from repro.baselines import (
    FAE,
    HotlineCPU,
    HugeCTRGPUOnly,
    HybridCPUGPU,
    ScratchPipeIdeal,
    XDLParameterServer,
)
from repro.core import HotlineScheduler
from repro.core.distributed import MergedGradientShardedTrainer, ShardedHotlineTrainer
from repro.core.reducer import GradientBucketReducer
from repro.core.schedule import CommOp, StepSchedule, allreduce_ops, pipeline_makespan
from repro.data import MiniBatchLoader, generate_click_log
from repro.hwsim import DMAEngine, HierarchicalTopology, multi_node, single_node
from repro.models import RM1, RM2, RM3, RM4, SYN_M1, SYN_M2
from repro.models.dlrm import DLRM
from repro.perf import TrainingCostModel

#: The four real-world workloads in figure order.
_WORKLOADS = [
    ("Criteo Kaggle", RM2),
    ("Taobao Alibaba", RM1),
    ("Criteo Terabyte", RM3),
    ("Avazu", RM4),
]

_BATCH_PER_GPU = 1024


def _costs(config, gpus: int = 4, nodes: int = 1) -> TrainingCostModel:
    cluster = single_node(gpus) if nodes == 1 else multi_node(nodes, gpus)
    return TrainingCostModel(config, cluster=cluster)


@dataclass(frozen=True)
class Experiment:
    """One regenerable experiment.

    Attributes:
        id: Short identifier (e.g. ``"fig19"``).
        title: Human-readable description.
        run: Zero-argument callable producing the experiment's data.
    """

    id: str
    title: str
    run: Callable[[], dict]


# --------------------------------------------------------------------------- #
# Individual experiments
# --------------------------------------------------------------------------- #
def _fig3_hybrid_breakdown() -> dict:
    return {
        label: normalised_breakdown(
            HybridCPUGPU(_costs(config)).step_timeline(4 * _BATCH_PER_GPU)
        )
        for label, config in _WORKLOADS
    }


def _fig4_gpu_only_breakdown() -> dict:
    result = {}
    for label, config in _WORKLOADS:
        mode = HugeCTRGPUOnly(_costs(config))
        if mode.is_feasible():
            result[label] = normalised_breakdown(mode.step_timeline(4 * _BATCH_PER_GPU))
    return result


def _fig5_multinode_breakdown() -> dict:
    result = {}
    for label, config in [("Criteo Kaggle", RM2), ("Criteo Terabyte", RM3)]:
        for nodes in (1, 2, 4):
            mode = HugeCTRGPUOnly(_costs(config, nodes=nodes))
            if mode.is_feasible():
                batch = 4 * nodes * _BATCH_PER_GPU
                result[f"{label} / {nodes} node(s)"] = normalised_breakdown(
                    mode.step_timeline(batch)
                )
    return result


def _fig19_speedups() -> dict:
    result = {}
    for label, config in _WORKLOADS:
        for gpus in (1, 2, 4):
            costs = _costs(config, gpus=gpus)
            batch = gpus * _BATCH_PER_GPU
            hotline = HotlineScheduler(costs)
            result[f"{label} / {gpus} GPU"] = {
                "over_xdl": hotline.speedup_over(XDLParameterServer(costs), batch),
                "over_dlrm": hotline.speedup_over(HybridCPUGPU(costs), batch),
                "over_fae": hotline.speedup_over(FAE(costs), batch),
            }
    return result


def _fig21_throughput() -> dict:
    result = {}
    for label, config in _WORKLOADS:
        costs = _costs(config)
        result[label] = {
            "hotline_epochs_per_hour": HotlineScheduler(costs).epochs_per_hour(4096),
            "dlrm_epochs_per_hour": HybridCPUGPU(costs).epochs_per_hour(4096),
        }
    return result


def _fig22_hugectr() -> dict:
    result = {}
    for label, config in [("Criteo Kaggle", RM2), ("Criteo Terabyte", RM3)]:
        for gpus in (1, 2, 4):
            costs = _costs(config, gpus=gpus)
            batch = gpus * _BATCH_PER_GPU
            hugectr = HugeCTRGPUOnly(costs)
            key = f"{label} / {gpus} GPU"
            if hugectr.is_feasible():
                result[key] = HotlineScheduler(costs).speedup_over(hugectr, batch)
            else:
                result[key] = "OOM"
    return result


def _fig23_hotline_cpu() -> dict:
    return {
        f"{label} / {gpus} GPU": HotlineScheduler(_costs(config, gpus=gpus)).speedup_over(
            HotlineCPU(_costs(config, gpus=gpus)), gpus * _BATCH_PER_GPU
        )
        for label, config in _WORKLOADS
        for gpus in (1, 2, 4)
    }


def _fig24_scratchpipe() -> dict:
    return {
        f"{label} / {gpus} GPU": HotlineScheduler(_costs(config, gpus=gpus)).speedup_over(
            ScratchPipeIdeal(_costs(config, gpus=gpus)), gpus * _BATCH_PER_GPU
        )
        for label, config in _WORKLOADS
        for gpus in (1, 2, 4)
    }


def _fig25_ratio_sweep() -> dict:
    scheduler = HotlineScheduler(_costs(RM3))
    result = {}
    for ratio in (0.2, 0.3, 0.4, 0.6, 0.8, 0.9):
        plan = scheduler.plan_step(4096, hot_fraction=ratio)
        result[ratio] = {
            "popular_exec_ms": plan.popular_exec_time * 1e3,
            "gather_ms": plan.gather_time * 1e3,
            "exposed_ms": plan.exposed_gather_time * 1e3,
            "hidden": plan.gather_hidden,
        }
    return result


def _fig26_batch_sweep() -> dict:
    result = {}
    for label, config in _WORKLOADS:
        costs = _costs(config)
        hotline = HotlineScheduler(costs)
        hybrid = HybridCPUGPU(costs)
        result[label] = {
            batch: hotline.speedup_over(hybrid, batch)
            for batch in (1024, 2048, 4096, 8192, 16384)
        }
    return result


def _fig28_synthetic_models() -> dict:
    result = {}
    for config in (SYN_M1, SYN_M2):
        costs = _costs(config)
        result[config.name] = {
            "speedup_over_dlrm": HotlineScheduler(costs).speedup_over(
                HybridCPUGPU(costs), 4096
            ),
            "embedding_gb": config.embedding_gigabytes,
        }
    return result


def _fig30_multinode() -> dict:
    result = {}
    for config in (SYN_M1, SYN_M2):
        for nodes in (1, 2, 4):
            costs = _costs(config, nodes=nodes)
            batch = 4 * nodes * _BATCH_PER_GPU
            hugectr = HugeCTRGPUOnly(costs)
            key = f"{config.name} / {nodes} node(s)"
            if hugectr.is_feasible():
                result[key] = HotlineScheduler(costs).speedup_over(hugectr, batch)
            else:
                result[key] = "OOM"
    return result


def _fig30_functional() -> dict:
    """Multi-node scaling from a *functional* sharded run (fig30 companion).

    Unlike ``fig30`` (pure timing model), this trains a real (scaled-down)
    DLRM with the merged-gradient K-shard trainer
    (:class:`~repro.core.distributed.MergedGradientShardedTrainer` — one
    shared numeric replica, the cheapest path to the bit-identical result)
    at 4 shards per node and reports simulated per-shard compute plus the
    hierarchical all-reduce term from :mod:`repro.hwsim.collectives`.  The
    recorded losses are numerically identical across node counts (Eq. 5
    across shards), so the scaling curve is backed by an actual training
    result rather than a simulation alone.  ``fig30r`` is the true
    multi-replica counterpart.
    """
    config = RM2.scaled(max_rows_per_table=600, samples_per_epoch=1024)
    log = generate_click_log(config.dataset, 1024, seed=23)
    loader = MiniBatchLoader(log, batch_size=256)
    result = {}
    for nodes in (1, 2, 4):
        shards = 4 * nodes
        cluster = single_node(4) if nodes == 1 else multi_node(nodes, 4)
        trainer = MergedGradientShardedTrainer(
            DLRM(config, seed=5),
            shards,
            cluster=cluster,
            lr=0.1,
            sample_fraction=0.25,
            perf_model=HotlineScheduler(TrainingCostModel(config, cluster=cluster)),
        )
        run = trainer.train(loader, epochs=1)
        result[f"{nodes} node(s)"] = {
            "shards": shards,
            "final_loss": run.losses[-1],
            "simulated_time_s": run.simulated_time_s,
            "compute_time_s": run.compute_time_s,
            "communication_time_s": run.communication_time_s,
            "mean_popular_fraction": run.mean_popular_fraction,
        }
    return result


def _fig30_replicated() -> dict:
    """Staleness/overlap sweep over truly independent replicas (fig30r).

    Where ``fig30f`` trained one shared numeric replica, this sweep runs
    :class:`~repro.core.distributed.ShardedHotlineTrainer` with K genuinely
    separate model replicas, row-partitioned embedding tables, and a small
    bucket size (64 KiB) so the dense all-reduce spans several buckets.  For
    every node count it reports the three reducer modes side by side:

    * ``sync`` — all bucket wire time exposed after backward;
    * ``overlap`` — buckets pipeline behind backward, only the tail is
      exposed (numerics identical to ``sync``);
    * ``stale-1`` — the reduce hides under the next step's compute window;
      only wire time beyond that window is exposed (here the window dwarfs
      the wire time, so nothing is), and the reduced dense gradient lands
      one step late (the only mode that changes the losses).

    Per-bucket wire time comes straight from
    :attr:`~repro.core.engine.TrainingResult.bucket_comm_s`, and the
    reported ``replica_drift`` is exactly ``0.0`` — identical updates keep
    the K replicas bit-identical even under staleness.
    """
    config = RM2.scaled(max_rows_per_table=600, samples_per_epoch=1024)
    log = generate_click_log(config.dataset, 1024, seed=23)
    loader = MiniBatchLoader(log, batch_size=256)
    result = {}
    for nodes in (1, 2):
        shards = 4 * nodes
        cluster = single_node(4) if nodes == 1 else multi_node(nodes, 4)
        for mode in ("sync", "overlap", "stale-1"):
            trainer = ShardedHotlineTrainer(
                DLRM(config, seed=5),
                shards,
                cluster=cluster,
                lr=0.1,
                sample_fraction=0.25,
                bucket_bytes=64 * 1024,
                mode=mode,
                partition_embeddings=True,
                perf_model=HotlineScheduler(TrainingCostModel(config, cluster=cluster)),
            )
            run = trainer.train(loader, epochs=1)
            result[f"{nodes} node(s) / {mode}"] = {
                "shards": shards,
                "final_loss": run.losses[-1],
                "simulated_time_s": run.simulated_time_s,
                "compute_time_s": run.compute_time_s,
                "exposed_communication_s": run.communication_time_s,
                "per_bucket_comm_s": list(run.bucket_comm_s),
                "num_buckets": len(run.bucket_comm_s),
                "remote_lookups_last_step": trainer.last_remote_lookups,
                "replica_drift": trainer.replica_drift(),
            }
    return result


class _FixedComputeModel:
    """Constant-compute stand-in perf model for the staleness sweep.

    The convergence-vs-exposure story needs a compute window comparable to
    the dense wire time (otherwise every staleness depth hides everything
    and the exposure curve is flat); pinning the window to a chosen
    fraction of the wire time makes the ``max(0, wire - k * window)``
    shrinkage visible across k ∈ {0, 1, 2, 4}.
    """

    def __init__(self, step_s: float):
        self.step_s = step_s

    def step_time(self, batch_size: int) -> float:
        return self.step_s

    def collective_time(self) -> float:
        return 0.0


def _fig30_stale_lookahead() -> dict:
    """Convergence-vs-exposure sweep of stale-k × lookahead window (fig30s).

    Trains the true multi-replica trainer with the bounded-staleness knobs
    of this PR: the dense all-reduce runs ``stale-k`` (a k-deep pipeline of
    in-flight reduces; ``stale-0`` ≡ ``sync``) and the BagPipe-style
    :class:`~repro.core.lookahead.CachedEmbeddingPipeline` walks the epoch
    W batches ahead, prefetching rows and deferring sparse write-backs
    under the same bound k.  The compute window is pinned to a third of the
    per-step wire time, so exposure shrinks visibly (and monotonically)
    with k while the final loss degrades monotonically — the
    convergence-vs-exposure trade the sweep exists to plot.  Cache
    hit-rates grow with W; replicas never drift (staleness is uniform).
    """
    config = RM2.scaled(max_rows_per_table=600, samples_per_epoch=1024)
    log = generate_click_log(config.dataset, 1024, seed=23)
    cluster = single_node(4)
    bucket_bytes = 4 * 1024
    wire = sum(
        GradientBucketReducer(4, bucket_bytes=bucket_bytes, cluster=cluster).bucket_times(
            DLRM(config, seed=5).num_dense_parameters
        )
    )
    perf_model = _FixedComputeModel(wire / 3.0)
    result = {}
    for staleness in (0, 1, 2, 4):
        for window in (2, 8):
            trainer = ShardedHotlineTrainer(
                DLRM(config, seed=5),
                4,
                cluster=cluster,
                lr=0.3,
                sample_fraction=0.25,
                bucket_bytes=bucket_bytes,
                mode=f"stale-{staleness}",
                lookahead_window=window,
                perf_model=perf_model,
            )
            run = trainer.train(
                MiniBatchLoader(log, batch_size=128),
                epochs=2,
                eval_batch=log.batch(0, 512),
            )
            result[f"k={staleness} / W={window}"] = {
                "staleness": staleness,
                "window": window,
                "final_loss": run.losses[-1],
                "final_logloss": run.final_metrics["logloss"],
                "simulated_time_s": run.simulated_time_s,
                "exposed_communication_s": run.communication_time_s,
                "cache_hit_rate": run.cache_hit_rate,
                "cache_fill_rows": run.cache_fill_rows,
                "stale_rows": run.stale_rows,
                "prefetch_time_s": run.prefetch_time_s,
                "replica_drift": trainer.replica_drift(),
            }
    return result


def _fig30_nested_pipeline() -> dict:
    """Hotline split vs nested µ-batch × stage pipelining at scale (fig30n).

    Sweeps 8 → 1,536 simulated devices on a :class:`HierarchicalTopology`
    (4 GPUs per NIC, 2 NICs per node, 4:1 oversubscribed spine) and prices
    two execution arms with the same schedule layer:

    * **Hotline** — the paper's popular/non-popular split, data-parallel
      across *all* devices.  The popular µ-batch computes while the cold
      rows of the non-popular µ-batch stream over PCIe (a ``fill``
      :class:`CommOp` hidden ``staged(1)`` behind the popular window);
      the price of admission is a full dense-gradient all-reduce whose
      spine ring spans every node, so its latency term grows linearly
      with the node count and its bandwidth term pays the 4:1 derate.

    * **NestPipe** — intra-node µ-batch pipelining nested inside
      inter-node stage pipelining.  Each pipeline replica spans
      ``S = min(8, nodes)`` node-stages (a node's 8 GPUs work one
      µ-batch's share data-parallel; the model's layers split across the
      S stages), ``M = 4·S`` µ-batches fill the pipe, and activations hop
      nearest-neighbour over the NIC tier — never the spine.  Only
      ``R = nodes / S`` replica peers ring over the spine, and each
      syncs just its own stage's ``1/S`` slice of the dense gradient, so
      the spine term is roughly ``S × R``-fold smaller.  The cost is the
      classic fill/drain bubble, ``(M + S - 1) / M ≈ 1.22`` of pure
      compute, plus per-µ-batch activation hops.

    Both arms pay identical embedding-lookup work (it cancels in the
    comparison and is omitted); they differ only in execution schedule and
    dense synchronisation.  At small scale the bubble makes NestPipe lose;
    past the crossover the Hotline arm's whole-cluster spine ring costs
    more than the bubble, which is the scale where the popular/non-popular
    split stops paying.  The reported ``crossover_devices`` is the first
    sweep point where NestPipe wins.
    """
    costs = TrainingCostModel(RM2)
    model = costs.model
    overhead = costs.overheads.gpu_iteration_overhead_s
    dense_bytes = model.dense_parameter_count * 4.0
    row_bytes = model.bytes_per_lookup()
    batch = _BATCH_PER_GPU
    # Only the pooled interaction vector crosses a stage boundary — the
    # per-sample feature the top MLP consumes — not raw activations.
    act_bytes_per_sample = 64.0

    def _mlp(samples_per_gpu: float) -> float:
        samples = max(1, int(samples_per_gpu))
        return costs.mlp_forward_time(samples) + costs.mlp_backward_time(samples)

    result: dict = {"sweep": {}, "crossover_devices": None}
    for devices in (8, 32, 128, 512, 1024, 1536):
        nodes = devices // 8
        topo = HierarchicalTopology(
            gpus_per_nic=4, nics_per_node=2, num_nodes=nodes, oversubscription=4.0
        )

        # --- Hotline arm: popular/non-popular split, all-device sync --- #
        popular = costs.hot_fraction * batch
        non_popular = batch - popular
        popular_exec = _mlp(popular)
        non_popular_exec = _mlp(non_popular)
        cold_rows = (1.0 - costs.hot_lookup_fraction) * costs.lookups(int(non_popular))
        gather = StepSchedule.price(
            (CommOp("fill", tier="pcie", rows=cold_rows, row_bytes=row_bytes),),
            topo,
            mode="staged",
            stages=1,
            dma=DMAEngine(),
            label="cold-gather",
        )
        exposed_gather = gather.exposed_time(popular_exec)
        hotline_dense = StepSchedule.price(
            allreduce_ops(topo, dense_bytes, devices), topo, label="dense-allreduce"
        )
        hotline_step = (
            overhead
            + popular_exec
            + exposed_gather
            + non_popular_exec
            + hotline_dense.total_s
        )

        # --- NestPipe arm: µ-batch pipelining inside stage pipelining --- #
        stages = min(8, nodes)
        replicas = max(1, nodes // stages)
        microbatches = 4 * stages
        # Each replica spans S nodes and owns their combined batch; a
        # µ-batch therefore carries a fixed 2 × 8 × _BATCH_PER_GPU / 8
        # samples regardless of depth.
        microbatch_samples = topo.gpus_per_node * stages * batch / microbatches
        stage_compute = _mlp(microbatch_samples / topo.gpus_per_node) / stages
        if stages > 1:
            act_time = topo.link("nic").transfer_time(
                2.0 * microbatch_samples * act_bytes_per_sample
            )
        else:
            act_time = 0.0
        makespan = pipeline_makespan(max(stage_compute, act_time), stages, microbatches)
        nested_ops = [
            CommOp(
                "allreduce",
                tier="gpu",
                num_bytes=dense_bytes / stages,
                participants=topo.gpus_per_node,
            )
        ]
        if replicas > 1:
            nested_ops.append(
                CommOp(
                    "allreduce",
                    tier="spine",
                    num_bytes=dense_bytes / stages,
                    participants=replicas,
                )
            )
        nested_dense = StepSchedule.price(nested_ops, topo, label="stage-allreduce")
        nested_step = overhead + makespan + nested_dense.total_s

        result["sweep"][devices] = {
            "devices": devices,
            "nodes": nodes,
            "hotline_step_s": hotline_step,
            "hotline_dense_sync_s": hotline_dense.total_s,
            "hotline_exposed_gather_s": exposed_gather,
            "nested_step_s": nested_step,
            "nested_dense_sync_s": nested_dense.total_s,
            "nested_makespan_s": makespan,
            "pipeline_stages": stages,
            "pipeline_replicas": replicas,
            "microbatches": microbatches,
            "nested_speedup": hotline_step / nested_step,
        }
        if result["crossover_devices"] is None and nested_step < hotline_step:
            result["crossover_devices"] = devices
    return result


_EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment("fig3", "Hybrid CPU-GPU training-time breakdown", _fig3_hybrid_breakdown),
    Experiment("fig4", "Single-node GPU-only training-time breakdown", _fig4_gpu_only_breakdown),
    Experiment("fig5", "Multi-node GPU-only training-time breakdown", _fig5_multinode_breakdown),
    Experiment("fig19", "Hotline speedup over XDL / Intel DLRM / FAE", _fig19_speedups),
    Experiment("fig21", "Training throughput (epochs/hour) at 4 GPUs", _fig21_throughput),
    Experiment("fig22", "Hotline vs HugeCTR (GPU-only), incl. OOM boundaries", _fig22_hugectr),
    Experiment("fig23", "Hotline accelerator vs CPU-driven Hotline", _fig23_hotline_cpu),
    Experiment("fig24", "Hotline vs ScratchPipe-Ideal", _fig24_scratchpipe),
    Experiment("fig25", "Popular:non-popular µ-batch ratio sweep", _fig25_ratio_sweep),
    Experiment("fig26", "Speedup vs mini-batch size", _fig26_batch_sweep),
    Experiment("fig28", "Large multi-hot synthetic models", _fig28_synthetic_models),
    Experiment("fig30", "Multi-node scaling on synthetic models", _fig30_multinode),
    Experiment(
        "fig30f",
        "Multi-node scaling from a functional sharded-Hotline run",
        _fig30_functional,
    ),
    Experiment(
        "fig30r",
        "Staleness/overlap sweep over truly independent replicas",
        _fig30_replicated,
    ),
    Experiment(
        "fig30s",
        "Convergence-vs-exposure sweep: stale-k × cached lookahead window",
        _fig30_stale_lookahead,
    ),
    Experiment(
        "fig30n",
        "Nested µ-batch × stage pipelining vs Hotline split, swept to 1,536 devices",
        _fig30_nested_pipeline,
    ),
)


def list_experiments() -> tuple[Experiment, ...]:
    """All registered experiments in figure order."""
    return _EXPERIMENTS


def run_experiment(experiment_id: str) -> dict:
    """Run one experiment by id (e.g. ``"fig19"``) and return its data."""
    for experiment in _EXPERIMENTS:
        if experiment.id == experiment_id:
            return experiment.run()
    known = ", ".join(exp.id for exp in _EXPERIMENTS)
    raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")


def run_all() -> dict[str, dict]:
    """Run every registered experiment; returns {id: data}."""
    return {experiment.id: experiment.run() for experiment in _EXPERIMENTS}
