"""XDL parameter-server execution mode.

XDL [Jiang et al., DLP-KDD'19] is an industrial TensorFlow-based framework
that keeps embeddings in a CPU-side parameter server.  Workers pull the
working parameters, compute on GPUs, and push gradients back.  Compared to
the Intel-optimized hybrid baseline it pays additional parameter-server
round-trips and runs on an older TensorFlow-1.2 runtime, making it the
slowest baseline in Figure 19 (Hotline is ~3.4x faster at 4 GPUs).
"""

from __future__ import annotations

from repro.baselines.base import ExecutionModel
from repro.hwsim.trace import Timeline


class XDLParameterServer(ExecutionModel):
    """The XDL parameter-server schedule."""

    name = "XDL (parameter server)"

    def step_timeline(self, batch_size: int) -> Timeline:
        """One XDL iteration: PS pull, GPU compute, PS push."""
        costs = self.costs
        factor = costs.overheads.ps_overhead_factor
        num_gpus = costs.num_gpus
        samples_per_gpu = max(1, batch_size // num_gpus)
        timeline = Timeline()
        now = 0.0

        overhead = 1.5 * costs.overheads.gpu_iteration_overhead_s
        timeline.add("cpu", "overhead", now, overhead, "read mini-batch + PS session")
        now += overhead

        # Parameter-server pull: CPU-side lookup plus serialization overhead.
        lookup = factor * costs.cpu_embedding_lookup_time(batch_size)
        timeline.add("cpu", "embedding", now, lookup, "PS embedding pull")
        now += lookup

        to_gpu = factor * costs.cpu_to_gpu_embedding_transfer_time(samples_per_gpu)
        timeline.add("pcie", "comm", now, to_gpu, "parameters to workers")
        now += to_gpu

        forward = 1.2 * costs.mlp_forward_time(samples_per_gpu)
        timeline.add("gpu", "mlp", now, forward, "MLP forward (TF runtime)")
        now += forward
        backward = 1.2 * costs.mlp_backward_time(samples_per_gpu)
        timeline.add("gpu", "backward", now, backward, "MLP backward (TF runtime)")
        now += backward

        allreduce = costs.dense_allreduce_time()
        timeline.add("gpu", "comm", now, allreduce, "dense gradient sync")
        now += allreduce

        to_cpu = factor * costs.gpu_to_cpu_gradient_transfer_time(samples_per_gpu)
        timeline.add("pcie", "comm", now, to_cpu, "gradient push to PS")
        now += to_cpu

        sparse_opt = factor * costs.cpu_embedding_update_time(batch_size)
        timeline.add("cpu", "optimizer", now, sparse_opt, "PS embedding update")
        dense_opt = costs.dense_optimizer_time()
        timeline.add("gpu", "optimizer", now, dense_opt, "dense optimizer")
        now += max(sparse_opt, dense_opt)
        return timeline
