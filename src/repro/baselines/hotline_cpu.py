"""Hotline-CPU: the Hotline schedule with CPU-based segregation.

Section VII-D (Figure 23) compares the Hotline accelerator against an
alternative that uses CPU multi-processing for mini-batch segregation and
working-parameter gathering.  The CPU cannot hide that work behind the
popular µ-batch's GPU execution (its segregation latency alone can be
2.5x the GPU's mini-batch training time, Figure 7), so the GPUs stall and
the accelerator's advantage reaches up to ~3.5x.
"""

from __future__ import annotations

from repro.baselines.base import ExecutionModel
from repro.hwsim.trace import Timeline


class HotlineCPU(ExecutionModel):
    """Hotline's µ-batch schedule driven by the CPU instead of the accelerator."""

    name = "Hotline-CPU"

    def step_timeline(self, batch_size: int) -> Timeline:
        """One iteration where segregation + gather run on the CPU, exposed."""
        costs = self.costs
        num_gpus = costs.num_gpus
        hot_fraction = costs.hot_fraction
        popular_size = int(round(batch_size * hot_fraction))
        non_popular_size = batch_size - popular_size
        samples_per_gpu = max(1, batch_size // num_gpus)
        non_popular_per_gpu = max(1, non_popular_size // num_gpus) if non_popular_size else 0
        timeline = Timeline()
        now = 0.0

        overhead = costs.overheads.gpu_iteration_overhead_s
        timeline.add("cpu", "overhead", now, overhead, "read mini-batch")
        now += overhead

        # The total MLP work matches the baseline; it is just executed as
        # two segments (popular first, then non-popular).
        mlp_total = costs.mlp_forward_time(samples_per_gpu) + costs.mlp_backward_time(
            samples_per_gpu
        )
        popular_share = popular_size / batch_size if batch_size else 0.0

        # CPU-based segregation: partially overlapped with the popular
        # µ-batch of the *previous* iteration, but its excess over that GPU
        # work is exposed — in practice most of it.
        segregation = costs.cpu_segregation_time(batch_size)
        popular_exec = 0.0
        if popular_size:
            popular_exec = (
                costs.gpu_embedding_lookup_time(max(1, popular_size // num_gpus))
                + mlp_total * popular_share
            )
        exposed_segregation = max(0.0, segregation - popular_exec)
        timeline.add("cpu", "embedding", now, segregation, "CPU mini-batch segregation")
        timeline.add("gpu", "mlp", now, popular_exec, "popular µ-batch fwd+bwd")
        now += popular_exec + exposed_segregation

        # CPU-based gather of the non-popular working parameters, serial
        # with the GPU because the CPU is the orchestrator.
        gather = 0.0
        non_popular_exec = 0.0
        if non_popular_size:
            cold_fraction = 1.0 - costs.hot_lookup_fraction
            gather = costs.cpu_embedding_lookup_time(
                max(1, int(round(non_popular_size * cold_fraction)))
            )
            gather += costs.cpu_to_gpu_embedding_transfer_time(non_popular_per_gpu)
            timeline.add("cpu", "embedding", now, gather, "CPU parameter gather")
            now += gather
            non_popular_exec = (
                mlp_total * (1.0 - popular_share)
                + costs.gpu_embedding_lookup_time(non_popular_per_gpu) * costs.hot_lookup_fraction
            )
            timeline.add("gpu", "mlp", now, non_popular_exec, "non-popular µ-batch fwd+bwd")
            now += non_popular_exec

        allreduce = costs.dense_allreduce_time()
        timeline.add("gpu", "comm", now, allreduce, "dense all-reduce")
        now += allreduce

        optimizer = (
            costs.dense_optimizer_time()
            + costs.gpu_embedding_update_time(max(1, batch_size // num_gpus))
            + costs.cpu_embedding_update_time(non_popular_size) * (1.0 - costs.hot_lookup_fraction)
        )
        timeline.add("gpu", "optimizer", now, optimizer, "optimizer updates")
        now += optimizer
        return timeline
