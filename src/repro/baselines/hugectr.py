"""HugeCTR-style GPU-only model-parallel execution mode.

Figure 1b of the paper: the embedding tables are sharded across the HBM of
all GPUs (model parallel) while the MLPs run data parallel.  Every iteration
exchanges the looked-up embedding vectors with an all-to-all collective in
the forward pass and the corresponding gradients with another all-to-all in
the backward pass.  On a single NVLink node the all-to-all already costs
~12 % of the iteration (Figure 4); across InfiniBand-connected nodes it
exceeds 50 % (Figure 5).  Models whose embeddings exceed the aggregate HBM
capacity cannot run at all (OOM in Figures 22 and 30).
"""

from __future__ import annotations

from repro.baselines.base import ExecutionModel, OutOfMemoryError
from repro.hwsim.trace import Timeline


class HugeCTRGPUOnly(ExecutionModel):
    """The GPU-only model-parallel schedule (HugeCTR)."""

    name = "HugeCTR (GPU-only)"

    def is_feasible(self) -> bool:
        """GPU-only mode requires the embeddings to fit in aggregate HBM."""
        return self.costs.embedding_fits_gpu_only()

    def step_timeline(self, batch_size: int) -> Timeline:
        """One GPU-only iteration with forward and backward all-to-all."""
        if not self.is_feasible():
            raise OutOfMemoryError(
                f"{self.costs.model.name}: embeddings "
                f"({self.costs.model.embedding_gigabytes:.1f} GB) do not fit in "
                f"{self.costs.cluster.total_gpus} GPU(s) of HBM"
            )
        costs = self.costs
        num_gpus = costs.num_gpus
        samples_per_gpu = max(1, batch_size // num_gpus)
        timeline = Timeline()
        now = 0.0

        overhead = costs.overheads.gpu_iteration_overhead_s
        timeline.add("cpu", "overhead", now, overhead, "read mini-batch")
        now += overhead

        # Embedding lookup from the local HBM shard.
        lookup = costs.gpu_embedding_lookup_time(samples_per_gpu)
        timeline.add("gpu", "embedding", now, lookup, "HBM embedding lookup")
        now += lookup

        # Forward all-to-all of the pooled vectors.
        a2a_forward = costs.embedding_alltoall_time(samples_per_gpu)
        timeline.add("gpu", "alltoall", now, a2a_forward, "embedding all-to-all")
        now += a2a_forward

        forward = costs.mlp_forward_time(samples_per_gpu)
        timeline.add("gpu", "mlp", now, forward, "MLP forward")
        now += forward
        backward = costs.mlp_backward_time(samples_per_gpu)
        timeline.add("gpu", "backward", now, backward, "MLP backward")
        now += backward

        # Backward all-to-all of the embedding gradients.
        a2a_backward = costs.embedding_alltoall_time(samples_per_gpu)
        timeline.add("gpu", "alltoall", now, a2a_backward, "gradient all-to-all")
        now += a2a_backward

        allreduce = costs.dense_allreduce_time()
        timeline.add("gpu", "comm", now, allreduce, "dense all-reduce")
        now += allreduce

        # Optimizer: dense + sparse updates both on the GPUs.
        dense_opt = costs.dense_optimizer_time()
        sparse_opt = costs.gpu_embedding_update_time(samples_per_gpu)
        timeline.add("gpu", "optimizer", now, dense_opt + sparse_opt, "optimizer updates")
        now += dense_opt + sparse_opt
        return timeline
