"""Hybrid CPU-GPU execution mode (Intel-optimized DLRM baseline).

Figure 1a of the paper: embedding tables are stored in CPU DRAM; the CPU
performs the embedding lookups and the sparse optimizer update (lock-free),
the pooled embedding vectors travel over PCIe to the GPUs, which execute the
MLPs data-parallel and all-reduce their dense gradients.  The phases are
largely serialised, which is why embedding work plus CPU-GPU communication
reaches up to 75 % of the training time on the large datasets (Figure 3).
"""

from __future__ import annotations

from repro.baselines.base import ExecutionModel
from repro.hwsim.trace import Timeline


class HybridCPUGPU(ExecutionModel):
    """The Intel-optimized CPU-GPU hybrid DLRM schedule."""

    name = "Intel-optimized DLRM (hybrid)"

    def step_timeline(self, batch_size: int) -> Timeline:
        """One hybrid iteration: CPU embeddings, PCIe transfer, GPU MLPs."""
        costs = self.costs
        num_gpus = costs.num_gpus
        samples_per_gpu = max(1, batch_size // num_gpus)
        timeline = Timeline()
        now = 0.0

        # Mini-batch read + host-side dispatch overhead.
        overhead = costs.overheads.gpu_iteration_overhead_s
        timeline.add("cpu", "overhead", now, overhead, "read mini-batch")
        now += overhead

        # CPU embedding lookup for the full mini-batch.
        lookup = costs.cpu_embedding_lookup_time(batch_size)
        timeline.add("cpu", "embedding", now, lookup, "CPU embedding lookup")
        now += lookup

        # Pooled embeddings to every GPU over PCIe (parallel across GPUs).
        to_gpu = costs.cpu_to_gpu_embedding_transfer_time(samples_per_gpu)
        timeline.add("pcie", "comm", now, to_gpu, "embeddings to GPUs")
        now += to_gpu

        # Data-parallel MLP forward and backward on each GPU.
        forward = costs.mlp_forward_time(samples_per_gpu)
        timeline.add("gpu", "mlp", now, forward, "bottom+top MLP forward")
        now += forward
        backward = costs.mlp_backward_time(samples_per_gpu)
        timeline.add("gpu", "backward", now, backward, "MLP backward")
        now += backward

        # Dense gradient all-reduce across GPUs.
        allreduce = costs.dense_allreduce_time()
        timeline.add("gpu", "comm", now, allreduce, "dense all-reduce")
        now += allreduce

        # Embedding gradients back to the CPU over PCIe.
        to_cpu = costs.gpu_to_cpu_gradient_transfer_time(samples_per_gpu)
        timeline.add("pcie", "comm", now, to_cpu, "embedding grads to CPU")
        now += to_cpu

        # Optimizer: dense update on GPU overlaps with the CPU sparse update;
        # the CPU update dominates.
        dense_opt = costs.dense_optimizer_time()
        sparse_opt = costs.cpu_embedding_update_time(batch_size)
        timeline.add("gpu", "optimizer", now, dense_opt, "dense optimizer")
        timeline.add("cpu", "optimizer", now, sparse_opt, "CPU embedding update")
        now += max(dense_opt, sparse_opt)
        return timeline
