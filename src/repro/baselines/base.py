"""Common interface of all execution-mode performance models."""

from __future__ import annotations

import abc

from repro.hwsim.trace import Timeline
from repro.perf.costs import TrainingCostModel


class OutOfMemoryError(RuntimeError):
    """Raised when a mode cannot hold the model in the available memory.

    HugeCTR's GPU-only mode throws OOM for Criteo Terabyte on fewer than
    four V100s (Figure 22) and for SYN-M2 even on four nodes (Figure 30).
    """


class ExecutionModel(abc.ABC):
    """A training execution schedule evaluated on the shared cost model."""

    #: Human-readable mode name used in figure legends.
    name: str = "execution-model"

    def __init__(self, costs: TrainingCostModel):
        self.costs = costs

    # ------------------------------------------------------------------ #
    # Abstract schedule
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def step_timeline(self, batch_size: int) -> Timeline:
        """Event timeline of one training iteration on a ``batch_size`` batch."""

    def is_feasible(self) -> bool:
        """Whether this mode can hold the model at all (memory capacity)."""
        return self.costs.embedding_fits_cpu()

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def step_time(self, batch_size: int) -> float:
        """Wall-clock seconds of one training iteration."""
        return self.step_timeline(batch_size).makespan()

    def collective_time(self) -> float:
        """Per-iteration dense-gradient synchronisation time.

        The training engine uses this hook to carve the collective term out
        of :meth:`step_time`, so functional runs report a compute vs
        communication split consistent with :mod:`repro.hwsim.collectives`.
        Modes with a different synchronisation scheme (e.g. parameter
        servers) may override it.
        """
        return self.costs.dense_allreduce_time()

    def epoch_time(self, batch_size: int) -> float:
        """Wall-clock seconds for one epoch of the model's dataset."""
        steps = max(1, self.costs.model.dataset.samples_per_epoch // batch_size)
        return steps * self.step_time(batch_size)

    def epochs_per_hour(self, batch_size: int) -> float:
        """Training throughput in epochs per hour (Figure 21's metric)."""
        return 3600.0 / self.epoch_time(batch_size)

    def samples_per_second(self, batch_size: int) -> float:
        """Training throughput in samples per second."""
        return batch_size / self.step_time(batch_size)

    def breakdown(self, batch_size: int) -> dict[str, float]:
        """Per-category time fractions of one iteration (Figures 3-5, 20)."""
        return self.step_timeline(batch_size).category_fractions()

    def speedup_over(self, other: ExecutionModel, batch_size: int) -> float:
        """This mode's speedup relative to ``other`` at equal batch size."""
        return other.step_time(batch_size) / self.step_time(batch_size)
