"""FAE: offline-profiled hot/cold embedding training (VLDB'22).

FAE statically profiles the training data ahead of time, places the hot
embeddings on the GPUs, and reorders the input into *all-popular*
mini-batches (executed GPU-only) and *non-popular* mini-batches (executed in
hybrid CPU-GPU mode).  Its drawbacks relative to Hotline, all modelled here:

* a static offline profiling pass costing ~15 % of training time
  (often omitted from prior work's reported numbers — included here);
* coherence synchronisation of the hot embeddings between the CPU and GPU
  copies at every transition between popular and non-popular mini-batch
  groups (Hotline avoids this because every row has exactly one home);
* CPU-based scheduling without intra-mini-batch pipelining, so the
  non-popular mini-batches pay the full hybrid-mode cost.
"""

from __future__ import annotations

from repro.baselines.base import ExecutionModel
from repro.hwsim.trace import Timeline
from repro.hwsim.units import MIB


class FAE(ExecutionModel):
    """The FAE schedule: popular mini-batches on GPU, the rest hybrid."""

    name = "FAE"

    #: Hot-embedding footprint replicated on the GPUs (paper: ~512 MB).
    hot_replica_bytes: float = 512 * MIB

    def step_timeline(self, batch_size: int) -> Timeline:
        """Average iteration: a popularity-weighted mix of the two paths.

        The timeline concatenates a scaled popular-GPU segment, a scaled
        hybrid segment, the amortised coherence synchronisation, and the
        amortised offline-profiling overhead, so its makespan equals the
        *average* per-iteration cost over an epoch.
        """
        costs = self.costs
        hot_fraction = costs.hot_fraction
        num_gpus = costs.num_gpus
        samples_per_gpu = max(1, batch_size // num_gpus)
        timeline = Timeline()
        now = 0.0

        overhead = costs.overheads.gpu_iteration_overhead_s
        timeline.add("cpu", "overhead", now, overhead, "read mini-batch + CPU scheduling")
        now += overhead

        # Popular mini-batches: GPU-only execution of the hot working set.
        gpu_lookup = costs.gpu_embedding_lookup_time(samples_per_gpu)
        forward = costs.mlp_forward_time(samples_per_gpu)
        backward = costs.mlp_backward_time(samples_per_gpu)
        gpu_update = costs.gpu_embedding_update_time(samples_per_gpu)
        popular_exec = (gpu_lookup + forward + backward + gpu_update) * hot_fraction
        timeline.add("gpu", "mlp", now, popular_exec, "popular mini-batches on GPU")
        now += popular_exec

        # Non-popular mini-batches: the cold rows are gathered from the CPU
        # (serially — FAE has no intra-mini-batch pipelining), transferred
        # over PCIe, the GPUs compute, and the cold rows are updated on the
        # CPU afterwards.
        cold_fraction = 1.0 - costs.hot_lookup_fraction
        cold_samples = max(1, int(round(batch_size * cold_fraction)))
        cpu_gather = costs.cpu_embedding_lookup_time(cold_samples)
        cpu_update = costs.cpu_embedding_update_time(cold_samples)
        transfer = costs.cpu_to_gpu_embedding_transfer_time(samples_per_gpu)
        gpu_exec = gpu_lookup + forward + backward + gpu_update
        non_popular_step = cpu_gather + transfer + gpu_exec + cpu_update
        non_popular_exec = (1.0 - hot_fraction) * non_popular_step
        timeline.add(
            "cpu", "embedding", now, non_popular_exec, "non-popular mini-batches (CPU gather)"
        )
        now += non_popular_exec

        # Dense all-reduce happens for every mini-batch.
        allreduce = costs.dense_allreduce_time()
        timeline.add("gpu", "comm", now, allreduce, "dense all-reduce")
        now += allreduce

        # Coherence synchronisation of the hot replica at popular/non-popular
        # transitions, amortised per iteration.
        sync_bytes = self.hot_replica_bytes * costs.overheads.fae_sync_bytes_fraction
        sync_time = costs.cluster.node.pcie.transfer_time(sync_bytes)
        amortised_sync = 2.0 * (1.0 - hot_fraction) * sync_time
        timeline.add("pcie", "comm", now, amortised_sync, "CPU-GPU embedding sync")
        now += amortised_sync

        # Offline profiling overhead amortised over the epoch (~15 %).
        profile = costs.overheads.fae_profile_overhead * (now)
        timeline.add("cpu", "overhead", now, profile, "offline profiling (amortised)")
        now += profile
        return timeline
