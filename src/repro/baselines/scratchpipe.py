"""ScratchPipe-Ideal: lookahead prefetching into a GPU-resident cache.

ScratchPipe (ISCA'22) keeps a software-managed embedding cache in GPU HBM
and prefetches the embeddings of *future* mini-batches from CPU memory while
the current one trains, so the CPU-side gather is hidden.  The paper
re-implements it with optimistic assumptions (relaxed read-after-write
dependencies between overlapping mini-batches) and calls the result
ScratchPipe-Ideal.  On one GPU it performs on par with Hotline; as GPUs
scale it still pays the all-to-all exchange of cached embeddings across
devices, which is where Hotline's ~1.2x advantage at 4 GPUs comes from
(Figure 24).
"""

from __future__ import annotations

from repro.baselines.base import ExecutionModel
from repro.hwsim.trace import Timeline


class ScratchPipeIdeal(ExecutionModel):
    """Idealised ScratchPipe schedule (relaxed RAW dependencies)."""

    name = "ScratchPipe-Ideal"

    #: Fraction of lookups that hit the GPU cache (idealised, near-perfect).
    cache_hit_rate: float = 0.97

    def step_timeline(self, batch_size: int) -> Timeline:
        """One iteration with prefetch-hidden CPU traffic and all-to-all."""
        costs = self.costs
        num_gpus = costs.num_gpus
        samples_per_gpu = max(1, batch_size // num_gpus)
        timeline = Timeline()
        now = 0.0

        overhead = costs.overheads.gpu_iteration_overhead_s
        timeline.add("cpu", "overhead", now, overhead, "read mini-batch + cache mgmt")
        now += overhead

        # Cache-resident lookups from HBM; the few misses stall on PCIe.
        lookup = costs.gpu_embedding_lookup_time(samples_per_gpu)
        miss_bytes = (1.0 - self.cache_hit_rate) * costs.lookup_bytes(samples_per_gpu)
        miss_stall = costs.cluster.node.pcie.transfer_time(miss_bytes)
        timeline.add("gpu", "embedding", now, lookup + miss_stall, "cached embedding lookup")
        now += lookup + miss_stall

        # Cached embeddings are partitioned across GPUs, so multi-GPU runs
        # still exchange pooled vectors (and their gradients) all-to-all.
        a2a_forward = costs.embedding_alltoall_time(samples_per_gpu)
        timeline.add("gpu", "alltoall", now, a2a_forward, "embedding all-to-all")
        now += a2a_forward

        forward = costs.mlp_forward_time(samples_per_gpu)
        timeline.add("gpu", "mlp", now, forward, "MLP forward")
        now += forward
        backward = costs.mlp_backward_time(samples_per_gpu)
        timeline.add("gpu", "backward", now, backward, "MLP backward")
        now += backward

        a2a_backward = costs.embedding_alltoall_time(samples_per_gpu)
        timeline.add("gpu", "alltoall", now, a2a_backward, "gradient all-to-all")
        now += a2a_backward

        allreduce = costs.dense_allreduce_time()
        timeline.add("gpu", "comm", now, allreduce, "dense all-reduce")
        now += allreduce

        dense_opt = costs.dense_optimizer_time()
        sparse_opt = costs.gpu_embedding_update_time(samples_per_gpu)
        timeline.add("gpu", "optimizer", now, dense_opt + sparse_opt, "optimizer updates")
        now += dense_opt + sparse_opt

        # Prefetch of the next mini-batch happens on the PCIe lane in the
        # background; it only lengthens the iteration if it exceeds the
        # GPU-side work (rare with the idealised assumptions).
        prefetch = costs.cluster.node.pcie.transfer_time(
            (1.0 - costs.hot_fraction) * costs.lookup_bytes(samples_per_gpu)
        )
        timeline.add("pcie", "overhead", overhead, prefetch, "lookahead prefetch (hidden)")
        return timeline
