"""Baseline execution modes the paper compares Hotline against.

Every baseline is a *schedule* over the shared cost primitives of
:mod:`repro.perf.costs`:

* :class:`HybridCPUGPU` — the Intel-optimized DLRM hybrid mode: embeddings
  live on the CPU, MLPs run data-parallel on the GPUs (Figure 1a).
* :class:`XDLParameterServer` — XDL's TensorFlow-based parameter-server
  design, the slowest software baseline.
* :class:`FAE` — offline-profiled hot/cold embedding placement with
  CPU-based scheduling, coherence synchronisation, and a ~15 % static
  profiling overhead.
* :class:`HugeCTRGPUOnly` — NVIDIA's GPU-only model-parallel mode with
  per-iteration all-to-all collectives (Figure 1b); raises on models whose
  embeddings do not fit in aggregate HBM.
* :class:`ScratchPipeIdeal` — an idealised lookahead prefetching cache
  (relaxed RAW dependencies), which matches Hotline on one GPU but pays
  all-to-all costs as GPUs scale.
* :class:`HotlineCPU` — the Hotline schedule with CPU-based (rather than
  accelerator-based) segregation and gathering, used in Figure 23.

The functional (accuracy) baseline is simply ``DLRM.train_step`` /
``TBSM.train_step``; see :mod:`repro.core.pipeline` for the equivalence.
"""

from repro.baselines.base import ExecutionModel, OutOfMemoryError
from repro.baselines.fae import FAE
from repro.baselines.hotline_cpu import HotlineCPU
from repro.baselines.hugectr import HugeCTRGPUOnly
from repro.baselines.hybrid import HybridCPUGPU
from repro.baselines.scratchpipe import ScratchPipeIdeal
from repro.baselines.xdl import XDLParameterServer

__all__ = [
    "ExecutionModel",
    "OutOfMemoryError",
    "HybridCPUGPU",
    "XDLParameterServer",
    "FAE",
    "HugeCTRGPUOnly",
    "ScratchPipeIdeal",
    "HotlineCPU",
]
