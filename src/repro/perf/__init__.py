"""Performance modelling of training execution schedules.

:mod:`repro.perf.costs` provides the per-phase cost primitives (MLP compute,
embedding gathers on CPU/GPU, PCIe transfers, collectives, optimiser
updates, CPU-based segregation) that the Hotline scheduler
(:mod:`repro.core.scheduler`) and every baseline (:mod:`repro.baselines`)
compose into iteration timelines.  Keeping the primitives in one place
guarantees that all execution modes are compared on the same hardware
assumptions — only the *schedule* differs, exactly as in the paper.
"""

from repro.perf.costs import SoftwareOverheads, TrainingCostModel

__all__ = ["SoftwareOverheads", "TrainingCostModel"]
