"""Per-phase cost primitives for recommendation-model training.

Every execution mode in the paper — hybrid CPU-GPU (Intel-optimized DLRM),
parameter-server (XDL), FAE, GPU-only (HugeCTR), ScratchPipe, CPU-based
Hotline, and Hotline itself — performs the same logical work per iteration:

    read mini-batch -> embedding lookups -> bottom MLP -> interaction ->
    top MLP -> backward -> gradient all-reduce -> optimizer updates

What differs is *where* each phase runs (CPU DRAM vs GPU HBM), *what* moves
over which link, and *how much overlap* the schedule achieves.  This module
prices the individual phases; schedules compose them.

The absolute constants are calibrated to first-order numbers of the paper's
testbed (V100 + Xeon Silver, Table III) plus software-efficiency factors
representative of PyTorch/TensorFlow CPU embedding kernels.  Figures are
reproduced as *shapes and ratios*, not absolute milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hwsim.cluster import Cluster, single_node
from repro.hwsim.collectives import allreduce_time, alltoall_time, hierarchical_allreduce_time
from repro.hwsim.units import MS
from repro.models.configs import ModelConfig


@dataclass(frozen=True)
class SoftwareOverheads:
    """Software-efficiency constants of the training frameworks.

    Attributes:
        cpu_bag_overhead_s: Per-bag (per sample, per table) CPU cost of the
            EmbeddingBag forward — kernel dispatch, offset handling, output
            write — in the Intel-optimized CPU path.
        cpu_lookup_overhead_s: Additional per-row-lookup CPU cost of the
            EmbeddingBag forward (hash + gather of one row).
        cpu_update_bag_overhead_s: Per-bag CPU cost of the sparse optimizer.
        cpu_update_overhead_s: Additional per-row CPU cost of the sparse
            optimizer (read-modify-write of a row plus bookkeeping).
        gpu_iteration_overhead_s: Fixed per-iteration host-side overhead
            (kernel launches, Python dispatch, data-loader hand-off).
        cpu_segregation_serial_s: Per-lookup serial cost of CPU-based
            mini-batch segregation (dependent hash-table walks, Figure 7).
        cpu_segregation_parallel_s: Per-lookup parallelisable cost of
            CPU-based segregation (scales with cores up to the memory-level
            parallelism limit, Figure 8).
        cpu_segregation_fixed_s: Fixed multiprocess fork/merge overhead of
            CPU-based segregation.
        collective_overhead_s: Fixed software cost of launching one
            collective (NCCL kernel launch + synchronisation).
        ps_overhead_factor: Multiplier on embedding/communication phases for
            the XDL parameter-server path (TensorFlow-1.2 runtime).
        fae_profile_overhead: Fractional training-time overhead of FAE's
            offline profiler (the paper measures ~15 %).
        fae_sync_bytes_fraction: Fraction of the hot-embedding footprint FAE
            synchronises between CPU and GPU at each popular/non-popular
            transition (its coherence overhead).
    """

    cpu_bag_overhead_s: float = 400e-9
    cpu_lookup_overhead_s: float = 50e-9
    cpu_update_bag_overhead_s: float = 450e-9
    cpu_update_overhead_s: float = 100e-9
    gpu_iteration_overhead_s: float = 1.0 * MS
    cpu_segregation_serial_s: float = 30e-9
    cpu_segregation_parallel_s: float = 60e-9
    cpu_segregation_fixed_s: float = 1.0 * MS
    collective_overhead_s: float = 0.10 * MS
    ps_overhead_factor: float = 1.6
    fae_profile_overhead: float = 0.15
    fae_sync_bytes_fraction: float = 0.05


@dataclass
class TrainingCostModel:
    """Prices the phases of one training iteration for a model on a cluster.

    Attributes:
        model: The model configuration (Table II entry).
        cluster: Hardware topology (nodes x GPUs).
        overheads: Software-efficiency constants.
        hot_fraction: Fraction of inputs that are popular (paper: ~0.75).
        hot_lookup_fraction: Fraction of the *non-popular* µ-batch's lookups
            that still hit GPU-resident hot rows (most lookups are hot even
            in non-popular inputs).
    """

    model: ModelConfig
    cluster: Cluster = field(default_factory=single_node)
    overheads: SoftwareOverheads = field(default_factory=SoftwareOverheads)
    hot_fraction: float = 0.75
    hot_lookup_fraction: float = 0.80

    # ------------------------------------------------------------------ #
    # Convenience quantities
    # ------------------------------------------------------------------ #
    @property
    def num_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return self.cluster.total_gpus

    @property
    def gpu(self):
        """The GPU spec."""
        return self.cluster.node.gpu

    @property
    def cpu(self):
        """The CPU spec."""
        return self.cluster.node.cpu

    def lookups(self, samples: int) -> int:
        """Total embedding-row lookups for ``samples`` inputs."""
        return samples * self.model.dataset.lookups_per_sample()

    def bags(self, samples: int) -> int:
        """Total EmbeddingBag invocations (one per sample per table)."""
        return samples * self.model.num_sparse_features

    def lookup_bytes(self, samples: int) -> float:
        """Bytes of embedding rows gathered for ``samples`` inputs."""
        return self.lookups(samples) * self.model.bytes_per_lookup()

    def pooled_bytes(self, samples: int) -> float:
        """Bytes of *pooled* embedding vectors (one per table per sample)."""
        return samples * self.model.num_sparse_features * self.model.bytes_per_lookup()

    # ------------------------------------------------------------------ #
    # Dense (MLP) phases — executed on the GPU in every mode
    # ------------------------------------------------------------------ #
    def mlp_forward_time(self, samples_per_gpu: int) -> float:
        """Forward time of bottom+top MLPs for one GPU's share of the batch.

        Time-series models (TBSM) launch their per-step kernels once per
        history step, which is what makes the Taobao workload
        neural-network-dominated despite its tiny MLPs (Figure 3).
        """
        flops = self.model.mlp_flops_per_sample * samples_per_gpu
        num_layers = self.model.bottom_mlp.count("-") + self.model.top_mlp.count("-")
        steps = self.model.dataset.time_series_length if self.model.uses_attention else 1
        return self.gpu.dense_compute_time(flops, kernels=max(1, num_layers) * steps)

    def mlp_backward_time(self, samples_per_gpu: int) -> float:
        """Backward time of the MLPs (about twice the forward FLOPs)."""
        return 2.0 * self.mlp_forward_time(samples_per_gpu)

    def dense_optimizer_time(self) -> float:
        """GPU-side dense-parameter update (streams the parameters 3x)."""
        param_bytes = self.model.dense_parameter_count * 4.0
        return self.gpu.hbm_stream_time(3.0 * param_bytes)

    # ------------------------------------------------------------------ #
    # Embedding phases
    # ------------------------------------------------------------------ #
    def _cpu_parallel_efficiency(self, lookups: int, cores: int | None) -> int:
        """Effective number of cores usable by a CPU embedding kernel.

        Small batches cannot keep every core busy (thread-spawn and
        work-partitioning overheads dominate), which is why the hybrid
        baseline's CPU phases scale sub-linearly with mini-batch size and
        why the paper's 1-GPU speedups exceed its 4-GPU speedups.
        """
        cores = cores or self.cpu.cores
        batch_limited = max(1, lookups // 2048)
        return max(1, min(cores, self.cpu.memory_parallelism, batch_limited))

    def cpu_embedding_lookup_time(self, samples: int, cores: int | None = None) -> float:
        """CPU EmbeddingBag forward over DDR4 (hybrid mode's lookup phase).

        The software cost has a per-bag component (kernel dispatch and output
        handling, once per sample per table) plus a per-row component, so
        multi-hot bags amortise the dispatch cost — matching how the
        Intel-optimized EmbeddingBag operator behaves.
        """
        lookups = self.lookups(samples)
        gather = self.cpu.random_gather_time(lookups, self.model.bytes_per_lookup(), cores)
        software_work = (
            self.bags(samples) * self.overheads.cpu_bag_overhead_s
            + lookups * self.overheads.cpu_lookup_overhead_s
        )
        software = software_work / self._cpu_parallel_efficiency(lookups, cores)
        return gather + software

    def cpu_embedding_update_time(self, samples: int, cores: int | None = None) -> float:
        """CPU sparse-optimizer update (read-modify-write of touched rows)."""
        lookups = self.lookups(samples)
        gather = 2.0 * self.cpu.random_gather_time(lookups, self.model.bytes_per_lookup(), cores)
        software_work = (
            self.bags(samples) * self.overheads.cpu_update_bag_overhead_s
            + lookups * self.overheads.cpu_update_overhead_s
        )
        software = software_work / self._cpu_parallel_efficiency(lookups, cores)
        return gather + software

    def gpu_embedding_lookup_time(self, samples_per_gpu: int) -> float:
        """HBM gather of one GPU's share of the embedding lookups."""
        return self.gpu.hbm_gather_time(self.lookup_bytes(samples_per_gpu))

    def gpu_embedding_update_time(self, samples_per_gpu: int) -> float:
        """HBM read-modify-write update of one GPU's share of rows."""
        return self.gpu.hbm_gather_time(2.0 * self.lookup_bytes(samples_per_gpu))

    # ------------------------------------------------------------------ #
    # Communication phases
    # ------------------------------------------------------------------ #
    def cpu_to_gpu_embedding_transfer_time(self, samples_per_gpu: int) -> float:
        """PCIe transfer of pooled embeddings from CPU to each GPU (hybrid)."""
        return self.cluster.node.pcie.transfer_time(self.pooled_bytes(samples_per_gpu))

    def gpu_to_cpu_gradient_transfer_time(self, samples_per_gpu: int) -> float:
        """PCIe transfer of embedding gradients back to the CPU (hybrid)."""
        return self.cluster.node.pcie.transfer_time(self.pooled_bytes(samples_per_gpu))

    def dense_allreduce_time(self) -> float:
        """Gradient all-reduce of the dense parameters across all GPUs."""
        if self.num_gpus <= 1:
            return 0.0
        param_bytes = self.model.dense_parameter_count * 4.0
        if self.cluster.num_nodes == 1:
            collective = allreduce_time(param_bytes, self.num_gpus, self.cluster.node.gpu_link)
        else:
            collective = hierarchical_allreduce_time(
                param_bytes,
                self.cluster.node.num_gpus,
                self.cluster.num_nodes,
                self.cluster.node.gpu_link,
                self.cluster.inter_link,
            )
        return self.overheads.collective_overhead_s + collective

    def embedding_alltoall_time(self, samples_per_gpu: int) -> float:
        """All-to-all exchange of looked-up embeddings (GPU-only mode).

        Each GPU holds a shard of the tables and must send the pooled
        vectors it produced to the GPUs that own the corresponding samples;
        the exchange happens forward and again (for gradients) backward.
        The inter-node link dominates when the cluster spans nodes.
        """
        if self.num_gpus <= 1:
            return 0.0
        per_device_bytes = self.pooled_bytes(samples_per_gpu)
        # Each table's exchange launches its own set of messages, so the
        # software overhead scales (sub-linearly) with the table count.
        launch = self.overheads.collective_overhead_s * (
            1.0 + 0.05 * self.model.num_sparse_features
        )
        if self.cluster.num_nodes == 1:
            return launch + alltoall_time(
                per_device_bytes, self.num_gpus, self.cluster.node.gpu_link
            )
        intra = alltoall_time(
            per_device_bytes, self.cluster.node.num_gpus, self.cluster.node.gpu_link
        )
        # Cross-node traffic from all of a node's GPUs funnels through the
        # node's single InfiniBand NIC, which is what makes the collective
        # exceed 50 % of multi-node training time (Figure 5).
        per_node_bytes = per_device_bytes * self.cluster.node.num_gpus
        inter = alltoall_time(per_node_bytes, self.cluster.num_nodes, self.cluster.inter_link)
        return launch + intra + inter

    # ------------------------------------------------------------------ #
    # CPU-based segregation (Figures 7 and 8)
    # ------------------------------------------------------------------ #
    def cpu_segregation_time(self, batch_size: int, cores: int | None = None) -> float:
        """Time for the CPU to split a mini-batch into popular/non-popular.

        Each lookup requires dependent hash-table probes against the hot-set
        structure; part of the work is serial (per-input classification and
        result merging), part scales with cores but saturates at the CPU's
        memory-level parallelism — reproducing the plateau of Figure 8.
        """
        lookups = self.lookups(batch_size)
        cores = cores or self.cpu.cores
        effective = max(1, min(cores, self.cpu.memory_parallelism))
        serial = lookups * self.overheads.cpu_segregation_serial_s
        parallel = lookups * self.overheads.cpu_segregation_parallel_s / effective
        return self.overheads.cpu_segregation_fixed_s + serial + parallel

    def accelerator_segregation_time(self, batch_size: int, accelerator_frequency_hz: float = 350e6,
                                      num_lookup_engines: int = 64) -> float:
        """Segregation time on the Hotline accelerator's lookup-engine array.

        Provided here for side-by-side comparison with
        :meth:`cpu_segregation_time`; the full device model lives in
        :class:`repro.core.accelerator.HotlineAccelerator`.
        """
        total_lookups = self.lookups(batch_size)
        cycles = -(-total_lookups // num_lookup_engines)
        return cycles / accelerator_frequency_hz

    # ------------------------------------------------------------------ #
    # Memory-capacity checks
    # ------------------------------------------------------------------ #
    def embedding_fits_gpu_only(self) -> bool:
        """Whether the full embedding tables fit in aggregate HBM (HugeCTR).

        The check mirrors the paper's observation that Criteo Terabyte
        (RM3, 63 GB of embeddings) needs at least four 16 GB V100s.
        """
        return self.model.embedding_bytes <= self.cluster.total_hbm_bytes

    def embedding_fits_cpu(self) -> bool:
        """Whether the full embedding tables fit in aggregate CPU DRAM."""
        return self.model.embedding_bytes <= self.cluster.total_dram_bytes
