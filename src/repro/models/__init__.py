"""Recommendation models: DLRM and TBSM, plus the paper's model zoo.

The four evaluated models (RM1-RM4, Table II) and the two synthetic
large-scale models (SYN-M1, SYN-M2, Figure 28) are described by
:class:`~repro.models.configs.ModelConfig` objects; :class:`DLRM` and
:class:`TBSM` instantiate trainable numpy versions of any configuration.
"""

from repro.models.configs import (
    PAPER_MODELS,
    RM1,
    RM2,
    RM3,
    RM4,
    SYN_M1,
    SYN_M2,
    ModelConfig,
    model_by_name,
)
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM

__all__ = [
    "ModelConfig",
    "RM1",
    "RM2",
    "RM3",
    "RM4",
    "SYN_M1",
    "SYN_M2",
    "PAPER_MODELS",
    "model_by_name",
    "DLRM",
    "TBSM",
]
