"""Model configurations from Table II of the paper (plus the synthetic ones).

| Model | Dataset         | Dns | Sps | Dim | Bottom MLP       | Top MLP       | Extra | Size   |
|-------|-----------------|-----|-----|-----|------------------|---------------|-------|--------|
| RM1   | Taobao Alibaba  | 1   | 3   | 16  | 1-16             | 30-60-1       | attn  | 0.3 GB |
| RM2   | Criteo Kaggle   | 13  | 26  | 16  | 13-512-256-64-16 | 512-256-1     | -     | 2 GB   |
| RM3   | Criteo Terabyte | 13  | 26  | 64  | 13-512-256-64    | 512-512-256-1 | -     | 63 GB  |
| RM4   | Avazu           | 1   | 21  | 16  | 1-512-256-64-16  | 512-256-1     | -     | 0.55 GB|
| SYN-M1| SYN-D1          | 54  | 102 | 64  | 54-512-256-64    | 512-512-256-1 | multi | 196 GB |
| SYN-M2| SYN-D2          | 102 | 204 | 64  | 102-512-256-64   | 512-512-256-1 | multi | 390 GB |

(Dns/Sps = dense/sparse feature counts; attn = attention; multi = multi-hot.)

RM1 is trained with TBSM (time-series length 21), the others with DLRM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.datasets import (
    AVAZU,
    CRITEO_KAGGLE,
    CRITEO_TERABYTE,
    SYN_D1,
    SYN_D2,
    TAOBAO_ALIBABA,
    DatasetSpec,
)
from repro.hwsim.units import GB


@dataclass(frozen=True)
class ModelConfig:
    """Architecture + dataset binding for one recommendation model.

    Attributes:
        name: Model name (RM1..RM4, SYN-M1, SYN-M2).
        dataset: The dataset the model is trained on.
        embedding_dim: Sparse feature vector dimension.
        bottom_mlp: Bottom MLP layer sizes as a DLRM arch string.
        top_mlp: Top MLP layer sizes (final layer of size 1 produces the
            CTR logit).
        uses_attention: Whether the model is a TBSM (RM1) with an attention
            layer over the time series.
        dtype_bytes: Bytes per embedding element (4 = fp32 full precision).
    """

    name: str
    dataset: DatasetSpec
    embedding_dim: int
    bottom_mlp: str
    top_mlp: str
    uses_attention: bool = False
    dtype_bytes: int = 4

    @property
    def num_dense_features(self) -> int:
        """Number of continuous input features."""
        return self.dataset.num_dense

    @property
    def num_sparse_features(self) -> int:
        """Number of categorical features (embedding tables)."""
        return self.dataset.num_sparse

    @property
    def sparse_parameter_count(self) -> int:
        """Total embedding parameters (rows x dim)."""
        return self.dataset.total_rows * self.embedding_dim

    @property
    def dense_parameter_count(self) -> int:
        """Approximate MLP parameter count (weights + biases)."""
        count = 0
        for arch in (self.bottom_mlp, self.top_mlp):
            sizes = [int(token) for token in arch.split("-")]
            for fan_in, fan_out in zip(sizes[:-1], sizes[1:], strict=True):
                count += fan_in * fan_out + fan_out
        return count

    @property
    def embedding_bytes(self) -> float:
        """Total embedding-table footprint in bytes."""
        return self.dataset.embedding_bytes(self.embedding_dim, self.dtype_bytes)

    @property
    def embedding_gigabytes(self) -> float:
        """Embedding footprint in decimal gigabytes (as quoted in Table II)."""
        return self.embedding_bytes / GB

    @property
    def mlp_flops_per_sample(self) -> float:
        """Forward FLOPs of the MLPs for one sample.

        Mirrors :attr:`repro.nn.mlp.MLP.flops_per_sample`: per ``Linear``,
        ``2*in*out`` multiply-accumulates plus the bias add (``out``) and
        the hidden-layer ReLU (``out``, every layer but the last) — not
        MACs alone, which undercounted the dense times derived by
        ``perf/costs.py``.
        """
        flops = 0.0
        for arch in (self.bottom_mlp, self.top_mlp):
            sizes = [int(token) for token in arch.split("-")]
            last = len(sizes) - 2
            for i, (fan_in, fan_out) in enumerate(
                zip(sizes[:-1], sizes[1:], strict=True)
            ):
                flops += 2.0 * fan_in * fan_out + fan_out
                if i != last:
                    flops += fan_out
        steps = self.dataset.time_series_length if self.uses_attention else 1
        return flops * steps

    def bytes_per_lookup(self) -> int:
        """Bytes fetched for a single embedding-row access."""
        return self.embedding_dim * self.dtype_bytes

    def lookup_bytes_per_sample(self) -> float:
        """Bytes of embeddings gathered for one training sample."""
        return self.dataset.lookups_per_sample() * self.bytes_per_lookup()

    def scaled(
        self, max_rows_per_table: int = 20_000, samples_per_epoch: int | None = None
    ) -> ModelConfig:
        """A functionally-trainable copy with capped embedding-table sizes."""
        return replace(
            self,
            name=f"{self.name} (scaled)",
            dataset=self.dataset.scaled(max_rows_per_table, samples_per_epoch),
        )


RM1 = ModelConfig(
    name="RM1",
    dataset=TAOBAO_ALIBABA,
    embedding_dim=16,
    bottom_mlp="1-16",
    top_mlp="30-60-1",
    uses_attention=True,
)

RM2 = ModelConfig(
    name="RM2",
    dataset=CRITEO_KAGGLE,
    embedding_dim=16,
    bottom_mlp="13-512-256-64-16",
    top_mlp="512-256-1",
)

RM3 = ModelConfig(
    name="RM3",
    dataset=CRITEO_TERABYTE,
    embedding_dim=64,
    bottom_mlp="13-512-256-64",
    top_mlp="512-512-256-1",
)

RM4 = ModelConfig(
    name="RM4",
    dataset=AVAZU,
    embedding_dim=16,
    bottom_mlp="1-512-256-64-16",
    top_mlp="512-256-1",
)

SYN_M1 = ModelConfig(
    name="SYN-M1",
    dataset=SYN_D1,
    embedding_dim=64,
    bottom_mlp="54-512-256-64",
    top_mlp="512-512-256-1",
)

SYN_M2 = ModelConfig(
    name="SYN-M2",
    dataset=SYN_D2,
    embedding_dim=64,
    bottom_mlp="102-512-256-64",
    top_mlp="512-512-256-1",
)

PAPER_MODELS: dict[str, ModelConfig] = {
    config.name: config for config in (RM1, RM2, RM3, RM4, SYN_M1, SYN_M2)
}

#: The four real-world models used in most figures (RM1-RM4), keyed by the
#: dataset labels the paper's figures use.
REAL_WORLD_MODELS: dict[str, ModelConfig] = {
    "Criteo Kaggle": RM2,
    "Taobao Alibaba": RM1,
    "Criteo Terabyte": RM3,
    "Avazu": RM4,
}


def model_by_name(name: str) -> ModelConfig:
    """Look up a model configuration by name (RM1..RM4, SYN-M1, SYN-M2)."""
    try:
        return PAPER_MODELS[name]
    except KeyError as exc:
        known = ", ".join(sorted(PAPER_MODELS))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from exc
