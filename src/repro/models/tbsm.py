"""Time-Based Sequence Model (TBSM) in numpy.

TBSM (the paper's RM1, trained on Taobao Alibaba) augments a DLRM-style
block with an attention layer over a history of item embeddings.  Our
implementation treats the lookups of the first sparse feature (the item
table) as the user's interaction history: each lookup becomes one step of
the sequence, a dot-product attention attends the dense context vector over
that sequence, and the top MLP combines the attention context with the
pooled embeddings of the remaining features.

This preserves the structural properties the paper relies on — an
attention layer on top of embedding lookups, a small dense network, and
Zipf-skewed item accesses — while remaining trainable in numpy.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.data.batch import MiniBatch
from repro.models.configs import ModelConfig
from repro.nn.attention import DotProductAttention
from repro.nn.gemm import PackedMLP, segment_bounds
from repro.nn.embedding import (
    EmbeddingBag,
    SparseGradient,
    StackedEmbeddingStore,
    segment_ids_for,
    segmented_scatter,
    stacked_segmented_scatter,
)
from repro.nn.loss import fused_bce_epilogue, predicted_probabilities
from repro.nn.mlp import MLP


class TBSM:
    """Trainable TBSM instance for a given :class:`ModelConfig`."""

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        stacked: bool = False,
        batched: bool = True,
    ):
        """Build the model.

        ``stacked`` adopts every table (history included) into one
        :class:`~repro.nn.embedding.StackedEmbeddingStore`, so the fused
        µ-batch path pays one gather and one segmented scatter per *step*;
        bit-identical to per-table storage (see
        :class:`~repro.models.dlrm.DLRM`).  ``batched`` runs the fused
        dense pass (MLPs, attention, loss) over one segment-packed block —
        bit-identical to the retained sequential per-segment loop (the
        :mod:`repro.nn.gemm` contract).
        """
        if not config.uses_attention:
            raise ValueError("TBSM requires a configuration with uses_attention=True")
        self.config = config
        rng = np.random.default_rng(seed)
        bottom_sizes = [int(tok) for tok in config.bottom_mlp.split("-")]
        if bottom_sizes[0] != config.num_dense_features:
            raise ValueError("bottom MLP input size must match the dense feature count")
        if bottom_sizes[-1] != config.embedding_dim:
            raise ValueError("bottom MLP output size must equal the embedding dimension")
        self.bottom_mlp = MLP(bottom_sizes, rng)
        self.tables: list[EmbeddingBag] = [
            EmbeddingBag(rows, config.embedding_dim, rng, name=f"table_{i}")
            for i, rows in enumerate(config.dataset.rows_per_table)
        ]
        self.attention = DotProductAttention()
        # Top MLP input: attention context + bottom output + pooled embeddings
        # of the non-history tables.
        top_hidden = [int(tok) for tok in config.top_mlp.split("-")]
        top_input = config.embedding_dim * (1 + 1 + (config.num_sparse_features - 1))
        self.top_mlp = MLP([top_input] + top_hidden, rng)
        self.stacked: StackedEmbeddingStore | None = (
            StackedEmbeddingStore(self.tables) if stacked else None
        )
        self._cache: dict | None = None
        self.batched = batched
        self._packed_bottom = PackedMLP(self.bottom_mlp)
        self._packed_top = PackedMLP(self.top_mlp)
        #: Measured wall seconds of the last fused step's dense section
        #: (MLPs + attention + loss; gathers/scatter excluded).
        self.last_dense_time_s = 0.0
        #: Attention forward+backward share of ``last_dense_time_s`` —
        #: TBSM's feature-interaction analog of DLRM's dot interaction.
        self.last_interaction_time_s = 0.0

    def forward(self, batch: MiniBatch) -> np.ndarray:
        """Compute CTR logits, shape (batch,)."""
        if batch.num_tables != len(self.tables):
            raise ValueError("batch sparse-feature count does not match the model")
        dense_out = self.bottom_mlp.forward(batch.dense)

        # History sequence: one embedding vector per lookup of table 0.
        history_table = self.tables[0]
        history_indices = batch.sparse[:, 0, :]  # (batch, steps)
        steps = history_indices.shape[1]
        sequence = history_table.weight[history_indices]  # (batch, steps, dim)
        context = self.attention.forward(dense_out, sequence)

        other_outputs = [
            table.forward(batch.sparse[:, t, :])
            for t, table in enumerate(self.tables)
            if t != 0
        ]
        features = np.concatenate([context, dense_out] + other_outputs, axis=1)
        logits = self.top_mlp.forward(features)
        self._cache = {
            "history_indices": history_indices,
            "steps": steps,
            "batch_size": batch.size,
        }
        return logits.reshape(-1)

    def backward(self, grad_logits: np.ndarray) -> list[SparseGradient]:
        """Backpropagate logit gradients; returns per-table sparse gradients."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        dim = self.config.embedding_dim
        grad_features = self.top_mlp.backward(grad_logits.reshape(-1, 1))
        grad_context = grad_features[:, :dim]
        grad_dense_direct = grad_features[:, dim : 2 * dim]
        grad_other = grad_features[:, 2 * dim :]

        grad_query, grad_sequence = self.attention.backward(grad_context)
        self.bottom_mlp.backward(grad_query + grad_dense_direct)

        # History-table sparse gradient: each step's gradient flows to the
        # row looked up at that step.
        history_indices = self._cache["history_indices"]
        flat_indices = history_indices.reshape(-1)
        flat_grads = grad_sequence.reshape(-1, dim)
        unique, inverse = np.unique(flat_indices, return_inverse=True)
        values = np.zeros((unique.shape[0], dim), dtype=flat_grads.dtype)
        np.add.at(values, inverse, flat_grads)
        sparse_grads: list[SparseGradient] = [SparseGradient(unique, values)]

        offset = 0
        for t, table in enumerate(self.tables):
            if t == 0:
                continue
            grad_slice = grad_other[:, offset : offset + dim]
            sparse_grads.append(table.backward(grad_slice))
            offset += dim
        return sparse_grads

    def zero_grad(self) -> None:
        """Reset accumulated dense gradients."""
        self.bottom_mlp.zero_grad()
        self.top_mlp.zero_grad()

    def loss_and_gradients(
        self, batch: MiniBatch, normalizer: float | None = None
    ) -> tuple[float, list[SparseGradient]]:
        """Forward + backward with a sum-reduced BCE loss.

        ``normalizer`` divides the gradients (typically the full mini-batch
        size); see :meth:`repro.models.dlrm.DLRM.loss_and_gradients`.
        """
        logits = self.forward(batch)
        loss, grad_logits = fused_bce_epilogue(logits, batch.labels)
        if normalizer is not None:
            if normalizer <= 0:
                raise ValueError("normalizer must be positive")
            grad_logits = grad_logits / normalizer
        sparse_grads = self.backward(grad_logits)
        return loss, sparse_grads

    def fused_loss_and_gradients(
        self,
        batch: MiniBatch,
        segments: list[np.ndarray],
        normalizer: float | None = None,
        after_segment=None,
    ) -> tuple[list[float], list[list[SparseGradient]]]:
        """Train a mini-batch's µ-batches with fused embedding traffic.

        The history table's sequence gather and every pooled table's lookup
        run **once** over the whole mini-batch's contiguous blocks; the
        attention/MLP passes run per µ-batch on selections of those
        outputs, and each table's per-µ-batch sparse gradients come out of
        one :func:`~repro.nn.embedding.segmented_scatter` — everything
        returned is bit-identical to sequential :meth:`loss_and_gradients`
        calls.  See :meth:`repro.models.dlrm.DLRM.fused_loss_and_gradients`
        for the argument contract (``after_segment`` fires after each
        segment's backward pass; returns per-segment losses and
        ``sparse_grads[t][s]``).
        """
        num_tables = len(self.tables)
        if batch.num_tables != num_tables:
            raise ValueError("batch sparse-feature count does not match the model")
        segments = [np.asarray(idx, dtype=np.int64) for idx in segments]
        if not segments:
            return [], [[] for _ in range(num_tables)]
        if any(idx.size == 0 for idx in segments):
            raise ValueError("fused segments must be non-empty")
        if normalizer is not None and normalizer <= 0:
            raise ValueError("normalizer must be positive")
        dim = self.config.embedding_dim
        history_block = batch.sparse[:, 0, :]
        steps = history_block.shape[1]
        segment_ids = segment_ids_for(segments, batch.size)
        stacked_block: np.ndarray | None = None
        if self.stacked is not None:
            # Cross-table fusion: ONE gather covers the history sequence
            # (raw, unpooled) and every other table's pooled lookups.
            stacked_block = self.stacked.stacked_indices(batch.sparse)
            gathered = self.stacked.gather(stacked_block)
            sequence_all = gathered[:, 0]
            pooled = {
                t: gathered[:, t].sum(axis=1) for t in range(1, num_tables)
            }
        else:
            # History sequences: one raw gather over the batch's lookups.
            sequence_all = self.tables[0].weight[history_block]
            pooled = {
                t: self.tables[t].forward(batch.sparse[:, t, :])
                for t in range(1, num_tables)
            }
        dense_start = perf_counter()
        if (
            self.batched
            and self._packed_bottom.supported
            and self._packed_top.supported
        ):
            losses, history_grad_all, grad_pooled = self._packed_dense_pass(
                batch, segments, normalizer, after_segment, sequence_all, pooled
            )
        else:
            losses = []
            #: Allocated at the first segment's backward so the buffer
            #: matches the gradient dtype (float32 models stay float32
            #: end-to-end).
            history_grad_all = None
            grad_pooled = {t: [] for t in range(1, num_tables)}
            interaction_s = 0.0
            for s, idx in enumerate(segments):
                dense_out = self.bottom_mlp.forward(batch.dense[idx])
                mark = perf_counter()
                context = self.attention.forward(dense_out, sequence_all[idx])
                interaction_s += perf_counter() - mark
                other_outputs = [pooled[t][idx] for t in range(1, num_tables)]
                features = np.concatenate([context, dense_out] + other_outputs, axis=1)
                logits = self.top_mlp.forward(features).reshape(-1)
                labels = batch.labels[idx]
                loss, grad_logits = fused_bce_epilogue(logits, labels)
                if normalizer is not None:
                    grad_logits = grad_logits / normalizer
                grad_features = self.top_mlp.backward(grad_logits.reshape(-1, 1))
                grad_context = grad_features[:, :dim]
                grad_dense_direct = grad_features[:, dim : 2 * dim]
                grad_other = grad_features[:, 2 * dim :]
                mark = perf_counter()
                grad_query, grad_sequence = self.attention.backward(grad_context)
                interaction_s += perf_counter() - mark
                self.bottom_mlp.backward(grad_query + grad_dense_direct)
                if history_grad_all is None:
                    history_grad_all = np.empty(
                        (batch.size, steps, dim), dtype=grad_sequence.dtype
                    )
                history_grad_all[idx] = grad_sequence
                offset = 0
                for t in range(1, num_tables):
                    grad_pooled[t].append(grad_other[:, offset : offset + dim])
                    offset += dim
                losses.append(loss)
                if after_segment is not None:
                    after_segment(s, loss)
            self.last_interaction_time_s = interaction_s
        self.last_dense_time_s = perf_counter() - dense_start
        if self.stacked is not None:
            # Cross-table fusion: ONE segmented scatter for the history
            # table's per-step gradients and every pooled table's repeated
            # gradients together.  The (batch, tables, steps, dim) block's
            # ravel preserves each table's per-table flat (batch, pooling)
            # contribution order, so the combined scatter is bit-identical
            # to the per-table scatters below.
            grad_block = np.empty(
                (batch.size, num_tables, steps, dim), dtype=history_grad_all.dtype
            )
            grad_block[:, 0] = history_grad_all
            for s, idx in enumerate(segments):
                for t in range(1, num_tables):
                    grad_block[idx, t] = grad_pooled[t][s][:, None, :]
            return losses, stacked_segmented_scatter(
                stacked_block.reshape(-1),
                grad_block.reshape(-1, dim),
                np.repeat(segment_ids, num_tables * steps),
                len(segments),
                self.stacked.offsets,
                dim,
            )
        # One scatter per table: the history table's per-step gradients go
        # through the segmented scatter directly (no pooling repeat); the
        # flat segment ids are table-independent and shared.
        flat_segment_ids = (
            segment_ids if steps == 1 else np.repeat(segment_ids, steps)
        )
        sparse_grads: list[list[SparseGradient]] = [
            segmented_scatter(
                history_block.reshape(-1),
                history_grad_all.reshape(-1, dim),
                flat_segment_ids,
                len(segments),
                self.tables[0].num_rows,
                dim,
            )
        ]
        for t in range(1, num_tables):
            sparse_grads.append(
                self.tables[t].backward_segments(
                    grad_pooled[t], segments, segment_ids, flat_segment_ids
                )
            )
        return losses, sparse_grads

    def _packed_dense_pass(
        self, batch, segments, normalizer, after_segment, sequence_all, pooled
    ) -> tuple[list[float], np.ndarray, dict[int, list[np.ndarray]]]:
        """Segment-packed dense pass (MLPs, attention, loss) for TBSM.

        Same contract as :meth:`repro.models.dlrm.DLRM._packed_dense_pass`
        — one GEMM per layer per step, per-segment quantities recovered by
        row slicing, bit-identical to the sequential loop.  The attention
        einsums and softmax are per-row, so they pack without
        certification.
        """
        num_tables = len(self.tables)
        dim = self.config.embedding_dim
        steps = batch.sparse.shape[2]
        perm = segments[0] if len(segments) == 1 else np.concatenate(segments)
        bounds = segment_bounds(segments)
        dense_out = self._packed_bottom.forward(batch.dense[perm], bounds)
        mark = perf_counter()
        context = self.attention.forward(dense_out, sequence_all[perm])
        interaction_s = perf_counter() - mark
        other_outputs = [pooled[t][perm] for t in range(1, num_tables)]
        features = np.concatenate([context, dense_out] + other_outputs, axis=1)
        if self._packed_top.has_logit_epilogue:
            # Deferred-bias epilogue — see the DLRM packed pass.
            logits = self._packed_top.forward_prelogits(features, bounds)
            logits = logits + self._packed_top.logit_bias
        else:
            logits = self._packed_top.forward(features, bounds).reshape(-1)
        labels = batch.labels[perm]
        losses: list[float] = []
        grad_logits = np.empty_like(logits)
        for lo, hi in bounds:
            loss, seg_grad = fused_bce_epilogue(logits[lo:hi], labels[lo:hi])
            losses.append(loss)
            grad_logits[lo:hi] = seg_grad
        if normalizer is not None:
            # Whole-block elementwise division == per-segment slices, bitwise.
            grad_logits /= normalizer
        grad_features = self._packed_top.backward(grad_logits.reshape(-1, 1), bounds)
        grad_context = grad_features[:, :dim]
        grad_dense_direct = grad_features[:, dim : 2 * dim]
        grad_other = grad_features[:, 2 * dim :]
        mark = perf_counter()
        grad_query, grad_sequence = self.attention.backward(grad_context)
        interaction_s += perf_counter() - mark
        self.last_interaction_time_s = interaction_s
        # The bottom MLP's input gradient is discarded — skip its GEMM.
        self._packed_bottom.backward(
            grad_query + grad_dense_direct, bounds, need_input_grad=False
        )
        history_grad_all = np.empty(
            (batch.size, steps, dim), dtype=grad_sequence.dtype
        )
        history_grad_all[perm] = grad_sequence
        grad_pooled: dict[int, list[np.ndarray]] = {t: [] for t in range(1, num_tables)}
        for s, (lo, hi) in enumerate(bounds):
            self._packed_top.accumulate_segment(lo, hi)
            self._packed_bottom.accumulate_segment(lo, hi)
            offset = 0
            for t in range(1, num_tables):
                grad_pooled[t].append(grad_other[lo:hi, offset : offset + dim])
                offset += dim
            if after_segment is not None:
                after_segment(s, losses[s])
        return losses, history_grad_all, grad_pooled

    def predict(self, batch: MiniBatch) -> np.ndarray:
        """Predicted click probabilities for a batch."""
        return predicted_probabilities(self.forward(batch))

    def dense_parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs of both MLPs."""
        return self.bottom_mlp.parameters() + self.top_mlp.parameters()

    def apply_dense_update(self, lr: float) -> None:
        """SGD update of the MLP parameters using accumulated gradients."""
        for param, grad in self.dense_parameters():
            param -= lr * grad

    def apply_sparse_updates(self, grads: list[SparseGradient], lr: float) -> None:
        """SGD update of every embedding table from its sparse gradient."""
        if len(grads) != len(self.tables):
            raise ValueError("one sparse gradient per table is required")
        for table, grad in zip(self.tables, grads, strict=True):
            table.apply_sparse_update(grad, lr)

    def train_step(self, batch: MiniBatch, lr: float = 0.01) -> float:
        """One baseline training step with mini-batch-mean gradients."""
        self.zero_grad()
        loss, sparse_grads = self.loss_and_gradients(batch, normalizer=batch.size)
        self.apply_dense_update(lr)
        self.apply_sparse_updates(sparse_grads, lr)
        return loss

    @property
    def num_dense_parameters(self) -> int:
        """Scalar parameter count of the MLPs."""
        return self.bottom_mlp.num_parameters + self.top_mlp.num_parameters

    @property
    def num_sparse_parameters(self) -> int:
        """Scalar parameter count of the embedding tables."""
        return sum(table.num_parameters for table in self.tables)

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """Deep copy of every parameter (used by equivalence tests)."""
        state: dict[str, np.ndarray] = {}
        for i, (param, _grad) in enumerate(self.dense_parameters()):
            state[f"dense_{i}"] = param.copy()
        for i, table in enumerate(self.tables):
            state[f"table_{i}"] = table.weight.copy()
        return state
