"""Deep Learning Recommendation Model (DLRM) in numpy.

Follows the reference architecture (Figure 2 of the paper): a bottom MLP
over the dense features, one EmbeddingBag per sparse feature, a pairwise
dot-product feature interaction, and a top MLP producing the CTR logit.

The model exposes a two-phase API (``forward`` / ``backward`` +
``apply_updates``) rather than a single fused ``train_step`` so that the
Hotline pipeline and the baselines can schedule the *same* numerical
computation in different orders — which is exactly the paper's claim that
µ-batch fragmentation does not change the model update (Eq. 5).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.data.batch import MiniBatch
from repro.models.configs import ModelConfig
from repro.nn.gemm import PackedMLP, segment_bounds
from repro.nn.embedding import (
    EmbeddingBag,
    SparseGradient,
    StackedEmbeddingStore,
    segment_ids_for,
    stacked_segmented_scatter,
)
from repro.nn.interaction import (
    DotInteractionKernel,
    interaction_output_dim,
)
from repro.nn.loss import fused_bce_epilogue, predicted_probabilities
from repro.nn.mlp import MLP


class DLRM:
    """Trainable DLRM instance for a given :class:`ModelConfig`."""

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        stacked: bool = False,
        batched: bool = True,
    ):
        """Build the model.

        Args:
            config: Architecture + dataset description.
            seed: Parameter-init seed.
            stacked: Adopt every table into one
                :class:`~repro.nn.embedding.StackedEmbeddingStore`, so the
                fused µ-batch path pays one gather and one segmented
                scatter per *step* instead of per table.  Numerics are
                bit-identical either way (the parity suite proves it);
                ``False`` keeps the per-table storage as the reference.
            batched: Run the fused µ-batch dense pass (MLPs + interaction)
                over one segment-packed ``(batch, d)`` block — one GEMM
                per layer per step instead of per segment — with
                per-segment losses/partials recovered by slicing.
                Bit-identical to the retained sequential per-segment loop
                (the :mod:`repro.nn.gemm` contract); ``False`` keeps that
                loop as the parity reference.
        """
        self.config = config
        rng = np.random.default_rng(seed)
        bottom_sizes = [int(tok) for tok in config.bottom_mlp.split("-")]
        if bottom_sizes[0] != config.num_dense_features:
            raise ValueError(
                f"bottom MLP input size {bottom_sizes[0]} does not match "
                f"{config.num_dense_features} dense features"
            )
        if bottom_sizes[-1] != config.embedding_dim:
            raise ValueError(
                "bottom MLP output size must equal the embedding dimension "
                f"({bottom_sizes[-1]} != {config.embedding_dim})"
            )
        self.bottom_mlp = MLP(bottom_sizes, rng)
        self.tables: list[EmbeddingBag] = [
            EmbeddingBag(rows, config.embedding_dim, rng, name=f"table_{i}")
            for i, rows in enumerate(config.dataset.rows_per_table)
        ]
        top_hidden = [int(tok) for tok in config.top_mlp.split("-")]
        top_input = interaction_output_dim(config.embedding_dim, config.num_sparse_features)
        self.top_mlp = MLP([top_input] + top_hidden, rng)
        self.stacked: StackedEmbeddingStore | None = (
            StackedEmbeddingStore(self.tables) if stacked else None
        )
        self._interaction_cache: dict | None = None
        self.batched = batched
        self._packed_bottom = PackedMLP(self.bottom_mlp)
        self._packed_top = PackedMLP(self.top_mlp)
        #: Workspace-pooled interaction kernel — one per model instance
        #: (deepcopied replicas get fresh, unshared buffers).
        self._interaction = DotInteractionKernel()
        #: Measured wall seconds of the last fused step's dense section
        #: (MLPs + interaction + loss; pooling/scatter excluded).
        self.last_dense_time_s = 0.0
        #: Interaction forward+backward share of ``last_dense_time_s``.
        self.last_interaction_time_s = 0.0

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, batch: MiniBatch) -> np.ndarray:
        """Compute CTR logits for a mini-batch, shape (batch,)."""
        if batch.num_tables != len(self.tables):
            raise ValueError(
                f"batch has {batch.num_tables} sparse features, model expects {len(self.tables)}"
            )
        dense_out = self.bottom_mlp.forward(batch.dense)
        sparse_out = [
            table.forward(batch.sparse[:, t, :]) for t, table in enumerate(self.tables)
        ]
        interaction, cache = self._interaction.forward(dense_out, sparse_out)
        self._interaction_cache = cache
        logits = self.top_mlp.forward(interaction)
        return logits.reshape(-1)

    def backward(self, grad_logits: np.ndarray) -> list[SparseGradient]:
        """Backpropagate logit gradients; returns per-table sparse gradients.

        Dense-parameter gradients accumulate inside the MLP layers (so that
        gradients from several µ-batches sum, as in the baseline).
        """
        if self._interaction_cache is None:
            raise RuntimeError("backward called before forward")
        grad_interaction = self.top_mlp.backward(grad_logits.reshape(-1, 1))
        grad_dense, grad_sparse = self._interaction.backward(
            grad_interaction, self._interaction_cache
        )
        self.bottom_mlp.backward(grad_dense)
        return [table.backward(grad_sparse[t]) for t, table in enumerate(self.tables)]

    def zero_grad(self) -> None:
        """Reset accumulated dense gradients."""
        self.bottom_mlp.zero_grad()
        self.top_mlp.zero_grad()

    # ------------------------------------------------------------------ #
    # Training helpers
    # ------------------------------------------------------------------ #
    def loss_and_gradients(
        self, batch: MiniBatch, normalizer: float | None = None
    ) -> tuple[float, list[SparseGradient]]:
        """Forward + backward with a sum-reduced BCE loss (Eq. 2).

        Dense gradients are accumulated in the layers; the caller applies
        them with :meth:`apply_dense_update`.

        Args:
            batch: The (µ-)batch to train on.
            normalizer: Divisor applied to the gradients (typically the full
                mini-batch size, so per-sample gradients average over the
                mini-batch).  With ``None`` the raw summed gradients are
                returned.  Using the *full* mini-batch size for every
                µ-batch keeps Hotline's accumulated update identical to the
                baseline's (Eq. 5).
        """
        logits = self.forward(batch)
        loss, grad_logits = fused_bce_epilogue(logits, batch.labels)
        if normalizer is not None:
            if normalizer <= 0:
                raise ValueError("normalizer must be positive")
            grad_logits = grad_logits / normalizer
        sparse_grads = self.backward(grad_logits)
        return loss, sparse_grads

    def fused_loss_and_gradients(
        self,
        batch: MiniBatch,
        segments: list[np.ndarray],
        normalizer: float | None = None,
        after_segment=None,
    ) -> tuple[list[float], list[list[SparseGradient]]]:
        """Train a mini-batch's µ-batches with fused embedding traffic.

        Per table, the **whole mini-batch's contiguous index block** is
        gathered once (no per-µ-batch index copies), each µ-batch's MLP and
        interaction pass runs on views/selections of the pooled output, and
        every µ-batch's sparse gradient comes out of **one**
        :meth:`~repro.nn.embedding.EmbeddingBag.backward_segments` scatter.
        Dense gradients accumulate in the layers exactly as sequential
        :meth:`loss_and_gradients` calls over ``batch.select(segments[s])``
        would — every returned value is bit-identical to the sequential
        path.

        Args:
            batch: The full mini-batch.
            segments: Non-empty ascending index arrays partitioning the
                batch, in accumulation order (Hotline passes the popular
                then the non-popular sample indices).
            normalizer: Divisor applied to the gradients (typically the full
                mini-batch size; see :meth:`loss_and_gradients`).
            after_segment: Optional ``callback(segment_index, loss)`` fired
                right after each segment's backward pass — the point where a
                caller needing *per-segment* dense gradients (the sharded
                trainer's per-µ-batch partials) can snapshot the layers and
                ``zero_grad`` before the next segment runs.

        Returns:
            ``(losses, sparse_grads)`` — per-segment losses and per-table
            lists of per-segment sparse gradients (``sparse_grads[t][s]``).
        """
        num_tables = len(self.tables)
        if batch.num_tables != num_tables:
            raise ValueError("batch sparse-feature count does not match the model")
        segments = [np.asarray(idx, dtype=np.int64) for idx in segments]
        if not segments:
            return [], [[] for _ in range(num_tables)]
        if any(idx.size == 0 for idx in segments):
            raise ValueError("fused segments must be non-empty")
        if normalizer is not None and normalizer <= 0:
            raise ValueError("normalizer must be positive")
        segment_ids = segment_ids_for(segments, batch.size)
        stacked_block: np.ndarray | None = None
        if self.stacked is not None:
            # Cross-table fusion: ONE gather for every table's lookups.
            # Per-table strided sums over the gathered block are
            # bit-identical to per-table forward() pooling.
            stacked_block = self.stacked.stacked_indices(batch.sparse)
            gathered = self.stacked.gather(stacked_block)
            pooled = [gathered[:, t].sum(axis=1) for t in range(num_tables)]
        else:
            pooled = [
                table.forward(batch.sparse[:, t, :]) for t, table in enumerate(self.tables)
            ]
        dense_start = perf_counter()
        if (
            self.batched
            and self._packed_bottom.supported
            and self._packed_top.supported
        ):
            losses, grad_pooled = self._packed_dense_pass(
                batch, segments, normalizer, after_segment, pooled
            )
        else:
            losses = []
            grad_pooled = [[] for _ in range(num_tables)]
            interaction_s = 0.0
            for s, idx in enumerate(segments):
                dense_out = self.bottom_mlp.forward(batch.dense[idx])
                mark = perf_counter()
                interaction, cache = self._interaction.forward(
                    dense_out, [pooled[t][idx] for t in range(num_tables)]
                )
                interaction_s += perf_counter() - mark
                logits = self.top_mlp.forward(interaction).reshape(-1)
                labels = batch.labels[idx]
                loss, grad_logits = fused_bce_epilogue(logits, labels)
                if normalizer is not None:
                    grad_logits = grad_logits / normalizer
                grad_interaction = self.top_mlp.backward(grad_logits.reshape(-1, 1))
                mark = perf_counter()
                grad_dense, grad_sparse = self._interaction.backward(
                    grad_interaction, cache
                )
                interaction_s += perf_counter() - mark
                self.bottom_mlp.backward(grad_dense)
                for t in range(num_tables):
                    grad_pooled[t].append(grad_sparse[t])
                losses.append(loss)
                if after_segment is not None:
                    after_segment(s, loss)
            self.last_interaction_time_s = interaction_s
        self.last_dense_time_s = perf_counter() - dense_start
        pooling = batch.pooling
        if self.stacked is not None:
            # Cross-table fusion: ONE segmented scatter for every table's
            # gradients.  Assemble the per-sample, per-table pooled-output
            # gradients as one (batch, tables, dim) block; its (batch,
            # table, pooling) ravel keeps each table's contributions in the
            # per-table flat order, so the combined scatter is
            # bit-identical to per-table backward_segments calls.
            dtype = grad_pooled[0][0].dtype if grad_pooled[0] else np.float64
            grad_block = np.empty(
                (batch.size, num_tables, self.config.embedding_dim), dtype=dtype
            )
            for s, idx in enumerate(segments):
                for t in range(num_tables):
                    grad_block[idx, t] = grad_pooled[t][s]
            flat_grads = grad_block.reshape(batch.size * num_tables, -1)
            if pooling != 1:
                flat_grads = np.repeat(flat_grads, pooling, axis=0)
            flat_segment_ids = np.repeat(segment_ids, num_tables * pooling)
            sparse_grads = stacked_segmented_scatter(
                stacked_block.reshape(-1),
                flat_grads,
                flat_segment_ids,
                len(segments),
                self.stacked.offsets,
                self.config.embedding_dim,
            )
            return losses, sparse_grads
        # The flat (per-lookup) segment ids are table-independent — build
        # them once and share them across every table's scatter.
        flat_segment_ids = (
            segment_ids if pooling == 1 else np.repeat(segment_ids, pooling)
        )
        sparse_grads = [
            table.backward_segments(
                grad_pooled[t], segments, segment_ids, flat_segment_ids
            )
            for t, table in enumerate(self.tables)
        ]
        return losses, sparse_grads

    def _packed_dense_pass(
        self, batch, segments, normalizer, after_segment, pooled
    ) -> tuple[list[float], list[list[np.ndarray]]]:
        """Segment-packed dense pass — one GEMM per layer per *step*.

        Packs the segments into one contiguous block (rows in segment
        order), runs both MLPs and the interaction once over it, recovers
        per-segment losses and logit gradients by row slicing, and folds
        per-segment ``grad_weight`` partials in segment order — every
        value bit-identical to the sequential loop (see
        :mod:`repro.nn.gemm` for the contract and the per-shape
        certification that backs it).
        """
        num_tables = len(self.tables)
        perm = segments[0] if len(segments) == 1 else np.concatenate(segments)
        bounds = segment_bounds(segments)
        dense_out = self._packed_bottom.forward(batch.dense[perm], bounds)
        mark = perf_counter()
        interaction, cache = self._interaction.forward(
            dense_out, [pooled[t][perm] for t in range(num_tables)]
        )
        interaction_s = perf_counter() - mark
        if self._packed_top.has_logit_epilogue:
            # Deferred-bias epilogue: the final GEMM skips its broadcast
            # bias add and the scalar bias folds into the fused loss pass —
            # elementwise, so bit-identical to forward() + reshape.
            logits = self._packed_top.forward_prelogits(interaction, bounds)
            logits = logits + self._packed_top.logit_bias
        else:
            logits = self._packed_top.forward(interaction, bounds).reshape(-1)
        labels = batch.labels[perm]
        losses: list[float] = []
        grad_logits = np.empty_like(logits)
        for lo, hi in bounds:
            loss, seg_grad = fused_bce_epilogue(logits[lo:hi], labels[lo:hi])
            losses.append(loss)
            grad_logits[lo:hi] = seg_grad
        if normalizer is not None:
            # Whole-block division is elementwise — bit-identical to the
            # former per-segment ``seg_grad / normalizer`` slices.
            grad_logits /= normalizer
        grad_interaction = self._packed_top.backward(grad_logits.reshape(-1, 1), bounds)
        mark = perf_counter()
        grad_dense, grad_sparse = self._interaction.backward(grad_interaction, cache)
        interaction_s += perf_counter() - mark
        self.last_interaction_time_s = interaction_s
        # The bottom MLP's input gradient is discarded by every caller —
        # the packed path skips that (dead) first-layer GEMM entirely.
        self._packed_bottom.backward(grad_dense, bounds, need_input_grad=False)
        grad_pooled: list[list[np.ndarray]] = [[] for _ in range(num_tables)]
        for s, (lo, hi) in enumerate(bounds):
            self._packed_top.accumulate_segment(lo, hi)
            self._packed_bottom.accumulate_segment(lo, hi)
            for t in range(num_tables):
                grad_pooled[t].append(grad_sparse[t][lo:hi])
            if after_segment is not None:
                after_segment(s, losses[s])
        return losses, grad_pooled

    def predict(self, batch: MiniBatch) -> np.ndarray:
        """Predicted click probabilities for a batch."""
        return predicted_probabilities(self.forward(batch))

    def dense_parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs of both MLPs."""
        return self.bottom_mlp.parameters() + self.top_mlp.parameters()

    def apply_dense_update(self, lr: float) -> None:
        """SGD update of the MLP parameters using accumulated gradients."""
        for param, grad in self.dense_parameters():
            param -= lr * grad

    def apply_sparse_updates(self, grads: list[SparseGradient], lr: float) -> None:
        """SGD update of every embedding table from its sparse gradient."""
        if len(grads) != len(self.tables):
            raise ValueError("one sparse gradient per table is required")
        for table, grad in zip(self.tables, grads, strict=True):
            table.apply_sparse_update(grad, lr)

    def train_step(self, batch: MiniBatch, lr: float = 0.01) -> float:
        """One baseline training step: forward, backward, update, in order.

        Gradients are normalised by the mini-batch size (mean-reduced), the
        conventional DLRM training setup.
        """
        self.zero_grad()
        loss, sparse_grads = self.loss_and_gradients(batch, normalizer=batch.size)
        self.apply_dense_update(lr)
        self.apply_sparse_updates(sparse_grads, lr)
        return loss

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_dense_parameters(self) -> int:
        """Scalar parameter count of the MLPs."""
        return self.bottom_mlp.num_parameters + self.top_mlp.num_parameters

    @property
    def num_sparse_parameters(self) -> int:
        """Scalar parameter count of the embedding tables."""
        return sum(table.num_parameters for table in self.tables)

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """Deep copy of every parameter (used by equivalence tests)."""
        state: dict[str, np.ndarray] = {}
        for i, (param, _grad) in enumerate(self.dense_parameters()):
            state[f"dense_{i}"] = param.copy()
        for i, table in enumerate(self.tables):
            state[f"table_{i}"] = table.weight.copy()
        return state
