"""Deep Learning Recommendation Model (DLRM) in numpy.

Follows the reference architecture (Figure 2 of the paper): a bottom MLP
over the dense features, one EmbeddingBag per sparse feature, a pairwise
dot-product feature interaction, and a top MLP producing the CTR logit.

The model exposes a two-phase API (``forward`` / ``backward`` +
``apply_updates``) rather than a single fused ``train_step`` so that the
Hotline pipeline and the baselines can schedule the *same* numerical
computation in different orders — which is exactly the paper's claim that
µ-batch fragmentation does not change the model update (Eq. 5).
"""

from __future__ import annotations

import numpy as np

from repro.data.batch import MiniBatch
from repro.models.configs import ModelConfig
from repro.nn.embedding import EmbeddingBag, SparseGradient
from repro.nn.interaction import (
    dot_interaction,
    dot_interaction_backward,
    interaction_output_dim,
)
from repro.nn.loss import bce_with_logits, bce_with_logits_backward, predicted_probabilities
from repro.nn.mlp import MLP


class DLRM:
    """Trainable DLRM instance for a given :class:`ModelConfig`."""

    def __init__(self, config: ModelConfig, seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        bottom_sizes = [int(tok) for tok in config.bottom_mlp.split("-")]
        if bottom_sizes[0] != config.num_dense_features:
            raise ValueError(
                f"bottom MLP input size {bottom_sizes[0]} does not match "
                f"{config.num_dense_features} dense features"
            )
        if bottom_sizes[-1] != config.embedding_dim:
            raise ValueError(
                "bottom MLP output size must equal the embedding dimension "
                f"({bottom_sizes[-1]} != {config.embedding_dim})"
            )
        self.bottom_mlp = MLP(bottom_sizes, rng)
        self.tables: list[EmbeddingBag] = [
            EmbeddingBag(rows, config.embedding_dim, rng, name=f"table_{i}")
            for i, rows in enumerate(config.dataset.rows_per_table)
        ]
        top_hidden = [int(tok) for tok in config.top_mlp.split("-")]
        top_input = interaction_output_dim(config.embedding_dim, config.num_sparse_features)
        self.top_mlp = MLP([top_input] + top_hidden, rng)
        self._interaction_cache: dict | None = None

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, batch: MiniBatch) -> np.ndarray:
        """Compute CTR logits for a mini-batch, shape (batch,)."""
        if batch.num_tables != len(self.tables):
            raise ValueError(
                f"batch has {batch.num_tables} sparse features, model expects {len(self.tables)}"
            )
        dense_out = self.bottom_mlp.forward(batch.dense)
        sparse_out = [
            table.forward(batch.sparse[:, t, :]) for t, table in enumerate(self.tables)
        ]
        interaction, cache = dot_interaction(dense_out, sparse_out)
        self._interaction_cache = cache
        logits = self.top_mlp.forward(interaction)
        return logits.reshape(-1)

    def backward(self, grad_logits: np.ndarray) -> list[SparseGradient]:
        """Backpropagate logit gradients; returns per-table sparse gradients.

        Dense-parameter gradients accumulate inside the MLP layers (so that
        gradients from several µ-batches sum, as in the baseline).
        """
        if self._interaction_cache is None:
            raise RuntimeError("backward called before forward")
        grad_interaction = self.top_mlp.backward(grad_logits.reshape(-1, 1))
        grad_dense, grad_sparse = dot_interaction_backward(
            grad_interaction, self._interaction_cache
        )
        self.bottom_mlp.backward(grad_dense)
        return [table.backward(grad_sparse[t]) for t, table in enumerate(self.tables)]

    def zero_grad(self) -> None:
        """Reset accumulated dense gradients."""
        self.bottom_mlp.zero_grad()
        self.top_mlp.zero_grad()

    # ------------------------------------------------------------------ #
    # Training helpers
    # ------------------------------------------------------------------ #
    def loss_and_gradients(
        self, batch: MiniBatch, normalizer: float | None = None
    ) -> tuple[float, list[SparseGradient]]:
        """Forward + backward with a sum-reduced BCE loss (Eq. 2).

        Dense gradients are accumulated in the layers; the caller applies
        them with :meth:`apply_dense_update`.

        Args:
            batch: The (µ-)batch to train on.
            normalizer: Divisor applied to the gradients (typically the full
                mini-batch size, so per-sample gradients average over the
                mini-batch).  With ``None`` the raw summed gradients are
                returned.  Using the *full* mini-batch size for every
                µ-batch keeps Hotline's accumulated update identical to the
                baseline's (Eq. 5).
        """
        logits = self.forward(batch)
        loss = bce_with_logits(logits, batch.labels, reduction="sum")
        grad_logits = bce_with_logits_backward(logits, batch.labels, reduction="sum")
        if normalizer is not None:
            if normalizer <= 0:
                raise ValueError("normalizer must be positive")
            grad_logits = grad_logits / normalizer
        sparse_grads = self.backward(grad_logits)
        return loss, sparse_grads

    def predict(self, batch: MiniBatch) -> np.ndarray:
        """Predicted click probabilities for a batch."""
        return predicted_probabilities(self.forward(batch))

    def dense_parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs of both MLPs."""
        return self.bottom_mlp.parameters() + self.top_mlp.parameters()

    def apply_dense_update(self, lr: float) -> None:
        """SGD update of the MLP parameters using accumulated gradients."""
        for param, grad in self.dense_parameters():
            param -= lr * grad

    def apply_sparse_updates(self, grads: list[SparseGradient], lr: float) -> None:
        """SGD update of every embedding table from its sparse gradient."""
        if len(grads) != len(self.tables):
            raise ValueError("one sparse gradient per table is required")
        for table, grad in zip(self.tables, grads, strict=True):
            table.apply_sparse_update(grad, lr)

    def train_step(self, batch: MiniBatch, lr: float = 0.01) -> float:
        """One baseline training step: forward, backward, update, in order.

        Gradients are normalised by the mini-batch size (mean-reduced), the
        conventional DLRM training setup.
        """
        self.zero_grad()
        loss, sparse_grads = self.loss_and_gradients(batch, normalizer=batch.size)
        self.apply_dense_update(lr)
        self.apply_sparse_updates(sparse_grads, lr)
        return loss

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_dense_parameters(self) -> int:
        """Scalar parameter count of the MLPs."""
        return self.bottom_mlp.num_parameters + self.top_mlp.num_parameters

    @property
    def num_sparse_parameters(self) -> int:
        """Scalar parameter count of the embedding tables."""
        return sum(table.num_parameters for table in self.tables)

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """Deep copy of every parameter (used by equivalence tests)."""
        state: dict[str, np.ndarray] = {}
        for i, (param, _grad) in enumerate(self.dense_parameters()):
            state[f"dense_{i}"] = param.copy()
        for i, table in enumerate(self.tables):
            state[f"table_{i}"] = table.weight.copy()
        return state
